//! **nilihype** — a Rust reproduction of *"Fast Hypervisor Recovery Without
//! Reboot"* (Zhou & Tamir, DSN 2018).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`sim`] — deterministic simulation kernel (time, RNG, statistics).
//! * [`virtio`] — descriptor-ring virtqueues, virtio-blk/net device models
//!   and the virtual switch, with microreset ring-consistency repair.
//! * [`hv`] — the simulated Xen-like hypervisor substrate.
//! * [`workloads`] — the paper's benchmarks (BlkBench, UnixBench, NetBench).
//! * [`inject`] — the Gigan-style fault injector.
//! * [`recovery`] — the paper's contribution: microreset (NiLiHype) and
//!   microreboot (ReHype) component-level recovery.
//! * [`campaign`] — fault-injection campaigns and outcome classification.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use nilihype::hv::{Hypervisor, MachineConfig, CpuId};
//! use nilihype::recovery::{Microreset, RecoveryMechanism};
//!
//! let mechanism = Microreset::nilihype();
//! let mut hv = Hypervisor::new(MachineConfig::small(), 42);
//! hv.support = mechanism.op_support();
//! hv.run_for(nilihype::sim::SimDuration::from_millis(50));
//! hv.raise_panic(CpuId(0), "example fault");
//! let report = mechanism.recover(&mut hv).expect("recovery runs");
//! assert!(hv.detection().is_none(), "machine resumed");
//! assert_eq!(report.mechanism, "NiLiHype");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nlh_campaign as campaign;
pub use nlh_core as recovery;
pub use nlh_hv as hv;
pub use nlh_inject as inject;
pub use nlh_sim as sim;
pub use nlh_virtio as virtio;
pub use nlh_workloads as workloads;
