//! VirtioNetBench: paced east-west traffic through the virtual switch.
//!
//! Each instance owns a virtio-net port. It transmits one frame per period
//! by publishing a tx descriptor and kicking the device
//! ([`GuestOp::VirtioKick`]); the vswitch forwards the frame to the peer
//! port, whose guest sees [`GuestEventKind::VirtioNetRx`]. The sender
//! waits for its [`GuestEventKind::VirtioNetTxDone`] completion before
//! pacing the next frame, so tx descriptors never pile up.
//!
//! Oracle: every transmitted frame must complete exactly once (tx
//! completions are conserved by the ring-consistency repair). Received
//! frames are counted but not required — rx delivery is at-most-once
//! across a microreset (a torn rx fill is cancelled, the frame dropped),
//! matching real NIC semantics where a frame caught mid-DMA is lost.

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::interrupts::GuestEventKind;
use nlh_sim::{Pcg64, SimDuration, SimTime};
use nlh_virtio::Q_TX;

use crate::WorkloadCore;

/// What the sender is doing between frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Pace: wait out the inter-frame gap.
    Pace,
    /// Publish the next tx descriptor and kick.
    Kick,
    /// Waiting for the tx completion of the frame in flight.
    WaitTx {
        /// Sequence number of the frame in flight.
        seq: u64,
    },
}

/// The virtio-net east-west traffic workload.
#[derive(Debug, Clone)]
pub struct VirtioNetBench {
    core: WorkloadCore,
    phase: Phase,
    period: SimDuration,
    next_seq: u64,
    tx_completed: u64,
    /// Completion that arrived while the sender was not polling.
    tx_done_seq: Option<u64>,
    frames_received: u64,
}

impl VirtioNetBench {
    /// Creates a run of the given duration sending one frame per `period`.
    pub fn new(
        seed: u64,
        duration: SimDuration,
        period: SimDuration,
        tls_sensitivity: f64,
    ) -> Self {
        VirtioNetBench {
            core: WorkloadCore::new(seed, duration, tls_sensitivity),
            phase: Phase::Pace,
            period,
            next_seq: 1,
            tx_completed: 0,
            tx_done_seq: None,
            frames_received: 0,
        }
    }

    /// Frames whose tx completion arrived.
    pub fn tx_completed(&self) -> u64 {
        self.tx_completed
    }

    /// Frames received from the peer port.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }
}

impl GuestProgram for VirtioNetBench {
    fn name(&self) -> &str {
        "VirtioNetBench"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if let Phase::WaitTx { seq } = self.phase {
            if self.tx_done_seq.take().is_some_and(|s| s >= seq) {
                self.tx_completed += 1;
                self.phase = Phase::Pace;
            } else {
                return GuestOp::Block;
            }
        }
        match self.phase {
            Phase::Pace => {
                if self.core.past_end(now) {
                    self.core.finished = true;
                    return GuestOp::Done;
                }
                self.phase = Phase::Kick;
                GuestOp::Compute(self.period)
            }
            Phase::Kick => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.phase = Phase::WaitTx { seq };
                GuestOp::VirtioKick {
                    queue: Q_TX as u8,
                    payload: seq,
                }
            }
            Phase::WaitTx { .. } => unreachable!("handled above"),
        }
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        if self.core.common_notice(&notice) {
            return;
        }
        match notice {
            GuestNotice::Event(GuestEventKind::VirtioNetTxDone { frame }) => {
                // Keep the highest completed sequence number; completions
                // are in order, so this both dedups and tolerates a repair
                // publishing the completion before the guest polls.
                self.tx_done_seq = Some(self.tx_done_seq.map_or(frame, |s| s.max(frame)));
            }
            GuestNotice::Event(GuestEventKind::VirtioNetRx { .. }) => {
                self.frames_received += 1;
            }
            _ => {}
        }
    }

    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        self.core.verdict(now, deadline)
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.core.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::FailReason;

    fn pump(w: &mut VirtioNetBench, frames: u64) -> SimTime {
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        for _ in 0..frames {
            match w.next_op(now, &mut rng) {
                GuestOp::Compute(d) => now += d,
                op => panic!("expected pacing compute, got {op:?}"),
            }
            match w.next_op(now, &mut rng) {
                GuestOp::VirtioKick { queue, payload } => {
                    assert_eq!(queue as usize, Q_TX);
                    w.notice(
                        now,
                        GuestNotice::Event(GuestEventKind::VirtioNetTxDone { frame: payload }),
                    );
                }
                op => panic!("expected a kick, got {op:?}"),
            }
        }
        now
    }

    #[test]
    fn paces_sends_and_counts_completions() {
        let mut w = VirtioNetBench::new(
            1,
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
            0.5,
        );
        let now = pump(&mut w, 5);
        assert_eq!(w.tx_completed(), 4, "5th completion not yet polled");
        let late = now + SimDuration::from_secs(1);
        let mut rng = Pcg64::seed_from_u64(0);
        while w.next_op(late, &mut rng) != GuestOp::Done {}
        assert_eq!(w.tx_completed(), 5);
        assert!(w.verdict(late, late + SimDuration::from_secs(1)).is_ok());
    }

    #[test]
    fn lost_tx_completion_blocks_until_incomplete() {
        let mut w = VirtioNetBench::new(
            2,
            SimDuration::from_secs(10),
            SimDuration::from_millis(1),
            0.5,
        );
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        match w.next_op(now, &mut rng) {
            GuestOp::Compute(d) => now += d,
            op => panic!("unexpected {op:?}"),
        }
        assert!(matches!(
            w.next_op(now, &mut rng),
            GuestOp::VirtioKick { .. }
        ));
        assert_eq!(w.next_op(now, &mut rng), GuestOp::Block);
        assert_eq!(
            w.verdict(SimTime::from_secs(100), SimTime::from_secs(50)),
            WorkloadVerdict::Failed(FailReason::Incomplete)
        );
    }

    #[test]
    fn rx_frames_are_counted() {
        let mut w = VirtioNetBench::new(
            3,
            SimDuration::from_secs(1),
            SimDuration::from_millis(1),
            0.5,
        );
        for f in 1..=3 {
            w.notice(
                SimTime::ZERO,
                GuestNotice::Event(GuestEventKind::VirtioNetRx { frame: f }),
            );
        }
        assert_eq!(w.frames_received(), 3);
    }
}
