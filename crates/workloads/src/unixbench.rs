//! UnixBench: a hypercall-heavy system-stress workload.
//!
//! The paper uses a subset of UnixBench selected to "stress the
//! hypervisor's handling of hypercalls, especially those related to virtual
//! memory management" (Section VI-A). This model issues the corresponding
//! paravirtual traffic: page pins/unpins (`mmu_update`), memory
//! reservations, batched multicalls, occasional grant maps and console
//! writes — plus frequent syscalls, which on x86-64 trap through the
//! hypervisor.

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::{HcRequest, MulticallShape};
use nlh_sim::{Pcg64, SimDuration, SimTime};

use crate::WorkloadCore;

/// The UnixBench-like workload.
#[derive(Debug, Clone)]
pub struct UnixBench {
    core: WorkloadCore,
    /// Logical pins outstanding (guest-side bookkeeping to keep pin/unpin
    /// traffic balanced).
    pins: usize,
    /// Logical memory-reservation surplus.
    reserved: usize,
    iterations: u64,
}

impl UnixBench {
    /// Creates a UnixBench run of the given duration.
    ///
    /// `tls_sensitivity` is the probability that a recovery-time FS/GS
    /// clobber hits a TLS-dependent process (the paper's Section IV
    /// enhancement exists because this is common).
    pub fn new(seed: u64, duration: SimDuration, tls_sensitivity: f64) -> Self {
        UnixBench {
            core: WorkloadCore::new(seed, duration, tls_sensitivity),
            pins: 0,
            reserved: 0,
            iterations: 0,
        }
    }

    /// Iterations completed so far (the benchmark's throughput metric).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl GuestProgram for UnixBench {
    fn name(&self) -> &str {
        "UnixBench"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if self.core.past_end(now) {
            self.core.finished = true;
            return GuestOp::Done;
        }
        self.iterations += 1;
        // Weighted mix of one compute slice + one platform interaction.
        // Weights approximate a VM-management-heavy UnixBench subset.
        let roll = self.core.rng.gen_range_usize(0, 100);
        match roll {
            // 70%: pure compute (arithmetic, pipes within the guest).
            0..=69 => {
                let us = 300 + self.core.rng.gen_range_u64(0, 1_000);
                GuestOp::Compute(SimDuration::from_micros(us))
            }
            // 12%: syscalls (process creation, file metadata, ...).
            70..=81 => GuestOp::Syscall,
            // 5%: pin page-table pages (expected +1.5 pages per pin op,
            // balanced by the unpin branch below).
            82..=86 => {
                let n = 1 + self.core.rng.gen_range_usize(0, 2);
                self.pins += n;
                GuestOp::Hypercall(HcRequest::PinPages(n))
            }
            // 5%: unpin one or more pages (same size distribution as the
            // pin branch, so pins stay balanced).
            87..=91 => {
                let want = 1 + self.core.rng.gen_range_usize(0, 2);
                let n = want.min(self.pins);
                if n > 0 {
                    self.pins -= n;
                    GuestOp::Hypercall(HcRequest::UnpinPages(n))
                } else {
                    GuestOp::Syscall
                }
            }
            // 3%: batched multicall (page-table update burst). The fixed
            // shape keeps the burst allocation-free on the hot path.
            92..=94 => GuestOp::Hypercall(HcRequest::FixedMulticall(
                MulticallShape::PinProbeUnpinTimer,
            )),
            // 2%: memory reservation churn.
            95..=96 => {
                if self.reserved > 0 && self.core.rng.gen_bool(0.5) {
                    self.reserved -= 1;
                    GuestOp::Hypercall(HcRequest::MemoryDecrease(2))
                } else {
                    self.reserved += 1;
                    GuestOp::Hypercall(HcRequest::MemoryIncrease(2))
                }
            }
            // 1%: grant map from the PrivVM (shared ring setup).
            97 => GuestOp::Hypercall(HcRequest::GrantMap {
                from: nlh_sim::DomId::PRIV,
            }),
            // 1%: console output.
            98 => GuestOp::Hypercall(HcRequest::ConsoleWrite),
            // 1%: trivial read-only hypercall.
            _ => GuestOp::Hypercall(HcRequest::XenVersion),
        }
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        self.core.common_notice(&notice);
    }

    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        self.core.verdict(now, deadline)
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.core.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::FailReason;

    #[test]
    fn finishes_after_duration() {
        let mut w = UnixBench::new(1, SimDuration::from_millis(50), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        let mut done = false;
        for _ in 0..100_000 {
            match w.next_op(now, &mut rng) {
                GuestOp::Done => {
                    done = true;
                    break;
                }
                GuestOp::Compute(d) => now += d,
                _ => now += SimDuration::from_micros(50),
            }
        }
        assert!(done);
        assert!(w.verdict(now, now + SimDuration::from_secs(1)).is_ok());
        assert!(w.iterations() > 10);
    }

    #[test]
    fn unpins_never_exceed_pins() {
        let mut w = UnixBench::new(7, SimDuration::from_secs(10), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        let (mut pins, mut unpins) = (0usize, 0usize);
        for _ in 0..20_000 {
            match w.next_op(now, &mut rng) {
                GuestOp::Hypercall(HcRequest::PinPages(n)) => pins += n,
                GuestOp::Hypercall(HcRequest::UnpinPages(n)) => {
                    unpins += n;
                    assert!(unpins <= pins, "unpinned more than pinned");
                }
                GuestOp::Compute(d) => now += d,
                _ => {}
            }
            now += SimDuration::from_micros(10);
        }
        assert!(pins > 0, "workload must exercise pinning");
    }

    #[test]
    fn data_corruption_fails_the_oracle() {
        let mut w = UnixBench::new(2, SimDuration::from_millis(1), 0.5);
        w.notice(SimTime::ZERO, GuestNotice::DataCorrupted);
        assert_eq!(
            w.verdict(SimTime::from_secs(1), SimTime::from_secs(2)),
            WorkloadVerdict::Failed(FailReason::OutputMismatch)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = UnixBench::new(9, SimDuration::from_secs(1), 0.5);
        let mut b = UnixBench::new(9, SimDuration::from_secs(1), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        for i in 0..500 {
            let t = SimTime::from_micros(i * 100);
            assert_eq!(a.next_op(t, &mut rng), b.next_op(t, &mut rng));
        }
    }
}
