//! The PrivVM (Dom0) workload: device-driver domain + management agent.
//!
//! The privileged VM hosts the block-device driver that serves BlkBench's
//! paravirtual I/O requests, performs occasional management work, and — in
//! the 3AppVM configuration — creates the post-recovery BlkBench AppVM by
//! issuing a `domctl` create hypercall at a scheduled time (Section VI-A).

use std::collections::VecDeque;

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::HcRequest;
use nlh_hv::interrupts::GuestEventKind;
use nlh_sim::{DomId, Pcg64, SimDuration, SimTime};

/// What the driver is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriverPhase {
    /// Waiting for requests.
    Ready,
    /// Performing the "disk access" for a request.
    Disk { from: DomId, req: u64 },
    /// Sending the completion event.
    Complete { from: DomId, req: u64 },
}

/// The PrivVM driver/management workload.
#[derive(Debug, Clone)]
pub struct PrivVmDriver {
    rng: Pcg64,
    inbox: VecDeque<(DomId, u64)>,
    phase: DriverPhase,
    /// Simulated disk service time per request.
    disk_latency: SimDuration,
    /// When to issue the `domctl` create for a queued domain spec, if ever.
    create_at: Option<SimTime>,
    created: bool,
    requests_served: u64,
    crashed_oracle: bool,
}

impl PrivVmDriver {
    /// Creates the driver. `create_at` schedules a `domctl` domain creation
    /// (the specification itself is queued on the hypervisor with
    /// [`nlh_hv::Hypervisor::queue_domain_creation`]).
    pub fn new(seed: u64, create_at: Option<SimTime>) -> Self {
        PrivVmDriver {
            rng: Pcg64::seed_from_u64(seed),
            inbox: VecDeque::new(),
            phase: DriverPhase::Ready,
            disk_latency: SimDuration::from_micros(400),
            create_at,
            created: false,
            requests_served: 0,
            crashed_oracle: false,
        }
    }

    /// Block requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Whether the scheduled domain creation has been issued.
    pub fn creation_issued(&self) -> bool {
        self.created
    }
}

impl GuestProgram for PrivVmDriver {
    fn name(&self) -> &str {
        "PrivVmDriver"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        match self.phase {
            DriverPhase::Disk { from, req } => {
                self.phase = DriverPhase::Complete { from, req };
                return GuestOp::Compute(self.disk_latency);
            }
            DriverPhase::Complete { from, req } => {
                self.phase = DriverPhase::Ready;
                self.requests_served += 1;
                return GuestOp::Hypercall(HcRequest::EventSend {
                    to: from,
                    event: GuestEventKind::BlkComplete { req },
                });
            }
            DriverPhase::Ready => {}
        }
        // Scheduled management work: create the post-recovery AppVM.
        if let Some(t) = self.create_at {
            if now >= t && !self.created {
                self.created = true;
                return GuestOp::Hypercall(HcRequest::DomctlCreate);
            }
        }
        if let Some((from, req)) = self.inbox.pop_front() {
            self.phase = DriverPhase::Disk { from, req };
            // Occasional driver-side console logging.
            if self.rng.gen_bool(0.05) {
                return GuestOp::Hypercall(HcRequest::ConsoleWrite);
            }
            return GuestOp::Compute(SimDuration::from_micros(50));
        }
        GuestOp::Block
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        match notice {
            GuestNotice::Event(GuestEventKind::BlkRequest { from, req }) => {
                self.inbox.push_back((from, req));
            }
            GuestNotice::TlsClobbered
                // Dom0 userspace (xl, udev) uses TLS too; a clobber can take
                // down the management stack.
                if self.rng.gen_bool(0.5) => {
                    self.crashed_oracle = true;
                }
            _ => {}
        }
    }

    fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
        // The PrivVM is not a benchmark: it is healthy unless its management
        // stack died (the campaign separately requires domain creation to
        // succeed).
        if self.crashed_oracle {
            WorkloadVerdict::Failed(nlh_hv::domain::FailReason::GuestCrash(
                "PrivVM management stack crashed".to_string(),
            ))
        } else {
            WorkloadVerdict::CompletedOk
        }
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = Pcg64::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_requests_in_order() {
        let mut w = PrivVmDriver::new(1, None);
        let mut rng = Pcg64::seed_from_u64(0);
        w.notice(
            SimTime::ZERO,
            GuestNotice::Event(GuestEventKind::BlkRequest {
                from: DomId(2),
                req: 11,
            }),
        );
        // Ready -> (maybe console) -> Disk -> Complete.
        let mut sent = None;
        for _ in 0..6 {
            match w.next_op(SimTime::ZERO, &mut rng) {
                GuestOp::Hypercall(HcRequest::EventSend { to, event }) => {
                    sent = Some((to, event));
                    break;
                }
                GuestOp::Block => panic!("driver blocked with work queued"),
                _ => {}
            }
        }
        let (to, event) = sent.expect("completion sent");
        assert_eq!(to, DomId(2));
        assert_eq!(event, GuestEventKind::BlkComplete { req: 11 });
        assert_eq!(w.requests_served(), 1);
    }

    #[test]
    fn blocks_when_idle() {
        let mut w = PrivVmDriver::new(2, None);
        let mut rng = Pcg64::seed_from_u64(0);
        assert_eq!(w.next_op(SimTime::ZERO, &mut rng), GuestOp::Block);
    }

    #[test]
    fn issues_domctl_create_once_at_schedule() {
        let mut w = PrivVmDriver::new(3, Some(SimTime::from_secs(5)));
        let mut rng = Pcg64::seed_from_u64(0);
        assert_eq!(w.next_op(SimTime::from_secs(4), &mut rng), GuestOp::Block);
        assert!(!w.creation_issued());
        assert_eq!(
            w.next_op(SimTime::from_secs(5), &mut rng),
            GuestOp::Hypercall(HcRequest::DomctlCreate)
        );
        assert!(w.creation_issued());
        assert_eq!(w.next_op(SimTime::from_secs(6), &mut rng), GuestOp::Block);
    }

    #[test]
    fn healthy_verdict_by_default() {
        let w = PrivVmDriver::new(4, None);
        assert!(w.verdict(SimTime::ZERO, SimTime::ZERO).is_ok());
    }
}
