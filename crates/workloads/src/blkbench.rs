//! BlkBench: the block-device stress workload.
//!
//! BlkBench "creates, copies, reads, writes and removes multiple 1 MB files
//! containing random content", with guest-side caching disabled so every
//! block actually reaches the device — i.e. travels the paravirtual path:
//! a grant + event-channel request to the PrivVM's driver domain, answered
//! by a completion event (Section VI-A). Each file is a sequence of block
//! I/O requests; the oracle checks that every file's content round-trips.

use std::collections::VecDeque;

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::{HcRequest, MulticallShape};
use nlh_hv::interrupts::GuestEventKind;
use nlh_sim::{Pcg64, SimDuration, SimTime};

use crate::WorkloadCore;

/// Phase of the current file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issue the syscall that creates/opens the file.
    Open,
    /// Issue the next block request.
    IssueBlock,
    /// Waiting for the completion of an outstanding block request.
    WaitBlock { req: u64 },
    /// Issue the syscall that removes the file.
    Remove,
}

/// The BlkBench-like workload.
#[derive(Debug, Clone)]
pub struct BlkBench {
    core: WorkloadCore,
    phase: Phase,
    /// Blocks remaining in the current file.
    blocks_left: usize,
    /// Blocks per file (a "1 MB file" worth of requests).
    blocks_per_file: usize,
    next_req: u64,
    block_prepared: bool,
    files_completed: u64,
    /// Completions that arrived (possibly while not yet waiting).
    completions: VecDeque<u64>,
}

impl BlkBench {
    /// Creates a BlkBench run of the given duration.
    pub fn new(seed: u64, duration: SimDuration, tls_sensitivity: f64) -> Self {
        BlkBench {
            core: WorkloadCore::new(seed, duration, tls_sensitivity),
            phase: Phase::Open,
            blocks_left: 0,
            blocks_per_file: 8,
            next_req: 1,
            block_prepared: false,
            files_completed: 0,
            completions: VecDeque::new(),
        }
    }

    /// Files fully written and verified so far.
    pub fn files_completed(&self) -> u64 {
        self.files_completed
    }
}

impl GuestProgram for BlkBench {
    fn name(&self) -> &str {
        "BlkBench"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if let Phase::WaitBlock { req } = self.phase {
            // Completion may have arrived while we were last running.
            if self.completions.iter().any(|r| *r == req) {
                self.completions.retain(|r| *r != req);
                self.blocks_left -= 1;
                self.phase = if self.blocks_left == 0 {
                    Phase::Remove
                } else {
                    Phase::IssueBlock
                };
            } else {
                return GuestOp::Block;
            }
        }

        // Only start new files inside the run window; outstanding work is
        // always drained first (above), so completion is clean.
        match self.phase {
            Phase::Open => {
                if self.core.past_end(now) {
                    self.core.finished = true;
                    return GuestOp::Done;
                }
                self.blocks_left = self.blocks_per_file;
                self.phase = Phase::IssueBlock;
                GuestOp::Syscall
            }
            Phase::IssueBlock => {
                if !self.block_prepared {
                    // Generate the block's random content (the files hold
                    // random data; caching is off, so every block is real
                    // work in the guest before it hits the device).
                    self.block_prepared = true;
                    let us = 200 + (self.next_req % 7) * 40;
                    return GuestOp::Compute(SimDuration::from_micros(us));
                }
                self.block_prepared = false;
                let req = self.next_req;
                self.next_req += 1;
                self.phase = Phase::WaitBlock { req };
                GuestOp::Hypercall(HcRequest::BlockIo { req })
            }
            Phase::Remove => {
                self.files_completed += 1;
                self.phase = Phase::Open;
                // Some files also pin/unpin page-table pages (mmap'd I/O).
                if self.core.rng.gen_bool(0.3) {
                    GuestOp::Hypercall(HcRequest::FixedMulticall(MulticallShape::PinUnpin))
                } else {
                    GuestOp::Syscall
                }
            }
            Phase::WaitBlock { .. } => unreachable!("handled above"),
        }
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        if self.core.common_notice(&notice) {
            return;
        }
        if let GuestNotice::Event(GuestEventKind::BlkComplete { req }) = notice {
            // Duplicates (from retried completions) are harmless: the queue
            // is consulted by request id.
            if !self.completions.contains(&req) {
                self.completions.push_back(req);
            }
        }
    }

    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        self.core.verdict(now, deadline)
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.core.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::FailReason;

    /// Drives the workload standalone, acking every BlockIo immediately.
    fn drive(w: &mut BlkBench, steps: usize) -> (u64, SimTime) {
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        let mut issued = 0;
        for _ in 0..steps {
            match w.next_op(now, &mut rng) {
                GuestOp::Hypercall(HcRequest::BlockIo { req }) => {
                    issued += 1;
                    w.notice(now, GuestNotice::Event(GuestEventKind::BlkComplete { req }));
                }
                GuestOp::Done => break,
                GuestOp::Block => panic!("should never block: completions are instant"),
                GuestOp::Compute(d) => now += d,
                _ => {}
            }
            now += SimDuration::from_micros(200);
        }
        (issued, now)
    }

    #[test]
    fn completes_files_and_finishes() {
        let mut w = BlkBench::new(1, SimDuration::from_millis(20), 0.5);
        let (issued, now) = drive(&mut w, 100_000);
        assert!(issued >= 8, "at least one file's worth of blocks");
        assert!(w.files_completed() >= 1);
        assert!(w.verdict(now, now + SimDuration::from_secs(1)).is_ok());
    }

    #[test]
    fn blocks_forever_without_completion() {
        let mut w = BlkBench::new(2, SimDuration::from_secs(10), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        // Open, prepare the block's content, then the block request.
        w.next_op(now, &mut rng);
        assert!(matches!(w.next_op(now, &mut rng), GuestOp::Compute(_)));
        match w.next_op(now, &mut rng) {
            GuestOp::Hypercall(HcRequest::BlockIo { .. }) => {}
            op => panic!("expected BlockIo, got {op:?}"),
        }
        // The completion never arrives: the guest blocks and the oracle
        // eventually reports Incomplete.
        for _ in 0..10 {
            now += SimDuration::from_secs(2);
            assert_eq!(w.next_op(now, &mut rng), GuestOp::Block);
        }
        assert_eq!(
            w.verdict(SimTime::from_secs(100), SimTime::from_secs(50)),
            WorkloadVerdict::Failed(FailReason::Incomplete)
        );
    }

    #[test]
    fn duplicate_completions_are_deduplicated() {
        let mut w = BlkBench::new(3, SimDuration::from_secs(10), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        w.next_op(SimTime::ZERO, &mut rng); // open
        w.next_op(SimTime::ZERO, &mut rng); // prepare content
        let req = match w.next_op(SimTime::ZERO, &mut rng) {
            GuestOp::Hypercall(HcRequest::BlockIo { req }) => req,
            op => panic!("expected BlockIo, got {op:?}"),
        };
        for _ in 0..3 {
            w.notice(
                SimTime::ZERO,
                GuestNotice::Event(GuestEventKind::BlkComplete { req }),
            );
        }
        assert_eq!(w.completions.len(), 1);
    }
}
