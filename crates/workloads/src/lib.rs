//! The paper's synthetic benchmarks (Section VI-A).
//!
//! Three benchmarks stress different parts of the virtualization platform:
//!
//! * [`BlkBench`] — the block-device interface: creates, writes, reads and
//!   removes files with guest caching disabled, so every block operation
//!   reaches the hypervisor (grant + event-channel traffic to the PrivVM's
//!   driver domain, served by [`PrivVmDriver`]).
//! * [`UnixBench`] — a mix of programs stressing hypercalls, especially
//!   virtual-memory management (page pinning/unpinning, memory
//!   reservations, batched multicalls) plus frequent syscalls (which trap
//!   through the hypervisor on x86-64).
//! * [`NetBench`] — a user-level UDP ping responder used both as a workload
//!   and as the paper's recovery-latency probe: an external sender emits
//!   one packet per millisecond and measures gaps in the reply stream.
//!
//! Two device-path variants exercise the virtio models instead of the
//! paravirtual path: [`VirtioBlkBench`] (block requests through a
//! virtio-blk descriptor ring) and [`VirtioNetBench`] (paced east-west
//! frames through the virtual switch).
//!
//! Each benchmark doubles as its own correctness oracle, mirroring the
//! paper's golden-copy comparison: a workload fails on corrupted data, lost
//! or failed syscalls, or failure to complete.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blkbench;
mod netbench;
mod privvm;
mod unixbench;
mod virtioblk;
mod virtionet;

pub use blkbench::BlkBench;
pub use netbench::NetBench;
pub use privvm::PrivVmDriver;
pub use unixbench::UnixBench;
pub use virtioblk::VirtioBlkBench;
pub use virtionet::VirtioNetBench;

use nlh_sim::SimTime;

/// Shared workload bookkeeping: run window, oracle flags, TLS sensitivity.
#[derive(Debug, Clone)]
pub(crate) struct WorkloadCore {
    pub rng: nlh_sim::Pcg64,
    /// End of the benchmark's run window (set on first scheduling).
    pub end: Option<SimTime>,
    pub duration: nlh_sim::SimDuration,
    pub finished: bool,
    /// Golden-copy oracle: data corrupted.
    pub corrupted: bool,
    /// A syscall failed or a TLS-dependent process crashed.
    pub syscall_failed: bool,
    /// Probability that a TLS clobber hits a process actively using TLS.
    pub tls_sensitivity: f64,
}

impl WorkloadCore {
    pub fn new(seed: u64, duration: nlh_sim::SimDuration, tls_sensitivity: f64) -> Self {
        WorkloadCore {
            rng: nlh_sim::Pcg64::seed_from_u64(seed),
            end: None,
            duration,
            finished: false,
            corrupted: false,
            syscall_failed: false,
            tls_sensitivity,
        }
    }

    /// Re-derives the RNG from `seed`, as if constructed with it. The seed
    /// feeds nothing but the RNG, so this makes a cloned pristine workload
    /// indistinguishable from a freshly constructed one.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = nlh_sim::Pcg64::seed_from_u64(seed);
    }

    /// Establishes the run window on first call; returns whether the window
    /// has elapsed.
    pub fn past_end(&mut self, now: SimTime) -> bool {
        let end = *self.end.get_or_insert(now + self.duration);
        now >= end
    }

    /// Handles the oracle-relevant notices common to all benchmarks.
    /// Returns `true` if the notice was consumed.
    pub fn common_notice(&mut self, notice: &nlh_hv::domain::GuestNotice) -> bool {
        use nlh_hv::domain::GuestNotice;
        match notice {
            GuestNotice::DataCorrupted => {
                self.corrupted = true;
                true
            }
            GuestNotice::TlsClobbered => {
                let p = self.tls_sensitivity;
                if self.rng.gen_bool(p) {
                    self.syscall_failed = true;
                }
                true
            }
            _ => false,
        }
    }

    /// The verdict shared by all benchmarks.
    pub fn verdict(&self, now: SimTime, deadline: SimTime) -> nlh_hv::domain::WorkloadVerdict {
        use nlh_hv::domain::{FailReason, WorkloadVerdict};
        if self.corrupted {
            return WorkloadVerdict::Failed(FailReason::OutputMismatch);
        }
        if self.syscall_failed {
            return WorkloadVerdict::Failed(FailReason::SyscallFailed);
        }
        if self.finished {
            return WorkloadVerdict::CompletedOk;
        }
        if now >= deadline {
            WorkloadVerdict::Failed(FailReason::Incomplete)
        } else {
            WorkloadVerdict::Running
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::{FailReason, GuestNotice, WorkloadVerdict};
    use nlh_sim::SimDuration;

    #[test]
    fn core_window_is_lazy() {
        let mut c = WorkloadCore::new(1, SimDuration::from_secs(10), 0.5);
        assert!(!c.past_end(SimTime::from_secs(5)));
        // Window starts at 5s, so 14s is inside, 15s is past.
        assert!(!c.past_end(SimTime::from_secs(14)));
        assert!(c.past_end(SimTime::from_secs(15)));
    }

    #[test]
    fn corruption_wins_over_completion() {
        let mut c = WorkloadCore::new(1, SimDuration::from_secs(1), 0.5);
        c.finished = true;
        c.common_notice(&GuestNotice::DataCorrupted);
        assert_eq!(
            c.verdict(SimTime::from_secs(2), SimTime::from_secs(3)),
            WorkloadVerdict::Failed(FailReason::OutputMismatch)
        );
    }

    #[test]
    fn incomplete_after_deadline() {
        let c = WorkloadCore::new(1, SimDuration::from_secs(1), 0.5);
        assert_eq!(
            c.verdict(SimTime::from_secs(1), SimTime::from_secs(2)),
            WorkloadVerdict::Running
        );
        assert_eq!(
            c.verdict(SimTime::from_secs(2), SimTime::from_secs(2)),
            WorkloadVerdict::Failed(FailReason::Incomplete)
        );
    }

    #[test]
    fn tls_sensitivity_extremes() {
        let mut never = WorkloadCore::new(1, SimDuration::from_secs(1), 0.0);
        never.common_notice(&GuestNotice::TlsClobbered);
        assert!(!never.syscall_failed);
        let mut always = WorkloadCore::new(1, SimDuration::from_secs(1), 1.0);
        always.common_notice(&GuestNotice::TlsClobbered);
        assert!(always.syscall_failed);
    }
}
