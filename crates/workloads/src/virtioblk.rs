//! VirtioBlkBench: BlkBench over the virtio-blk device model.
//!
//! Same file-oriented oracle as [`crate::BlkBench`], but every block
//! request travels the virtio path instead of the paravirtual grant +
//! event-channel path: the guest publishes a request descriptor and writes
//! the queue-notify MMIO register ([`GuestOp::VirtioKick`]); the device
//! model completes it through the used ring and a completion interrupt
//! delivers [`GuestEventKind::VirtioBlkDone`]. A fault abandoning the
//! notify handler mid-transaction strands the descriptor — exactly the
//! residue the virtqueue-consistency recovery rung repairs.

use std::collections::VecDeque;

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::{HcRequest, MulticallShape};
use nlh_hv::interrupts::GuestEventKind;
use nlh_sim::{Pcg64, SimDuration, SimTime};
use nlh_virtio::Q_RX;

use crate::WorkloadCore;

/// Phase of the current file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Issue the syscall that creates/opens the file.
    Open,
    /// Publish the next block request descriptor and kick.
    IssueBlock,
    /// Waiting for the used-ring completion of an outstanding request.
    WaitBlock {
        /// The request id in flight.
        req: u64,
    },
    /// Issue the syscall that removes the file.
    Remove,
}

/// The BlkBench workload on a virtio-blk device.
#[derive(Debug, Clone)]
pub struct VirtioBlkBench {
    core: WorkloadCore,
    phase: Phase,
    blocks_left: usize,
    blocks_per_file: usize,
    next_req: u64,
    block_prepared: bool,
    files_completed: u64,
    completions: VecDeque<u64>,
}

impl VirtioBlkBench {
    /// Creates a VirtioBlkBench run of the given duration.
    pub fn new(seed: u64, duration: SimDuration, tls_sensitivity: f64) -> Self {
        VirtioBlkBench {
            core: WorkloadCore::new(seed, duration, tls_sensitivity),
            phase: Phase::Open,
            blocks_left: 0,
            blocks_per_file: 8,
            next_req: 1,
            block_prepared: false,
            files_completed: 0,
            completions: VecDeque::new(),
        }
    }

    /// Files fully written and verified so far.
    pub fn files_completed(&self) -> u64 {
        self.files_completed
    }
}

impl GuestProgram for VirtioBlkBench {
    fn name(&self) -> &str {
        "VirtioBlkBench"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if let Phase::WaitBlock { req } = self.phase {
            if self.completions.iter().any(|r| *r == req) {
                self.completions.retain(|r| *r != req);
                self.blocks_left -= 1;
                self.phase = if self.blocks_left == 0 {
                    Phase::Remove
                } else {
                    Phase::IssueBlock
                };
            } else {
                return GuestOp::Block;
            }
        }

        match self.phase {
            Phase::Open => {
                if self.core.past_end(now) {
                    self.core.finished = true;
                    return GuestOp::Done;
                }
                self.blocks_left = self.blocks_per_file;
                self.phase = Phase::IssueBlock;
                GuestOp::Syscall
            }
            Phase::IssueBlock => {
                if !self.block_prepared {
                    self.block_prepared = true;
                    let us = 200 + (self.next_req % 7) * 40;
                    return GuestOp::Compute(SimDuration::from_micros(us));
                }
                self.block_prepared = false;
                let req = self.next_req;
                self.next_req += 1;
                self.phase = Phase::WaitBlock { req };
                GuestOp::VirtioKick {
                    queue: Q_RX as u8,
                    payload: req,
                }
            }
            Phase::Remove => {
                self.files_completed += 1;
                self.phase = Phase::Open;
                if self.core.rng.gen_bool(0.3) {
                    GuestOp::Hypercall(HcRequest::FixedMulticall(MulticallShape::PinUnpin))
                } else {
                    GuestOp::Syscall
                }
            }
            Phase::WaitBlock { .. } => unreachable!("handled above"),
        }
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        if self.core.common_notice(&notice) {
            return;
        }
        if let GuestNotice::Event(GuestEventKind::VirtioBlkDone { req }) = notice {
            // Repair re-publishes administratively; completions stay
            // exactly-once on the ring, but dedup defensively anyway.
            if !self.completions.contains(&req) {
                self.completions.push_back(req);
            }
        }
    }

    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        self.core.verdict(now, deadline)
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.core.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::FailReason;

    fn drive(w: &mut VirtioBlkBench, steps: usize) -> (u64, SimTime) {
        let mut rng = Pcg64::seed_from_u64(0);
        let mut now = SimTime::ZERO;
        let mut issued = 0;
        for _ in 0..steps {
            match w.next_op(now, &mut rng) {
                GuestOp::VirtioKick { payload, .. } => {
                    issued += 1;
                    w.notice(
                        now,
                        GuestNotice::Event(GuestEventKind::VirtioBlkDone { req: payload }),
                    );
                }
                GuestOp::Done => break,
                GuestOp::Block => panic!("should never block: completions are instant"),
                GuestOp::Compute(d) => now += d,
                _ => {}
            }
            now += SimDuration::from_micros(200);
        }
        (issued, now)
    }

    #[test]
    fn completes_files_over_the_virtio_path() {
        let mut w = VirtioBlkBench::new(1, SimDuration::from_millis(20), 0.5);
        let (issued, now) = drive(&mut w, 100_000);
        assert!(issued >= 8, "at least one file's worth of blocks");
        assert!(w.files_completed() >= 1);
        assert!(w.verdict(now, now + SimDuration::from_secs(1)).is_ok());
    }

    #[test]
    fn lost_completion_blocks_until_incomplete() {
        let mut w = VirtioBlkBench::new(2, SimDuration::from_secs(10), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        let now = SimTime::ZERO;
        w.next_op(now, &mut rng); // open
        assert!(matches!(w.next_op(now, &mut rng), GuestOp::Compute(_)));
        match w.next_op(now, &mut rng) {
            GuestOp::VirtioKick { queue, payload } => {
                assert_eq!(queue as usize, Q_RX);
                assert_eq!(payload, 1);
            }
            op => panic!("expected a kick, got {op:?}"),
        }
        assert_eq!(w.next_op(SimTime::from_secs(5), &mut rng), GuestOp::Block);
        assert_eq!(
            w.verdict(SimTime::from_secs(100), SimTime::from_secs(50)),
            WorkloadVerdict::Failed(FailReason::Incomplete)
        );
    }
}
