//! NetBench: the UDP ping responder and recovery-latency probe.
//!
//! An external sender (modelled by [`nlh_hv::Hypervisor::attach_net_traffic`])
//! emits one UDP packet per millisecond; the receiver inside the AppVM
//! replies to each. The sender-side reply log (`Hypervisor::net_replies`)
//! is the measurement surface: service interruption shows up as a gap in
//! reply times (Section VII-B), and packet loss beyond the ring capacity
//! shows up as missing sequence numbers (the 10%-per-second failure
//! criterion of Section VI-A is evaluated by the campaign's analyzer).

use std::collections::VecDeque;

use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::HcRequest;
use nlh_hv::interrupts::GuestEventKind;
use nlh_sim::{Pcg64, SimDuration, SimTime};

use crate::WorkloadCore;

/// The NetBench receiver.
#[derive(Debug, Clone)]
pub struct NetBench {
    core: WorkloadCore,
    backlog: VecDeque<u64>,
    /// A packet being processed (userspace work before the reply).
    processing: Option<u64>,
    replies_sent: u64,
}

impl NetBench {
    /// Creates a NetBench run of the given duration.
    pub fn new(seed: u64, duration: SimDuration, tls_sensitivity: f64) -> Self {
        NetBench {
            core: WorkloadCore::new(seed, duration, tls_sensitivity),
            backlog: VecDeque::new(),
            processing: None,
            replies_sent: 0,
        }
    }

    /// Replies transmitted so far.
    pub fn replies_sent(&self) -> u64 {
        self.replies_sent
    }
}

impl GuestProgram for NetBench {
    fn name(&self) -> &str {
        "NetBench"
    }

    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        // Always drain the backlog first — even past the end of the run
        // window, so queued packets are answered. Each packet costs a
        // little userspace processing before the reply goes out.
        if let Some(seq) = self.processing.take() {
            self.replies_sent += 1;
            return GuestOp::Hypercall(HcRequest::NetReply(seq));
        }
        if let Some(seq) = self.backlog.pop_front() {
            self.processing = Some(seq);
            return GuestOp::Compute(SimDuration::from_micros(60));
        }
        if self.core.past_end(now) {
            self.core.finished = true;
            return GuestOp::Done;
        }
        GuestOp::Block
    }

    fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
        if self.core.common_notice(&notice) {
            return;
        }
        if let GuestNotice::Event(GuestEventKind::NetRx { seq }) = notice {
            self.backlog.push_back(seq);
        }
    }

    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        self.core.verdict(now, deadline)
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }

    fn reseed(&mut self, seed: u64) {
        self.core.reseed(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_in_arrival_order() {
        let mut w = NetBench::new(1, SimDuration::from_secs(10), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        for seq in 1..=3 {
            w.notice(
                SimTime::ZERO,
                GuestNotice::Event(GuestEventKind::NetRx { seq }),
            );
        }
        for expect in 1..=3u64 {
            match w.next_op(SimTime::ZERO, &mut rng) {
                GuestOp::Compute(_) => {}
                op => panic!("expected processing compute, got {op:?}"),
            }
            match w.next_op(SimTime::ZERO, &mut rng) {
                GuestOp::Hypercall(HcRequest::NetReply(s)) => assert_eq!(s, expect),
                op => panic!("expected reply, got {op:?}"),
            }
        }
        assert_eq!(w.next_op(SimTime::ZERO, &mut rng), GuestOp::Block);
        assert_eq!(w.replies_sent(), 3);
    }

    #[test]
    fn drains_backlog_past_end_before_done() {
        let mut w = NetBench::new(2, SimDuration::from_millis(1), 0.5);
        let mut rng = Pcg64::seed_from_u64(0);
        // Establish the window.
        assert_eq!(w.next_op(SimTime::ZERO, &mut rng), GuestOp::Block);
        let late = SimTime::from_secs(1);
        w.notice(late, GuestNotice::Event(GuestEventKind::NetRx { seq: 9 }));
        assert!(matches!(w.next_op(late, &mut rng), GuestOp::Compute(_)));
        match w.next_op(late, &mut rng) {
            GuestOp::Hypercall(HcRequest::NetReply(9)) => {}
            op => panic!("expected late reply, got {op:?}"),
        }
        assert_eq!(w.next_op(late, &mut rng), GuestOp::Done);
        assert!(w.verdict(late, late + SimDuration::from_secs(1)).is_ok());
    }
}
