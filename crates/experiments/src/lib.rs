//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `EXPERIMENTS.md` at the workspace root for the
//! index and for paper-vs-measured comparisons.
//!
//! All binaries accept:
//!
//! * `--trials N` — trials per campaign (defaults are sized to finish in a
//!   couple of minutes; the paper-scale counts are documented per binary).
//! * `--full` — use the paper's campaign sizes (1000 Failstop / 5000
//!   Register / 2000 Code, 1000 per ladder rung).
//! * `--seed S` — base seed (default 2018, the year of the paper).
//! * `--cold-boot` — boot every trial from scratch instead of warm-starting
//!   from the campaign's boot cache (results are identical; this is the
//!   escape hatch for validating the warm path, and for measuring what it
//!   saves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nlh_campaign::{BootMode, CampaignTelemetry};

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Trials per campaign, if explicitly set.
    pub trials: Option<u64>,
    /// Use the paper's campaign sizes.
    pub full: bool,
    /// Base seed.
    pub seed: u64,
    /// Cold-boot every trial instead of warm-starting from the boot cache.
    pub cold_boot: bool,
}

impl ExpOptions {
    /// Parses options from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = ExpOptions {
            trials: None,
            full: false,
            seed: 2018,
            cold_boot: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials needs a value");
                    opts.trials = Some(v.parse().expect("--trials needs an integer"));
                }
                "--full" => opts.full = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--cold-boot" => opts.cold_boot = true,
                "--help" | "-h" => {
                    eprintln!("options: [--trials N] [--full] [--seed S] [--cold-boot]");
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}; try --help"),
            }
        }
        opts
    }

    /// The trial count to use, given a quick default and the paper's count.
    pub fn count(&self, quick: u64, paper: u64) -> u64 {
        self.trials.unwrap_or(if self.full { paper } else { quick })
    }

    /// The boot mode selected on the command line.
    pub fn boot_mode(&self) -> BootMode {
        if self.cold_boot {
            BootMode::Cold
        } else {
            BootMode::Warm
        }
    }
}

/// Prints a one-line summary of a campaign's performance counters:
/// throughput, boot mode, and the wall-clock setup-vs-run split.
pub fn print_throughput(label: &str, t: &CampaignTelemetry) {
    println!(
        "[{label}] {:.0} trials/s on {} workers ({:?} boot, {:.1}% of worker time in setup)",
        t.trials_per_sec,
        t.workers,
        t.boot_mode,
        t.setup_fraction() * 100.0,
    );
}

/// Prints the simulated recovery-latency distribution of a campaign:
/// total latency quantiles plus the per-phase breakdown (Tables II/III).
pub fn print_latency(label: &str, t: &CampaignTelemetry) {
    let h = &t.recovery_latency_us;
    if h.count() == 0 {
        println!("[{label}] no recoveries, no latency distribution");
        return;
    }
    println!(
        "[{label}] recovery latency over {} recoveries: mean {:.0} us, p50 ~{:.0} us, p99 ~{:.0} us",
        h.count(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
    );
    for (phase, ph) in &t.phase_latency_us {
        println!(
            "    {:30} mean {:>8.1} us  (n={})",
            phase,
            ph.mean(),
            ph.count()
        );
    }
}

/// Prints a horizontal rule sized for the standard table width.
pub fn hr() {
    println!("{}", "-".repeat(78));
}

/// Formats a proportion as the paper does.
pub fn pct(p: nlh_sim::stats::Proportion) -> String {
    format!("{p}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(trials: Option<u64>, full: bool) -> ExpOptions {
        ExpOptions {
            trials,
            full,
            seed: 1,
            cold_boot: false,
        }
    }

    #[test]
    fn count_prefers_explicit_trials() {
        assert_eq!(opts(Some(7), true).count(10, 1000), 7);
    }

    #[test]
    fn count_uses_paper_size_with_full() {
        assert_eq!(opts(None, true).count(10, 1000), 1000);
        assert_eq!(opts(None, false).count(10, 1000), 10);
    }

    #[test]
    fn cold_boot_flag_selects_boot_mode() {
        let mut o = opts(None, false);
        assert_eq!(o.boot_mode(), BootMode::Warm);
        o.cold_boot = true;
        assert_eq!(o.boot_mode(), BootMode::Cold);
    }
}
