//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; see `EXPERIMENTS.md` at the workspace root for the
//! index and for paper-vs-measured comparisons.
//!
//! All binaries accept:
//!
//! * `--trials N` — trials per campaign (defaults are sized to finish in a
//!   couple of minutes; the paper-scale counts are documented per binary).
//! * `--full` — use the paper's campaign sizes (1000 Failstop / 5000
//!   Register / 2000 Code, 1000 per ladder rung).
//! * `--seed S` — base seed (default 2018, the year of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Trials per campaign, if explicitly set.
    pub trials: Option<u64>,
    /// Use the paper's campaign sizes.
    pub full: bool,
    /// Base seed.
    pub seed: u64,
}

impl ExpOptions {
    /// Parses options from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = ExpOptions {
            trials: None,
            full: false,
            seed: 2018,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials needs a value");
                    opts.trials = Some(v.parse().expect("--trials needs an integer"));
                }
                "--full" => opts.full = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--help" | "-h" => {
                    eprintln!("options: [--trials N] [--full] [--seed S]");
                    std::process::exit(0);
                }
                other => panic!("unknown option {other}; try --help"),
            }
        }
        opts
    }

    /// The trial count to use, given a quick default and the paper's count.
    pub fn count(&self, quick: u64, paper: u64) -> u64 {
        self.trials.unwrap_or(if self.full { paper } else { quick })
    }
}

/// Prints a horizontal rule sized for the standard table width.
pub fn hr() {
    println!("{}", "-".repeat(78));
}

/// Formats a proportion as the paper does.
pub fn pct(p: nlh_sim::stats::Proportion) -> String {
    format!("{p}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_prefers_explicit_trials() {
        let o = ExpOptions {
            trials: Some(7),
            full: true,
            seed: 1,
        };
        assert_eq!(o.count(10, 1000), 7);
    }

    #[test]
    fn count_uses_paper_size_with_full() {
        let o = ExpOptions {
            trials: None,
            full: true,
            seed: 1,
        };
        assert_eq!(o.count(10, 1000), 1000);
        let o = ExpOptions {
            trials: None,
            full: false,
            seed: 1,
        };
        assert_eq!(o.count(10, 1000), 10);
    }
}
