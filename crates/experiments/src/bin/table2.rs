//! **Table II** — ReHype's recovery-latency breakdown (Section VII-B).
//!
//! Performs a ReHype recovery on the paper's machine configuration (8 CPUs,
//! 8 GB) and prints every step that takes at least 1 ms, exactly as the
//! paper's table does (total: 713 ms).

use nlh_core::{Microreboot, RecoveryMechanism};
use nlh_experiments::hr;
use nlh_hv::{Hypervisor, MachineConfig};
use nlh_sim::SimDuration;

fn main() {
    let _ = nlh_experiments::ExpOptions::from_args();
    let mut hv = Hypervisor::new(MachineConfig::paper(), 2018);
    hv.raise_panic(nlh_sim::CpuId(0), "injected fault for latency measurement");
    let report = Microreboot::rehype()
        .recover(&mut hv)
        .expect("recovery runs");

    println!("Table II: recovery latency breakdown of ReHype (8 CPUs, 8 GiB)");
    hr();
    println!("{:62} {:>10}", "Operation", "Time");
    hr();
    for step in report.steps_at_least(SimDuration::from_millis(1)) {
        println!("{:62} {:>7}ms", step.name, step.duration.as_millis());
    }
    let small: SimDuration = report
        .steps
        .iter()
        .filter(|s| s.duration < SimDuration::from_millis(1))
        .fold(SimDuration::ZERO, |a, s| a + s.duration);
    println!(
        "{:62} {:>8.2}ms",
        "(steps under 1 ms)",
        small.as_millis_f64()
    );
    hr();
    println!("{:62} {:>7}ms", "Total", report.total.as_millis());
    println!();
    println!("Paper: hardware init 412 ms + memory init 266 ms + misc 35 ms = 713 ms.");
}
