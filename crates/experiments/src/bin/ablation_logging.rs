//! **Ablation (Section IV / VII-C)** — non-idempotent-hypercall logging.
//!
//! The undo logging (plus code reordering) lifted the recovery rate from
//! 84% to 96% in the paper's 1AppVM fail-stop campaigns, and is also the
//! dominant source of normal-operation overhead (Figure 3's NiLiHype\*).
//! This binary measures the recovery-rate side of turning it off.

use nlh_campaign::{run_campaign, BenchKind, SetupKind};
use nlh_core::{Enhancements, Microreset};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_inject::FaultType;

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(400, 2000);
    let mut no_log = Enhancements::full();
    no_log.nonidem_mitigation = false;

    println!("Ablation: non-idempotent hypercall mitigation");
    println!("(1AppVM, UnixBench, fail-stop, {trials} trials)");
    hr();
    println!("{:44} {:>16}", "Configuration", "Recovery rate");
    hr();
    for (label, e) in [
        ("Undo logging + reordering (NiLiHype)", Enhancements::full()),
        ("Without the mitigation (NiLiHype*)", no_log),
    ] {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            trials,
            opts.seed,
            move || Microreset::with_enhancements(e),
        );
        println!("{:44} {:>16}", label, pct(r.success_rate()));
    }
    hr();
    println!("Paper: turning the logging off reduces the recovery rate by ~12%");
    println!("(96% -> 84%) while removing most of the normal-operation overhead.");
}
