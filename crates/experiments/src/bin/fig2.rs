//! **Figure 2** — successful recovery rate of NiLiHype vs ReHype with the
//! 3AppVM setup (Section VII-A), plus the per-fault-type manifestation
//! breakdown reported in the same section.
//!
//! Paper campaign sizes: 1000 Failstop, 5000 Register, 2000 Code faults
//! (chosen so the 95% confidence interval is within ±2%).
//!
//! All six campaigns (two mechanisms × three fault types) run on one
//! resident [`CampaignEngine`], sharing a single 3AppVM boot template
//! instead of building one per campaign; results are bit-identical to the
//! legacy per-campaign path.

use nlh_campaign::{
    CampaignEngine, CampaignResult, CampaignSpec, MechanismSpec, NullSink, SetupKind,
};
use nlh_experiments::{hr, pct, print_latency, print_throughput, ExpOptions};
use nlh_inject::FaultType;

fn run_cell(
    engine: &CampaignEngine,
    opts: &ExpOptions,
    fault: FaultType,
    trials: u64,
    mechanism: MechanismSpec,
) -> CampaignResult {
    let mut spec = CampaignSpec::new(
        format!("fig2-{}-{fault}", mechanism.manifest_name()),
        SetupKind::ThreeAppVm,
        fault,
        trials,
    );
    spec.seed = opts.seed;
    spec.mechanism = mechanism;
    spec.boot = opts.boot_mode();
    engine
        .run_spec(&spec, &mut NullSink)
        .sharded()
        .expect("sharded cell")
        .clone()
}

fn main() {
    let opts = ExpOptions::from_args();
    let engine = CampaignEngine::new();
    println!("Figure 2: successful recovery rate, 3AppVM setup");
    println!("(UnixBench + NetBench; BlkBench VM created after recovery)");
    hr();
    println!(
        "{:10} {:>18} {:>18} {:>18} {:>18}",
        "Fault", "NiLiHype Success", "NiLiHype noVMF", "ReHype Success", "ReHype noVMF"
    );
    hr();
    let mut breakdowns = Vec::new();
    for fault in FaultType::ALL {
        let trials = match fault {
            FaultType::Failstop => opts.count(200, 1000),
            FaultType::Register => opts.count(500, 5000),
            FaultType::Code => opts.count(300, 2000),
        };
        let ni = run_cell(&engine, &opts, fault, trials, MechanismSpec::Nilihype);
        let re = run_cell(&engine, &opts, fault, trials, MechanismSpec::Rehype);
        println!(
            "{:10} {:>18} {:>18} {:>18} {:>18}",
            fault.to_string(),
            pct(ni.success_rate()),
            pct(ni.no_vmf_rate()),
            pct(re.success_rate()),
            pct(re.no_vmf_rate()),
        );
        breakdowns.push((
            fault,
            ni.manifestation_breakdown(),
            trials,
            ni.telemetry.clone(),
        ));
    }
    hr();
    println!("Paper: Failstop essentially identical (~96%); Register ~88.9% vs ~90.6%;");
    println!("Code lowest (~84% vs ~86%); noVMF above 83% overall.");
    println!();
    println!("Injection-outcome breakdown (Section VII-A):");
    hr();
    println!(
        "{:10} {:>16} {:>10} {:>10} {:>8}",
        "Fault", "Non-manifested", "SDC", "Detected", "Trials"
    );
    hr();
    for (fault, (nm, sdc, det), trials, _) in &breakdowns {
        println!(
            "{:10} {:>15.1}% {:>9.1}% {:>9.1}% {:>8}",
            fault.to_string(),
            nm * 100.0,
            sdc * 100.0,
            det * 100.0,
            trials
        );
    }
    hr();
    println!("Paper: Register 74.8 / 5.6 / 19.6; Code 35.0 / 12.1 / 52.9; Failstop all detected.");
    println!();
    println!("Campaign engine telemetry (NiLiHype campaigns):");
    for (fault, _, _, telemetry) in &breakdowns {
        print_throughput(&fault.to_string(), telemetry);
    }
    if let Some((fault, _, _, telemetry)) = breakdowns.first() {
        print_latency(&fault.to_string(), telemetry);
    }
}
