//! **Overcommit fault campaign** — recovery rate vs overcommit ratio, and
//! the scheduler-consistency rung's before/after table (EXPERIMENTS.md).
//!
//! Sweeps the credit scheduler's N:M ratio (1:1, 2:1, 4:1, 8:1 — `2*ratio`
//! vCPUs over two CPUs) along two axes per ratio:
//!
//! 1. **Unsteered, full NiLiHype**: the headline recovery-rate-vs-ratio
//!    curve. The paper's future-work experiment measured ~2.5 points lost
//!    going from pinned 1:1 to two vCPUs sharing a CPU; the 2:1 row
//!    reproduces that degradation through the credit machinery.
//! 2. **Steered mid-switch/mid-migration**: every trial's injector is held
//!    until the struck CPU executes inside a `Scheduler` handler program
//!    (context switch or migration), so each fault lands in torn scheduler
//!    metadata. The same fixed-seed corpus runs with the full ladder minus
//!    `+ Ensure consistency within scheduling metadata` and with the full
//!    ladder, isolating exactly that rung's contribution.
//!
//! Each cell aggregates all three fault types. `--json FILE` writes the
//! last steered full-ladder run's coverage map (the CI artifact).
//!
//! Defaults: 20 trials per fault per cell, 8 windows, seed 2018.

use nlh_campaign::{
    CampaignEngine, CampaignSpec, CellOutput, ExecMode, MechanismSpec, NullSink, SampledCampaign,
    SamplingMode, SetupKind, DEFAULT_OPS_WINDOWS,
};
use nlh_experiments::hr;
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;

/// The swept overcommit ratios (vCPUs per physical CPU).
const RATIOS: [u8; 4] = [1, 2, 4, 8];

/// Steered trials cycle the in-handler injection depth 0..16 so faults land
/// across the whole Scheduler program, not just at its first micro-op (the
/// longest program, a credit context switch, is ~18 ops; mutating ops start
/// around index 4, so most depths in the cycle strike torn state).
const STEER_DEPTH_CYCLE: u64 = 16;

struct Args {
    trials: u64,
    seed: u64,
    windows: usize,
    json: Option<String>,
    skip_unsteered: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        trials: 20,
        seed: 2018,
        windows: DEFAULT_OPS_WINDOWS,
        json: None,
        skip_unsteered: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--trials" => out.trials = val("--trials").parse().expect("--trials needs an integer"),
            "--seed" => out.seed = val("--seed").parse().expect("--seed needs an integer"),
            "--windows" => {
                out.windows = val("--windows")
                    .parse()
                    .expect("--windows needs an integer")
            }
            "--json" => out.json = Some(val("--json")),
            "--steered-only" => out.skip_unsteered = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: [--trials N] [--seed S] [--windows W] [--json FILE] [--steered-only]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown option {other}; try --help"),
        }
    }
    out
}

/// Sums one campaign per fault type into a single aggregate cell.
fn sum_cells(mut run: impl FnMut(FaultType) -> SampledCampaign) -> (u64, u64, SampledCampaign) {
    let mut successes = 0;
    let mut failures = 0;
    let mut last = None;
    for fault in FaultType::ALL {
        let c = run(fault);
        successes += c.successes;
        failures += c.failures;
        last = Some(c);
    }
    (successes, failures, last.expect("at least one fault type"))
}

fn fmt_cell(successes: u64, failures: u64) -> String {
    let detected = successes + failures;
    if detected == 0 {
        return "-".into();
    }
    format!(
        "{successes}/{detected} ({:.1}%)",
        100.0 * successes as f64 / detected as f64
    )
}

/// Runs one sampled cell on the resident engine (so every cell of a ratio
/// shares that ratio's boot template).
fn run_cell(
    engine: &CampaignEngine,
    args: &Args,
    setup: SetupKind,
    fault: FaultType,
    mechanism: MechanismSpec,
    steer: Option<HandlerKind>,
    depth_cycle: u64,
) -> SampledCampaign {
    let mut spec = CampaignSpec::new(
        format!("overcommit-{setup:?}-{}-{fault}", mechanism.manifest_name()),
        setup,
        fault,
        args.trials,
    );
    spec.seed = args.seed;
    spec.mechanism = mechanism;
    spec.mode = ExecMode::Sampled {
        windows: args.windows,
        sampling: SamplingMode::CoverageGuided,
        steer_handler: steer,
        depth_cycle,
    };
    match engine.run_spec(&spec, &mut NullSink).output {
        CellOutput::Sampled(s) => s,
        CellOutput::Sharded(_) => unreachable!("sampled cell"),
    }
}

fn main() {
    let args = parse_args();
    // One resident engine: the nine cells of each ratio (three axes, three
    // fault types) share a single boot template build.
    let engine = CampaignEngine::new();

    println!("Overcommit campaign: recovery rate vs vCPU:pCPU ratio");
    println!(
        "(2*ratio vCPUs over 2 CPUs; steered cells land in Scheduler programs; \
         {} trials/fault/cell over {} fault types, seed {})",
        args.trials,
        FaultType::ALL.len(),
        args.seed
    );
    hr();
    println!(
        "{:<6} {:>18} {:>18} {:>18} {:>7}",
        "ratio", "unsteered full", "steer no-schedfix", "steer schedfix", "delta"
    );

    let mut last_on: Option<SampledCampaign> = None;
    for ratio in RATIOS {
        let setup = SetupKind::Overcommit(ratio);
        let unsteered = if args.skip_unsteered {
            "-".into()
        } else {
            let (s, f, _) = sum_cells(|fault| {
                run_cell(
                    &engine,
                    &args,
                    setup,
                    fault,
                    MechanismSpec::Nilihype,
                    None,
                    1,
                )
            });
            fmt_cell(s, f)
        };
        let (off_s, off_f, _) = sum_cells(|fault| {
            run_cell(
                &engine,
                &args,
                setup,
                fault,
                MechanismSpec::NilihypeNoSchedFix,
                Some(HandlerKind::Scheduler),
                STEER_DEPTH_CYCLE,
            )
        });
        let (on_s, on_f, on_last) = sum_cells(|fault| {
            run_cell(
                &engine,
                &args,
                setup,
                fault,
                MechanismSpec::Nilihype,
                Some(HandlerKind::Scheduler),
                STEER_DEPTH_CYCLE,
            )
        });
        println!(
            "{:<6} {:>18} {:>18} {:>18} {:>7}",
            format!("{ratio}:1"),
            unsteered,
            fmt_cell(off_s, off_f),
            fmt_cell(on_s, on_f),
            format!("+{}", on_s.saturating_sub(off_s)),
        );
        last_on = Some(on_last);
    }
    hr();
    println!("successes/detected per cell; same seed corpus in every cell.");

    if let Some(on) = &last_on {
        println!();
        println!("coverage map of the last steered full-ladder run:");
        print!("{}", on.coverage);
        if let Some(path) = &args.json {
            std::fs::write(path, on.coverage.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("coverage map written to {path}");
        }
    }
}
