//! **Device-heavy fault campaign** — the virtqueue-consistency rung's
//! before/after table (EXPERIMENTS.md).
//!
//! Runs steered fault campaigns on the `TwoAppVmVswitch` setup (two
//! AppVMs exchanging east-west frames through virtio-net ports and the
//! virtual switch): every trial's injector is held until the struck CPU
//! executes inside the `VirtioMmio` queue-notify handler, so each fault
//! lands mid-virtqueue-transaction. The same fixed-seed corpus runs twice
//! per fault type — once with the recovery ladder topped at `+ Reactivate
//! recurring timer events` (no ring repair) and once with the full set
//! including `+ Virtqueue ring consistency` — to show the rung's effect on
//! the recovery rate. `--json FILE` writes the full-mechanism guided run's
//! coverage map (the CI artifact).
//!
//! Defaults: 40 trials per cell, 8 windows, seed 2018.

use nlh_campaign::{
    CampaignEngine, CampaignSpec, CellOutput, ExecMode, MechanismSpec, NullSink, SampledCampaign,
    SamplingMode, SetupKind, DEFAULT_OPS_WINDOWS,
};
use nlh_core::LadderRung;
use nlh_experiments::hr;
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;

struct Args {
    trials: u64,
    seed: u64,
    windows: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        trials: 40,
        seed: 2018,
        windows: DEFAULT_OPS_WINDOWS,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--trials" => out.trials = val("--trials").parse().expect("--trials needs an integer"),
            "--seed" => out.seed = val("--seed").parse().expect("--seed needs an integer"),
            "--windows" => {
                out.windows = val("--windows")
                    .parse()
                    .expect("--windows needs an integer")
            }
            "--json" => out.json = Some(val("--json")),
            "--help" | "-h" => {
                eprintln!("options: [--trials N] [--seed S] [--windows W] [--json FILE]");
                std::process::exit(0);
            }
            other => panic!("unknown option {other}; try --help"),
        }
    }
    out
}

fn run_cell(
    engine: &CampaignEngine,
    fault: FaultType,
    rung: LadderRung,
    args: &Args,
) -> SampledCampaign {
    let mut spec = CampaignSpec::new(
        format!("device-{}-{fault}", rung.name()),
        SetupKind::TwoAppVmVswitch,
        fault,
        args.trials,
    );
    spec.seed = args.seed;
    spec.mechanism = MechanismSpec::Rung(rung);
    spec.mode = ExecMode::Sampled {
        windows: args.windows,
        sampling: SamplingMode::CoverageGuided,
        steer_handler: Some(HandlerKind::VirtioMmio),
        depth_cycle: 1,
    };
    match engine.run_spec(&spec, &mut NullSink).output {
        CellOutput::Sampled(s) => s,
        CellOutput::Sharded(_) => unreachable!("sampled cell"),
    }
}

fn main() {
    let args = parse_args();
    // One resident engine: all six cells share the 2AppVM-vswitch boot
    // template (one build instead of six).
    let engine = CampaignEngine::new();
    println!("Device-heavy steered campaign: virtqueue-consistency rung on/off");
    println!(
        "(2AppVM vswitch, faults steered into VirtioMmio, {} trials/cell, seed {})",
        args.trials, args.seed
    );
    hr();
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "fault", "no ring repair", "ring repair", "delta"
    );

    let mut last_on: Option<SampledCampaign> = None;
    for fault in FaultType::ALL {
        let off = run_cell(&engine, fault, LadderRung::ReactivateTimerEvents, &args);
        let on = run_cell(&engine, fault, LadderRung::VirtqueueConsistency, &args);
        println!(
            "{:<10} {:>14} {:>14} {:>8}",
            fault.to_string(),
            format!("{}/{}", off.successes, off.successes + off.failures),
            format!("{}/{}", on.successes, on.successes + on.failures),
            format!("+{}", on.successes.saturating_sub(off.successes)),
        );
        last_on = Some(on);
    }
    hr();
    println!("successes/detected per cell; same seed corpus on both sides.");

    if let Some(on) = &last_on {
        println!();
        println!("coverage map of the last ring-repair run (injections/failures per cell):");
        print!("{}", on.coverage);
        if let Some(path) = &args.json {
            std::fs::write(path, on.coverage.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("coverage map written to {path}");
        }
    }
}
