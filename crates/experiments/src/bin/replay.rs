//! **Trial record / replay / bisect driver** — one-command debugging of
//! any recorded trial.
//!
//! Three modes:
//!
//! * `replay --seed S [--setup X] [--fault F] [--mech M] [--ops-lo A
//!   --ops-hi B]` — run the trial, print its event record, then re-run it
//!   from the boot cache and assert the replay reproduces the original
//!   `TrialResult` bit-identically (including the step count).
//! * `replay --log FILE` — load a record written by `--out` (or checked
//!   in under `tests/data/`), replay it, and assert the outcome class,
//!   injection point and step count all match the file.
//! * `... --bisect` — additionally bisect the trial against its
//!   fault-free reference execution and report the first divergent step.
//!
//! `--out FILE` writes the record's text form (how golden logs are made).

use nlh_campaign::{
    bisect_trials, mechanism_for_name, run_trial_with, BenchKind, BootCache, SetupKind,
    TrialConfig, TrialRecord, TrialRunOptions,
};
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;

struct Args {
    seed: u64,
    setup: SetupKind,
    fault: FaultType,
    mech: String,
    ops: Option<(u64, u64)>,
    steer: Option<HandlerKind>,
    steer_depth: u64,
    log: Option<String>,
    out: Option<String>,
    bisect: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 2018,
        setup: SetupKind::OneAppVm(BenchKind::UnixBench),
        fault: FaultType::Failstop,
        mech: "NiLiHype".to_string(),
        ops: None,
        steer: None,
        steer_depth: 0,
        log: None,
        out: None,
        bisect: false,
    };
    let mut ops_lo = None;
    let mut ops_hi = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--seed" => args.seed = val("--seed").parse().expect("--seed needs an integer"),
            "--setup" => {
                args.setup = match val("--setup").as_str() {
                    "blk" => SetupKind::OneAppVm(BenchKind::BlkBench),
                    "unix" => SetupKind::OneAppVm(BenchKind::UnixBench),
                    "net" => SetupKind::OneAppVm(BenchKind::NetBench),
                    "3appvm" => SetupKind::ThreeAppVm,
                    "shared" => SetupKind::TwoAppVmSharedCpu,
                    "vblk" => SetupKind::OneAppVm(BenchKind::VirtioBlkBench),
                    "vnet" => SetupKind::OneAppVm(BenchKind::VirtioNetBench),
                    "vswitch" => SetupKind::TwoAppVmVswitch,
                    "oc1" => SetupKind::Overcommit(1),
                    "oc2" => SetupKind::Overcommit(2),
                    "oc4" => SetupKind::Overcommit(4),
                    "oc8" => SetupKind::Overcommit(8),
                    other => {
                        panic!(
                            "unknown setup {other} \
                             (blk|unix|net|3appvm|shared|vblk|vnet|vswitch|oc1|oc2|oc4|oc8)"
                        )
                    }
                }
            }
            "--fault" => {
                let v = val("--fault");
                args.fault = FaultType::from_name(&v)
                    .unwrap_or_else(|| panic!("unknown fault {v} (Failstop|Register|Code)"));
            }
            "--mech" => args.mech = val("--mech"),
            "--ops-lo" => ops_lo = Some(val("--ops-lo").parse::<u64>().expect("integer")),
            "--ops-hi" => ops_hi = Some(val("--ops-hi").parse::<u64>().expect("integer")),
            "--steer" => {
                let v = val("--steer");
                args.steer = Some(
                    HandlerKind::from_name(&v)
                        .unwrap_or_else(|| panic!("unknown handler {v} (e.g. VirtioMmio)")),
                );
            }
            "--steer-depth" => {
                args.steer_depth = val("--steer-depth")
                    .parse()
                    .expect("--steer-depth needs an integer")
            }
            "--log" => args.log = Some(val("--log")),
            "--out" => args.out = Some(val("--out")),
            "--bisect" => args.bisect = true,
            other => panic!("unknown argument {other}"),
        }
    }
    if let (Some(lo), Some(hi)) = (ops_lo, ops_hi) {
        args.ops = Some((lo, hi));
    }
    args
}

fn main() {
    let args = parse_args();
    let cache = BootCache::new();

    // Obtain the record: from a log file, or by running the trial fresh.
    let record = match &args.log {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            TrialRecord::from_text(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
        None => {
            let config = TrialConfig::new(args.setup, args.fault, args.seed);
            let mech = mechanism_for_name(&args.mech)
                .unwrap_or_else(|| panic!("unknown mechanism {} (NiLiHype|ReHype)", args.mech));
            let (hv, layout) = cache.checkout(&config.machine, config.setup, config.seed);
            let opts = TrialRunOptions {
                trigger_ops: args.ops,
                steer_handler: args.steer,
                steer_depth: args.steer_depth,
                ..TrialRunOptions::default()
            };
            let (_, record, _) = run_trial_with(hv, &layout, &config, mech.as_ref(), opts);
            record
        }
    };

    println!("{}", record.to_text());

    if let Some(path) = &args.out {
        std::fs::write(path, record.to_text()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("record written to {path}");
    }

    // Replay from the boot cache and hold the record to its own claims.
    let mech = mechanism_for_name(&record.mechanism)
        .unwrap_or_else(|| panic!("record names unknown mechanism {}", record.mechanism));
    let result = record
        .replay(mech.as_ref(), &cache)
        .unwrap_or_else(|e| panic!("REPLAY DIVERGED: {e}"));
    println!(
        "replay OK: {:?} in {} steps (bit-identical to the record)",
        result.class, result.steps
    );

    if args.bisect {
        let reference = TrialRunOptions {
            inject: false,
            ..TrialRunOptions::default()
        };
        let steered = TrialRunOptions {
            trigger_ops: Some(record.trigger_ops),
            steer_handler: record.steer_handler,
            steer_depth: record.steer_depth,
            ..TrialRunOptions::default()
        };
        println!("\nbisecting against the fault-free reference execution...");
        match bisect_trials(
            (&record.config, &steered),
            (&record.config, &reference),
            mech.as_ref(),
            &cache,
        ) {
            None => println!(
                "no divergence: the injected fault never altered machine state \
                 (non-manifested injection)"
            ),
            Some(report) => {
                println!(
                    "first divergent step: {} (of {} / {} total steps; {} probes)",
                    report.divergent_step, report.a.steps, report.b.steps, report.probes
                );
                if let Some(p) = &record.injection {
                    println!(
                        "recorded injection point: cpu{} {} op {}/{} at {:?} (budget {} of {}..{})",
                        p.cpu.index(),
                        p.handler,
                        p.op_index,
                        p.program_len,
                        p.at,
                        p.ops_budget,
                        record.trigger_ops.0,
                        record.trigger_ops.1,
                    );
                }
            }
        }
    }
}
