//! **Table III** — NiLiHype's recovery-latency breakdown (Section VII-B).
//!
//! Performs a NiLiHype (microreset) recovery on the paper's machine
//! configuration and prints the breakdown (paper: page-frame consistency
//! 21 ms + 1 ms others = 22 ms — over 30× faster than ReHype).

use nlh_core::{Microreboot, Microreset, RecoveryMechanism};
use nlh_experiments::hr;
use nlh_hv::{Hypervisor, MachineConfig};
use nlh_sim::SimDuration;

fn main() {
    let _ = nlh_experiments::ExpOptions::from_args();
    let mut hv = Hypervisor::new(MachineConfig::paper(), 2018);
    hv.raise_panic(nlh_sim::CpuId(0), "injected fault for latency measurement");
    let report = Microreset::nilihype()
        .recover(&mut hv)
        .expect("recovery runs");

    println!("Table III: recovery latency breakdown of NiLiHype (8 CPUs, 8 GiB)");
    hr();
    println!("{:62} {:>10}", "Operation", "Time");
    hr();
    for step in report.steps_at_least(SimDuration::from_millis(1)) {
        println!("{:62} {:>7}ms", step.name, step.duration.as_millis());
    }
    let small: SimDuration = report
        .steps
        .iter()
        .filter(|s| s.duration < SimDuration::from_millis(1))
        .fold(SimDuration::ZERO, |a, s| a + s.duration);
    println!("{:62} {:>8.2}ms", "Others", small.as_millis_f64());
    hr();
    println!("{:62} {:>7}ms", "Total", report.total.as_millis());

    // The headline ratio.
    let mut hv2 = Hypervisor::new(MachineConfig::paper(), 2018);
    hv2.raise_panic(nlh_sim::CpuId(0), "fault");
    let re = Microreboot::rehype().recover(&mut hv2).expect("recovery");
    println!();
    println!(
        "NiLiHype {} vs ReHype {} -> {:.1}x faster (paper: 22 ms vs 713 ms, >30x)",
        report.total,
        re.total,
        re.total.as_nanos() as f64 / report.total.as_nanos() as f64
    );
}
