//! **Ablation (Section VII-B)** — the page-frame consistency scan.
//!
//! The scan dominates NiLiHype's recovery latency (21 of 22 ms at 8 GB);
//! the paper notes that skipping it saves the latency at the cost of ~4%
//! of recovery rate. This binary measures both sides of the trade-off.

use nlh_campaign::{run_campaign, SetupKind};
use nlh_core::{Enhancements, Microreset, RecoveryMechanism};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_hv::{Hypervisor, MachineConfig};
use nlh_inject::FaultType;

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(400, 2000);
    let mut no_scan = Enhancements::full();
    no_scan.pfd_scan = false;

    println!("Ablation: page-frame consistency scan (3AppVM, Register faults, {trials} trials)");
    hr();
    println!(
        "{:28} {:>16} {:>22}",
        "Configuration", "Recovery rate", "Latency (8 GiB)"
    );
    hr();
    for (label, e) in [
        ("With scan", Enhancements::full()),
        ("Without scan", no_scan),
    ] {
        let r = run_campaign(
            SetupKind::ThreeAppVm,
            FaultType::Register,
            trials,
            opts.seed,
            move || Microreset::with_enhancements(e),
        );
        let mut hv = Hypervisor::new(MachineConfig::paper(), opts.seed);
        hv.raise_panic(nlh_sim::CpuId(0), "fault");
        let latency = Microreset::with_enhancements(e)
            .recover(&mut hv)
            .expect("recovery runs")
            .total;
        println!(
            "{:28} {:>16} {:>20}ms",
            label,
            pct(r.success_rate()),
            latency.as_millis()
        );
    }
    hr();
    println!("Paper: skipping the scan cuts the 21 ms but costs ~4% recovery rate.");
}
