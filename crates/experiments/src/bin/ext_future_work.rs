//! **Extensions (Section IX, future work)** — the configurations the paper
//! names as future work, evaluated on this reproduction:
//!
//! 1. **Multiple vCPUs per CPU**: two AppVMs whose vCPUs share one physical
//!    CPU, round-robined by the scheduler tick.
//! 2. **HVM AppVMs**: fully hardware-virtualized guests, whose syscalls do
//!    not trap through the hypervisor (the paper cites prior work finding
//!    HVM fault-injection results "very similar" to PV ones).

use nlh_campaign::{build_system, run_campaign, BenchKind, SetupKind};
use nlh_core::{Microreset, RecoveryMechanism};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_hv::domain::{DomainKind, DomainSpec};
use nlh_hv::{CpuId, MachineConfig};
use nlh_inject::{FaultType, Injector};
use nlh_sim::SimTime;
use nlh_workloads::UnixBench;

/// One fail-stop trial against an HVM (or PV) UnixBench AppVM; returns
/// whether recovery succeeded with no VM affected.
fn hvm_trial(hvm: bool, seed: u64) -> bool {
    let mech = Microreset::nilihype();
    let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
    let (mut hv, _) = build_system(MachineConfig::small(), setup, seed);
    if hvm {
        // Swap the PV AppVM for an HVM one on CPU 2.
        hv.domains[1].state = nlh_hv::domain::DomainState::Destroyed;
        hv.sched.offline_vcpus(&[hv.domains[1].vcpu]);
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::AppHvm,
            pages: 192,
            pinned_cpu: CpuId(2),
            program: Box::new(UnixBench::new(
                seed ^ 0xA1,
                setup.bench_duration(),
                hv.tuning.tls_sensitivity,
            )),
        });
    }
    hv.support = mech.op_support();
    let mut inj = Injector::new(
        FaultType::Failstop,
        seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xF00D,
        setup.trigger_window(),
        2_000,
    );
    let end = SimTime::ZERO + setup.trial_duration();
    let mut recovered = false;
    while hv.now() < end {
        if hv.detection().is_some() {
            if recovered {
                return false;
            }
            recovered = true;
            if mech.recover(&mut hv).is_err() {
                return false;
            }
        } else {
            let (cpu, out) = hv.step_any();
            inj.on_step(&mut hv, cpu, out);
        }
    }
    let app = hv.domains.last().unwrap();
    let deadline = end;
    recovered
        && hv.detection().is_none()
        && app.verdict(end, deadline).is_ok()
        && hv.domains[0].pending.is_none()
        && hv.domains[0].is_active()
}

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(200, 1000);

    println!("Extension 1: multiple vCPUs per CPU (fail-stop, {trials} trials)");
    hr();
    let pinned = run_campaign(
        SetupKind::ThreeAppVm,
        FaultType::Failstop,
        trials,
        opts.seed,
        Microreset::nilihype,
    );
    let shared = run_campaign(
        SetupKind::TwoAppVmSharedCpu,
        FaultType::Failstop,
        trials,
        opts.seed,
        Microreset::nilihype,
    );
    println!(
        "{:44} {:>16}",
        "vCPUs pinned 1:1 (3AppVM)",
        pct(pinned.success_rate())
    );
    println!(
        "{:44} {:>16}",
        "two vCPUs sharing one CPU",
        pct(shared.success_rate())
    );
    println!();

    println!("Extension 2: HVM vs PV AppVM (1AppVM UnixBench, fail-stop, {trials} trials)");
    hr();
    for hvm in [false, true] {
        let ok = (0..trials)
            .filter(|i| hvm_trial(hvm, opts.seed + i))
            .count() as u64;
        let label = if hvm { "HVM AppVM" } else { "PV AppVM" };
        println!(
            "{:44} {:>16}",
            label,
            pct(nlh_sim::stats::Proportion::new(ok, trials))
        );
    }
    hr();
    println!("Paper (Section VI-A): HVM fault-injection results are very similar to PV;");
    println!("Section IX lists multiple vCPUs per CPU as future evaluation work.");
}
