//! **Extension** — back-to-back recovery: how many *successive* hypervisor
//! failures can NiLiHype absorb in one run?
//!
//! The paper's campaigns inject exactly one fault per run. Since microreset
//! keeps the hypervisor instance alive, nothing in principle prevents it
//! from recovering repeatedly (the "nine lives" in the name). This
//! extension arms the Gigan-style trigger once every 2 s of a long
//! UnixBench run — each fault lands mid-hypervisor-execution like the
//! paper's — and reports the survival curve.

use nlh_campaign::{build_system, BenchKind, SetupKind};
use nlh_core::{Microreset, RecoveryMechanism};
use nlh_experiments::{hr, ExpOptions};
use nlh_hv::MachineConfig;
use nlh_inject::{FaultType, Injector};
use nlh_sim::{SimDuration, SimTime};

/// Runs one trial with `n_faults` fail-stops ~2 s apart; returns how many
/// were successfully recovered before the first unrecovered failure.
fn survival(seed: u64, n_faults: u32) -> u32 {
    let mech = Microreset::nilihype();
    let (mut hv, _) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        seed,
    );
    hv.support = mech.op_support();
    for k in 0..n_faults {
        let window_start = SimTime::from_secs(1) + SimDuration::from_secs(2) * u64::from(k);
        let window = (window_start, window_start + SimDuration::from_millis(500));
        let mut inj = Injector::new(
            FaultType::Failstop,
            seed ^ u64::from(k) << 32,
            window,
            2_000,
        );
        let settle_end = window.1 + SimDuration::from_secs(1);
        // Run through the injection and a settling period.
        while hv.now() < settle_end {
            if hv.detection().is_some() {
                break;
            }
            let (cpu, out) = hv.step_any();
            inj.on_step(&mut hv, cpu, out);
        }
        match hv.detection() {
            Some(_) => {
                if mech.recover(&mut hv).is_err() {
                    return k;
                }
                // Recovery must hold through the settling period.
                hv.run_until(settle_end);
                if hv.detection().is_some() {
                    return k;
                }
                // The AppVM must still be making progress (not stuck).
                let dom = &hv.domains[1];
                if !dom.is_active() || dom.pending.as_ref().map(|p| !p.will_retry).unwrap_or(false)
                {
                    return k;
                }
            }
            None => unreachable!("failstop faults are always detected"),
        }
    }
    n_faults
}

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(100, 400);
    let n_faults = 8u32;
    println!("Extension: back-to-back microreset recoveries");
    println!("(one fail-stop every ~2 s, up to {n_faults} faults per run, {trials} runs)");
    hr();
    let mut survived_through = vec![0u64; n_faults as usize + 1];
    for i in 0..trials {
        let k = survival(opts.seed + i, n_faults) as usize;
        for counter in survived_through.iter_mut().take(k + 1).skip(1) {
            *counter += 1;
        }
    }
    println!("{:>8} {:>22}", "Faults", "Runs still healthy");
    hr();
    for (k, survived) in survived_through.iter().enumerate().skip(1) {
        println!(
            "{:>8} {:>14} ({:>5.1}%)",
            k,
            survived,
            *survived as f64 / trials as f64 * 100.0
        );
    }
    hr();
    println!("With a per-recovery success rate p, k successive recoveries succeed with");
    println!("probability ~p^k; the curve above should track that geometric decay.");
}
