//! **Coverage-guided vs uniform fault campaign** — the steering
//! comparison behind EXPERIMENTS.md's table.
//!
//! Runs the same fixed-seed trial corpus twice — once with uniform
//! trigger draws over `[0, MAX_TRIGGER_OPS)`, once with the
//! coverage-guided steering — and reports trials-to-first-residual-
//! failure, total failures found, and cell coverage for each mode.
//! `--json FILE` writes the guided run's final coverage map (the CI
//! artifact).
//!
//! Defaults: 1AppVM / UnixBench / fail-stop / full NiLiHype, 120 trials,
//! 8 windows, seed 2018.

use nlh_campaign::{
    run_sampled_campaign, BenchKind, SampledCampaign, SamplingMode, SetupKind, DEFAULT_OPS_WINDOWS,
};
use nlh_core::Microreset;
use nlh_experiments::hr;
use nlh_inject::FaultType;

struct Args {
    trials: u64,
    seed: u64,
    windows: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        trials: 120,
        seed: 2018,
        windows: DEFAULT_OPS_WINDOWS,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--trials" => out.trials = val("--trials").parse().expect("--trials needs an integer"),
            "--seed" => out.seed = val("--seed").parse().expect("--seed needs an integer"),
            "--windows" => {
                out.windows = val("--windows")
                    .parse()
                    .expect("--windows needs an integer")
            }
            "--json" => out.json = Some(val("--json")),
            "--help" | "-h" => {
                eprintln!("options: [--trials N] [--seed S] [--windows W] [--json FILE]");
                std::process::exit(0);
            }
            other => panic!("unknown option {other}; try --help"),
        }
    }
    out
}

fn describe(label: &str, c: &SampledCampaign) {
    let first = c
        .first_failure_trial
        .map(|i| format!("trial {}", i + 1))
        .unwrap_or_else(|| "never".to_string());
    println!(
        "{label:<8} first residual failure: {first:<10} failures: {:<4} successes: {:<4} covered cells: {}/{}",
        c.failures,
        c.successes,
        c.coverage.covered_cells(),
        nlh_hv::HandlerKind::ALL.len() * c.coverage.windows(),
    );
}

fn main() {
    let args = parse_args();
    let trials = args.trials;
    let windows = args.windows;
    let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
    let fault = FaultType::Failstop;
    let mech = Microreset::nilihype();

    println!("Coverage-guided vs uniform trigger sampling");
    println!(
        "(1AppVM, UnixBench, fail-stop, full NiLiHype, {trials} trials, {windows} ops windows, seed {})",
        args.seed
    );
    hr();

    let uniform = run_sampled_campaign(
        setup,
        fault,
        &mech,
        args.seed,
        trials,
        windows,
        SamplingMode::Uniform,
    );
    let guided = run_sampled_campaign(
        setup,
        fault,
        &mech,
        args.seed,
        trials,
        windows,
        SamplingMode::CoverageGuided,
    );

    describe("uniform", &uniform);
    describe("guided", &guided);
    hr();

    println!("guided coverage map (injections/failures per handler x ops-window cell):");
    print!("{}", guided.coverage);

    if let (Some(u), Some(g)) = (uniform.first_failure_trial, guided.first_failure_trial) {
        hr();
        println!(
            "first residual failure: guided after {} trials, uniform after {} trials",
            g + 1,
            u + 1
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, guided.coverage.to_json())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("coverage map written to {path}");
    }
}
