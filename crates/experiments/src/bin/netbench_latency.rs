//! **Section VII-B methodology** — measuring recovery latency as service
//! interruption seen by NetBench's external sender.
//!
//! The paper measures recovery latency by running NetBench (a 1 ms UDP
//! ping) in an AppVM and observing the gap in the reply stream at the
//! sender: all VMs are paused during recovery, so the longest inter-reply
//! gap is the recovery latency. This binary reproduces that measurement
//! end-to-end: boot, run, inject a fail-stop fault, recover with each
//! mechanism, and report the gap.

use nlh_campaign::{build_system, BenchKind, SetupKind};
use nlh_core::{Microreboot, Microreset, RecoveryMechanism};
use nlh_experiments::hr;
use nlh_hv::MachineConfig;
use nlh_sim::{SimDuration, SimTime};

/// Runs NetBench, injects a fail-stop at ~4 s, recovers, and returns the
/// longest inter-reply gap seen by the sender.
fn measure(mech: &dyn RecoveryMechanism, seed: u64) -> SimDuration {
    let (mut hv, _) = build_system(
        MachineConfig::paper(),
        SetupKind::OneAppVm(BenchKind::NetBench),
        seed,
    );
    hv.support = mech.op_support();
    hv.run_until(SimTime::from_secs(4));
    assert!(hv.detection().is_none(), "fault-free run must be clean");
    hv.raise_panic(nlh_sim::CpuId(1), "injected fail-stop");
    mech.recover(&mut hv).expect("recovery runs");
    hv.run_until(SimTime::from_secs(8));
    assert!(hv.detection().is_none(), "post-recovery run must be clean");

    // Sender-side analysis: longest gap between consecutive reply times.
    let mut times: Vec<SimTime> = hv.net_replies.iter().map(|(_, t)| *t).collect();
    times.sort_unstable();
    times
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(SimDuration::ZERO)
}

fn main() {
    let opts = nlh_experiments::ExpOptions::from_args();
    println!("Recovery latency via NetBench service interruption (Section VII-B)");
    println!("(1AppVM NetBench, 1 ms pings, 8 GiB machine, 5 repetitions)");
    hr();
    println!("{:12} {:>16} {:>16}", "Mechanism", "Max reply gap", "Paper");
    hr();
    for (name, mech) in [
        (
            "NiLiHype",
            &Microreset::nilihype() as &dyn RecoveryMechanism,
        ),
        ("ReHype", &Microreboot::rehype() as &dyn RecoveryMechanism),
    ] {
        let mut worst = SimDuration::ZERO;
        let mut best = SimDuration::from_secs(3600);
        for r in 0..5 {
            let gap = measure(mech, opts.seed + r);
            worst = worst.max(gap);
            best = best.min(gap);
        }
        let paper = if name == "NiLiHype" {
            "22 ms"
        } else {
            "713 ms"
        };
        println!(
            "{:12} {:>10}..{:>4} {:>16}",
            name,
            format!("{best}"),
            format!("{worst}"),
            paper
        );
    }
    hr();
    println!("Paper: 22 ms (±1 ms) vs 713 ms (±10 ms): a >30x reduction in service");
    println!("interruption, low enough to be unnoticeable in most deployments.");
}
