//! **Section IV (text)** — the ReHype x86-64 port ladder.
//!
//! The paper ports ReHype to x86-64 / Xen 4.3.2 and reports: initial port
//! 65% → (+ syscall retry, batched-hypercall retry, FS/GS save) 84% →
//! (+ non-idempotent mitigation) 96%, on 1AppVM fail-stop campaigns.

use nlh_campaign::{run_campaign, BenchKind, SetupKind};
use nlh_core::{Microreboot, ReHypeConfig};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_inject::FaultType;

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(300, 1000);
    let rungs: [(&str, ReHypeConfig, &str); 3] = [
        ("Initial x86-64 port", ReHypeConfig::initial_port(), "65%"),
        (
            "+ syscall retry, batched retry, save FS/GS",
            ReHypeConfig::port_plus_three(),
            "84%",
        ),
        (
            "+ non-idempotent hypercall mitigation",
            ReHypeConfig::full(),
            "96%",
        ),
    ];
    println!("Section IV: porting and enhancing ReHype (1AppVM, fail-stop, {trials} trials)");
    hr();
    println!("{:48} {:>14} {:>8}", "Configuration", "Measured", "Paper");
    hr();
    for (label, config, paper) in rungs {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            trials,
            opts.seed,
            move || Microreboot::with_config(config),
        );
        println!("{:48} {:>14} {:>8}", label, pct(r.success_rate()), paper);
    }
    hr();
}
