//! **Table I** — NiLiHype's enhancement ladder (Section V-B).
//!
//! For each cumulative enhancement rung, runs a 1AppVM / UnixBench /
//! fail-stop campaign and reports the successful recovery rate, next to the
//! paper's measured value. Paper scale: ~1000 trials per rung.
//!
//! The eight rung campaigns are submitted to one resident
//! [`nlh_campaign::CampaignEngine`], so the boot template is built once
//! and shared across every rung (results are bit-identical to the legacy
//! per-campaign path).

use nlh_campaign::CampaignEngine;
use nlh_experiments::{hr, pct, print_latency, print_throughput, ExpOptions};

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(300, 1000);
    println!("Table I: NiLiHype incremental enhancement ladder");
    println!("(1AppVM, UnixBench, fail-stop faults, {trials} trials per rung)");
    hr();
    println!("{:55} {:>12} {:>8}", "Mechanism", "Measured", "Paper");
    hr();
    let engine = CampaignEngine::new();
    let rows = nlh_campaign::run_ladder_on(&engine, trials, opts.seed, opts.boot_mode());
    for row in &rows {
        let paper = row
            .rung
            .paper_rate()
            .map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "~97%".to_string());
        println!(
            "{:55} {:>12} {:>8}",
            row.rung.label(),
            pct(row.result.success_rate()),
            paper
        );
    }
    hr();
    if let Some(top) = rows.last() {
        print_throughput("top rung", &top.result.telemetry);
        print_latency("top rung", &top.result.telemetry);
    }
}
