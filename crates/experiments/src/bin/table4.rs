//! **Table IV** — implementation complexity (Section VII-D).
//!
//! The paper counts lines added/modified in Xen with CLOC, split into
//! (1) code executing during normal operation and (2) code executing only
//! during recovery, for both NiLiHype and ReHype. This binary applies the
//! same methodology to this reproduction's own sources:
//!
//! * category (1) is the normal-operation support in the hypervisor
//!   substrate (undo/completion logging inside the micro-op interpreter)
//!   plus the shared `OpSupport` plumbing — approximated here by the
//!   mechanism-agnostic parts of `nlh-core` (`enhancements.rs`, `clr.rs`);
//! * category (2) is the recovery-only code: `microreset.rs` for NiLiHype,
//!   `microreboot.rs` for ReHype, plus the shared recovery steps
//!   (`shared.rs`, `latency.rs`) counted for both.

use std::path::{Path, PathBuf};

use nlh_experiments::hr;
use nlh_loc::{count_str, strip_tests, LineCounts};

fn count(path: &Path) -> LineCounts {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    count_str(&strip_tests(&src))
}

fn core_src() -> PathBuf {
    // experiments/ and core/ are sibling crates.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .join("core/src")
}

fn main() {
    let _ = nlh_experiments::ExpOptions::from_args();
    let src = core_src();

    // Category (1): normal-operation support shared by both mechanisms.
    let mut normal = LineCounts::default();
    for f in ["enhancements.rs", "clr.rs", "lib.rs"] {
        normal.add(count(&src.join(f)));
    }

    // Category (2): recovery-only code.
    let mut shared_recovery = LineCounts::default();
    for f in ["shared.rs", "latency.rs"] {
        shared_recovery.add(count(&src.join(f)));
    }
    let microreset = count(&src.join("microreset.rs"));
    let microreboot = count(&src.join("microreboot.rs"));

    let nili_normal = normal.code;
    let nili_recovery = shared_recovery.code + microreset.code;
    let re_normal = normal.code;
    let re_recovery = shared_recovery.code + microreboot.code;

    println!("Table IV: implementation complexity (code lines, tests stripped,");
    println!("measured over this reproduction's recovery crate with nlh-loc)");
    hr();
    println!("{:44} {:>12} {:>12}", "Category", "NiLiHype", "ReHype");
    hr();
    println!(
        "{:44} {:>12} {:>12}",
        "(1) executes during normal operation", nili_normal, re_normal
    );
    println!(
        "{:44} {:>12} {:>12}",
        "(2) executes only during recovery", nili_recovery, re_recovery
    );
    hr();
    println!(
        "{:44} {:>12} {:>12}",
        "Total",
        nili_normal + nili_recovery,
        re_normal + re_recovery
    );
    println!();
    println!(
        "Mechanism-specific recovery code: microreset {} vs microreboot {} lines",
        microreset.code, microreboot.code
    );
    println!();
    println!("Paper (lines added/modified in Xen): NiLiHype < 2200 total; ReHype needs");
    println!("noticeably more recovery-only code (preserve + re-integrate state across");
    println!("the reboot) and two extra normal-operation logs (I/O APIC writes, boot");
    println!("line). The same *shape* holds here: ReHype's mechanism file is larger,");
    println!("and only ReHype needs the ioapic/bootline log plumbing.");
}
