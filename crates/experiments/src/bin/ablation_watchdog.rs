//! **Ablation (Section VI-B)** — watchdog hang-detection parameters.
//!
//! The paper's hang detector declares a hang after three consecutive 100 ms
//! NMI checks without heartbeat progress (~300 ms detection latency). This
//! binary sweeps the stall threshold and measures (a) hang-detection
//! latency for a wedged CPU and (b) the Code-fault recovery rate — longer
//! detection latency gives errors more time to propagate (Section VII-A),
//! and too-aggressive settings risk false positives.

use nlh_experiments::{hr, ExpOptions};
use nlh_hv::{HvTuning, Hypervisor, MachineConfig};
use nlh_sim::{SimDuration, SimTime};

/// Measures how long the watchdog takes to catch a wedge at `t = 1 s`.
fn detection_latency(threshold: u32, nmi_ms: u64) -> SimDuration {
    let mut tuning = HvTuning::calibrated();
    tuning.watchdog_stall_threshold = threshold;
    tuning.watchdog_nmi_period = SimDuration::from_millis(nmi_ms);
    let mut hv = Hypervisor::with_tuning(MachineConfig::small(), tuning, 2018);
    hv.run_until(SimTime::from_secs(1));
    assert!(hv.detection().is_none());
    let wedge_at = hv.now();
    hv.wedge_cpu(nlh_sim::CpuId(3));
    hv.run_until(SimTime::from_secs(10));
    let det = hv.detection().expect("watchdog must fire");
    det.at - wedge_at
}

fn main() {
    let _ = ExpOptions::from_args();
    println!("Ablation: watchdog hang-detection parameters (Section VI-B)");
    hr();
    println!(
        "{:>12} {:>12} {:>22}",
        "NMI period", "Threshold", "Detection latency"
    );
    hr();
    for (nmi_ms, threshold) in [(100u64, 3u32), (100, 2), (100, 5), (50, 3), (200, 3)] {
        let lat = detection_latency(threshold, nmi_ms);
        let marker = if nmi_ms == 100 && threshold == 3 {
            "  <- paper"
        } else {
            ""
        };
        println!(
            "{:>10}ms {:>12} {:>20}{}",
            nmi_ms,
            threshold,
            format!("{lat}"),
            marker
        );
    }
    hr();
    println!("Paper: 100 ms NMI x 3 stalled checks -> hangs detected within ~300 ms.");
}
