//! **Figure 3** — hypervisor processing overhead during normal operation
//! (Section VII-C).
//!
//! For each configuration (BlkBench, UnixBench, NetBench in the 1AppVM
//! setup, plus the synchronized 3AppVM mix), runs a fault-free measurement
//! window under three `OpSupport` configurations and reports the percent
//! increase in hypervisor cycles over stock:
//!
//! * **NiLiHype** — all recovery-support logging on;
//! * **NiLiHype\*** — the non-idempotent-hypercall undo logging turned off
//!   (the paper's ablation: most of the overhead is this logging).

use nlh_campaign::{measure_hv_cycles, overhead_percent, BenchKind, SetupKind};
use nlh_experiments::{hr, ExpOptions};
use nlh_hv::hypercalls::OpSupport;
use nlh_sim::SimDuration;

fn main() {
    let opts = ExpOptions::from_args();
    // Paper measures ~21 s windows, repeated 5 times, <1% spread.
    let window = if opts.full {
        SimDuration::from_secs(21)
    } else {
        SimDuration::from_secs(4)
    };
    let repeats = 5;

    let full = OpSupport::full();
    let mut no_logging = OpSupport::full();
    no_logging.undo_logging = false;
    let stock = OpSupport::none();

    let configs: [(&str, SetupKind); 4] = [
        ("BlkBench", SetupKind::OneAppVm(BenchKind::BlkBench)),
        ("UnixBench", SetupKind::OneAppVm(BenchKind::UnixBench)),
        ("NetBench", SetupKind::OneAppVm(BenchKind::NetBench)),
        ("3AppVM", SetupKind::ThreeAppVm),
    ];

    println!("Figure 3: hypervisor processing overhead in normal operation");
    println!("(percent increase in hypervisor cycles vs stock; window {window}, {repeats} runs)");
    hr();
    println!(
        "{:12} {:>12} {:>12} {:>14}",
        "Config", "NiLiHype", "NiLiHype*", "hv share"
    );
    hr();
    for (label, setup) in configs {
        let mut o_full = 0.0;
        let mut o_nolog = 0.0;
        let mut share = 0.0;
        for r in 0..repeats {
            let seed = opts.seed + r;
            let (hv_full, _) = measure_hv_cycles(setup, full, seed, window);
            let (hv_nolog, _) = measure_hv_cycles(setup, no_logging, seed, window);
            let (hv_stock, guest) = measure_hv_cycles(setup, stock, seed, window);
            o_full += overhead_percent(hv_full.count(), hv_stock.count());
            o_nolog += overhead_percent(hv_nolog.count(), hv_stock.count());
            share += hv_stock.count() as f64 / (hv_stock.count() + guest.count()) as f64;
        }
        let n = repeats as f64;
        println!(
            "{:12} {:>11.2}% {:>11.2}% {:>13.2}%",
            label,
            o_full / n,
            o_nolog / n,
            share / n * 100.0
        );
    }
    hr();
    println!("Paper: overhead is a few percent of *hypervisor* cycles, dominated by the");
    println!("logging (NiLiHype* is near zero); since under 5% of all cycles run in the");
    println!("hypervisor, the total impact is below 1% even in the worst case (BlkBench).");
}
