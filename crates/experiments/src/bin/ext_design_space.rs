//! **Extension (Section II-B design space)** — the three component-level
//! recovery designs side by side:
//!
//! * **Microreset** (NiLiHype): discard threads, repair in place.
//! * **Checkpoint rollback**: restore a post-boot memory checkpoint, then
//!   re-integrate preserved state (the variant the paper discusses as a
//!   faster microreboot: "even in this case, there would be significant
//!   latency for reintegrating state").
//! * **Microreboot** (ReHype): boot a new instance, then re-integrate.
//!
//! For each: recovery rate under Register faults (the state-corrupting
//! type where the cleansing power of rollback/reboot matters) and recovery
//! latency on the paper's 8 GiB machine.

use nlh_campaign::{run_campaign, SetupKind};
use nlh_core::{CheckpointRestore, Microreboot, Microreset, RecoveryMechanism};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_hv::{CpuId, Hypervisor, MachineConfig};
use nlh_inject::FaultType;

fn latency(mech: &dyn RecoveryMechanism) -> nlh_sim::SimDuration {
    let mut hv = Hypervisor::new(MachineConfig::paper(), 1);
    hv.raise_panic(CpuId(0), "latency probe");
    mech.recover(&mut hv).expect("recovery runs").total
}

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(400, 2000);
    println!(
        "The component-level-recovery design space (3AppVM, Register faults, {trials} trials)"
    );
    hr();
    println!(
        "{:34} {:>16} {:>18}",
        "Mechanism", "Recovery rate", "Latency (8 GiB)"
    );
    hr();

    let reset_rate = run_campaign(
        SetupKind::ThreeAppVm,
        FaultType::Register,
        trials,
        opts.seed,
        Microreset::nilihype,
    );
    println!(
        "{:34} {:>16} {:>16}ms",
        "Microreset (NiLiHype)",
        pct(reset_rate.success_rate()),
        latency(&Microreset::nilihype()).as_millis()
    );

    let ckpt_rate = run_campaign(
        SetupKind::ThreeAppVm,
        FaultType::Register,
        trials,
        opts.seed,
        CheckpointRestore::new,
    );
    println!(
        "{:34} {:>16} {:>16}ms",
        "Checkpoint rollback (Section II-B)",
        pct(ckpt_rate.success_rate()),
        latency(&CheckpointRestore::new()).as_millis()
    );

    let reboot_rate = run_campaign(
        SetupKind::ThreeAppVm,
        FaultType::Register,
        trials,
        opts.seed,
        Microreboot::rehype,
    );
    println!(
        "{:34} {:>16} {:>16}ms",
        "Microreboot (ReHype)",
        pct(reboot_rate.success_rate()),
        latency(&Microreboot::rehype()).as_millis()
    );
    hr();
    println!("The paper's argument in one table: rollback/reboot buy a small amount of");
    println!("state cleansing (Register/Code faults only) at 15-30x the latency, which");
    println!("is why microreset is the attractive point in the design space.");
}
