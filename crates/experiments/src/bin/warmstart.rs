//! **Warm-start engine benchmark** — measures what the boot cache saves.
//!
//! Runs the same 1AppVM / UnixBench / fail-stop campaign twice — once
//! cold-booting every trial, once warm-starting from the campaign's boot
//! cache — verifies the aggregate results are identical, and reports the
//! wall-clock speedup. Default 1000 trials (the paper's fail-stop campaign
//! size).

use nlh_campaign::{run_campaign_with, BenchKind, BootMode, SetupKind};
use nlh_core::Microreset;
use nlh_experiments::{hr, print_latency, print_throughput, ExpOptions};
use nlh_inject::FaultType;

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(1000, 1000);
    println!("Warm-start trial engine: cold boots vs boot-cache clones");
    println!("(1AppVM, UnixBench, fail-stop faults, {trials} trials per run)");
    hr();

    let run = |mode| {
        run_campaign_with(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            trials,
            opts.seed,
            Microreset::nilihype,
            mode,
        )
    };

    let cold = run(BootMode::Cold);
    print_throughput("cold", &cold.telemetry);
    let warm = run(BootMode::Warm);
    print_throughput("warm", &warm.telemetry);
    hr();

    assert_eq!(cold.successes, warm.successes, "results must be identical");
    assert_eq!(cold.detected, warm.detected, "results must be identical");
    assert_eq!(
        cold.telemetry.recovery_latency_us, warm.telemetry.recovery_latency_us,
        "simulated latency distributions must be identical"
    );
    println!(
        "identical results: {}/{} successful recoveries in both modes",
        warm.successes, warm.detected
    );
    println!(
        "setup time per trial: cold {:.1} us vs warm {:.1} us ({:.0}x less)",
        cold.telemetry.setup_nanos as f64 / trials as f64 / 1000.0,
        warm.telemetry.setup_nanos as f64 / trials as f64 / 1000.0,
        cold.telemetry.setup_nanos as f64 / warm.telemetry.setup_nanos.max(1) as f64,
    );
    println!(
        "campaign wall clock: cold {:.2} s vs warm {:.2} s ({:.2}x speedup)",
        cold.telemetry.wall_secs,
        warm.telemetry.wall_secs,
        cold.telemetry.wall_secs / warm.telemetry.wall_secs.max(1e-9),
    );
    print_latency("warm", &warm.telemetry);
}
