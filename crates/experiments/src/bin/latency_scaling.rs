//! **Section VII-B (text)** — recovery-latency scaling with memory size.
//!
//! The paper notes that NiLiHype's dominant recovery step — the page-frame
//! consistency scan — is proportional to host memory (21 ms at 8 GB), which
//! "would be a problem in a large system with tens or hundreds of GB". This
//! binary sweeps memory size and prints the recovery latency of both
//! mechanisms, plus the option of skipping the scan (which the paper says
//! costs ~4% of recovery rate).

use nlh_core::{Enhancements, Microreboot, Microreset, RecoveryMechanism};
use nlh_experiments::hr;
use nlh_hv::{Hypervisor, MachineConfig};

fn recover_total(machine: MachineConfig, mech: &dyn RecoveryMechanism) -> nlh_sim::SimDuration {
    let mut hv = Hypervisor::new(machine, 2018);
    hv.raise_panic(nlh_sim::CpuId(0), "fault");
    mech.recover(&mut hv).expect("recovery runs").total
}

fn main() {
    let _ = nlh_experiments::ExpOptions::from_args();
    let nilihype = Microreset::nilihype();
    let mut no_scan_set = Enhancements::full();
    no_scan_set.pfd_scan = false;
    let no_scan = Microreset::with_enhancements(no_scan_set);
    let rehype = Microreboot::rehype();

    println!("Recovery latency vs host memory size (Section VII-B discussion)");
    hr();
    println!(
        "{:>8} {:>14} {:>22} {:>14}",
        "Memory", "NiLiHype", "NiLiHype (no scan)", "ReHype"
    );
    hr();
    for gib in [2u64, 4, 8, 16, 32, 64] {
        let machine = MachineConfig {
            num_cpus: 8,
            memory_mib: gib * 1024,
            cpu_freq_mhz: 2_500,
        };
        println!(
            "{:>6}GB {:>12}ms {:>20}ms {:>12}ms",
            gib,
            recover_total(machine.clone(), &nilihype).as_millis(),
            recover_total(machine.clone(), &no_scan).as_millis(),
            recover_total(machine, &rehype).as_millis(),
        );
    }
    hr();
    println!("Paper: 8 GB -> 21 ms of NiLiHype's 22 ms is the scan; skipping it trades");
    println!("~4% of recovery rate for the latency (see ablation_pfd_scan).");
}
