//! **Campaign server** — the one-command experiment suite (EXPERIMENTS.md).
//!
//! Runs a whole job graph of campaign cells on one resident
//! [`CampaignEngine`]: every cell shares a single boot cache, so a suite
//! that touches the same `(machine, setup)` key many times (the ladder's
//! eight rungs, Figure 2's six campaigns, ...) pays each template build
//! once. Telemetry streams to stdout while cells run — per-cell recovery
//! rate with its 95% Wilson interval tightening live — and `--json FILE`
//! writes a machine-readable suite summary (the CI artifact).
//!
//! Input is either a manifest file (see `SuiteSpec::parse`; exemplar at
//! `crates/experiments/manifests/ci_suite.manifest`) or a built-in suite:
//!
//! * `--builtin ci` (default) — three cells exercising the job graph, one
//!   per campaign family (sharded fig2 cell, sharded ladder-top cell,
//!   sampled device cell), at the golden-test seeds.
//! * `--builtin suite` — the full quick-scale EXPERIMENTS.md campaign
//!   suite: all eight Table I rungs, all six Figure 2 cells, and the six
//!   device-campaign cells, at the exact golden-test configurations.
//!
//! `--isolated` runs each job on its own fresh engine (per-job cache, the
//! legacy behaviour) and `--cold-boot` forces every trial to boot from
//! scratch; both exist to measure what the resident engine saves.

use std::fmt::Write as _;
use std::time::Instant;

use nlh_campaign::{
    setup_manifest_name, BootMode, CampaignEngine, CampaignSnapshot, CampaignSpec, CellOutput,
    CellResult, ExecMode, JobOutcome, MechanismSpec, SamplingMode, SetupKind, SuiteSpec,
    TelemetrySink,
};
use nlh_core::LadderRung;
use nlh_experiments::hr;
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;
use nlh_sim::stats::Proportion;

struct Args {
    manifest: Option<String>,
    builtin: String,
    json: Option<String>,
    cold_boot: bool,
    isolated: bool,
    quiet: bool,
    cache_cap: Option<u64>,
}

fn parse_args() -> Args {
    let mut out = Args {
        manifest: None,
        builtin: "ci".into(),
        json: None,
        cold_boot: false,
        isolated: false,
        quiet: false,
        cache_cap: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--builtin" => out.builtin = val("--builtin"),
            "--json" => out.json = Some(val("--json")),
            "--cold-boot" => out.cold_boot = true,
            "--isolated" => out.isolated = true,
            "--quiet" => out.quiet = true,
            "--cache-cap" => {
                out.cache_cap = Some(
                    val("--cache-cap")
                        .parse()
                        .expect("--cache-cap needs a byte count"),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: campaign_server [MANIFEST] [--builtin ci|suite] [--json FILE] \
                     [--cold-boot] [--isolated] [--quiet] [--cache-cap BYTES]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => out.manifest = Some(other.to_string()),
            other => panic!("unknown option {other}; try --help"),
        }
    }
    out
}

/// The `--builtin ci` suite: one cell per campaign family, with a
/// dependency edge so the job graph is exercised, at golden-test seeds.
fn builtin_ci() -> SuiteSpec {
    let mut suite = SuiteSpec::default();
    let mut fig2 = CampaignSpec::new(
        "fig2-failstop",
        SetupKind::ThreeAppVm,
        FaultType::Failstop,
        30,
    );
    fig2.seed = 77;
    suite.push(fig2);
    let mut ladder = CampaignSpec::new(
        "ladder-top",
        SetupKind::OneAppVm(nlh_campaign::BenchKind::UnixBench),
        FaultType::Failstop,
        40,
    );
    ladder.mechanism = MechanismSpec::Rung(LadderRung::VirtqueueConsistency);
    suite.push(ladder);
    let mut device = CampaignSpec::new(
        "device-failstop",
        SetupKind::TwoAppVmVswitch,
        FaultType::Failstop,
        20,
    );
    device.mechanism = MechanismSpec::Rung(LadderRung::VirtqueueConsistency);
    device.mode = ExecMode::Sampled {
        windows: 8,
        sampling: SamplingMode::CoverageGuided,
        steer_handler: Some(HandlerKind::VirtioMmio),
        depth_cycle: 1,
    };
    suite.push_after(device, &["fig2-failstop"]);
    suite
}

/// The `--builtin suite` graph: the quick-scale EXPERIMENTS.md campaign
/// suite at the exact golden-test configurations (ladder 40×8 @ seed
/// 2018, fig2 30×6 @ seed 77, device 20×6 @ seed 2018).
fn builtin_suite() -> SuiteSpec {
    let mut suite = SuiteSpec::default();
    for rung in LadderRung::ALL {
        let mut spec = CampaignSpec::new(
            format!("ladder-{}", rung.name()),
            SetupKind::OneAppVm(nlh_campaign::BenchKind::UnixBench),
            FaultType::Failstop,
            40,
        );
        spec.mechanism = MechanismSpec::Rung(rung);
        suite.push(spec);
    }
    for mechanism in [MechanismSpec::Nilihype, MechanismSpec::Rehype] {
        for fault in FaultType::ALL {
            let mut spec = CampaignSpec::new(
                format!("fig2-{}-{fault}", mechanism.manifest_name()),
                SetupKind::ThreeAppVm,
                fault,
                30,
            );
            spec.seed = 77;
            spec.mechanism = mechanism;
            suite.push(spec);
        }
    }
    for rung in [
        LadderRung::ReactivateTimerEvents,
        LadderRung::VirtqueueConsistency,
    ] {
        for fault in FaultType::ALL {
            let mut spec = CampaignSpec::new(
                format!("device-{}-{fault}", rung.name()),
                SetupKind::TwoAppVmVswitch,
                fault,
                20,
            );
            spec.mechanism = MechanismSpec::Rung(rung);
            spec.mode = ExecMode::Sampled {
                windows: 8,
                sampling: SamplingMode::CoverageGuided,
                steer_handler: Some(HandlerKind::VirtioMmio),
                depth_cycle: 1,
            };
            suite.push(spec);
        }
    }
    suite
}

/// Streams snapshot lines to stdout as cells progress.
struct PrintSink {
    quiet: bool,
}

impl TelemetrySink for PrintSink {
    fn snapshot(&mut self, snap: &CampaignSnapshot) {
        if !self.quiet || snap.done {
            println!("  {}", snap.render_line());
        }
    }
}

/// One row of the JSON summary.
fn json_job(out: &mut String, outcome: &JobOutcome, last: bool) {
    let cell = &outcome.cell;
    let (mode, detected, successes) = match &cell.output {
        CellOutput::Sharded(r) => ("sharded", r.detected, r.successes),
        CellOutput::Sampled(s) => ("sampled", s.successes + s.failures, s.successes),
    };
    let p = Proportion::new(successes, detected);
    let (lo, hi) = p.wilson_95();
    let stopped = cell
        .stopped_at
        .map(|n| n.to_string())
        .unwrap_or_else(|| "null".into());
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"name\": \"{}\",", outcome.name);
    let _ = writeln!(out, "      \"mode\": \"{mode}\",");
    let _ = writeln!(out, "      \"executed\": {},", cell.executed);
    let _ = writeln!(out, "      \"stopped_at\": {stopped},");
    let _ = writeln!(out, "      \"detected\": {detected},");
    let _ = writeln!(out, "      \"successes\": {successes},");
    let _ = writeln!(out, "      \"rate\": {:.6},", p.value());
    let _ = writeln!(out, "      \"wilson_lo\": {lo:.6},");
    let _ = writeln!(out, "      \"wilson_hi\": {hi:.6},");
    let _ = writeln!(out, "      \"cache_hits\": {},", cell.cache.hits);
    let _ = writeln!(out, "      \"cache_misses\": {},", cell.cache.misses);
    let _ = writeln!(out, "      \"cache_evictions\": {}", cell.cache.evictions);
    let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
}

fn json_summary(
    label: &str,
    outcomes: &[JobOutcome],
    wall_secs: f64,
    cache: nlh_campaign::CacheCounters,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"suite\": \"{label}\",");
    let _ = writeln!(out, "  \"jobs_run\": {},", outcomes.len());
    let _ = writeln!(out, "  \"wall_secs\": {wall_secs:.3},");
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"resident_templates\": {}, \"resident_bytes\": {}}},",
        cache.hits, cache.misses, cache.evictions, cache.resident_templates, cache.resident_bytes
    );
    let _ = writeln!(out, "  \"jobs\": [");
    for (i, outcome) in outcomes.iter().enumerate() {
        json_job(&mut out, outcome, i + 1 == outcomes.len());
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn cell_line(outcome: &JobOutcome) -> String {
    let cell = &outcome.cell;
    let (detected, successes) = match &cell.output {
        CellOutput::Sharded(r) => (r.detected, r.successes),
        CellOutput::Sampled(s) => (s.successes + s.failures, s.successes),
    };
    let p = Proportion::new(successes, detected);
    format!(
        "{:<34} {:>5} {:>9} {:>16} {:>6}/{}",
        outcome.name,
        cell.executed,
        format!("{successes}/{detected}"),
        format!("{p}"),
        cell.cache.misses,
        cell.cache.hits,
    )
}

fn main() {
    let args = parse_args();
    let (label, suite) = match (&args.manifest, args.builtin.as_str()) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            let suite = SuiteSpec::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
            (path.clone(), suite)
        }
        (None, "ci") => ("ci".to_string(), builtin_ci()),
        (None, "suite") => ("suite".to_string(), builtin_suite()),
        (None, other) => panic!("unknown builtin suite {other:?} (have: ci, suite)"),
    };
    let mut suite = suite;
    if args.cold_boot {
        for job in &mut suite.jobs {
            job.spec.boot = BootMode::Cold;
        }
    }

    println!(
        "campaign server: suite {:?}, {} jobs, {} engine, {} boot",
        label,
        suite.jobs.len(),
        if args.isolated {
            "per-job (isolated)"
        } else {
            "resident (shared cache)"
        },
        if args.cold_boot { "cold" } else { "warm" },
    );
    hr();

    let mut sink = PrintSink { quiet: args.quiet };
    let started = Instant::now();
    let (outcomes, cache) = if args.isolated {
        // Legacy shape: a fresh engine (and cache) per job. Dependency
        // edges carry no data, so submission order is a valid execution
        // order for measurement purposes.
        let mut outcomes = Vec::new();
        let mut cache = nlh_campaign::CacheCounters::default();
        for job in &suite.jobs {
            let engine = CampaignEngine::new();
            let cell: CellResult = engine.run_spec(&job.spec, &mut sink);
            let c = engine.cache().counters();
            cache.hits += c.hits;
            cache.misses += c.misses;
            cache.evictions += c.evictions;
            outcomes.push(JobOutcome {
                name: job.spec.name.clone(),
                cell,
            });
        }
        (outcomes, cache)
    } else {
        let engine = match args.cache_cap {
            Some(cap) => CampaignEngine::with_cache_capacity(cap),
            None => CampaignEngine::new(),
        };
        let outcomes = engine
            .run_suite(&suite, &mut sink)
            .unwrap_or_else(|e| panic!("suite graph error: {e}"));
        (outcomes, engine.cache().counters())
    };
    let wall_secs = started.elapsed().as_secs_f64();

    hr();
    println!(
        "{:<34} {:>5} {:>9} {:>16} {:>8}",
        "job", "run", "succ/det", "rate [95% CI]", "miss/hit"
    );
    hr();
    for outcome in &outcomes {
        println!("{}", cell_line(outcome));
    }
    hr();
    println!(
        "{} jobs in {:.2}s; boot cache: {} builds, {} warm checkouts, {} evictions, \
         {} resident templates (~{} KiB)",
        outcomes.len(),
        wall_secs,
        cache.misses,
        cache.hits,
        cache.evictions,
        cache.resident_templates,
        cache.resident_bytes / 1024,
    );
    if let Some(path) = &args.json {
        std::fs::write(path, json_summary(&label, &outcomes, wall_secs, cache))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("suite summary written to {path}");
    }

    // A cell at the exact golden-test configuration must reproduce the
    // golden counts; assert any present so a drifting engine fails loudly
    // here (the CI path), not only in the test suite.
    for job in &suite.jobs {
        let s = &job.spec;
        let golden_fig2_failstop = setup_manifest_name(s.setup) == "ThreeAppVm"
            && s.fault == FaultType::Failstop
            && s.trials == 30
            && s.seed == 77
            && s.mechanism == MechanismSpec::Nilihype
            && s.mode == ExecMode::Sharded;
        if !golden_fig2_failstop {
            continue;
        }
        let outcome = outcomes
            .iter()
            .find(|o| o.name == s.name)
            .expect("every job ran");
        if let CellOutput::Sharded(r) = &outcome.cell.output {
            assert_eq!(
                (r.detected, r.successes),
                (30, 30),
                "fig2 failstop golden counts drifted on the engine path"
            );
        }
    }
}
