//! **Ablation (Section III-C design choice)** — discard *all* execution
//! threads vs discard only the faulting CPU's thread.
//!
//! The paper argues (without implementing it) that discarding only the
//! faulting thread would be more complex and yield a lower recovery rate,
//! because surviving threads interact badly with the recovery process:
//! recovery releases locks they hold, rewrites scheduler metadata they are
//! mid-way through updating, and undoes side effects they have not yet
//! committed. Both policies are implemented here, so the claim can be
//! measured.

use nlh_campaign::{run_campaign, BenchKind, SetupKind};
use nlh_core::{DiscardPolicy, Microreset};
use nlh_experiments::{hr, pct, ExpOptions};
use nlh_inject::FaultType;

fn main() {
    let opts = ExpOptions::from_args();
    let trials = opts.count(300, 1000);
    println!("Ablation: discard policy (1AppVM, UnixBench, fail-stop, {trials} trials)");
    hr();
    println!("{:40} {:>16}", "Policy", "Recovery rate");
    hr();
    for (label, policy) in [
        ("Discard all threads (NiLiHype)", DiscardPolicy::AllThreads),
        (
            "Discard faulting thread only",
            DiscardPolicy::FaultingThreadOnly,
        ),
    ] {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            trials,
            opts.seed,
            move || Microreset::nilihype().with_policy(policy),
        );
        println!("{:40} {:>16}", label, pct(r.success_rate()));
    }
    hr();
    println!("Expected: discarding all threads wins, confirming the paper's design");
    println!("choice — surviving threads trip over recovery's global-state repairs.");
}
