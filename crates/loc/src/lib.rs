//! A small CLOC-like line counter, used to regenerate the paper's
//! implementation-complexity table (Table IV, Section VII-D).
//!
//! The paper counts the lines added/modified in the Xen source to implement
//! NiLiHype and ReHype, partitioned into (1) code that executes during
//! normal operation and (2) code that executes only during recovery. This
//! reproduction applies the same methodology to its own source tree: the
//! `nlh-core` crate *is* the recovery implementation, and its modules map
//! cleanly onto the paper's two categories.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use serde::{Deserialize, Serialize};

/// Line counts for one file or aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineCounts {
    /// Lines containing code (anything that is not blank or comment-only).
    pub code: u64,
    /// Comment-only lines (`//`, `///`, `//!` and block comments).
    pub comment: u64,
    /// Blank lines.
    pub blank: u64,
}

impl LineCounts {
    /// Total lines.
    pub fn total(&self) -> u64 {
        self.code + self.comment + self.blank
    }

    /// Accumulates another count.
    pub fn add(&mut self, other: LineCounts) {
        self.code += other.code;
        self.comment += other.comment;
        self.blank += other.blank;
    }
}

/// Counts lines in Rust source text.
///
/// Comment detection handles line comments, doc comments, and (non-nested
/// tracking of) block comments; a line with code before a trailing comment
/// counts as code, as CLOC does.
pub fn count_str(src: &str) -> LineCounts {
    let mut counts = LineCounts::default();
    let mut in_block_comment = false;
    for line in src.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            counts.blank += 1;
            continue;
        }
        if in_block_comment {
            counts.comment += 1;
            if trimmed.contains("*/") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.starts_with("//") {
            counts.comment += 1;
            continue;
        }
        if trimmed.starts_with("/*") {
            counts.comment += 1;
            if !trimmed.contains("*/") {
                in_block_comment = true;
            }
            continue;
        }
        counts.code += 1;
    }
    counts
}

/// Counts lines in a file.
///
/// # Errors
///
/// Propagates I/O errors from reading the file.
pub fn count_file(path: &Path) -> std::io::Result<LineCounts> {
    Ok(count_str(&std::fs::read_to_string(path)?))
}

/// Counts all `.rs` files under `dir`, recursively, skipping `target`.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn count_dir(dir: &Path) -> std::io::Result<LineCounts> {
    let mut total = LineCounts::default();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().map(|n| n == "target").unwrap_or(false) {
                    continue;
                }
                stack.push(path);
            } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
                total.add(count_file(&path)?);
            }
        }
    }
    Ok(total)
}

/// Strips `#[cfg(test)] mod tests { ... }` blocks from source before
/// counting, so test code is not attributed to the mechanism (the paper
/// counts only the hypervisor changes).
pub fn strip_tests(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut lines = src.lines().peekable();
    while let Some(line) = lines.next() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Skip until the matching closing brace.
            let mut depth = 0i64;
            let mut started = false;
            for l in lines.by_ref() {
                depth += l.matches('{').count() as i64;
                depth -= l.matches('}').count() as i64;
                if l.contains('{') {
                    started = true;
                }
                if started && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Counts code lines of one file with its test modules stripped.
///
/// # Errors
///
/// Propagates I/O errors from reading the file.
pub fn count_file_no_tests(path: &Path) -> std::io::Result<LineCounts> {
    Ok(count_str(&strip_tests(&std::fs::read_to_string(path)?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_source() {
        let src = "\
// a comment
fn main() {
    let x = 1; // trailing comment is still code

}
";
        let c = count_str(src);
        assert_eq!(c.comment, 1);
        assert_eq!(c.code, 3);
        assert_eq!(c.blank, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/*\n multi\n line\n*/\nfn f() {}\n";
        let c = count_str(src);
        assert_eq!(c.comment, 4);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "//! crate doc\n/// item doc\npub fn f() {}\n";
        let c = count_str(src);
        assert_eq!(c.comment, 2);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn strip_tests_removes_test_module() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(true);
    }
}
fn also_real() {}
";
        let stripped = strip_tests(src);
        assert!(stripped.contains("fn real"));
        assert!(stripped.contains("fn also_real"));
        assert!(!stripped.contains("assert!(true)"));
        let c = count_str(&stripped);
        assert_eq!(c.code, 2);
    }

    #[test]
    fn empty_source() {
        let c = count_str("");
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = LineCounts {
            code: 1,
            comment: 2,
            blank: 3,
        };
        a.add(LineCounts {
            code: 10,
            comment: 20,
            blank: 30,
        });
        assert_eq!(a.code, 11);
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn counts_this_crate() {
        // Self-measurement: this file exists and has plenty of lines.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let c = count_dir(&dir).unwrap();
        assert!(c.code > 50, "{c:?}");
        assert!(c.comment > 10);
    }
}
