//! Virtio-style paravirtual device models (descriptor-ring virtqueues).
//!
//! The paper's evaluation never stresses device-transaction state
//! mid-flight; ReHype's original work shows that recovering a virtualized
//! system hinges on re-establishing consistency of in-flight I/O. This
//! crate supplies the missing scenario family: split-driver devices whose
//! guest/device handshake runs over **descriptor rings**, so an injected
//! fault can strike *between* the individual ring updates of a transaction
//! and leave the rings inconsistent — the residue the microreset
//! virtqueue-consistency enhancement exists to repair.
//!
//! # Ring layout
//!
//! A [`Virtqueue`] models a virtio split ring with [`QUEUE_SIZE`]
//! descriptors. Each descriptor carries one `u64` payload (a block request
//! id or a frame sequence number) and sits in exactly one state:
//!
//! ```text
//!  Free ─submit→ Avail ─pop_avail→ InFlight ─log_complete→ Logged
//!    ↑                                                        │
//!    └────────────── deliver ←─ Used ←─ push_used ────────────┘
//! ```
//!
//! * **Avail** — in the guest→device available ring, awaiting the device.
//! * **InFlight** — popped by the device model, being processed.
//! * **Logged** — completion recorded in the device's completion log but
//!   not yet published to the used ring (the window the paper's batched
//!   completion logging closes for hypercalls, reproduced here for rings).
//! * **Used** — published in the device→guest used ring, interrupt not yet
//!   delivered / not yet consumed by the guest.
//!
//! All cursors (`avail_idx`, `used_idx`, …) are free-running `u64`s, as in
//! real virtio; ring slots are the cursor modulo [`QUEUE_SIZE`]. The two
//! pinned invariants (see [`Virtqueue::check_invariants`]):
//! `used_idx <= avail_idx`, and no descriptor is in two ring windows at
//! once (in particular never both in-flight and completed).
//!
//! # Devices and the vswitch
//!
//! [`VirtioDevice`] is a virtio-blk (one request queue) or virtio-net (an
//! rx buffer queue + a tx queue) function assigned to one guest domain.
//! [`VirtioState`] owns all devices plus the virtual switch: a port map
//! forwarding each net device's tx frames into its peer's rx queue (or
//! looping back to its own when unconnected). Everything is fixed-capacity
//! after setup — the datapath (`submit`/`pop_avail`/…/`deliver`) performs
//! no heap allocation, which the `nlh-bench` zero-alloc guard pins.
//!
//! # Repair
//!
//! [`VirtioState::repair`] is the post-microreset ring-consistency pass:
//! it reconciles each queue's used index against the completion log
//! (publishing logged-but-unpublished completions), re-executes
//! request-queue descriptors abandoned in flight (block requests complete
//! administratively, tx frames are re-forwarded through the vswitch), and
//! cancels rx buffers caught mid-fill (returning them to the available
//! ring; the torn frame is dropped). Transmit completions are therefore
//! exactly-once and receive delivery at-most-once across a microreset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nlh_sim::{DomId, IrqVector};

/// Descriptors per virtqueue. Real virtio rings are 256+; 16 keeps the
/// state small enough to clone per trial while still letting many
/// transactions ride the ring concurrently.
pub const QUEUE_SIZE: usize = 16;

/// The receive (buffer) queue of a virtio-net device, and the only queue
/// of a virtio-blk device.
pub const Q_RX: usize = 0;
/// The transmit queue of a virtio-net device.
pub const Q_TX: usize = 1;

/// Where a descriptor currently sits (see the crate docs for the ring
/// diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescState {
    /// Owned by the guest; not in any ring window.
    Free,
    /// In the available ring, waiting for the device.
    Avail,
    /// Popped by the device model; processing in progress.
    InFlight,
    /// Completion recorded in the device's log, not yet published.
    Logged,
    /// Published in the used ring, not yet delivered to the guest.
    Used,
}

/// What a queue's available entries mean — which half of the split driver
/// initiates work on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRole {
    /// Guest-initiated requests (blk requests, net tx frames): an avail
    /// entry is work the device must finish. Repair re-executes these.
    Request,
    /// Guest-posted empty buffers (net rx): an avail entry is *capacity*,
    /// legitimately parked until traffic arrives. Repair must not
    /// force-complete these.
    Buffer,
}

/// One split-ring virtqueue with a per-descriptor state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Virtqueue {
    role: QueueRole,
    payload: [u64; QUEUE_SIZE],
    state: [DescState; QUEUE_SIZE],
    /// Guest→device ring: slots `[avail_head, avail_idx)` hold Avail descs.
    avail_ring: [u8; QUEUE_SIZE],
    avail_head: u64,
    avail_idx: u64,
    /// Device-internal FIFO of in-flight descriptors.
    inflight_ring: [u8; QUEUE_SIZE],
    inflight_head: u64,
    inflight_idx: u64,
    /// Completion log: completed but not yet published to the used ring.
    log_ring: [u8; QUEUE_SIZE],
    log_head: u64,
    log_idx: u64,
    /// Device→guest ring: slots `[used_head, used_idx)` hold Used descs.
    used_ring: [u8; QUEUE_SIZE],
    used_head: u64,
    used_idx: u64,
}

impl Virtqueue {
    /// An empty queue; every descriptor starts Free.
    pub fn new(role: QueueRole) -> Self {
        Virtqueue {
            role,
            payload: [0; QUEUE_SIZE],
            state: [DescState::Free; QUEUE_SIZE],
            avail_ring: [0; QUEUE_SIZE],
            avail_head: 0,
            avail_idx: 0,
            inflight_ring: [0; QUEUE_SIZE],
            inflight_head: 0,
            inflight_idx: 0,
            log_ring: [0; QUEUE_SIZE],
            log_head: 0,
            log_idx: 0,
            used_ring: [0; QUEUE_SIZE],
            used_head: 0,
            used_idx: 0,
        }
    }

    /// This queue's role.
    pub fn role(&self) -> QueueRole {
        self.role
    }

    /// Free-running guest submission cursor.
    pub fn avail_idx(&self) -> u64 {
        self.avail_idx
    }

    /// Free-running device publish cursor.
    pub fn used_idx(&self) -> u64 {
        self.used_idx
    }

    /// Available entries not yet popped by the device.
    pub fn avail_pending(&self) -> u64 {
        self.avail_idx - self.avail_head
    }

    /// Descriptors popped but neither logged nor published.
    pub fn in_flight(&self) -> u64 {
        self.inflight_idx - self.inflight_head
    }

    /// Completions logged but not yet published to the used ring.
    pub fn logged_unpublished(&self) -> u64 {
        self.log_idx - self.log_head
    }

    /// Used entries published but not yet delivered to the guest.
    pub fn undelivered(&self) -> u64 {
        self.used_idx - self.used_head
    }

    /// Descriptors in the Free state.
    pub fn free_slots(&self) -> usize {
        self.state.iter().filter(|s| **s == DescState::Free).count()
    }

    /// The payload of a descriptor (valid for any non-Free descriptor).
    pub fn payload(&self, desc: u8) -> u64 {
        self.payload[desc as usize]
    }

    /// Guest side: place a payload in a free descriptor and push it onto
    /// the available ring. Returns the descriptor index, or `None` when
    /// the ring is full.
    pub fn submit(&mut self, payload: u64) -> Option<u8> {
        let desc = self.state.iter().position(|s| *s == DescState::Free)? as u8;
        self.payload[desc as usize] = payload;
        self.state[desc as usize] = DescState::Avail;
        self.avail_ring[(self.avail_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.avail_idx += 1;
        Some(desc)
    }

    /// Device side: pop the oldest available descriptor into InFlight.
    pub fn pop_avail(&mut self) -> Option<u8> {
        if self.avail_head == self.avail_idx {
            return None;
        }
        let desc = self.avail_ring[(self.avail_head % QUEUE_SIZE as u64) as usize];
        self.avail_head += 1;
        debug_assert_eq!(self.state[desc as usize], DescState::Avail);
        self.state[desc as usize] = DescState::InFlight;
        self.inflight_ring[(self.inflight_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.inflight_idx += 1;
        Some(desc)
    }

    /// The oldest in-flight descriptor, if any (the one the device model
    /// is working on).
    pub fn peek_inflight(&self) -> Option<u8> {
        if self.inflight_head == self.inflight_idx {
            return None;
        }
        Some(self.inflight_ring[(self.inflight_head % QUEUE_SIZE as u64) as usize])
    }

    /// Device side: record the oldest in-flight descriptor's completion in
    /// the log (not yet visible to the guest).
    pub fn log_complete(&mut self) -> Option<u8> {
        if self.inflight_head == self.inflight_idx {
            return None;
        }
        let desc = self.inflight_ring[(self.inflight_head % QUEUE_SIZE as u64) as usize];
        self.inflight_head += 1;
        debug_assert_eq!(self.state[desc as usize], DescState::InFlight);
        self.state[desc as usize] = DescState::Logged;
        self.log_ring[(self.log_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.log_idx += 1;
        Some(desc)
    }

    /// Device side: publish the oldest logged completion to the used ring.
    pub fn push_used(&mut self) -> Option<u8> {
        if self.log_head == self.log_idx {
            return None;
        }
        let desc = self.log_ring[(self.log_head % QUEUE_SIZE as u64) as usize];
        self.log_head += 1;
        debug_assert_eq!(self.state[desc as usize], DescState::Logged);
        self.state[desc as usize] = DescState::Used;
        self.used_ring[(self.used_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.used_idx += 1;
        Some(desc)
    }

    /// Guest side: consume the oldest used entry. The descriptor returns
    /// to Free; its payload is returned alongside its index.
    pub fn deliver(&mut self) -> Option<(u8, u64)> {
        if self.used_head == self.used_idx {
            return None;
        }
        let desc = self.used_ring[(self.used_head % QUEUE_SIZE as u64) as usize];
        self.used_head += 1;
        debug_assert_eq!(self.state[desc as usize], DescState::Used);
        self.state[desc as usize] = DescState::Free;
        Some((desc, self.payload[desc as usize]))
    }

    /// Repair: publish an in-flight descriptor straight to the used ring,
    /// bypassing the (abandoned) log step. Used when repair re-executes a
    /// request caught mid-transaction.
    fn force_complete(&mut self, desc: u8) {
        debug_assert_eq!(self.state[desc as usize], DescState::InFlight);
        self.state[desc as usize] = DescState::Used;
        self.used_ring[(self.used_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.used_idx += 1;
    }

    /// Repair: pop the oldest in-flight descriptor without completing it.
    fn take_inflight(&mut self) -> Option<u8> {
        if self.inflight_head == self.inflight_idx {
            return None;
        }
        let desc = self.inflight_ring[(self.inflight_head % QUEUE_SIZE as u64) as usize];
        self.inflight_head += 1;
        Some(desc)
    }

    /// Repair: return a cancelled in-flight descriptor to the available
    /// ring (an rx buffer whose fill was abandoned; the torn frame is
    /// dropped, the capacity is not).
    fn requeue(&mut self, desc: u8) {
        debug_assert_eq!(self.state[desc as usize], DescState::InFlight);
        self.payload[desc as usize] = 0;
        self.state[desc as usize] = DescState::Avail;
        self.avail_ring[(self.avail_idx % QUEUE_SIZE as u64) as usize] = desc;
        self.avail_idx += 1;
    }

    /// Checks the two pinned ring invariants plus full window/state
    /// consistency; returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.used_idx > self.avail_idx {
            return Err(format!(
                "used_idx {} > avail_idx {}",
                self.used_idx, self.avail_idx
            ));
        }
        let windows: [(&str, &[u8; QUEUE_SIZE], u64, u64, DescState); 4] = [
            (
                "avail",
                &self.avail_ring,
                self.avail_head,
                self.avail_idx,
                DescState::Avail,
            ),
            (
                "inflight",
                &self.inflight_ring,
                self.inflight_head,
                self.inflight_idx,
                DescState::InFlight,
            ),
            (
                "log",
                &self.log_ring,
                self.log_head,
                self.log_idx,
                DescState::Logged,
            ),
            (
                "used",
                &self.used_ring,
                self.used_head,
                self.used_idx,
                DescState::Used,
            ),
        ];
        let mut seen = [false; QUEUE_SIZE];
        for (name, ring, head, idx, want) in windows {
            if idx - head > QUEUE_SIZE as u64 {
                return Err(format!("{name} window longer than the ring"));
            }
            for i in head..idx {
                let desc = ring[(i % QUEUE_SIZE as u64) as usize] as usize;
                if seen[desc] {
                    // In particular: a descriptor both in-flight and
                    // completed would trip here.
                    return Err(format!("desc {desc} in two ring windows ({name})"));
                }
                seen[desc] = true;
                if self.state[desc] != want {
                    return Err(format!(
                        "desc {desc} in {name} window but state {:?}",
                        self.state[desc]
                    ));
                }
            }
        }
        for (desc, s) in self.state.iter().enumerate() {
            if *s != DescState::Free && !seen[desc] {
                return Err(format!("desc {desc} state {s:?} but in no window"));
            }
        }
        Ok(())
    }
}

/// The device function a [`VirtioDevice`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtioDeviceKind {
    /// virtio-blk: one request queue backed by the PrivVM's grant-backed
    /// block segments.
    Blk,
    /// virtio-net: an rx buffer queue and a tx queue, attached to the
    /// vswitch.
    Net,
}

/// One virtio device function, assigned to a guest domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioDevice {
    /// The owning guest.
    pub dom: DomId,
    /// Blk or net.
    pub kind: VirtioDeviceKind,
    /// The interrupt vector this device raises (assigned by the
    /// hypervisor at creation).
    pub vector: IrqVector,
    /// `queues[Q_RX]` and, for net, `queues[Q_TX]`. Blk uses `Q_RX` as its
    /// single request queue.
    pub queues: [Virtqueue; 2],
}

impl VirtioDevice {
    /// Creates a device. Net devices pre-post every rx descriptor as an
    /// empty receive buffer, as a real driver does at probe time.
    pub fn new(dom: DomId, kind: VirtioDeviceKind, vector: IrqVector) -> Self {
        let queues = match kind {
            VirtioDeviceKind::Blk => [
                Virtqueue::new(QueueRole::Request),
                Virtqueue::new(QueueRole::Request),
            ],
            VirtioDeviceKind::Net => [
                Virtqueue::new(QueueRole::Buffer),
                Virtqueue::new(QueueRole::Request),
            ],
        };
        let mut dev = VirtioDevice {
            dom,
            kind,
            vector,
            queues,
        };
        if kind == VirtioDeviceKind::Net {
            while dev.queues[Q_RX].submit(0).is_some() {}
        }
        dev
    }

    /// Used entries not yet delivered to the guest, over all queues.
    pub fn undelivered(&self) -> u64 {
        self.queues.iter().map(|q| q.undelivered()).sum()
    }

    /// Checks every queue's invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, q) in self.queues.iter().enumerate() {
            q.check_invariants()
                .map_err(|e| format!("dom{} queue {i}: {e}", self.dom.index()))?;
        }
        Ok(())
    }
}

/// Counters of one ring-consistency repair pass (reported in the recovery
/// step and the campaign telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtioRepair {
    /// Logged completions published to their used ring (used-index vs
    /// completion-log reconciliation).
    pub republished: u64,
    /// Abandoned request descriptors re-executed to completion (blk
    /// requests completed administratively, tx frames re-forwarded).
    pub reprocessed: u64,
    /// Rx buffers caught mid-fill, cancelled and returned to the
    /// available ring (the torn frame is dropped).
    pub cancelled: u64,
}

impl VirtioRepair {
    /// Total ring entries the pass touched.
    pub fn total(&self) -> u64 {
        self.republished + self.reprocessed + self.cancelled
    }
}

/// All virtio devices of one machine, plus the virtual switch connecting
/// the net devices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtioState {
    /// The device functions, in creation order.
    pub devices: Vec<VirtioDevice>,
    /// vswitch port map: `peers[i]` is the device index tx frames of
    /// device `i` are forwarded to. `None` loops back to device `i`'s own
    /// rx queue (an unconnected port under test).
    pub peers: Vec<Option<usize>>,
    /// Frames forwarded guest-to-guest through the vswitch.
    pub forwarded: u64,
    /// Frames dropped because the destination rx ring had no buffer.
    pub dropped_no_buffer: u64,
    /// Frames dropped by repair (rx fill abandoned mid-transaction).
    pub dropped_torn: u64,
}

impl VirtioState {
    /// No devices.
    pub fn new() -> Self {
        VirtioState::default()
    }

    /// Whether any devices exist (the recovery gate: repair must be a
    /// no-op on machines without virtio devices).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Adds a device, returning its index.
    pub fn add_device(&mut self, dev: VirtioDevice) -> usize {
        self.devices.push(dev);
        self.peers.push(None);
        self.devices.len() - 1
    }

    /// Cross-connects two vswitch ports: `a`'s tx goes to `b`'s rx and
    /// vice versa.
    pub fn connect(&mut self, a: usize, b: usize) {
        self.peers[a] = Some(b);
        self.peers[b] = Some(a);
    }

    /// The device owned by `dom`, if any.
    pub fn device_for_dom(&self, dom: DomId) -> Option<usize> {
        self.devices.iter().position(|d| d.dom == dom)
    }

    /// The vswitch destination of device `dev`'s tx frames.
    pub fn peer_of(&self, dev: usize) -> usize {
        self.peers[dev].unwrap_or(dev)
    }

    /// Device-model work on the oldest in-flight descriptor of
    /// `(dev, q)`. Blk requests need no ring mutation (the storage latency
    /// is modelled by the surrounding micro-ops); net tx frames are
    /// forwarded through the vswitch into the peer's rx queue — popping an
    /// rx buffer into InFlight with the frame as payload, or dropping the
    /// frame when no buffer is available.
    pub fn device_work(&mut self, dev: usize, q: usize) {
        let Some(desc) = self.devices[dev].queues[q].peek_inflight() else {
            return;
        };
        if self.devices[dev].kind == VirtioDeviceKind::Net && q == Q_TX {
            let frame = self.devices[dev].queues[q].payload(desc);
            self.forward(dev, frame);
        }
    }

    /// Forwards one frame from device `dev` into its peer's rx queue
    /// (fill started: the buffer goes InFlight; publication is separate
    /// micro-ops, so a fault can strike mid-fill).
    fn forward(&mut self, dev: usize, frame: u64) {
        let peer = self.peer_of(dev);
        match self.devices[peer].queues[Q_RX].pop_avail() {
            Some(buf) => {
                self.devices[peer].queues[Q_RX].payload[buf as usize] = frame;
                self.forwarded += 1;
            }
            None => self.dropped_no_buffer += 1,
        }
    }

    /// The post-microreset ring-consistency pass (the
    /// `virtqueue_consistency` enhancement). See the crate docs for the
    /// algorithm; returns what it touched. Idempotent: a second pass on a
    /// repaired state touches nothing.
    pub fn repair(&mut self) -> VirtioRepair {
        let mut r = VirtioRepair::default();
        // 1. Reconcile used index vs completion log: publish every logged
        //    completion (the work was done; only publication was lost).
        for dev in &mut self.devices {
            for q in &mut dev.queues {
                while q.push_used().is_some() {
                    r.republished += 1;
                }
            }
        }
        // 2. Cancel rx buffers caught mid-fill. Their frame may be torn,
        //    so the buffer returns to the available ring and the frame is
        //    dropped (at-most-once delivery across recovery).
        for dev in &mut self.devices {
            let rx = &mut dev.queues[Q_RX];
            if rx.role() == QueueRole::Buffer {
                while let Some(desc) = rx.take_inflight() {
                    rx.requeue(desc);
                    r.cancelled += 1;
                    self.dropped_torn += 1;
                }
            }
        }
        // 3. Re-execute abandoned requests: anything in flight, plus
        //    anything still available whose kick was discarded before the
        //    device popped it. Tx frames re-forward through the vswitch
        //    (into rings step 2 already made consistent); completions are
        //    published directly (tx completion is exactly-once).
        for dev in 0..self.devices.len() {
            for q in 0..self.devices[dev].queues.len() {
                if self.devices[dev].queues[q].role() != QueueRole::Request {
                    continue;
                }
                loop {
                    let desc = match self.devices[dev].queues[q].take_inflight() {
                        Some(d) => Some(d),
                        None => self.devices[dev].queues[q].pop_avail().inspect(|&d| {
                            // pop_avail moved it into the in-flight FIFO;
                            // consume that entry so the windows stay
                            // disjoint.
                            let taken = self.devices[dev].queues[q].take_inflight();
                            debug_assert_eq!(taken, Some(d));
                        }),
                    };
                    let Some(desc) = desc else { break };
                    if self.devices[dev].kind == VirtioDeviceKind::Net && q == Q_TX {
                        let frame = self.devices[dev].queues[q].payload(desc);
                        self.forward(dev, frame);
                        // Publish the peer-side fill immediately: repair
                        // runs with the machine parked, so the usual
                        // log/publish micro-ops cannot run.
                        let peer = self.peer_of(dev);
                        while self.devices[peer].queues[Q_RX].log_complete().is_some() {}
                        while self.devices[peer].queues[Q_RX].push_used().is_some() {}
                    }
                    self.devices[dev].queues[q].force_complete(desc);
                    r.reprocessed += 1;
                }
            }
        }
        r
    }

    /// Checks every device's ring invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for dev in &self.devices {
            dev.check_invariants()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk() -> VirtioState {
        let mut s = VirtioState::new();
        s.add_device(VirtioDevice::new(
            DomId(1),
            VirtioDeviceKind::Blk,
            IrqVector(2),
        ));
        s
    }

    /// Two net devices cross-connected through the vswitch.
    fn net_pair() -> VirtioState {
        let mut s = VirtioState::new();
        let a = s.add_device(VirtioDevice::new(
            DomId(1),
            VirtioDeviceKind::Net,
            IrqVector(1),
        ));
        let b = s.add_device(VirtioDevice::new(
            DomId(2),
            VirtioDeviceKind::Net,
            IrqVector(1),
        ));
        s.connect(a, b);
        s
    }

    /// Runs a full transaction on (dev, q) the way the notify program's
    /// micro-ops do.
    fn full_transaction(s: &mut VirtioState, dev: usize, q: usize, payload: u64) {
        s.devices[dev].queues[q].submit(payload).unwrap();
        s.devices[dev].queues[q].pop_avail().unwrap();
        s.device_work(dev, q);
        s.devices[dev].queues[q].log_complete().unwrap();
        s.devices[dev].queues[q].push_used().unwrap();
    }

    #[test]
    fn blk_transaction_round_trips() {
        let mut s = blk();
        full_transaction(&mut s, 0, Q_RX, 77);
        let (_, payload) = s.devices[0].queues[Q_RX].deliver().unwrap();
        assert_eq!(payload, 77);
        assert_eq!(s.devices[0].queues[Q_RX].free_slots(), QUEUE_SIZE);
        s.check_invariants().unwrap();
    }

    #[test]
    fn ring_fills_and_rejects_overflow() {
        let mut q = Virtqueue::new(QueueRole::Request);
        for i in 0..QUEUE_SIZE as u64 {
            assert!(q.submit(i).is_some());
        }
        assert_eq!(q.submit(99), None);
        assert_eq!(q.avail_idx(), QUEUE_SIZE as u64);
        q.check_invariants().unwrap();
    }

    #[test]
    fn vswitch_forwards_between_peers() {
        let mut s = net_pair();
        full_transaction(&mut s, 0, Q_TX, 1001);
        // Publish the peer-side fill (as the notify program's trailing
        // micro-ops do).
        s.devices[1].queues[Q_RX].log_complete().unwrap();
        s.devices[1].queues[Q_RX].push_used().unwrap();
        assert_eq!(s.forwarded, 1);
        let (_, frame) = s.devices[1].queues[Q_RX].deliver().unwrap();
        assert_eq!(frame, 1001);
        s.check_invariants().unwrap();
    }

    #[test]
    fn unconnected_port_loops_back() {
        let mut s = VirtioState::new();
        s.add_device(VirtioDevice::new(
            DomId(1),
            VirtioDeviceKind::Net,
            IrqVector(1),
        ));
        full_transaction(&mut s, 0, Q_TX, 5);
        s.devices[0].queues[Q_RX].log_complete().unwrap();
        s.devices[0].queues[Q_RX].push_used().unwrap();
        let (_, frame) = s.devices[0].queues[Q_RX].deliver().unwrap();
        assert_eq!(frame, 5);
    }

    #[test]
    fn forward_without_rx_buffers_drops() {
        let mut s = net_pair();
        // Exhaust the peer's rx buffers.
        while s.devices[1].queues[Q_RX].pop_avail().is_some() {}
        full_transaction(&mut s, 0, Q_TX, 1);
        assert_eq!(s.dropped_no_buffer, 1);
        assert_eq!(s.forwarded, 0);
    }

    #[test]
    fn repair_publishes_logged_unpublished() {
        let mut s = blk();
        let q = &mut s.devices[0].queues[Q_RX];
        q.submit(1).unwrap();
        q.pop_avail().unwrap();
        q.log_complete().unwrap();
        // Abandoned before push_used.
        let r = s.repair();
        assert_eq!(r.republished, 1);
        assert_eq!(s.devices[0].queues[Q_RX].undelivered(), 1);
        s.check_invariants().unwrap();
        assert_eq!(s.repair(), VirtioRepair::default(), "repair is idempotent");
    }

    #[test]
    fn repair_reexecutes_inflight_requests() {
        let mut s = blk();
        let q = &mut s.devices[0].queues[Q_RX];
        q.submit(7).unwrap();
        q.pop_avail().unwrap();
        // Abandoned mid-processing.
        let r = s.repair();
        assert_eq!(r.reprocessed, 1);
        let (_, payload) = s.devices[0].queues[Q_RX].deliver().unwrap();
        assert_eq!(payload, 7, "request completed with its own payload");
    }

    #[test]
    fn repair_drains_unpopped_requests() {
        let mut s = blk();
        s.devices[0].queues[Q_RX].submit(9).unwrap();
        // Kick discarded before the device popped the descriptor.
        let r = s.repair();
        assert_eq!(r.reprocessed, 1);
        assert_eq!(s.devices[0].queues[Q_RX].undelivered(), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn repair_cancels_torn_rx_fill() {
        let mut s = net_pair();
        // A tx whose forward started (peer rx buffer popped, payload
        // written) but whose completion micro-ops were all abandoned.
        s.devices[0].queues[Q_TX].submit(42).unwrap();
        s.devices[0].queues[Q_TX].pop_avail().unwrap();
        s.device_work(0, Q_TX);
        let before = s.devices[1].queues[Q_RX].avail_pending();
        let r = s.repair();
        // The torn rx fill is cancelled, then the tx re-executes and
        // re-forwards into the freshly returned buffer.
        assert_eq!(r.cancelled, 1);
        assert_eq!(r.reprocessed, 1);
        assert_eq!(s.dropped_torn, 1);
        assert_eq!(s.devices[0].queues[Q_TX].undelivered(), 1);
        assert_eq!(s.devices[1].queues[Q_RX].undelivered(), 1);
        assert_eq!(
            s.devices[1].queues[Q_RX].avail_pending(),
            before,
            "cancel returned one buffer, the re-forwarded frame took one"
        );
        s.check_invariants().unwrap();
    }

    #[test]
    fn repair_on_empty_state_is_noop() {
        let mut s = VirtioState::new();
        assert_eq!(s.repair(), VirtioRepair::default());
        let mut s = net_pair();
        assert_eq!(s.repair().total(), 0, "quiescent rings need no repair");
    }

    #[test]
    fn used_never_exceeds_avail() {
        let mut s = net_pair();
        for i in 0..40 {
            full_transaction(&mut s, 0, Q_TX, i);
            while s.devices[1].queues[Q_RX].log_complete().is_some() {}
            while s.devices[1].queues[Q_RX].push_used().is_some() {}
            while let Some((_, _)) = s.devices[1].queues[Q_RX].deliver() {
                // Guest reposts the buffer immediately.
                s.devices[1].queues[Q_RX].submit(0).unwrap();
            }
            s.devices[0].queues[Q_TX].deliver().unwrap();
            for d in &s.devices {
                for q in &d.queues {
                    assert!(q.used_idx() <= q.avail_idx());
                }
            }
        }
        s.check_invariants().unwrap();
    }
}
