//! Property tests pinning the virtqueue ring invariants.
//!
//! After *any* interleaving of guest submissions, device-side transaction
//! micro-steps (pop / work / log / publish), guest deliveries and an
//! injected microreset (= abandon the transaction wherever it stands and
//! run the ring-consistency repair):
//!
//! * `used_idx <= avail_idx` on every queue,
//! * no descriptor sits in two ring windows at once (in particular never
//!   both in-flight and completed),
//! * repair is idempotent and leaves no in-flight or logged residue,
//! * every tx submission completes exactly once (payload conservation).

use nlh_sim::{DomId, IrqVector};
use nlh_virtio::{VirtioDevice, VirtioDeviceKind, VirtioState, Q_RX, Q_TX};
use proptest::prelude::*;

/// One step of the abstract guest/device/fault interleaving.
#[derive(Debug, Clone, Copy)]
enum RingOp {
    /// Guest submits a tx frame (next sequence number) on device `d`.
    Submit(u8),
    /// Device pops the oldest available tx descriptor.
    PopAvail(u8),
    /// Device-model work (vswitch forward) on the oldest in-flight desc.
    Work(u8),
    /// Device logs the oldest in-flight completion.
    LogComplete(u8),
    /// Device publishes the oldest logged completion (tx side).
    PushUsed(u8),
    /// Peer-side publish of a forwarded rx fill.
    PublishRx(u8),
    /// Guest consumes used entries (tx completions and rx frames),
    /// reposting rx buffers.
    Deliver(u8),
    /// Microreset strikes: the transaction is abandoned exactly here and
    /// the ring-consistency repair runs.
    Microreset,
}

fn ring_op_strategy() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        any::<u8>().prop_map(RingOp::Submit),
        any::<u8>().prop_map(RingOp::PopAvail),
        any::<u8>().prop_map(RingOp::Work),
        any::<u8>().prop_map(RingOp::LogComplete),
        any::<u8>().prop_map(RingOp::PushUsed),
        any::<u8>().prop_map(RingOp::PublishRx),
        any::<u8>().prop_map(RingOp::Deliver),
        Just(RingOp::Microreset),
    ]
}

fn net_pair() -> VirtioState {
    let mut s = VirtioState::new();
    let a = s.add_device(VirtioDevice::new(
        DomId(1),
        VirtioDeviceKind::Net,
        IrqVector(1),
    ));
    let b = s.add_device(VirtioDevice::new(
        DomId(2),
        VirtioDeviceKind::Net,
        IrqVector(1),
    ));
    s.connect(a, b);
    s
}

proptest! {
    /// The two pinned invariants hold after every step of any
    /// interleaving, including mid-transaction microresets.
    #[test]
    fn invariants_hold_under_any_interleaving(
        ops in prop::collection::vec(ring_op_strategy(), 0..300)
    ) {
        let mut s = net_pair();
        let mut next_seq: u64 = 1;
        let mut submitted: u64 = 0;
        let mut tx_completed: u64 = 0;
        for op in ops {
            let d = match op {
                RingOp::Submit(d)
                | RingOp::PopAvail(d)
                | RingOp::Work(d)
                | RingOp::LogComplete(d)
                | RingOp::PushUsed(d)
                | RingOp::PublishRx(d)
                | RingOp::Deliver(d) => (d as usize) % 2,
                RingOp::Microreset => 0,
            };
            match op {
                RingOp::Submit(_) => {
                    if s.devices[d].queues[Q_TX].submit(next_seq).is_some() {
                        next_seq += 1;
                        submitted += 1;
                    }
                }
                RingOp::PopAvail(_) => {
                    s.devices[d].queues[Q_TX].pop_avail();
                }
                RingOp::Work(_) => s.device_work(d, Q_TX),
                RingOp::LogComplete(_) => {
                    s.devices[d].queues[Q_TX].log_complete();
                }
                RingOp::PushUsed(_) => {
                    s.devices[d].queues[Q_TX].push_used();
                }
                RingOp::PublishRx(_) => {
                    s.devices[d].queues[Q_RX].log_complete();
                    s.devices[d].queues[Q_RX].push_used();
                }
                RingOp::Deliver(_) => {
                    while s.devices[d].queues[Q_TX].deliver().is_some() {
                        tx_completed += 1;
                    }
                    while s.devices[d].queues[Q_RX].deliver().is_some() {
                        s.devices[d].queues[Q_RX].submit(0);
                    }
                }
                RingOp::Microreset => {
                    let first = s.repair();
                    let second = s.repair();
                    prop_assert_eq!(second.total(), 0, "repair must be idempotent");
                    // After repair nothing is mid-transaction.
                    for dev in &s.devices {
                        for q in &dev.queues {
                            prop_assert_eq!(q.in_flight(), 0);
                            prop_assert_eq!(q.logged_unpublished(), 0);
                        }
                    }
                    let _ = first;
                }
            }
            prop_assert!(s.check_invariants().is_ok(), "{:?}", s.check_invariants());
            for dev in &s.devices {
                for q in &dev.queues {
                    prop_assert!(q.used_idx() <= q.avail_idx());
                }
            }
        }
        // Drain to the end: repair + deliver everything, then check that
        // every submitted tx frame completed exactly once.
        s.repair();
        for d in 0..2 {
            while s.devices[d].queues[Q_TX].deliver().is_some() {
                tx_completed += 1;
            }
        }
        prop_assert_eq!(tx_completed, submitted, "tx completion is exactly-once");
    }

    /// A blk request queue under random submit/step/reset interleavings
    /// never loses or duplicates a request completion.
    #[test]
    fn blk_requests_complete_exactly_once(
        ops in prop::collection::vec(ring_op_strategy(), 0..200)
    ) {
        let mut s = VirtioState::new();
        s.add_device(VirtioDevice::new(DomId(1), VirtioDeviceKind::Blk, IrqVector(2)));
        let mut next_req: u64 = 1;
        let mut issued: Vec<u64> = Vec::new();
        let mut done: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                RingOp::Submit(_) => {
                    if s.devices[0].queues[Q_RX].submit(next_req).is_some() {
                        issued.push(next_req);
                        next_req += 1;
                    }
                }
                RingOp::PopAvail(_) => {
                    s.devices[0].queues[Q_RX].pop_avail();
                }
                RingOp::Work(_) => s.device_work(0, Q_RX),
                RingOp::LogComplete(_) => {
                    s.devices[0].queues[Q_RX].log_complete();
                }
                RingOp::PushUsed(_) => {
                    s.devices[0].queues[Q_RX].push_used();
                }
                RingOp::PublishRx(_) | RingOp::Deliver(_) => {
                    while let Some((_, req)) = s.devices[0].queues[Q_RX].deliver() {
                        done.push(req);
                    }
                }
                RingOp::Microreset => {
                    s.repair();
                }
            }
            prop_assert!(s.check_invariants().is_ok());
        }
        s.repair();
        while let Some((_, req)) = s.devices[0].queues[Q_RX].deliver() {
            done.push(req);
        }
        done.sort_unstable();
        issued.sort_unstable();
        prop_assert_eq!(done, issued, "every request completes exactly once");
    }
}
