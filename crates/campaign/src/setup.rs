//! Target-system configurations (Section VI-A).

use nlh_hv::domain::{DomainKind, DomainSpec, GuestProgram};
use nlh_hv::{CpuId, DomId, Hypervisor, MachineConfig};
use nlh_sim::{Pcg64, SimDuration, SimTime};
use nlh_workloads::{BlkBench, NetBench, PrivVmDriver, UnixBench, VirtioBlkBench, VirtioNetBench};
use serde::{Deserialize, Serialize};

/// The synthetic benchmarks (Section VI-A, plus the virtio device-path
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchKind {
    /// Block-device stress.
    BlkBench,
    /// Hypercall/VM-management stress.
    UnixBench,
    /// UDP ping responder (also the latency probe).
    NetBench,
    /// Block-device stress over the virtio-blk descriptor ring.
    VirtioBlkBench,
    /// Paced east-west frames through a virtio-net port (loopback in the
    /// 1AppVM setup, cross-connected in `TwoAppVmVswitch`).
    VirtioNetBench,
}

impl std::fmt::Display for BenchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchKind::BlkBench => write!(f, "BlkBench"),
            BenchKind::UnixBench => write!(f, "UnixBench"),
            BenchKind::NetBench => write!(f, "NetBench"),
            BenchKind::VirtioBlkBench => write!(f, "VirtioBlkBench"),
            BenchKind::VirtioNetBench => write!(f, "VirtioNetBench"),
        }
    }
}

/// The evaluated system configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetupKind {
    /// PrivVM + one AppVM running the given benchmark for ~10 s. Used for
    /// the measurement-driven ladders; "success" means **no** VM affected.
    OneAppVm(BenchKind),
    /// PrivVM + UnixBench AppVM + NetBench AppVM (~24 s); a third,
    /// BlkBench-running AppVM is created after recovery. "Success" means
    /// at most one AppVM affected and the hypervisor still operates
    /// correctly (the new VM can be created and runs to completion).
    ThreeAppVm,
    /// PrivVM + two AppVMs (UnixBench and NetBench) whose vCPUs share one
    /// physical CPU — the paper's future-work configuration ("multiple
    /// vCPUs per CPU"). "Success" means no VM affected, as in the 1AppVM
    /// setup.
    TwoAppVmSharedCpu,
    /// PrivVM + two AppVMs each running [`BenchKind::VirtioNetBench`] on a
    /// virtio-net port, cross-connected through the virtual switch
    /// (east-west traffic). The device-heavy configuration for the
    /// virtqueue-consistency experiments; "success" means no VM affected.
    TwoAppVmVswitch,
    /// PrivVM + `2 * ratio` AppVMs (alternating UnixBench and BlkBench)
    /// multiplexed over two physical CPUs by the credit scheduler — the
    /// N:M overcommit configuration. `Overcommit(1)` is 1:1 (one vCPU per
    /// CPU, still through the credit machinery); `Overcommit(8)` is 8:1.
    /// "Success" means no VM affected, as in the 1AppVM setup.
    Overcommit(u8),
}

impl SetupKind {
    /// Benchmark run length for this setup.
    pub fn bench_duration(self) -> SimDuration {
        match self {
            SetupKind::OneAppVm(_)
            | SetupKind::TwoAppVmSharedCpu
            | SetupKind::TwoAppVmVswitch
            | SetupKind::Overcommit(_) => SimDuration::from_secs(10),
            SetupKind::ThreeAppVm => SimDuration::from_secs(24),
        }
    }

    /// Total simulated trial length (benchmarks + recovery + slack).
    pub fn trial_duration(self) -> SimDuration {
        match self {
            SetupKind::OneAppVm(_)
            | SetupKind::TwoAppVmSharedCpu
            | SetupKind::TwoAppVmVswitch
            | SetupKind::Overcommit(_) => SimDuration::from_secs(13),
            SetupKind::ThreeAppVm => SimDuration::from_secs(27),
        }
    }

    /// The first-level fault-trigger window (Section VI-C): 1AppVM injects
    /// between 10% and 90% of the benchmark run; 3AppVM between 500 ms and
    /// 6 s.
    pub fn trigger_window(self) -> (SimTime, SimTime) {
        match self {
            SetupKind::OneAppVm(_)
            | SetupKind::TwoAppVmSharedCpu
            | SetupKind::TwoAppVmVswitch
            | SetupKind::Overcommit(_) => (SimTime::from_secs(1), SimTime::from_secs(9)),
            SetupKind::ThreeAppVm => (SimTime::from_millis(500), SimTime::from_secs(6)),
        }
    }
}

/// Where everything ended up in a built system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemLayout {
    /// The configuration that was built.
    pub setup: SetupKind,
    /// The initial AppVMs, paired with their benchmark kind.
    pub initial_apps: Vec<(DomId, BenchKind)>,
    /// The benchmark the post-recovery AppVM will run, if scheduled.
    pub post_recovery_app: Option<BenchKind>,
    /// When the PrivVM issues the post-recovery `domctl` create.
    pub create_at: Option<SimTime>,
}

/// Pages allocated to each AppVM.
const APP_PAGES: usize = 192;
/// Pages allocated to the PrivVM.
const PRIV_PAGES: usize = 256;

fn make_bench(kind: BenchKind, seed: u64, dur: SimDuration, tls: f64) -> Box<dyn GuestProgram> {
    match kind {
        BenchKind::BlkBench => Box::new(BlkBench::new(seed, dur, tls)),
        BenchKind::UnixBench => Box::new(UnixBench::new(seed, dur, tls)),
        BenchKind::NetBench => Box::new(NetBench::new(seed, dur, tls)),
        BenchKind::VirtioBlkBench => Box::new(VirtioBlkBench::new(seed, dur, tls)),
        BenchKind::VirtioNetBench => Box::new(VirtioNetBench::new(
            seed,
            dur,
            SimDuration::from_millis(1),
            tls,
        )),
    }
}

/// Builds the target system for a trial.
///
/// The hypervisor is booted, the PrivVM (with the block driver) and the
/// initial AppVMs are created, NetBench traffic is attached when NetBench
/// runs, and — in the 3AppVM configuration — the post-recovery BlkBench
/// AppVM's creation is queued and scheduled on the PrivVM.
pub fn build_system(
    machine: MachineConfig,
    setup: SetupKind,
    seed: u64,
) -> (Hypervisor, SystemLayout) {
    let mut hv = Hypervisor::new(machine, seed);
    // Cold boots pay the full platform bring-up, dominated by the walk over
    // all of RAM (Xen's `bootscrub`). Seed-independent, so a warm-started
    // clone carries the identical scrubbed state without redoing the walk.
    hv.run_boot_scrub();
    let tls = hv.tuning.tls_sensitivity;
    let dur = setup.bench_duration();

    let (create_at, post_recovery_app) = match setup {
        SetupKind::OneAppVm(_)
        | SetupKind::TwoAppVmSharedCpu
        | SetupKind::TwoAppVmVswitch
        | SetupKind::Overcommit(_) => (None, None),
        // "Following recovery, a third AppVM is created": scheduled after
        // the trigger window plus worst-case detection + recovery latency.
        SetupKind::ThreeAppVm => (Some(SimTime::from_secs(9)), Some(BenchKind::BlkBench)),
    };

    hv.add_boot_domain(DomainSpec {
        kind: DomainKind::Priv,
        pages: PRIV_PAGES,
        pinned_cpu: CpuId(0),
        program: Box::new(PrivVmDriver::new(seed ^ 0xD0, create_at)),
    });

    let mut initial_apps = Vec::new();
    match setup {
        SetupKind::TwoAppVmSharedCpu => {
            // Both AppVM vCPUs pinned to CPU 1: the tick scheduler
            // round-robins them.
            let d1 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(1),
                program: make_bench(BenchKind::UnixBench, seed ^ 0xA1, dur, tls),
            });
            initial_apps.push((d1, BenchKind::UnixBench));
            let d2 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(1),
                program: make_bench(BenchKind::NetBench, seed ^ 0xA2, dur, tls),
            });
            initial_apps.push((d2, BenchKind::NetBench));
            hv.attach_net_traffic(d2, SimDuration::from_millis(1));
        }
        SetupKind::OneAppVm(kind) => {
            let dom = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(1),
                program: make_bench(kind, seed ^ 0xA1, dur, tls),
            });
            initial_apps.push((dom, kind));
            match kind {
                BenchKind::NetBench => {
                    hv.attach_net_traffic(dom, SimDuration::from_millis(1));
                }
                BenchKind::VirtioBlkBench => {
                    hv.add_virtio_blk(dom);
                }
                // A single port loops back to itself: tx frames arrive on
                // the same port's rx queue.
                BenchKind::VirtioNetBench => {
                    hv.add_virtio_net(dom);
                }
                _ => {}
            }
        }
        SetupKind::TwoAppVmVswitch => {
            let d1 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(1),
                program: make_bench(BenchKind::VirtioNetBench, seed ^ 0xA1, dur, tls),
            });
            initial_apps.push((d1, BenchKind::VirtioNetBench));
            let d2 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(2),
                program: make_bench(BenchKind::VirtioNetBench, seed ^ 0xA2, dur, tls),
            });
            initial_apps.push((d2, BenchKind::VirtioNetBench));
            let p1 = hv.add_virtio_net(d1);
            let p2 = hv.add_virtio_net(d2);
            hv.connect_vswitch(p1, p2);
        }
        SetupKind::ThreeAppVm => {
            let d1 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(1),
                program: make_bench(BenchKind::UnixBench, seed ^ 0xA1, dur, tls),
            });
            initial_apps.push((d1, BenchKind::UnixBench));
            let d2 = hv.add_boot_domain(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(2),
                program: make_bench(BenchKind::NetBench, seed ^ 0xA2, dur, tls),
            });
            initial_apps.push((d2, BenchKind::NetBench));
            hv.attach_net_traffic(d2, SimDuration::from_millis(1));
            // The post-recovery AppVM: BlkBench for ~10 s on CPU 3.
            hv.queue_domain_creation(DomainSpec {
                kind: DomainKind::App,
                pages: APP_PAGES,
                pinned_cpu: CpuId(3),
                program: make_bench(
                    BenchKind::BlkBench,
                    seed ^ 0xA3,
                    SimDuration::from_secs(10),
                    tls,
                ),
            });
        }
        SetupKind::Overcommit(ratio) => {
            // The credit scheduler multiplexes `2 * ratio` vCPUs over CPUs
            // 1 and 2: load balancing migrates Ready vCPUs between the two
            // and the preemption tick time-slices within each. Alternating
            // home CPUs keeps the boot layout balanced; alternating
            // benchmarks mixes hypercall-heavy and block-heavy pressure.
            let ratio = ratio.max(1) as usize;
            hv.sched.enable_credit(&[CpuId(1), CpuId(2)]);
            for k in 0..2 * ratio {
                let kind = if k % 2 == 0 {
                    BenchKind::UnixBench
                } else {
                    BenchKind::BlkBench
                };
                let cpu = if k % 2 == 0 { CpuId(1) } else { CpuId(2) };
                let d = hv.add_boot_domain(DomainSpec {
                    kind: DomainKind::App,
                    pages: APP_PAGES,
                    pinned_cpu: cpu,
                    program: make_bench(kind, seed ^ (0xA1 + k as u64), dur, tls),
                });
                initial_apps.push((d, kind));
            }
        }
    }
    // Record boot-time I/O APIC configuration (what ReHype's write log
    // reconstructs after the reboot re-initializes the controller).
    hv.ioapic_log = Some(hv.irqs.ioapic_snapshot());

    let layout = SystemLayout {
        setup,
        initial_apps,
        post_recovery_app,
        create_at,
    };
    (hv, layout)
}

/// Re-derives every RNG in a pristine post-boot system from `seed`, exactly
/// mirroring the derivations [`build_system`] applies at construction
/// (PrivVM `seed ^ 0xD0`, AppVMs `seed ^ 0xA1`, `^ 0xA2`, ..., continuing
/// through the queued post-recovery domains).
///
/// Booting performs no simulation steps, so the seed influences nothing but
/// RNG state: a cloned template after `reseed_system(seed)` is
/// indistinguishable from `build_system(.., seed)`. The differential tests
/// in `nlh-campaign` prove this trial-for-trial.
pub fn reseed_system(hv: &mut Hypervisor, seed: u64) {
    hv.rng = Pcg64::seed_from_u64(seed);
    let mut app_idx: u64 = 0;
    for dom in hv.domains.iter_mut() {
        if let Some(p) = dom.program.as_mut() {
            match dom.kind {
                DomainKind::Priv => p.reseed(seed ^ 0xD0),
                DomainKind::App | DomainKind::AppHvm => {
                    app_idx += 1;
                    p.reseed(seed ^ (0xA0 + app_idx));
                }
            }
        }
    }
    for spec in hv.create_queue.iter_mut() {
        app_idx += 1;
        spec.program.reseed(seed ^ (0xA0 + app_idx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_appvm_layout() {
        let (hv, layout) = build_system(
            MachineConfig::small(),
            SetupKind::OneAppVm(BenchKind::UnixBench),
            1,
        );
        assert_eq!(hv.domains.len(), 2);
        assert_eq!(layout.initial_apps.len(), 1);
        assert!(layout.create_at.is_none());
        assert!(hv.net.is_none());
    }

    #[test]
    fn three_appvm_layout() {
        let (hv, layout) = build_system(MachineConfig::small(), SetupKind::ThreeAppVm, 1);
        assert_eq!(hv.domains.len(), 3, "third AppVM not yet created");
        assert_eq!(layout.initial_apps.len(), 2);
        assert_eq!(layout.post_recovery_app, Some(BenchKind::BlkBench));
        assert!(hv.net.is_some(), "NetBench traffic attached");
        assert_eq!(hv.create_queue.len(), 1, "BlkBench VM queued for domctl");
    }

    #[test]
    fn netbench_one_appvm_attaches_traffic() {
        let (hv, _) = build_system(
            MachineConfig::small(),
            SetupKind::OneAppVm(BenchKind::NetBench),
            2,
        );
        assert!(hv.net.is_some());
    }

    #[test]
    fn vswitch_layout_connects_two_ports() {
        let (hv, layout) = build_system(MachineConfig::small(), SetupKind::TwoAppVmVswitch, 4);
        assert_eq!(hv.domains.len(), 3);
        assert_eq!(layout.initial_apps.len(), 2);
        assert_eq!(hv.virtio.devices.len(), 2);
        // Cross-connected: each port's peer is the other one.
        assert_eq!(hv.virtio.peer_of(0), 1);
        assert_eq!(hv.virtio.peer_of(1), 0);
        assert!(hv.net.is_none(), "no legacy NetBench traffic source");
        assert!(layout.create_at.is_none());
    }

    #[test]
    fn one_appvm_virtio_blk_attaches_device() {
        let (hv, _) = build_system(
            MachineConfig::small(),
            SetupKind::OneAppVm(BenchKind::VirtioBlkBench),
            5,
        );
        assert_eq!(hv.virtio.devices.len(), 1);
        assert!(hv.net.is_none());
    }

    #[test]
    fn fault_free_vswitch_run_forwards_frames() {
        let (mut hv, _) = build_system(MachineConfig::small(), SetupKind::TwoAppVmVswitch, 6);
        hv.run_until(SimTime::from_secs(1));
        assert!(hv.detection().is_none(), "{:?}", hv.detection());
        assert!(hv.virtio.forwarded > 0, "east-west frames flowing");
        assert_eq!(hv.virtio.dropped_torn, 0);
    }

    #[test]
    fn trigger_windows_match_paper() {
        let (lo, hi) = SetupKind::ThreeAppVm.trigger_window();
        assert_eq!(lo, SimTime::from_millis(500));
        assert_eq!(hi, SimTime::from_secs(6));
        let (lo, hi) = SetupKind::OneAppVm(BenchKind::BlkBench).trigger_window();
        // 10%..90% of a ~10 s run.
        assert_eq!(lo, SimTime::from_secs(1));
        assert_eq!(hi, SimTime::from_secs(9));
    }

    #[test]
    fn overcommit_layout_builds_ratio_vcpus() {
        let (hv, layout) = build_system(MachineConfig::small(), SetupKind::Overcommit(4), 7);
        assert_eq!(hv.domains.len(), 9, "PrivVM + 2*4 AppVMs");
        assert_eq!(layout.initial_apps.len(), 8);
        assert!(hv.sched.credit_mode(), "credit scheduler enabled");
        assert!(hv.net.is_none());
        assert!(layout.create_at.is_none());
    }

    #[test]
    fn fault_free_overcommit_run_stays_consistent() {
        let (mut hv, _) = build_system(MachineConfig::small(), SetupKind::Overcommit(4), 8);
        hv.run_until(SimTime::from_secs(1));
        assert!(hv.detection().is_none(), "{:?}", hv.detection());
        assert!(hv.sched.check_all().is_ok());
        assert!(hv.domains.iter().all(|d| d.is_active()));
    }

    #[test]
    fn fault_free_three_appvm_run_reaches_creation() {
        let (mut hv, _) = build_system(MachineConfig::small(), SetupKind::ThreeAppVm, 3);
        hv.run_until(SimTime::from_secs(10));
        assert!(hv.detection().is_none(), "{:?}", hv.detection());
        assert_eq!(hv.domains.len(), 4, "BlkBench VM created at 9 s");
        assert!(hv.domains[3].is_active());
    }
}
