//! The Table I enhancement ladder: measurement-driven incremental
//! development of NiLiHype (Section V-B).

use nlh_core::{LadderRung, Microreset};
use nlh_inject::FaultType;
use serde::{Deserialize, Serialize};

use crate::campaign::{run_campaign_with, BootMode, CampaignResult};
use crate::engine::CampaignEngine;
use crate::setup::{BenchKind, SetupKind};
use crate::spec::{CampaignSpec, MechanismSpec};
use crate::stream::NullSink;

/// One row of the reproduced Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderRow {
    /// The rung.
    pub rung: LadderRung,
    /// Campaign results at this rung.
    pub result: CampaignResult,
}

/// Runs the Table I ladder: for each cumulative enhancement rung, a
/// 1AppVM / UnixBench / fail-stop campaign (Section V-B), returning one
/// row per rung.
pub fn run_ladder(trials_per_rung: u64, base_seed: u64) -> Vec<LadderRow> {
    run_ladder_with(trials_per_rung, base_seed, BootMode::Warm)
}

/// [`run_ladder`] with an explicit [`BootMode`] for each rung's campaign.
pub fn run_ladder_with(
    trials_per_rung: u64,
    base_seed: u64,
    boot_mode: BootMode,
) -> Vec<LadderRow> {
    LadderRung::ALL
        .iter()
        .map(|&rung| {
            let result = run_campaign_with(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                trials_per_rung,
                base_seed,
                move || Microreset::with_enhancements(rung.enhancements()),
                boot_mode,
            );
            LadderRow { rung, result }
        })
        .collect()
}

/// [`run_ladder_with`] executed on a resident [`CampaignEngine`]: all
/// eight rung campaigns target the same `(machine, setup)` key, so the
/// engine's shared cache builds the boot template once instead of once
/// per rung. Results are bit-identical to [`run_ladder_with`] (the
/// equivalence suite pins this).
pub fn run_ladder_on(
    engine: &CampaignEngine,
    trials_per_rung: u64,
    base_seed: u64,
    boot_mode: BootMode,
) -> Vec<LadderRow> {
    LadderRung::ALL
        .iter()
        .map(|&rung| {
            let mut spec = CampaignSpec::new(
                format!("ladder-{}", rung.name()),
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                trials_per_rung,
            );
            spec.seed = base_seed;
            spec.mechanism = MechanismSpec::Rung(rung);
            spec.boot = boot_mode;
            let cell = engine.run_spec(&spec, &mut NullSink);
            let result = match cell.output {
                crate::engine::CellOutput::Sharded(r) => r,
                crate::engine::CellOutput::Sampled(_) => unreachable!("ladder cells are sharded"),
            };
            LadderRow { rung, result }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_shape_holds_on_small_samples() {
        // The full calibration lives in the integration tests and
        // experiment binaries; here we sanity-check the two anchors that
        // define the ladder: Basic never succeeds, the top rung mostly
        // succeeds, and the trend is upward overall.
        let rows = run_ladder(30, 11);
        assert_eq!(rows.len(), 8);
        let basic = rows.first().unwrap();
        assert_eq!(
            basic.result.successes, 0,
            "basic microreset must never succeed"
        );
        let top = rows.last().unwrap();
        assert!(
            top.result.success_rate().value() > 0.8,
            "full NiLiHype: {}",
            top.result.success_rate()
        );
        let first_rate = rows[1].result.success_rate().value();
        let top_rate = top.result.success_rate().value();
        assert!(first_rate < top_rate);
    }
}
