//! Divergence bisection: pinpoint the first step where two trials split.
//!
//! Given a recorded failure and a reference trial (typically the same
//! config run fault-free, or the same fault under a different trigger),
//! binary-search for the first micro-op at which their executions diverge.
//! The oracle is the retained unbatched reference stepper
//! ([`run_trial_with`] with `batched = false` and a step limit) plus
//! [`Hypervisor::state_digest`](nlh_hv::Hypervisor::state_digest): run
//! both sides to the same step count from their
//! [`BootCache`] snapshots and compare fingerprints. Determinism makes the
//! predicate monotone — once the executions split they never re-converge
//! on the same fingerprint-by-step schedule — which is what makes binary
//! search sound.

use nlh_core::RecoveryMechanism;

use crate::boot_cache::BootCache;
use crate::trial::{run_trial_with, TrialConfig, TrialRunOptions};

/// Finds the first divergent index with a monotone agreement predicate.
///
/// `agree(k)` must report whether the two executions are identical after
/// `k` steps, with `agree(0) == true` (both start from the same kind of
/// snapshot) and monotonicity: once false, false for all larger `k`.
/// Returns the 0-based index of the first divergent step — the smallest
/// `d` such that `agree(d + 1)` is false — or `None` if the executions
/// agree through `hi` steps.
pub fn first_divergence(hi: u64, mut agree: impl FnMut(u64) -> bool) -> Option<u64> {
    if hi == 0 || agree(hi) {
        return None;
    }
    // Invariant: agree(lo), !agree(hi).
    let mut lo = 0u64;
    let mut hi = hi;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if agree(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi - 1)
}

/// One side of a divergence comparison.
#[derive(Debug, Clone)]
pub struct DivergenceSide {
    /// The trial config this side ran.
    pub config: TrialConfig,
    /// Steps the full trial body executed.
    pub steps: u64,
    /// Machine fingerprint at the end of the full run.
    pub final_digest: u64,
}

/// The outcome of [`bisect_trials`].
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// 0-based index of the first step after which the two machines
    /// fingerprint differently.
    pub divergent_step: u64,
    /// Number of agreement probes the search ran (each probe re-executes
    /// both prefixes).
    pub probes: u32,
    /// The first (e.g. recorded-failure) side.
    pub a: DivergenceSide,
    /// The second (reference) side.
    pub b: DivergenceSide,
}

fn prefix_digest(
    config: &TrialConfig,
    opts: &TrialRunOptions,
    mechanism: &dyn RecoveryMechanism,
    cache: &BootCache,
    limit: Option<u64>,
) -> (u64, u64) {
    let (hv, layout) = cache.checkout(&config.machine, config.setup, config.seed);
    let run_opts = TrialRunOptions {
        batched: false,
        step_limit: limit,
        ..opts.clone()
    };
    let (result, _, hv) = run_trial_with(hv, &layout, config, mechanism, run_opts);
    (hv.state_digest(), result.steps)
}

/// Bisects to the first divergent step between two trials.
///
/// Each side is a trial config plus run options (steered trigger range,
/// or `inject: false` for a fault-free reference). `batched` and
/// `step_limit` in the passed options are ignored: probes always run the
/// unbatched reference stepper with their own limits. Returns `None` when
/// the two executions never diverge (identical step counts and final
/// fingerprints — e.g. a non-manifested injection against its fault-free
/// reference).
pub fn bisect_trials(
    a: (&TrialConfig, &TrialRunOptions),
    b: (&TrialConfig, &TrialRunOptions),
    mechanism: &dyn RecoveryMechanism,
    cache: &BootCache,
) -> Option<BisectReport> {
    let (a_digest, a_steps) = prefix_digest(a.0, a.1, mechanism, cache, None);
    let (b_digest, b_steps) = prefix_digest(b.0, b.1, mechanism, cache, None);
    let side_a = DivergenceSide {
        config: a.0.clone(),
        steps: a_steps,
        final_digest: a_digest,
    };
    let side_b = DivergenceSide {
        config: b.0.clone(),
        steps: b_steps,
        final_digest: b_digest,
    };

    let hi = a_steps.min(b_steps);
    let mut probes = 0u32;
    let divergent = first_divergence(hi, |k| {
        probes += 1;
        let (da, _) = prefix_digest(a.0, a.1, mechanism, cache, Some(k));
        let (db, _) = prefix_digest(b.0, b.1, mechanism, cache, Some(k));
        da == db
    });

    match divergent {
        Some(step) => Some(BisectReport {
            divergent_step: step,
            probes,
            a: side_a,
            b: side_b,
        }),
        None => {
            if a_steps == b_steps && a_digest == b_digest {
                None
            } else {
                // Identical through the shorter run: the divergence is that
                // one side kept going (e.g. the reference ran to the trial
                // end while the failure froze earlier).
                Some(BisectReport {
                    divergent_step: hi,
                    probes,
                    a: side_a,
                    b: side_b,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite's synthetic setup: a recorded micro-op sequence with
    /// one element flipped; `agree(k)` compares prefixes.
    fn bisect_flip(ops: &[u32], flip_at: usize) -> Option<u64> {
        let mut flipped = ops.to_vec();
        flipped[flip_at] ^= 1;
        first_divergence(ops.len() as u64, |k| {
            ops[..k as usize] == flipped[..k as usize]
        })
    }

    #[test]
    fn pins_exactly_the_flipped_index() {
        let ops: Vec<u32> = (0..1000).map(|i| i * 7 % 256).collect();
        for flip in [1usize, 17, 499, 500, 731] {
            assert_eq!(bisect_flip(&ops, flip), Some(flip as u64), "flip {flip}");
        }
    }

    #[test]
    fn divergence_at_step_zero() {
        let ops: Vec<u32> = (0..64).collect();
        assert_eq!(bisect_flip(&ops, 0), Some(0));
    }

    #[test]
    fn divergence_at_final_step() {
        let ops: Vec<u32> = (0..64).collect();
        assert_eq!(bisect_flip(&ops, 63), Some(63));
    }

    #[test]
    fn no_divergence_returns_none() {
        let ops: Vec<u32> = (0..64).collect();
        let same = ops.clone();
        assert_eq!(
            first_divergence(64, |k| ops[..k as usize] == same[..k as usize]),
            None
        );
        assert_eq!(
            first_divergence(0, |_| unreachable!("hi == 0 probes nothing")),
            None
        );
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let n = 1 << 20;
        let mut probes = 0u32;
        let r = first_divergence(n, |k| {
            probes += 1;
            k <= 777_777
        });
        assert_eq!(r, Some(777_777));
        assert!(probes <= 22, "{probes} probes for 2^20 steps");
    }
}
