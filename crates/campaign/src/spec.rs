//! Campaign specifications: the data form of "run this campaign".
//!
//! A [`CampaignSpec`] captures everything a campaign needs — setup, fault,
//! trial budget, mechanism, execution mode, stop policy — as plain data,
//! so whole experiment suites can be expressed as a [`SuiteSpec`] job
//! graph and submitted to the resident [`crate::CampaignEngine`] instead
//! of hand-rolling loops in every experiment binary. Specs parse from a
//! line-oriented manifest format (`SuiteSpec::parse`), the input of the
//! `campaign_server` binary.

use nlh_core::{Enhancements, LadderRung, Microreboot, Microreset, RecoveryMechanism};
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;

use crate::campaign::BootMode;
use crate::coverage::SamplingMode;
use crate::setup::{BenchKind, SetupKind};

/// Which recovery mechanism a spec runs, by construction recipe rather
/// than by trait object, so specs stay plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismSpec {
    /// Full NiLiHype (microreset with every enhancement).
    Nilihype,
    /// Full ReHype (microreboot).
    Rehype,
    /// Microreset capped at a Table I ladder rung (cumulative
    /// enhancements up to and including the rung).
    Rung(LadderRung),
    /// Full NiLiHype minus the scheduling-metadata-consistency rung (the
    /// overcommit campaign's ablation arm).
    NilihypeNoSchedFix,
}

impl MechanismSpec {
    /// Instantiates the mechanism.
    pub fn build(&self) -> Box<dyn RecoveryMechanism> {
        match self {
            MechanismSpec::Nilihype => Box::new(Microreset::nilihype()),
            MechanismSpec::Rehype => Box::new(Microreboot::rehype()),
            MechanismSpec::Rung(rung) => {
                Box::new(Microreset::with_enhancements(rung.enhancements()))
            }
            MechanismSpec::NilihypeNoSchedFix => {
                let mut e = Enhancements::full();
                e.sched_consistency = false;
                Box::new(Microreset::with_enhancements(e))
            }
        }
    }

    /// The manifest name (`NiLiHype`, `ReHype`, `Rung(SchedConsistency)`,
    /// `NiLiHype-NoSchedFix`).
    pub fn manifest_name(&self) -> String {
        match self {
            MechanismSpec::Nilihype => "NiLiHype".into(),
            MechanismSpec::Rehype => "ReHype".into(),
            MechanismSpec::Rung(rung) => format!("Rung({})", rung.name()),
            MechanismSpec::NilihypeNoSchedFix => "NiLiHype-NoSchedFix".into(),
        }
    }

    /// Parses a [`MechanismSpec::manifest_name`].
    pub fn parse(s: &str) -> Option<MechanismSpec> {
        match s {
            "NiLiHype" => Some(MechanismSpec::Nilihype),
            "ReHype" => Some(MechanismSpec::Rehype),
            "NiLiHype-NoSchedFix" => Some(MechanismSpec::NilihypeNoSchedFix),
            _ => {
                let inner = s.strip_prefix("Rung(")?.strip_suffix(')')?;
                LadderRung::from_name(inner).map(MechanismSpec::Rung)
            }
        }
    }
}

/// How the engine executes a spec's trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Shard trials across all cores with per-worker aggregation — the
    /// parallel path, equivalent to [`crate::run_campaign_with`].
    Sharded,
    /// The sequential coverage-map campaign of
    /// [`crate::run_sampled_campaign_steered_depth`]: deterministic
    /// trial-by-trial steering, optionally held for a handler family.
    Sampled {
        /// Trigger-ops strata on the coverage map.
        windows: usize,
        /// Uniform draws or coverage-guided steering.
        sampling: SamplingMode,
        /// Hold the armed injector for this handler family.
        steer_handler: Option<HandlerKind>,
        /// Cycle the in-handler injection depth over `0..depth_cycle`.
        depth_cycle: u64,
    },
}

/// When a cell stops running trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopPolicy {
    /// Run exactly `trials` trials — the deterministic mode every golden
    /// test runs under.
    FixedTrials,
    /// Halt the cell at the first trial count where the recovery rate's
    /// 95% Wilson half-width is at or below `halfwidth` (with at least
    /// `min_detected` detections backing the estimate). Deterministic for
    /// a fixed seed: the stop trial depends only on the seed-ordered
    /// trial outcomes, never on shard interleaving — the engine checks
    /// the crossing on the seed-ordered prefix.
    AtConfidence {
        /// Wilson half-width threshold, in proportion units (e.g. `0.02`
        /// for the paper's ±2%).
        halfwidth: f64,
        /// Minimum detections before the threshold may fire.
        min_detected: u64,
        /// Trials per parallel batch between crossing checks (also the
        /// streaming-snapshot cadence). Clamped to at least 1.
        check_every: u64,
    },
}

/// One campaign cell, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Cell name (job-graph node id, streaming label).
    pub name: String,
    /// Target system configuration.
    pub setup: SetupKind,
    /// Fault type to inject.
    pub fault: FaultType,
    /// Trial budget (the exact count under [`StopPolicy::FixedTrials`],
    /// the cap under [`StopPolicy::AtConfidence`]).
    pub trials: u64,
    /// Base seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Recovery mechanism recipe.
    pub mechanism: MechanismSpec,
    /// Parallel-sharded or sequential-sampled execution.
    pub mode: ExecMode,
    /// Warm-start from the engine's shared boot cache, or cold-boot every
    /// trial (the validation escape hatch).
    pub boot: BootMode,
    /// Stop policy.
    pub stop: StopPolicy,
    /// Emit a streaming telemetry snapshot every this many trials under
    /// [`StopPolicy::FixedTrials`] (`0` = only the final snapshot).
    /// [`StopPolicy::AtConfidence`] snapshots at its own `check_every`
    /// cadence instead.
    pub snapshot_every: u64,
}

impl CampaignSpec {
    /// A sharded, fixed-trials, warm-started NiLiHype cell — the common
    /// case; adjust fields from there.
    pub fn new(name: impl Into<String>, setup: SetupKind, fault: FaultType, trials: u64) -> Self {
        CampaignSpec {
            name: name.into(),
            setup,
            fault,
            trials,
            seed: 2018,
            mechanism: MechanismSpec::Nilihype,
            mode: ExecMode::Sharded,
            boot: BootMode::Warm,
            stop: StopPolicy::FixedTrials,
            snapshot_every: 0,
        }
    }
}

/// One job-graph node: a spec plus the names of jobs that must complete
/// before it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The campaign to run. `spec.name` is the job's graph node id.
    pub spec: CampaignSpec,
    /// Names of jobs this one runs after.
    pub after: Vec<String>,
}

/// A whole experiment suite as a dependency graph of campaign cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SuiteSpec {
    /// The jobs, in submission order (ties in the topological order are
    /// broken by this order, so execution is deterministic).
    pub jobs: Vec<JobSpec>,
}

impl SuiteSpec {
    /// Adds an independent job.
    pub fn push(&mut self, spec: CampaignSpec) {
        self.jobs.push(JobSpec {
            spec,
            after: Vec::new(),
        });
    }

    /// Adds a job that runs after the named jobs.
    pub fn push_after(&mut self, spec: CampaignSpec, after: &[&str]) {
        self.jobs.push(JobSpec {
            spec,
            after: after.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Parses the `campaign_server` manifest format: one `[job NAME]`
    /// header per cell followed by `key = value` lines. `#` starts a
    /// comment; blank lines are ignored.
    ///
    /// Keys: `setup` (e.g. `ThreeAppVm`, `OneAppVm(UnixBench)`,
    /// `Overcommit(4)`), `fault` (`Failstop`/`Register`/`Code`), `trials`,
    /// `seed`, `mechanism` (see [`MechanismSpec::parse`]), `mode`
    /// (`sharded`, the default, or `sampled`), `windows`, `sampling`
    /// (`uniform`/`guided`), `steer` (a handler name), `depth-cycle`,
    /// `boot` (`warm`/`cold`), `stop-halfwidth`, `stop-min-detected`,
    /// `stop-check-every`, `snapshot-every`, `after` (comma-separated job
    /// names).
    pub fn parse(text: &str) -> Result<SuiteSpec, String> {
        let mut suite = SuiteSpec::default();
        let mut current: Option<ManifestJob> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            let err = |msg: String| format!("manifest line {}: {msg}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| err("unterminated [job ...] header".into()))?;
                let name = header
                    .strip_prefix("job ")
                    .ok_or_else(|| err(format!("expected [job NAME], got [{header}]")))?
                    .trim();
                if name.is_empty() {
                    return Err(err("job name is empty".into()));
                }
                if let Some(done) = current.take() {
                    suite.jobs.push(done.finish()?);
                }
                current = Some(ManifestJob::new(name));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected key = value, got {line:?}")))?;
            let job = current
                .as_mut()
                .ok_or_else(|| err("key outside any [job ...] section".into()))?;
            job.set(key.trim(), value.trim())
                .map_err(|m| err(format!("{}: {m}", key.trim())))?;
        }
        if let Some(done) = current.take() {
            suite.jobs.push(done.finish()?);
        }
        Ok(suite)
    }
}

/// Renders a setup the way the manifest parser reads it.
pub fn setup_manifest_name(setup: SetupKind) -> String {
    match setup {
        SetupKind::OneAppVm(bench) => format!("OneAppVm({bench})"),
        SetupKind::ThreeAppVm => "ThreeAppVm".into(),
        SetupKind::TwoAppVmSharedCpu => "TwoAppVmSharedCpu".into(),
        SetupKind::TwoAppVmVswitch => "TwoAppVmVswitch".into(),
        SetupKind::Overcommit(r) => format!("Overcommit({r})"),
    }
}

/// Parses [`setup_manifest_name`]'s output.
pub fn parse_setup(s: &str) -> Option<SetupKind> {
    match s {
        "ThreeAppVm" => return Some(SetupKind::ThreeAppVm),
        "TwoAppVmSharedCpu" => return Some(SetupKind::TwoAppVmSharedCpu),
        "TwoAppVmVswitch" => return Some(SetupKind::TwoAppVmVswitch),
        _ => {}
    }
    if let Some(inner) = s
        .strip_prefix("OneAppVm(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let bench = [
            BenchKind::BlkBench,
            BenchKind::UnixBench,
            BenchKind::NetBench,
            BenchKind::VirtioBlkBench,
            BenchKind::VirtioNetBench,
        ]
        .into_iter()
        .find(|b| b.to_string() == inner)?;
        return Some(SetupKind::OneAppVm(bench));
    }
    if let Some(inner) = s
        .strip_prefix("Overcommit(")
        .and_then(|r| r.strip_suffix(')'))
    {
        return inner.parse().ok().map(SetupKind::Overcommit);
    }
    None
}

/// Parses a [`HandlerKind`] by its display name.
pub fn parse_handler(s: &str) -> Option<HandlerKind> {
    HandlerKind::ALL.into_iter().find(|h| h.to_string() == s)
}

/// A partially parsed manifest job.
struct ManifestJob {
    name: String,
    setup: Option<SetupKind>,
    fault: Option<FaultType>,
    trials: Option<u64>,
    seed: u64,
    mechanism: MechanismSpec,
    sampled: bool,
    windows: usize,
    sampling: SamplingMode,
    steer_handler: Option<HandlerKind>,
    depth_cycle: u64,
    boot: BootMode,
    stop_halfwidth: Option<f64>,
    stop_min_detected: u64,
    stop_check_every: u64,
    snapshot_every: u64,
    after: Vec<String>,
}

impl ManifestJob {
    fn new(name: &str) -> Self {
        ManifestJob {
            name: name.to_string(),
            setup: None,
            fault: None,
            trials: None,
            seed: 2018,
            mechanism: MechanismSpec::Nilihype,
            sampled: false,
            windows: crate::coverage::DEFAULT_OPS_WINDOWS,
            sampling: SamplingMode::CoverageGuided,
            steer_handler: None,
            depth_cycle: 1,
            boot: BootMode::Warm,
            stop_halfwidth: None,
            stop_min_detected: 20,
            stop_check_every: 32,
            snapshot_every: 0,
            after: Vec::new(),
        }
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        let bad = |what: &str| format!("invalid {what} {value:?}");
        match key {
            "setup" => self.setup = Some(parse_setup(value).ok_or_else(|| bad("setup"))?),
            "fault" => self.fault = Some(FaultType::from_name(value).ok_or_else(|| bad("fault"))?),
            "trials" => self.trials = Some(value.parse().map_err(|_| bad("integer"))?),
            "seed" => self.seed = value.parse().map_err(|_| bad("integer"))?,
            "mechanism" => {
                self.mechanism = MechanismSpec::parse(value).ok_or_else(|| bad("mechanism"))?
            }
            "mode" => match value {
                "sharded" => self.sampled = false,
                "sampled" => self.sampled = true,
                _ => return Err(bad("mode (sharded|sampled)")),
            },
            "windows" => self.windows = value.parse().map_err(|_| bad("integer"))?,
            "sampling" => match value {
                "uniform" => self.sampling = SamplingMode::Uniform,
                "guided" => self.sampling = SamplingMode::CoverageGuided,
                _ => return Err(bad("sampling (uniform|guided)")),
            },
            "steer" => {
                self.steer_handler = Some(parse_handler(value).ok_or_else(|| bad("handler"))?)
            }
            "depth-cycle" => self.depth_cycle = value.parse().map_err(|_| bad("integer"))?,
            "boot" => match value {
                "warm" => self.boot = BootMode::Warm,
                "cold" => self.boot = BootMode::Cold,
                _ => return Err(bad("boot (warm|cold)")),
            },
            "stop-halfwidth" => {
                self.stop_halfwidth = Some(value.parse().map_err(|_| bad("number"))?)
            }
            "stop-min-detected" => {
                self.stop_min_detected = value.parse().map_err(|_| bad("integer"))?
            }
            "stop-check-every" => {
                self.stop_check_every = value.parse().map_err(|_| bad("integer"))?
            }
            "snapshot-every" => self.snapshot_every = value.parse().map_err(|_| bad("integer"))?,
            "after" => self
                .after
                .extend(value.split(',').map(|s| s.trim().to_string())),
            _ => return Err("unknown key".into()),
        }
        Ok(())
    }

    fn finish(self) -> Result<JobSpec, String> {
        let missing = |what: &str| format!("job {:?}: missing {what}", self.name);
        let spec = CampaignSpec {
            name: self.name.clone(),
            setup: self.setup.ok_or_else(|| missing("setup"))?,
            fault: self.fault.ok_or_else(|| missing("fault"))?,
            trials: self.trials.ok_or_else(|| missing("trials"))?,
            seed: self.seed,
            mechanism: self.mechanism,
            mode: if self.sampled {
                ExecMode::Sampled {
                    windows: self.windows,
                    sampling: self.sampling,
                    steer_handler: self.steer_handler,
                    depth_cycle: self.depth_cycle,
                }
            } else {
                ExecMode::Sharded
            },
            boot: self.boot,
            stop: match self.stop_halfwidth {
                Some(halfwidth) => StopPolicy::AtConfidence {
                    halfwidth,
                    min_detected: self.stop_min_detected,
                    check_every: self.stop_check_every,
                },
                None => StopPolicy::FixedTrials,
            },
            snapshot_every: self.snapshot_every,
        };
        Ok(JobSpec {
            spec,
            after: self.after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_names_round_trip() {
        for setup in [
            SetupKind::OneAppVm(BenchKind::UnixBench),
            SetupKind::OneAppVm(BenchKind::VirtioNetBench),
            SetupKind::ThreeAppVm,
            SetupKind::TwoAppVmSharedCpu,
            SetupKind::TwoAppVmVswitch,
            SetupKind::Overcommit(4),
        ] {
            assert_eq!(parse_setup(&setup_manifest_name(setup)), Some(setup));
        }
        assert_eq!(parse_setup("FourAppVm"), None);
        assert_eq!(parse_setup("Overcommit(x)"), None);
    }

    #[test]
    fn mechanism_names_round_trip() {
        for mech in [
            MechanismSpec::Nilihype,
            MechanismSpec::Rehype,
            MechanismSpec::Rung(LadderRung::SchedConsistency),
            MechanismSpec::NilihypeNoSchedFix,
        ] {
            assert_eq!(MechanismSpec::parse(&mech.manifest_name()), Some(mech));
        }
        assert_eq!(MechanismSpec::parse("Rung(Nope)"), None);
    }

    #[test]
    fn handler_names_parse() {
        assert_eq!(parse_handler("VirtioMmio"), Some(HandlerKind::VirtioMmio));
        assert_eq!(parse_handler("Scheduler"), Some(HandlerKind::Scheduler));
        assert_eq!(parse_handler("nope"), None);
    }

    #[test]
    fn manifest_parses_a_two_job_graph() {
        let text = "
# a tiny suite
[job off]
setup = TwoAppVmVswitch
fault = Failstop
trials = 5
seed = 7
mechanism = Rung(ReactivateTimerEvents)
mode = sampled
steer = VirtioMmio

[job on]
setup = TwoAppVmVswitch
fault = Failstop
trials = 5
seed = 7
mechanism = Rung(VirtqueueConsistency)
mode = sampled
steer = VirtioMmio
after = off
";
        let suite = SuiteSpec::parse(text).expect("parses");
        assert_eq!(suite.jobs.len(), 2);
        assert_eq!(suite.jobs[0].spec.name, "off");
        assert!(suite.jobs[0].after.is_empty());
        assert_eq!(suite.jobs[1].after, vec!["off".to_string()]);
        assert_eq!(
            suite.jobs[1].spec.mechanism,
            MechanismSpec::Rung(LadderRung::VirtqueueConsistency)
        );
        match suite.jobs[1].spec.mode {
            ExecMode::Sampled { steer_handler, .. } => {
                assert_eq!(steer_handler, Some(HandlerKind::VirtioMmio));
            }
            ref m => panic!("expected sampled mode, got {m:?}"),
        }
    }

    #[test]
    fn manifest_stop_policy_and_defaults() {
        let text = "
[job cell]
setup = OneAppVm(UnixBench)
fault = Register
trials = 100
stop-halfwidth = 0.05
stop-min-detected = 5
stop-check-every = 10
";
        let suite = SuiteSpec::parse(text).unwrap();
        let spec = &suite.jobs[0].spec;
        assert_eq!(spec.seed, 2018, "default seed");
        assert_eq!(spec.mechanism, MechanismSpec::Nilihype, "default mechanism");
        assert_eq!(spec.mode, ExecMode::Sharded, "default mode");
        assert_eq!(spec.boot, BootMode::Warm, "default boot");
        assert_eq!(
            spec.stop,
            StopPolicy::AtConfidence {
                halfwidth: 0.05,
                min_detected: 5,
                check_every: 10
            }
        );
    }

    #[test]
    fn manifest_rejects_malformed_input() {
        assert!(
            SuiteSpec::parse("setup = ThreeAppVm").is_err(),
            "key outside job"
        );
        assert!(SuiteSpec::parse("[job a]\nsetup = Nope\nfault = Code\ntrials = 1").is_err());
        assert!(
            SuiteSpec::parse("[job a]\nfault = Code\ntrials = 1").is_err(),
            "missing setup"
        );
        assert!(SuiteSpec::parse("[job a]\nwat").is_err(), "not key = value");
        assert!(SuiteSpec::parse("[job a]\nsetup = ThreeAppVm\nbogus = 1").is_err());
    }
}
