//! Per-trial event log: compact records of what a trial did, cheap enough
//! to stay on by default.
//!
//! A fault-injection campaign's most valuable trials are the rare residual
//! failures, and before this module they evaporated when the process
//! exited. A [`TrialRecord`] captures everything needed to re-run a trial
//! bit-identically from its [`BootCache`](crate::BootCache) snapshot — the
//! seed, machine/setup key, fault type and trigger draw — plus a bounded
//! ring of key events (trigger fire, injection point, detector fire,
//! recovery phases, outcome) for at-a-glance debugging without re-running
//! anything.
//!
//! Records serialize to a line-oriented text format (`to_text` /
//! `from_text`); the workspace's `serde` is a no-op shim, so the format is
//! hand-rolled and versioned. A checked-in record of a known residual
//! failure (`tests/data/`) pins both the format and the replay path in CI.
//!
//! ## Determinism preconditions
//!
//! Replay reproduces the original [`TrialResult`] exactly because every
//! source of randomness derives from the recorded key:
//!
//! * the system is checked out of the [`BootCache`](crate::BootCache)
//!   (clone + reseed), which the warm==cold differential proptests pin to
//!   cold boots;
//! * the injector's trigger draws come from a seed derived from the trial
//!   seed, plus the recorded `trigger_ops` range for steered trials;
//! * the step loops are deterministic (batched==unbatched is pinned by
//!   PR 5's differential tests).

use std::collections::VecDeque;
use std::fmt::Write as _;

use nlh_core::RecoveryMechanism;
use nlh_hv::{HandlerKind, MachineConfig};
use nlh_inject::{FaultType, InjectionOutcome, InjectionPoint};
use nlh_sim::{CpuId, SimTime};

use crate::boot_cache::BootCache;
use crate::classify::TrialClass;
use crate::setup::{BenchKind, SetupKind};
use crate::trial::{run_trial_with, TrialConfig, TrialResult, TrialRunOptions};

/// Maximum events a record retains; older events are dropped (with a
/// count) once the ring is full. Trials emit on the order of ten events,
/// so in practice nothing is dropped.
pub const EVENT_RING_CAPACITY: usize = 64;

/// The kind of a recorded trial event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEventKind {
    /// The first-level trigger timer fired; the micro-op counter is armed.
    TriggerFired,
    /// The fault was applied.
    Injected,
    /// A detector (panic or watchdog) fired.
    DetectorFired,
    /// Recovery began.
    RecoveryStarted,
    /// One recovery phase completed.
    RecoveryPhase,
    /// Recovery finished.
    RecoveryDone,
    /// Recovery could not complete.
    RecoveryAborted,
    /// A detector fired again after recovery.
    SecondDetection,
    /// The trial was classified.
    Classified,
}

impl TrialEventKind {
    /// Stable name used by the text format.
    pub fn name(self) -> &'static str {
        match self {
            TrialEventKind::TriggerFired => "TriggerFired",
            TrialEventKind::Injected => "Injected",
            TrialEventKind::DetectorFired => "DetectorFired",
            TrialEventKind::RecoveryStarted => "RecoveryStarted",
            TrialEventKind::RecoveryPhase => "RecoveryPhase",
            TrialEventKind::RecoveryDone => "RecoveryDone",
            TrialEventKind::RecoveryAborted => "RecoveryAborted",
            TrialEventKind::SecondDetection => "SecondDetection",
            TrialEventKind::Classified => "Classified",
        }
    }

    /// Parses a name produced by [`TrialEventKind::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        const ALL: [TrialEventKind; 9] = [
            TrialEventKind::TriggerFired,
            TrialEventKind::Injected,
            TrialEventKind::DetectorFired,
            TrialEventKind::RecoveryStarted,
            TrialEventKind::RecoveryPhase,
            TrialEventKind::RecoveryDone,
            TrialEventKind::RecoveryAborted,
            TrialEventKind::SecondDetection,
            TrialEventKind::Classified,
        ];
        ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One entry in a trial's event ring: when, what, and a short free-form
/// detail string (already formatted — events are for humans and golden
/// files, not for steering; the typed injection point lives in
/// [`TrialRecord::injection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TrialEventKind,
    /// Pre-formatted detail (may be empty; never contains newlines).
    pub detail: String,
}

/// A bounded ring of [`TrialEvent`]s; the newest
/// [`EVENT_RING_CAPACITY`] entries win.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRing {
    events: VecDeque<TrialEvent>,
    dropped: u64,
}

impl EventRing {
    /// An empty ring.
    pub fn new() -> Self {
        EventRing::default()
    }

    /// Appends an event, evicting the oldest entry when full.
    pub fn push(&mut self, at: SimTime, kind: TrialEventKind, detail: impl Into<String>) {
        if self.events.len() == EVENT_RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        let mut detail = detail.into();
        if detail.contains('\n') {
            detail = detail.replace('\n', " ");
        }
        self.events.push_back(TrialEvent { at, kind, detail });
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TrialEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of evicted events.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Outcome summary stored in a record (enough for a replay to assert
/// equivalence without the full in-memory [`TrialResult`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedOutcome {
    /// Final classification.
    pub class: TrialClass,
    /// How the fault manifested (`None` if the trigger never fired).
    pub injection: Option<InjectionOutcome>,
    /// Steps executed by the trial body.
    pub steps: u64,
}

/// The compact per-trial log: identity, trigger draws, injection point,
/// event ring and outcome. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The trial's full configuration (seed, setup, fault, machine).
    pub config: TrialConfig,
    /// The ops range the second-level trigger budget was drawn from.
    /// `(0, MAX_TRIGGER_OPS)` for uniform campaigns; a narrower stratum
    /// under coverage-guided steering.
    pub trigger_ops: (u64, u64),
    /// The handler filter a steered trial held the armed injector for
    /// (`None` for unsteered trials). Part of the identity: replay must
    /// restore it or the fault lands elsewhere.
    pub steer_handler: Option<HandlerKind>,
    /// The steered in-handler op delay ([`TrialRunOptions::steer_depth`]):
    /// `0` (the historical behaviour) injects on the first op inside the
    /// steered handler. Written only when nonzero, so older records and
    /// golden logs are byte-identical.
    pub steer_depth: u64,
    /// Recovery mechanism name (`"NiLiHype"` / `"ReHype"`).
    pub mechanism: String,
    /// When the first-level trigger timer was set to fire.
    pub fire_at: SimTime,
    /// The drawn second-level micro-op budget.
    pub ops_budget: u64,
    /// Where the fault landed, if it was injected.
    pub injection: Option<InjectionPoint>,
    /// The bounded event ring.
    pub events: EventRing,
    /// The trial's outcome (always present for completed trials; `None`
    /// only for step-limited prefix runs).
    pub outcome: Option<RecordedOutcome>,
}

fn format_setup(setup: SetupKind) -> String {
    match setup {
        SetupKind::OneAppVm(b) => format!("OneAppVm:{b}"),
        SetupKind::ThreeAppVm => "ThreeAppVm".into(),
        SetupKind::TwoAppVmSharedCpu => "TwoAppVmSharedCpu".into(),
        SetupKind::TwoAppVmVswitch => "TwoAppVmVswitch".into(),
        SetupKind::Overcommit(r) => format!("Overcommit:{r}"),
    }
}

fn parse_setup(s: &str) -> Option<SetupKind> {
    match s {
        "ThreeAppVm" => Some(SetupKind::ThreeAppVm),
        "TwoAppVmSharedCpu" => Some(SetupKind::TwoAppVmSharedCpu),
        "TwoAppVmVswitch" => Some(SetupKind::TwoAppVmVswitch),
        _ => {
            if let Some(ratio) = s.strip_prefix("Overcommit:") {
                return ratio.parse::<u8>().ok().map(SetupKind::Overcommit);
            }
            let bench = s.strip_prefix("OneAppVm:")?;
            let bench = match bench {
                "BlkBench" => BenchKind::BlkBench,
                "UnixBench" => BenchKind::UnixBench,
                "NetBench" => BenchKind::NetBench,
                "VirtioBlkBench" => BenchKind::VirtioBlkBench,
                "VirtioNetBench" => BenchKind::VirtioNetBench,
                _ => return None,
            };
            Some(SetupKind::OneAppVm(bench))
        }
    }
}

fn format_class(class: &TrialClass) -> String {
    match class {
        TrialClass::NonManifested => "NonManifested".into(),
        TrialClass::Sdc => "Sdc".into(),
        TrialClass::RecoverySuccess { no_vm_failures } => {
            format!("RecoverySuccess no_vmf={no_vm_failures}")
        }
        TrialClass::RecoveryFailure(reason) => format!("RecoveryFailure {reason}"),
    }
}

fn parse_class(s: &str) -> Option<TrialClass> {
    match s {
        "NonManifested" => Some(TrialClass::NonManifested),
        "Sdc" => Some(TrialClass::Sdc),
        _ => {
            if let Some(rest) = s.strip_prefix("RecoverySuccess no_vmf=") {
                return Some(TrialClass::RecoverySuccess {
                    no_vm_failures: rest.trim() == "true",
                });
            }
            s.strip_prefix("RecoveryFailure ")
                .map(|r| TrialClass::RecoveryFailure(r.to_string()))
        }
    }
}

fn format_injection_outcome(o: InjectionOutcome) -> &'static str {
    match o {
        InjectionOutcome::NonManifested => "NonManifested",
        InjectionOutcome::Sdc => "Sdc",
        InjectionOutcome::Detected => "Detected",
    }
}

fn parse_injection_outcome(s: &str) -> Option<InjectionOutcome> {
    match s {
        "NonManifested" => Some(InjectionOutcome::NonManifested),
        "Sdc" => Some(InjectionOutcome::Sdc),
        "Detected" => Some(InjectionOutcome::Detected),
        "none" => None,
        _ => None,
    }
}

/// Extracts `key=value` from a whitespace-separated field list.
fn field<'a>(fields: &'a [&'a str], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find_map(|f| f.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
}

impl TrialRecord {
    /// Serializes the record to the versioned line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# nlh trial record\n");
        out.push_str("version = 1\n");
        let _ = writeln!(out, "seed = {}", self.config.seed);
        let _ = writeln!(out, "setup = {}", format_setup(self.config.setup));
        let _ = writeln!(out, "fault = {}", self.config.fault);
        let _ = writeln!(
            out,
            "machine = cpus={} mem_mib={} freq_mhz={}",
            self.config.machine.num_cpus,
            self.config.machine.memory_mib,
            self.config.machine.cpu_freq_mhz
        );
        let _ = writeln!(out, "mechanism = {}", self.mechanism);
        let _ = writeln!(
            out,
            "trigger_ops = {}..{}",
            self.trigger_ops.0, self.trigger_ops.1
        );
        if let Some(h) = self.steer_handler {
            let _ = writeln!(out, "steer_handler = {h}");
        }
        if self.steer_depth != 0 {
            let _ = writeln!(out, "steer_depth = {}", self.steer_depth);
        }
        let _ = writeln!(out, "fire_at = {}", self.fire_at.as_nanos());
        let _ = writeln!(out, "ops_budget = {}", self.ops_budget);
        if let Some(p) = &self.injection {
            let _ = writeln!(
                out,
                "injection = cpu={} at={} handler={} op={} len={} budget={}",
                p.cpu.index(),
                p.at.as_nanos(),
                p.handler,
                p.op_index,
                p.program_len,
                p.ops_budget
            );
        }
        if self.events.dropped() > 0 {
            let _ = writeln!(out, "events_dropped = {}", self.events.dropped());
        }
        for e in self.events.iter() {
            let _ = writeln!(
                out,
                "event = {} {} {}",
                e.at.as_nanos(),
                e.kind.name(),
                e.detail
            );
        }
        if let Some(o) = &self.outcome {
            let _ = writeln!(
                out,
                "injection_outcome = {}",
                o.injection.map(format_injection_outcome).unwrap_or("none")
            );
            let _ = writeln!(out, "steps = {}", o.steps);
            let _ = writeln!(out, "class = {}", format_class(&o.class));
        }
        out
    }

    /// Parses a record produced by [`TrialRecord::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<TrialRecord, String> {
        let mut seed = None;
        let mut setup = None;
        let mut fault = None;
        let mut machine = None;
        let mut mechanism = None;
        let mut trigger_ops = None;
        let mut steer_handler = None;
        let mut steer_depth = 0u64;
        let mut fire_at = None;
        let mut ops_budget = None;
        let mut injection = None;
        let mut events = EventRing::new();
        let mut injection_outcome: Option<Option<InjectionOutcome>> = None;
        let mut steps = None;
        let mut class = None;

        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("line {}: bad {what}: {value}", ln + 1);
            match key {
                "version" => {
                    if value != "1" {
                        return Err(format!("unsupported record version {value}"));
                    }
                }
                "seed" => seed = Some(value.parse::<u64>().map_err(|_| bad("seed"))?),
                "setup" => setup = Some(parse_setup(value).ok_or_else(|| bad("setup"))?),
                "fault" => fault = Some(FaultType::from_name(value).ok_or_else(|| bad("fault"))?),
                "machine" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    let get = |k: &str| {
                        field(&fields, k)
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad("machine"))
                    };
                    machine = Some(MachineConfig {
                        num_cpus: get("cpus")? as usize,
                        memory_mib: get("mem_mib")?,
                        cpu_freq_mhz: get("freq_mhz")?,
                    });
                }
                "mechanism" => mechanism = Some(value.to_string()),
                "trigger_ops" => {
                    let (lo, hi) = value.split_once("..").ok_or_else(|| bad("trigger_ops"))?;
                    trigger_ops = Some((
                        lo.parse::<u64>().map_err(|_| bad("trigger_ops"))?,
                        hi.parse::<u64>().map_err(|_| bad("trigger_ops"))?,
                    ));
                }
                "steer_handler" => {
                    steer_handler =
                        Some(HandlerKind::from_name(value).ok_or_else(|| bad("steer_handler"))?);
                }
                "steer_depth" => {
                    steer_depth = value.parse::<u64>().map_err(|_| bad("steer_depth"))?;
                }
                "fire_at" => {
                    fire_at = Some(SimTime::from_nanos(
                        value.parse::<u64>().map_err(|_| bad("fire_at"))?,
                    ))
                }
                "ops_budget" => {
                    ops_budget = Some(value.parse::<u64>().map_err(|_| bad("ops_budget"))?)
                }
                "injection" => {
                    let fields: Vec<&str> = value.split_whitespace().collect();
                    let num = |k: &str| {
                        field(&fields, k)
                            .and_then(|v| v.parse::<u64>().ok())
                            .ok_or_else(|| bad("injection"))
                    };
                    let handler = field(&fields, "handler")
                        .and_then(HandlerKind::from_name)
                        .ok_or_else(|| bad("injection handler"))?;
                    injection = Some(InjectionPoint {
                        cpu: CpuId::from_index(num("cpu")? as usize),
                        at: SimTime::from_nanos(num("at")?),
                        handler,
                        op_index: num("op")? as usize,
                        program_len: num("len")? as usize,
                        ops_budget: num("budget")?,
                    });
                }
                "events_dropped" => {
                    events.dropped = value.parse::<u64>().map_err(|_| bad("events_dropped"))?;
                }
                "event" => {
                    let mut parts = value.splitn(3, ' ');
                    let at = parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad("event time"))?;
                    let kind = parts
                        .next()
                        .and_then(TrialEventKind::from_name)
                        .ok_or_else(|| bad("event kind"))?;
                    let detail = parts.next().unwrap_or("").to_string();
                    events.events.push_back(TrialEvent {
                        at: SimTime::from_nanos(at),
                        kind,
                        detail,
                    });
                }
                "injection_outcome" => injection_outcome = Some(parse_injection_outcome(value)),
                "steps" => steps = Some(value.parse::<u64>().map_err(|_| bad("steps"))?),
                "class" => class = Some(parse_class(value).ok_or_else(|| bad("class"))?),
                other => return Err(format!("line {}: unknown key `{other}`", ln + 1)),
            }
        }

        let config = TrialConfig {
            setup: setup.ok_or("missing setup")?,
            fault: fault.ok_or("missing fault")?,
            seed: seed.ok_or("missing seed")?,
            machine: machine.ok_or("missing machine")?,
        };
        let outcome = match class {
            Some(class) => Some(RecordedOutcome {
                class,
                injection: injection_outcome.ok_or("missing injection_outcome")?,
                steps: steps.ok_or("missing steps")?,
            }),
            None => None,
        };
        Ok(TrialRecord {
            config,
            trigger_ops: trigger_ops.ok_or("missing trigger_ops")?,
            steer_handler,
            steer_depth,
            mechanism: mechanism.ok_or("missing mechanism")?,
            fire_at: fire_at.ok_or("missing fire_at")?,
            ops_budget: ops_budget.ok_or("missing ops_budget")?,
            injection,
            events,
            outcome,
        })
    }

    /// Re-runs the recorded trial from its [`BootCache`] snapshot and
    /// checks the replay against the record.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch: a trigger draw that
    /// differs (the record and the code disagree on the derivation), or a
    /// replayed outcome that differs from the recorded one.
    pub fn replay(
        &self,
        mechanism: &dyn RecoveryMechanism,
        cache: &BootCache,
    ) -> Result<TrialResult, String> {
        if mechanism.name() != self.mechanism {
            return Err(format!(
                "mechanism mismatch: record says {}, got {}",
                self.mechanism,
                mechanism.name()
            ));
        }
        let (hv, layout) =
            cache.checkout(&self.config.machine, self.config.setup, self.config.seed);
        let opts = TrialRunOptions {
            trigger_ops: Some(self.trigger_ops),
            steer_handler: self.steer_handler,
            steer_depth: self.steer_depth,
            ..TrialRunOptions::default()
        };
        let (result, record, _) = run_trial_with(hv, &layout, &self.config, mechanism, opts);
        if record.fire_at != self.fire_at || record.ops_budget != self.ops_budget {
            return Err(format!(
                "trigger drift: recorded fire_at={} budget={}, replay drew fire_at={} budget={}",
                self.fire_at.as_nanos(),
                self.ops_budget,
                record.fire_at.as_nanos(),
                record.ops_budget
            ));
        }
        if record.injection != self.injection {
            return Err(format!(
                "injection point drift: recorded {:?}, replayed {:?}",
                self.injection, record.injection
            ));
        }
        if let Some(expected) = &self.outcome {
            let got = record
                .outcome
                .as_ref()
                .ok_or("replay produced no outcome")?;
            if got != expected {
                return Err(format!(
                    "outcome drift: recorded {expected:?}, replayed {got:?}"
                ));
            }
        }
        Ok(result)
    }
}

/// Resolves a mechanism name stored in a record to a runnable instance
/// (the two full paper mechanisms).
pub fn mechanism_for_name(name: &str) -> Option<Box<dyn RecoveryMechanism>> {
    match name {
        "NiLiHype" => Some(Box::new(nlh_core::Microreset::nilihype())),
        "ReHype" => Some(Box::new(nlh_core::Microreboot::rehype())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::MAX_TRIGGER_OPS;

    fn sample_record() -> TrialRecord {
        let mut events = EventRing::new();
        events.push(
            SimTime::from_millis(30),
            TrialEventKind::Injected,
            "cpu=2 handler=TimerInterrupt op=3/9 outcome=Detected",
        );
        events.push(
            SimTime::from_millis(31),
            TrialEventKind::DetectorFired,
            "Panic cpu2",
        );
        TrialRecord {
            config: TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                42,
            ),
            trigger_ops: (0, MAX_TRIGGER_OPS),
            steer_handler: None,
            steer_depth: 0,
            mechanism: "NiLiHype".into(),
            fire_at: SimTime::from_millis(29),
            ops_budget: 117,
            injection: Some(InjectionPoint {
                cpu: CpuId::from_index(2),
                at: SimTime::from_millis(30),
                handler: HandlerKind::TimerInterrupt,
                op_index: 3,
                program_len: 9,
                ops_budget: 117,
            }),
            events,
            outcome: Some(RecordedOutcome {
                class: TrialClass::RecoveryFailure("the AppVM was affected".into()),
                injection: Some(InjectionOutcome::Detected),
                steps: 123_456,
            }),
        }
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let rec = sample_record();
        let text = rec.to_text();
        let back = TrialRecord::from_text(&text).expect("parse");
        assert_eq!(rec, back);
        // And re-serialization is stable (golden files depend on it).
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn every_setup_and_class_round_trips() {
        for setup in [
            SetupKind::OneAppVm(BenchKind::BlkBench),
            SetupKind::OneAppVm(BenchKind::UnixBench),
            SetupKind::OneAppVm(BenchKind::NetBench),
            SetupKind::OneAppVm(BenchKind::VirtioBlkBench),
            SetupKind::OneAppVm(BenchKind::VirtioNetBench),
            SetupKind::ThreeAppVm,
            SetupKind::TwoAppVmSharedCpu,
            SetupKind::TwoAppVmVswitch,
            SetupKind::Overcommit(1),
            SetupKind::Overcommit(8),
        ] {
            assert_eq!(parse_setup(&format_setup(setup)), Some(setup));
        }
        for class in [
            TrialClass::NonManifested,
            TrialClass::Sdc,
            TrialClass::RecoverySuccess {
                no_vm_failures: true,
            },
            TrialClass::RecoverySuccess {
                no_vm_failures: false,
            },
            TrialClass::RecoveryFailure("two AppVMs affected".into()),
        ] {
            assert_eq!(parse_class(&format_class(&class)), Some(class));
        }
    }

    #[test]
    fn steer_handler_key_round_trips() {
        let mut rec = sample_record();
        rec.steer_handler = Some(HandlerKind::VirtioMmio);
        let text = rec.to_text();
        assert!(text.contains("steer_handler = VirtioMmio"));
        let back = TrialRecord::from_text(&text).expect("parse");
        assert_eq!(rec, back);
        // Absent key stays None (older records parse unchanged).
        rec.steer_handler = None;
        let back = TrialRecord::from_text(&rec.to_text()).expect("parse");
        assert_eq!(back.steer_handler, None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TrialRecord::from_text("nonsense").is_err());
        assert!(TrialRecord::from_text("version = 9\n").is_err());
        // Missing mandatory keys.
        assert!(TrialRecord::from_text("version = 1\nseed = 3\n").is_err());
    }

    #[test]
    fn ring_bounds_and_drop_count() {
        let mut ring = EventRing::new();
        for i in 0..(EVENT_RING_CAPACITY as u64 + 10) {
            ring.push(SimTime::from_nanos(i), TrialEventKind::RecoveryPhase, "");
        }
        assert_eq!(ring.len(), EVENT_RING_CAPACITY);
        assert_eq!(ring.dropped(), 10);
        assert_eq!(ring.iter().next().unwrap().at, SimTime::from_nanos(10));
    }
}
