//! One fault-injection trial (Section VI-C): boot, run, inject, recover,
//! classify.

use nlh_core::{RecoveryMechanism, RecoveryReport};
use nlh_hv::{Hypervisor, MachineConfig};
use nlh_inject::{FaultType, InjectionOutcome, Injector};
use nlh_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::boot_cache::BootCache;
use crate::classify::{classify, TrialClass};
use crate::record::{EventRing, RecordedOutcome, TrialEventKind, TrialRecord};
use crate::setup::{build_system, SetupKind, SystemLayout};

/// Second-level trigger budget: micro-ops executed in the hypervisor
/// before injection (the paper uses 0–20 000 instructions; micro-ops are
/// coarser by roughly 10×).
pub const MAX_TRIGGER_OPS: u64 = 2_000;

/// Configuration of one trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// The system configuration.
    pub setup: SetupKind,
    /// The fault type to inject.
    pub fault: FaultType,
    /// Trial seed (drives everything deterministically).
    pub seed: u64,
    /// Machine parameters.
    pub machine: MachineConfig,
}

impl TrialConfig {
    /// A trial on the default small campaign machine.
    pub fn new(setup: SetupKind, fault: FaultType, seed: u64) -> Self {
        TrialConfig {
            setup,
            fault,
            seed,
            machine: MachineConfig::small(),
        }
    }
}

/// Raw observations collected while running a trial (input to
/// classification).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialObservations {
    /// A detector fired.
    pub detected: bool,
    /// Recovery could not be attempted (mechanism returned an error).
    pub recovery_error: Option<String>,
    /// A second detection occurred after recovery.
    pub second_detection: bool,
    /// Reason text of the second detection.
    pub second_detection_reason: Option<String>,
}

/// The result of one trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// How the injected fault manifested (None if the trigger never fired,
    /// which does not happen in practice).
    pub injection: Option<InjectionOutcome>,
    /// Raw observations.
    pub observations: TrialObservations,
    /// The recovery report, if recovery ran.
    pub recovery: Option<RecoveryReport>,
    /// Final classification.
    pub class: TrialClass,
    /// Simulation steps executed by the trial body (campaign telemetry
    /// divides the shard total by wall time for its steps/sec counter).
    /// Deterministic per config, so it participates in `PartialEq`: the
    /// batched and reference trial loops must execute identical step
    /// sequences, not merely reach the same classification.
    pub steps: u64,
}

/// Runs one complete fault-injection trial, cold-booting the target system.
pub fn run_trial(config: &TrialConfig, mechanism: &dyn RecoveryMechanism) -> TrialResult {
    let (hv, layout) = build_system(config.machine.clone(), config.setup, config.seed);
    run_trial_on(hv, &layout, config, mechanism)
}

/// Runs one trial on a warm-started system: a clone of the cache's
/// post-boot template, reseeded for this trial. Produces results identical
/// to [`run_trial`] (the differential tests pin this) without paying the
/// boot cost.
pub fn run_trial_warm(
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
    cache: &BootCache,
) -> TrialResult {
    let (hv, layout) = cache.checkout(&config.machine, config.setup, config.seed);
    run_trial_on(hv, &layout, config, mechanism)
}

/// Runs one warm-started trial and returns its event record alongside the
/// result. The record is sufficient to replay the trial bit-identically —
/// see [`TrialRecord::replay`].
pub fn run_trial_recorded(
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
    cache: &BootCache,
) -> (TrialResult, TrialRecord) {
    let (hv, layout) = cache.checkout(&config.machine, config.setup, config.seed);
    let (result, record, _) =
        run_trial_with(hv, &layout, config, mechanism, TrialRunOptions::default());
    (result, record)
}

/// Runs the trial body — inject, detect, recover, classify — on an
/// already-booted system.
///
/// Drives the hypervisor through its batched stepping fast path wherever
/// the injector has no per-step work: the whole pre-trigger window runs
/// under [`Hypervisor::run_until_marker`] (which hands back the exact step
/// on which the trigger timer fires), and everything after the fault is
/// applied runs under [`Hypervisor::run_until`]. Only the short
/// micro-op-counting phase between the two steps one at a time. The
/// executed step sequence — and therefore the [`TrialResult`] — is
/// bit-identical to [`run_trial_on_unbatched`] (differential-tested).
pub fn run_trial_on(
    hv: Hypervisor,
    layout: &SystemLayout,
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
) -> TrialResult {
    run_trial_loop(hv, layout, config, mechanism, true)
}

/// Reference trial body: one fully checked `step_any` + `on_step` per
/// iteration, exactly as the trial loop worked before batched stepping.
/// Kept at runtime so differential tests can pin [`run_trial_on`]
/// against it.
pub fn run_trial_on_unbatched(
    hv: Hypervisor,
    layout: &SystemLayout,
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
) -> TrialResult {
    run_trial_loop(hv, layout, config, mechanism, false)
}

fn run_trial_loop(
    hv: Hypervisor,
    layout: &SystemLayout,
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
    batched: bool,
) -> TrialResult {
    let opts = TrialRunOptions {
        batched,
        ..TrialRunOptions::default()
    };
    run_trial_with(hv, layout, config, mechanism, opts).0
}

/// Options for [`run_trial_with`] — the full-control trial entry point
/// behind the convenience wrappers.
#[derive(Debug, Clone)]
pub struct TrialRunOptions {
    /// Drive the hypervisor through the batched fast path (`true`, the
    /// default) or the one-step-at-a-time reference loop.
    pub batched: bool,
    /// Draw the second-level trigger's micro-op budget from this range
    /// instead of the full `[0, MAX_TRIGGER_OPS)`. The coverage-guided
    /// campaign steers with this; replay restores it.
    pub trigger_ops: Option<(u64, u64)>,
    /// When `false`, run the trial without ever arming the injector: a
    /// fault-free reference execution whose step sequence is identical to
    /// an injected run's up to the injection step (the bisection oracle's
    /// baseline).
    pub inject: bool,
    /// Stop the trial body after this many steps (divergence bisection
    /// probes a prefix and fingerprints the machine). Requires
    /// `batched == false`: the batched path cannot stop mid-stretch.
    pub step_limit: Option<u64>,
    /// Hold the armed injector until the struck CPU executes inside this
    /// handler family (see [`Injector::steer_to_handler`]). The
    /// device-heavy campaigns steer into `HandlerKind::VirtioMmio` to land
    /// faults mid-virtqueue-transaction; replay restores the filter.
    pub steer_handler: Option<nlh_hv::HandlerKind>,
    /// Delay a steered injection by this many additional micro-ops executed
    /// inside the steered handler (see [`Injector::with_steer_depth`]):
    /// `0` keeps the historical first-op-in-handler behaviour, nonzero
    /// pushes the fault into the handler's mutation window. Ignored when
    /// `steer_handler` is `None`; replay restores it.
    pub steer_depth: u64,
}

impl Default for TrialRunOptions {
    fn default() -> Self {
        TrialRunOptions {
            batched: true,
            trigger_ops: None,
            inject: true,
            step_limit: None,
            steer_handler: None,
            steer_depth: 0,
        }
    }
}

/// Runs one trial body with full control over stepping, trigger steering,
/// injection and step limits, returning the result, the trial's event
/// record and the final machine state.
///
/// All other trial entry points are wrappers over this. With default
/// options the executed step sequence is bit-identical to what the
/// pre-record trial loop executed: recording only observes rare events
/// (trigger fire, injection, detection, recovery transitions), never the
/// per-step hot path.
pub fn run_trial_with(
    mut hv: Hypervisor,
    layout: &SystemLayout,
    config: &TrialConfig,
    mechanism: &dyn RecoveryMechanism,
    opts: TrialRunOptions,
) -> (TrialResult, TrialRecord, Hypervisor) {
    assert!(
        opts.step_limit.is_none() || !opts.batched,
        "step_limit requires the unbatched reference loop"
    );
    hv.support = mechanism.op_support();

    let trigger_ops = opts.trigger_ops.unwrap_or((0, MAX_TRIGGER_OPS));
    let mut injector = Injector::with_ops_range(
        config.fault,
        config.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xF00D,
        config.setup.trigger_window(),
        trigger_ops,
    );
    if let Some(h) = opts.steer_handler {
        injector = injector
            .steer_to_handler(h)
            .with_steer_depth(opts.steer_depth);
    }

    let mut record = TrialRecord {
        config: config.clone(),
        trigger_ops,
        steer_handler: opts.steer_handler,
        steer_depth: if opts.steer_handler.is_some() {
            opts.steer_depth
        } else {
            0
        },
        mechanism: mechanism.name().to_string(),
        fire_at: injector.fire_at(),
        ops_budget: injector.ops_budget(),
        injection: None,
        events: EventRing::new(),
        outcome: None,
    };

    let trial_end = nlh_sim::SimTime::ZERO + config.setup.trial_duration();
    let deadline = trial_end.saturating_since(nlh_sim::SimTime::ZERO);
    let deadline = nlh_sim::SimTime::ZERO + deadline.saturating_sub(SimDuration::from_millis(500));

    let steps_before = hv.steps_executed();
    let mut obs = TrialObservations::default();
    let mut recovery: Option<RecoveryReport> = None;
    let mut recovered = false;

    while hv.now() < trial_end {
        if let Some(limit) = opts.step_limit {
            if hv.steps_executed() - steps_before >= limit {
                break;
            }
        }
        if hv.detection().is_some() {
            if !recovered {
                obs.detected = true;
                recovered = true;
                if let Some(d) = hv.detection() {
                    record.events.push(
                        d.at,
                        TrialEventKind::DetectorFired,
                        format!("{:?} cpu{} {}", d.kind, d.cpu.index(), d.reason),
                    );
                }
                let started = hv.now_max();
                record
                    .events
                    .push(started, TrialEventKind::RecoveryStarted, mechanism.name());
                match mechanism.recover(&mut hv) {
                    Ok(r) => {
                        for step in &r.steps {
                            record.events.push(
                                started,
                                TrialEventKind::RecoveryPhase,
                                format!("{} {:?}", step.name, step.duration),
                            );
                        }
                        record.events.push(
                            hv.now_max(),
                            TrialEventKind::RecoveryDone,
                            format!("total {:?}", r.total),
                        );
                        recovery = Some(r);
                    }
                    Err(e) => {
                        record.events.push(
                            hv.now_max(),
                            TrialEventKind::RecoveryAborted,
                            e.to_string(),
                        );
                        obs.recovery_error = Some(e.to_string());
                        break;
                    }
                }
            } else {
                obs.second_detection = true;
                obs.second_detection_reason = hv.detection().map(|d| d.reason.clone());
                if let Some(d) = hv.detection() {
                    record.events.push(
                        d.at,
                        TrialEventKind::SecondDetection,
                        format!("{:?} cpu{} {}", d.kind, d.cpu.index(), d.reason),
                    );
                }
                break;
            }
        } else if !opts.inject {
            // Fault-free reference run: no injector to consult.
            if opts.batched {
                hv.run_until(trial_end);
            } else {
                hv.step_any();
            }
        } else {
            // Pick the stepping strategy for this phase of the injector.
            // `on_step` is a pure no-op while Waiting (below `fire_at`) and
            // after Done, so those stretches run batched; the micro-op
            // counting phase in between runs batched too, through the
            // superop engine (`Injector::run_counting`), which replays the
            // counting automaton in bulk and splits the batch exactly at
            // the fire index.
            let mut injected_now = false;
            let stepped = if opts.batched && injector.is_done() {
                hv.run_until(trial_end);
                None
            } else if opts.batched && injector.is_waiting() {
                hv.run_until_marker(trial_end, injector.fire_at())
            } else if opts.batched {
                injected_now = injector.run_counting(&mut hv, trial_end);
                None
            } else {
                Some(hv.step_any())
            };
            let mut check_class = injected_now;
            if let Some((cpu, out)) = stepped {
                let was_waiting = injector.is_waiting();
                injected_now = injector.on_step(&mut hv, cpu, out);
                check_class = true;
                if was_waiting && !injector.is_waiting() {
                    record.events.push(
                        hv.cpu_now(cpu),
                        TrialEventKind::TriggerFired,
                        format!("ops_budget={}", injector.ops_budget()),
                    );
                }
            }
            if injected_now {
                record.injection = injector.injection_point().copied();
                if let Some(p) = &record.injection {
                    record.events.push(
                        p.at,
                        TrialEventKind::Injected,
                        format!(
                            "cpu={} handler={} op={}/{} outcome={:?}",
                            p.cpu.index(),
                            p.handler,
                            p.op_index,
                            p.program_len,
                            injector.outcome()
                        ),
                    );
                }
            }
            // Short-circuit: a non-manifested or SDC fault can no
            // longer trigger detection in this model; the
            // classification is already determined, so skip simulating
            // the rest of the run.
            if check_class && hv.detection().is_none() {
                let class = match injector.outcome() {
                    Some(InjectionOutcome::NonManifested) => Some(TrialClass::NonManifested),
                    Some(InjectionOutcome::Sdc) => Some(TrialClass::Sdc),
                    _ => None,
                };
                if let Some(class) = class {
                    let result = TrialResult {
                        injection: injector.outcome(),
                        class: class.clone(),
                        observations: obs,
                        recovery: None,
                        steps: hv.steps_executed() - steps_before,
                    };
                    finish_record(&mut record, &result, hv.now_max());
                    return (result, record, hv);
                }
            }
        }
    }

    let now = hv.now_max();
    let class = classify(&hv, layout, &obs, now, deadline);
    let result = TrialResult {
        injection: injector.outcome(),
        observations: obs,
        recovery,
        class,
        steps: hv.steps_executed() - steps_before,
    };
    // A step-limited probe stops mid-trial; its classification is not the
    // trial's outcome, so leave the record's outcome empty.
    if opts.step_limit.is_none() {
        finish_record(&mut record, &result, now);
    }
    (result, record, hv)
}

fn finish_record(record: &mut TrialRecord, result: &TrialResult, now: nlh_sim::SimTime) {
    record.events.push(
        now,
        TrialEventKind::Classified,
        format!("{:?}", result.class),
    );
    record.outcome = Some(RecordedOutcome {
        class: result.class.clone(),
        injection: result.injection,
        steps: result.steps,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;
    use nlh_core::{Microreboot, Microreset};

    #[test]
    fn failstop_trial_with_full_nilihype_usually_succeeds() {
        let mech = Microreset::nilihype();
        let mut successes = 0;
        let n = 20;
        for seed in 0..n {
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            let r = run_trial(&cfg, &mech);
            assert!(r.observations.detected, "failstop is always detected");
            if r.class.is_success() {
                successes += 1;
            }
        }
        assert!(
            successes >= n * 7 / 10,
            "full NiLiHype should succeed most of the time: {successes}/{n}"
        );
    }

    #[test]
    fn basic_nilihype_never_succeeds() {
        let mech = Microreset::with_enhancements(nlh_core::Enhancements::none());
        for seed in 0..10 {
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            let r = run_trial(&cfg, &mech);
            assert!(
                !r.class.is_success(),
                "seed {seed}: basic microreset cannot succeed, got {:?}",
                r.class
            );
        }
    }

    #[test]
    fn rehype_failstop_trial_succeeds_too() {
        let mech = Microreboot::rehype();
        let mut successes = 0;
        let n = 10;
        for seed in 100..100 + n {
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            if run_trial(&cfg, &mech).class.is_success() {
                successes += 1;
            }
        }
        assert!(successes >= n * 6 / 10, "{successes}/{n}");
    }

    #[test]
    fn register_faults_mostly_non_manifested() {
        let mech = Microreset::nilihype();
        let mut nm = 0;
        let n = 30;
        for seed in 0..n {
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Register,
                seed,
            );
            if run_trial(&cfg, &mech).class == TrialClass::NonManifested {
                nm += 1;
            }
        }
        assert!(nm > n / 2, "{nm}/{n} non-manifested");
    }

    #[test]
    fn warm_trial_equals_cold_trial() {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        for seed in [0, 17, 4096] {
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            let cold = run_trial(&cfg, &mech);
            let warm = run_trial_warm(&cfg, &mech, &cache);
            assert_eq!(cold, warm, "seed {seed}");
        }
    }

    #[test]
    fn trial_is_deterministic() {
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            1234,
        );
        let a = run_trial(&cfg, &mech);
        let b = run_trial(&cfg, &mech);
        assert_eq!(a.class, b.class);
        assert_eq!(a.injection, b.injection);
    }
}
