//! Trial outcome classification (Sections VI-C and VII-A).

use nlh_hv::domain::WorkloadVerdict;
use nlh_hv::Hypervisor;
use nlh_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::setup::{BenchKind, SetupKind, SystemLayout};
use crate::trial::TrialObservations;

/// Final classification of one fault-injection trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrialClass {
    /// The fault caused no observable abnormal behaviour.
    NonManifested,
    /// Detectors stayed silent but at least one benchmark produced wrong
    /// output.
    Sdc,
    /// A detector fired and recovery succeeded per the paper's criterion.
    RecoverySuccess {
        /// Whether *no* AppVM was affected (the paper's `noVMF`).
        no_vm_failures: bool,
    },
    /// A detector fired and recovery failed.
    RecoveryFailure(String),
}

impl TrialClass {
    /// Whether this trial counts as a successful recovery.
    pub fn is_success(&self) -> bool {
        matches!(self, TrialClass::RecoverySuccess { .. })
    }

    /// Whether this trial had no VM failures after recovery.
    pub fn is_no_vmf(&self) -> bool {
        matches!(
            self,
            TrialClass::RecoverySuccess {
                no_vm_failures: true
            }
        )
    }
}

/// Whether NetBench counts as *affected*: more than 10% of any one-second
/// interval's packets went unanswered (Section VI-A). Replies are
/// attributed to their send second (sequence numbers are 1 kHz), so a
/// paused-then-drained queue does not count as loss, but dropped or
/// never-answered packets do.
pub fn netbench_affected(hv: &Hypervisor, bench_secs: u64) -> bool {
    let Some(net) = hv.net.as_ref() else {
        return false;
    };
    if net.seq == 0 {
        return false;
    }
    let period_ns = net.period.as_nanos().max(1);
    let per_second = (1_000_000_000 / period_ns).max(1);
    let mut answered = vec![false; net.seq as usize + 1];
    for (seq, _) in &hv.net_replies {
        if let Some(slot) = answered.get_mut(*seq as usize) {
            *slot = true;
        }
    }
    // Only the benchmark's own run is measured (the sender stops counting
    // when the benchmark ends; packets sent after the receiver finished
    // are not the benchmark's problem).
    let n_seconds = ((net.seq / per_second) as usize).min(bench_secs.saturating_sub(1) as usize);
    for s in 0..n_seconds {
        let lo = s as u64 * per_second + 1;
        let hi = lo + per_second;
        let missed = (lo..hi).filter(|q| !answered[*q as usize]).count() as u64;
        if missed * 10 > per_second {
            return true;
        }
    }
    false
}

/// Classifies a finished trial.
///
/// `now` is the end-of-trial time; `deadline` the time by which benchmarks
/// had to finish.
pub fn classify(
    hv: &Hypervisor,
    layout: &SystemLayout,
    obs: &TrialObservations,
    now: SimTime,
    deadline: SimTime,
) -> TrialClass {
    // No detector fired: non-manifested vs SDC by the golden-copy oracle.
    if !obs.detected {
        let any_failed = layout
            .initial_apps
            .iter()
            .any(|(dom, _)| !hv.domains[dom.index()].verdict(now, deadline).is_ok());
        return if any_failed {
            TrialClass::Sdc
        } else {
            TrialClass::NonManifested
        };
    }

    // Detected: recovery must have been attempted.
    if let Some(err) = &obs.recovery_error {
        return TrialClass::RecoveryFailure(format!("recovery aborted: {err}"));
    }
    if obs.second_detection {
        return TrialClass::RecoveryFailure(format!(
            "post-recovery failure: {}",
            obs.second_detection_reason.as_deref().unwrap_or("unknown")
        ));
    }
    if !hv.time_sync_healthy(now) {
        return TrialClass::RecoveryFailure("platform time synchronization stopped".into());
    }

    // The PrivVM must survive (its loss takes down the platform). A
    // request lost without retry leaves its vCPU waiting forever — for the
    // PrivVM that means the management stack is dead.
    let priv_ok = hv.domains[0].is_active()
        && hv.domains[0].verdict(now, deadline).is_ok()
        && hv.domains[0].pending.is_none();
    if !priv_ok {
        return TrialClass::RecoveryFailure("PrivVM failed".into());
    }

    // Count affected initial AppVMs.
    let mut affected = 0usize;
    for (dom, kind) in &layout.initial_apps {
        let verdict = hv.domains[dom.index()].verdict(now, deadline);
        let mut bad = !verdict.is_ok();
        let bench_secs = layout.setup.bench_duration().as_secs_f64() as u64;
        if *kind == BenchKind::NetBench && netbench_affected(hv, bench_secs) {
            bad = true;
        }
        if bad {
            affected += 1;
        }
    }

    match layout.setup {
        SetupKind::OneAppVm(_)
        | SetupKind::TwoAppVmSharedCpu
        | SetupKind::TwoAppVmVswitch
        | SetupKind::Overcommit(_) => {
            // 1AppVM-style criterion: "recovery success" means no VM is
            // affected.
            if affected == 0 {
                TrialClass::RecoverySuccess {
                    no_vm_failures: true,
                }
            } else {
                TrialClass::RecoveryFailure("the AppVM was affected".into())
            }
        }
        SetupKind::ThreeAppVm => {
            // The hypervisor must still be able to create and host new VMs:
            // the post-recovery BlkBench AppVM must exist, be active, and
            // complete correctly.
            let new_vm_ok = hv
                .domains
                .get(3)
                .map(|d| {
                    d.is_active()
                        && matches!(d.verdict(now, deadline), WorkloadVerdict::CompletedOk)
                })
                .unwrap_or(false);
            if !new_vm_ok {
                return TrialClass::RecoveryFailure(
                    "post-recovery VM creation or execution failed".into(),
                );
            }
            if affected <= 1 {
                TrialClass::RecoverySuccess {
                    no_vm_failures: affected == 0,
                }
            } else {
                TrialClass::RecoveryFailure(format!("{affected} AppVMs affected"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(TrialClass::RecoverySuccess {
            no_vm_failures: false
        }
        .is_success());
        assert!(!TrialClass::RecoverySuccess {
            no_vm_failures: false
        }
        .is_no_vmf());
        assert!(TrialClass::RecoverySuccess {
            no_vm_failures: true
        }
        .is_no_vmf());
        assert!(!TrialClass::Sdc.is_success());
        assert!(!TrialClass::RecoveryFailure("x".into()).is_success());
    }

    #[test]
    fn netbench_analysis_tolerates_no_traffic() {
        let hv = Hypervisor::new(nlh_hv::MachineConfig::small(), 1);
        assert!(!netbench_affected(&hv, 24));
    }
}
