//! The resident campaign engine: one long-lived service that runs whole
//! experiment suites against a shared boot cache.
//!
//! The legacy entry points ([`crate::run_campaign_with`],
//! [`crate::run_sampled_campaign_steered_depth`]) build a fresh
//! [`BootCache`] per campaign, so a suite of N campaigns over the same
//! `(machine, setup)` pays N cold template builds. A [`CampaignEngine`]
//! owns a single cache keyed by `(MachineConfig, SetupKind)` for the life
//! of a job: the first campaign to touch a key builds its template, every
//! later campaign warm-starts from it, and per-cell [`CacheCounters`]
//! deltas make the reuse observable (`misses == 0` on the second
//! campaign). Sharing is safe because [`BootCache::checkout`] reseeds
//! every RNG from the trial seed — a template serves any number of
//! campaigns without coupling their trial streams, so engine results are
//! bit-identical to the legacy per-campaign paths (pinned by the
//! `engine_equivalence` differential suite).
//!
//! Execution is batched: workers pull trial indices from an atomic
//! counter and return `(index, result)` pairs, which the engine sorts and
//! folds **seed-ordered** through the same [`Shard`] aggregation the
//! legacy path uses. Seed-order folding is what makes the optional
//! stop-at-confidence policy deterministic: the stop trial is the first
//! `n` at which the seed-ordered prefix's Wilson half-width crosses the
//! threshold, independent of how the batch's trials interleaved across
//! workers, and the aggregated result equals a fixed-trials run of
//! exactly `n` trials.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use nlh_sim::stats::Proportion;

use crate::boot_cache::{BootCache, CacheCounters};
use crate::campaign::{BootMode, CampaignResult, Shard};
use crate::classify::TrialClass;
use crate::coverage::{run_sampled_campaign_in, SampledCampaign};
use crate::setup::build_system;
use crate::spec::{CampaignSpec, ExecMode, StopPolicy, SuiteSpec};
use crate::stream::{CampaignSnapshot, TelemetrySink};
use crate::trial::{run_trial_on, TrialConfig, TrialResult};

/// The per-mode payload of a finished cell.
#[derive(Debug)]
pub enum CellOutput {
    /// A sharded cell's aggregate (the [`crate::run_campaign_with`]
    /// shape).
    Sharded(CampaignResult),
    /// A sampled cell's coverage-map campaign (the
    /// [`crate::run_sampled_campaign_steered_depth`] shape).
    Sampled(SampledCampaign),
}

/// Everything the engine knows about a finished cell.
#[derive(Debug)]
pub struct CellResult {
    /// The aggregate result.
    pub output: CellOutput,
    /// Trials actually executed (equals the spec's budget unless
    /// stop-at-confidence halted early).
    pub executed: u64,
    /// `Some(n)` if stop-at-confidence halted the cell after exactly `n`
    /// trials.
    pub stopped_at: Option<u64>,
    /// Boot-cache activity attributable to this cell (counter deltas
    /// around the cell; gauges are post-cell values).
    pub cache: CacheCounters,
    /// Seed-ordered per-trial results (sharded cells only; empty for
    /// sampled cells). The equivalence suite compares these one-for-one
    /// against standalone trial runs.
    pub per_trial: Vec<TrialResult>,
}

impl CellResult {
    /// The sharded aggregate, if this was a sharded cell.
    pub fn sharded(&self) -> Option<&CampaignResult> {
        match &self.output {
            CellOutput::Sharded(r) => Some(r),
            CellOutput::Sampled(_) => None,
        }
    }

    /// The sampled campaign, if this was a sampled cell.
    pub fn sampled(&self) -> Option<&SampledCampaign> {
        match &self.output {
            CellOutput::Sampled(s) => Some(s),
            CellOutput::Sharded(_) => None,
        }
    }
}

/// One finished job of a suite run.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's name ([`CampaignSpec::name`]).
    pub name: String,
    /// The cell's result.
    pub cell: CellResult,
}

/// Why a suite could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// Two jobs share a name.
    DuplicateJob(String),
    /// A job's `after` names a job that does not exist.
    UnknownDependency {
        /// The job with the bad edge.
        job: String,
        /// The missing dependency name.
        dep: String,
    },
    /// The `after` edges form a cycle among these jobs.
    Cycle(Vec<String>),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::DuplicateJob(name) => write!(f, "duplicate job name {name:?}"),
            SuiteError::UnknownDependency { job, dep } => {
                write!(f, "job {job:?} depends on unknown job {dep:?}")
            }
            SuiteError::Cycle(jobs) => write!(f, "dependency cycle among jobs {jobs:?}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// A resident campaign service: submit [`CampaignSpec`]s (or whole
/// [`SuiteSpec`] graphs) and every cell shares one boot cache.
#[derive(Debug)]
pub struct CampaignEngine {
    cache: BootCache,
}

impl Default for CampaignEngine {
    fn default() -> Self {
        CampaignEngine::new()
    }
}

impl CampaignEngine {
    /// An engine with an unbounded shared boot cache.
    pub fn new() -> Self {
        CampaignEngine {
            cache: BootCache::new(),
        }
    }

    /// An engine whose shared cache evicts least-recently-used templates
    /// beyond `cap_bytes` of estimated resident size.
    pub fn with_cache_capacity(cap_bytes: u64) -> Self {
        CampaignEngine {
            cache: BootCache::with_capacity(cap_bytes),
        }
    }

    /// The shared boot cache (inspection; trials check out through it).
    pub fn cache(&self) -> &BootCache {
        &self.cache
    }

    /// Runs one cell, streaming snapshots to `sink`.
    pub fn run_spec(&self, spec: &CampaignSpec, sink: &mut dyn TelemetrySink) -> CellResult {
        match spec.mode {
            ExecMode::Sharded => self.run_sharded(spec, sink),
            ExecMode::Sampled {
                windows,
                sampling,
                steer_handler,
                depth_cycle,
            } => self.run_sampled(spec, windows, sampling, steer_handler, depth_cycle, sink),
        }
    }

    /// Runs a whole suite in a dependency-respecting order (stable: among
    /// ready jobs, submission order wins), sharing the boot cache across
    /// every cell. Validates the graph before running anything.
    pub fn run_suite(
        &self,
        suite: &SuiteSpec,
        sink: &mut dyn TelemetrySink,
    ) -> Result<Vec<JobOutcome>, SuiteError> {
        let order = suite_order(suite)?;
        let mut outcomes = Vec::with_capacity(order.len());
        for idx in order {
            let job = &suite.jobs[idx];
            let cell = self.run_spec(&job.spec, sink);
            outcomes.push(JobOutcome {
                name: job.spec.name.clone(),
                cell,
            });
        }
        Ok(outcomes)
    }

    /// The cache-activity delta a cell reports: real deltas when the cell
    /// used the cache, all-zero under cold boot (matching the legacy
    /// path, which reports zeros for cold campaigns).
    fn cache_delta(&self, boot: BootMode, before: &CacheCounters) -> CacheCounters {
        match boot {
            BootMode::Warm => self.cache.counters().since(before),
            BootMode::Cold => CacheCounters::default(),
        }
    }

    fn run_sharded(&self, spec: &CampaignSpec, sink: &mut dyn TelemetrySink) -> CellResult {
        let trials = spec.trials;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(trials.max(1) as usize);
        let batch = match spec.stop {
            StopPolicy::AtConfidence { check_every, .. } => check_every.max(1),
            StopPolicy::FixedTrials => {
                if spec.snapshot_every > 0 {
                    spec.snapshot_every
                } else {
                    trials.max(1)
                }
            }
        };
        let before = self.cache.counters();
        let started = Instant::now();

        let mut results: Vec<TrialResult> = Vec::new();
        let mut setup_nanos = 0u64;
        let mut run_nanos = 0u64;
        // Seed-ordered prefix scan state for the stop policy.
        let mut scan_detected = 0u64;
        let mut scan_successes = 0u64;
        let mut scanned = 0usize;
        let mut stopped_at: Option<u64> = None;

        let mut start = 0u64;
        while start < trials && stopped_at.is_none() {
            let end = (start + batch).min(trials);
            let next = AtomicU64::new(start);
            let mut batch_results: Vec<(u64, TrialResult)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mech = spec.mechanism.build();
                            let mut out: Vec<(u64, TrialResult)> = Vec::new();
                            let mut setup_ns = 0u64;
                            let mut run_ns = 0u64;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= end {
                                    break;
                                }
                                let cfg = TrialConfig::new(spec.setup, spec.fault, spec.seed + i);
                                let t0 = Instant::now();
                                let (hv, layout) = match spec.boot {
                                    BootMode::Warm => {
                                        self.cache.checkout(&cfg.machine, cfg.setup, cfg.seed)
                                    }
                                    BootMode::Cold => {
                                        build_system(cfg.machine.clone(), cfg.setup, cfg.seed)
                                    }
                                };
                                setup_ns += elapsed_nanos(t0);
                                let t1 = Instant::now();
                                let r = run_trial_on(hv, &layout, &cfg, mech.as_ref());
                                run_ns += elapsed_nanos(t1);
                                out.push((i, r));
                            }
                            (out, setup_ns, run_ns)
                        })
                    })
                    .collect();
                let mut batch_out = Vec::with_capacity((end - start) as usize);
                for h in handles {
                    let (out, setup_ns, run_ns) = h.join().expect("engine worker panicked");
                    batch_out.extend(out);
                    setup_nanos += setup_ns;
                    run_nanos += run_ns;
                }
                batch_out
            });
            // Batches cover contiguous index ranges, so sorting each batch
            // keeps the whole vector seed-ordered.
            batch_results.sort_by_key(|(i, _)| *i);
            results.extend(batch_results.into_iter().map(|(_, r)| r));

            // Advance the seed-ordered prefix scan; under
            // stop-at-confidence, halt at the exact first crossing trial.
            while scanned < results.len() {
                match &results[scanned].class {
                    TrialClass::RecoverySuccess { .. } => {
                        scan_detected += 1;
                        scan_successes += 1;
                    }
                    TrialClass::RecoveryFailure(_) => scan_detected += 1,
                    TrialClass::NonManifested | TrialClass::Sdc => {}
                }
                scanned += 1;
                if let StopPolicy::AtConfidence {
                    halfwidth,
                    min_detected,
                    ..
                } = spec.stop
                {
                    if scan_detected >= min_detected
                        && Proportion::new(scan_successes, scan_detected).wilson_halfwidth_95()
                            <= halfwidth
                    {
                        stopped_at = Some(scanned as u64);
                        break;
                    }
                }
            }

            start = end;
            if start < trials && stopped_at.is_none() {
                sink.snapshot(&self.sharded_snapshot(
                    spec,
                    results.len() as u64,
                    &before,
                    started,
                    None,
                    false,
                    &results,
                ));
            }
        }

        let executed = stopped_at.unwrap_or(results.len() as u64);
        results.truncate(executed as usize);
        let wall_secs = started.elapsed().as_secs_f64();
        let cache = self.cache_delta(spec.boot, &before);

        let mechanism = spec.mechanism.build().name().to_string();
        let mut shard = Shard::new(mechanism);
        for r in &results {
            shard.add(r);
        }
        shard.add_nanos(setup_nanos, run_nanos);
        let result = shard.into_result(spec.fault, executed, spec.boot, threads, wall_secs, cache);

        sink.snapshot(
            &self.sharded_snapshot(spec, executed, &before, started, stopped_at, true, &results),
        );
        CellResult {
            output: CellOutput::Sharded(result),
            executed,
            stopped_at,
            cache,
            per_trial: results,
        }
    }

    /// Builds a snapshot from the seed-ordered prefix `results[..done]`.
    #[allow(clippy::too_many_arguments)]
    fn sharded_snapshot(
        &self,
        spec: &CampaignSpec,
        done: u64,
        before: &CacheCounters,
        started: Instant,
        stopped_at: Option<u64>,
        is_final: bool,
        results: &[TrialResult],
    ) -> CampaignSnapshot {
        let mut detected = 0u64;
        let mut successes = 0u64;
        for r in &results[..done as usize] {
            match &r.class {
                TrialClass::RecoverySuccess { .. } => {
                    detected += 1;
                    successes += 1;
                }
                TrialClass::RecoveryFailure(_) => detected += 1,
                TrialClass::NonManifested | TrialClass::Sdc => {}
            }
        }
        CampaignSnapshot {
            job: spec.name.clone(),
            trials_done: done,
            trials_target: spec.trials,
            detected,
            successes,
            done: is_final,
            stopped_at,
            cache: self.cache_delta(spec.boot, before),
            wall_secs: started.elapsed().as_secs_f64(),
        }
    }

    fn run_sampled(
        &self,
        spec: &CampaignSpec,
        windows: usize,
        sampling: crate::coverage::SamplingMode,
        steer_handler: Option<nlh_hv::HandlerKind>,
        depth_cycle: u64,
        sink: &mut dyn TelemetrySink,
    ) -> CellResult {
        let mech = spec.mechanism.build();
        let before = self.cache.counters();
        let started = Instant::now();
        let cadence = match spec.stop {
            StopPolicy::AtConfidence { check_every, .. } => check_every.max(1),
            StopPolicy::FixedTrials => spec.snapshot_every,
        };
        let mut stopped_at: Option<u64> = None;
        let sampled = {
            let stopped_at = &mut stopped_at;
            let mut after_trial = |done: u64, detected: u64, successes: u64| {
                let stop = match spec.stop {
                    StopPolicy::AtConfidence {
                        halfwidth,
                        min_detected,
                        ..
                    } => {
                        detected >= min_detected
                            && Proportion::new(successes, detected).wilson_halfwidth_95()
                                <= halfwidth
                    }
                    StopPolicy::FixedTrials => false,
                };
                if stop {
                    *stopped_at = Some(done);
                }
                if !stop && cadence > 0 && done.is_multiple_of(cadence) && done < spec.trials {
                    sink.snapshot(&CampaignSnapshot {
                        job: spec.name.clone(),
                        trials_done: done,
                        trials_target: spec.trials,
                        detected,
                        successes,
                        done: false,
                        stopped_at: None,
                        cache: self.cache_delta(spec.boot, &before),
                        wall_secs: started.elapsed().as_secs_f64(),
                    });
                }
                stop
            };
            run_sampled_campaign_in(
                &self.cache,
                spec.setup,
                spec.fault,
                mech.as_ref(),
                spec.seed,
                spec.trials,
                windows,
                sampling,
                steer_handler,
                depth_cycle,
                &mut after_trial,
            )
        };
        let executed = sampled.trials;
        let cache = self.cache_delta(spec.boot, &before);
        sink.snapshot(&CampaignSnapshot {
            job: spec.name.clone(),
            trials_done: executed,
            trials_target: spec.trials,
            detected: sampled.successes + sampled.failures,
            successes: sampled.successes,
            done: true,
            stopped_at,
            cache,
            wall_secs: started.elapsed().as_secs_f64(),
        });
        CellResult {
            output: CellOutput::Sampled(sampled),
            executed,
            stopped_at,
            cache,
            per_trial: Vec::new(),
        }
    }
}

/// Validates a suite's job graph and returns a deterministic
/// dependency-respecting execution order (indices into `suite.jobs`).
fn suite_order(suite: &SuiteSpec) -> Result<Vec<usize>, SuiteError> {
    let mut names = BTreeSet::new();
    for job in &suite.jobs {
        if !names.insert(job.spec.name.as_str()) {
            return Err(SuiteError::DuplicateJob(job.spec.name.clone()));
        }
    }
    for job in &suite.jobs {
        for dep in &job.after {
            if !names.contains(dep.as_str()) {
                return Err(SuiteError::UnknownDependency {
                    job: job.spec.name.clone(),
                    dep: dep.clone(),
                });
            }
        }
    }
    let mut order = Vec::with_capacity(suite.jobs.len());
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let mut placed = vec![false; suite.jobs.len()];
    while order.len() < suite.jobs.len() {
        let ready = suite.jobs.iter().enumerate().position(|(i, job)| {
            !placed[i] && job.after.iter().all(|dep| done.contains(dep.as_str()))
        });
        match ready {
            Some(i) => {
                placed[i] = true;
                done.insert(suite.jobs[i].spec.name.as_str());
                order.push(i);
            }
            None => {
                let stuck: Vec<String> = suite
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !placed[*i])
                    .map(|(_, j)| j.spec.name.clone())
                    .collect();
                return Err(SuiteError::Cycle(stuck));
            }
        }
    }
    Ok(order)
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{BenchKind, SetupKind};
    use crate::stream::{MemorySink, NullSink};
    use nlh_inject::FaultType;

    fn spec(name: &str, trials: u64) -> CampaignSpec {
        CampaignSpec::new(
            name,
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            trials,
        )
    }

    #[test]
    fn suite_order_respects_dependencies_and_submission_order() {
        let mut suite = SuiteSpec::default();
        suite.push_after(spec("c", 1), &["a", "b"]);
        suite.push(spec("a", 1));
        suite.push(spec("b", 1));
        let order = suite_order(&suite).unwrap();
        assert_eq!(order, vec![1, 2, 0], "a then b (submission order), then c");
    }

    #[test]
    fn suite_order_rejects_bad_graphs() {
        let mut dup = SuiteSpec::default();
        dup.push(spec("a", 1));
        dup.push(spec("a", 1));
        assert_eq!(suite_order(&dup), Err(SuiteError::DuplicateJob("a".into())));

        let mut unknown = SuiteSpec::default();
        unknown.push_after(spec("a", 1), &["ghost"]);
        assert!(matches!(
            suite_order(&unknown),
            Err(SuiteError::UnknownDependency { .. })
        ));

        let mut cyc = SuiteSpec::default();
        cyc.push_after(spec("a", 1), &["b"]);
        cyc.push_after(spec("b", 1), &["a"]);
        assert_eq!(
            suite_order(&cyc),
            Err(SuiteError::Cycle(vec!["a".into(), "b".into()]))
        );
    }

    #[test]
    fn engine_runs_a_cell_and_streams_a_final_snapshot() {
        let engine = CampaignEngine::new();
        let mut sink = MemorySink::default();
        let cell = engine.run_spec(&spec("cell", 8), &mut sink);
        assert_eq!(cell.executed, 8);
        assert_eq!(cell.stopped_at, None);
        let r = cell.sharded().expect("sharded cell");
        assert_eq!(r.trials, 8);
        assert_eq!(cell.per_trial.len(), 8);
        let last = sink.snapshots.last().expect("final snapshot");
        assert!(last.done);
        assert_eq!(last.trials_done, 8);
        assert_eq!(last.detected, r.detected);
        assert_eq!(last.successes, r.successes);
        assert_eq!(cell.cache.misses, 1, "first cell builds the template");
        assert_eq!(cell.cache.hits, 7);
    }

    #[test]
    fn second_cell_reuses_the_shared_template() {
        let engine = CampaignEngine::new();
        let first = engine.run_spec(&spec("first", 4), &mut NullSink);
        let second = engine.run_spec(&spec("second", 4), &mut NullSink);
        assert_eq!(first.cache.misses, 1);
        assert_eq!(second.cache.misses, 0, "template already resident");
        assert_eq!(second.cache.hits, 4);
    }

    #[test]
    fn snapshot_cadence_emits_intermediate_snapshots() {
        let engine = CampaignEngine::new();
        let mut sink = MemorySink::default();
        let mut s = spec("cell", 9);
        s.snapshot_every = 4;
        engine.run_spec(&s, &mut sink);
        let dones: Vec<u64> = sink.snapshots.iter().map(|s| s.trials_done).collect();
        assert_eq!(dones, vec![4, 8, 9]);
        assert!(!sink.snapshots[0].done && sink.snapshots[2].done);
    }
}
