//! Campaign execution: many trials, in parallel, with aggregate statistics.
//!
//! Workers pull trial indices from a shared atomic counter, aggregate into
//! private shards (no shared mutable state on the trial path), and the
//! shards are merged once when the workers join. By default trials are
//! **warm-started**: each one clones a cached post-boot template from a
//! [`BootCache`] instead of booting from scratch — bit-identical results
//! (see the differential tests) at a fraction of the setup cost. Pass
//! [`BootMode::Cold`] to [`run_campaign_with`] to boot every trial from
//! scratch, e.g. when validating the warm path itself.

use std::collections::BTreeMap;
use std::time::Instant;

use nlh_core::RecoveryMechanism;
use nlh_inject::FaultType;
use nlh_sim::stats::{Histogram, Proportion};
use serde::{Deserialize, Serialize};

use crate::boot_cache::BootCache;
use crate::classify::TrialClass;
use crate::setup::SetupKind;
use crate::trial::{TrialConfig, TrialResult};

/// How each trial obtains its booted target system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootMode {
    /// Clone a cached post-boot template and reseed it (the default).
    Warm,
    /// Boot the system from scratch for every trial.
    Cold,
}

/// Performance counters for one campaign run.
///
/// Simulated-time histograms (recovery latency) are exact and
/// deterministic; wall-clock numbers (trials/sec, setup-vs-run split)
/// depend on the host and are reported for visibility only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignTelemetry {
    /// How trials obtained their booted system.
    pub boot_mode: BootMode,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the whole campaign, in seconds.
    pub wall_secs: f64,
    /// Trial throughput (trials / wall second).
    pub trials_per_sec: f64,
    /// Wall-clock nanoseconds spent obtaining booted systems (cold boot or
    /// clone + reseed), summed over workers.
    pub setup_nanos: u64,
    /// Wall-clock nanoseconds spent running trial bodies, summed over
    /// workers.
    pub run_nanos: u64,
    /// Simulation steps executed by all trial bodies (sum of
    /// [`TrialResult::steps`]). Deterministic per campaign config.
    pub total_steps: u64,
    /// Stepper throughput: `total_steps` divided by wall-clock time spent
    /// in trial bodies (`run_nanos`), in steps per second. Host-dependent;
    /// this is the number the stepper fast path optimises.
    pub steps_per_sec: f64,
    /// Total recovery latency per recovered trial, in simulated
    /// microseconds.
    pub recovery_latency_us: Histogram,
    /// Recovery latency per recovery phase (the step names of
    /// Tables II/III), in simulated microseconds.
    pub phase_latency_us: BTreeMap<String, Histogram>,
    /// Boot-cache activity attributable to this campaign: for the legacy
    /// per-campaign path, the campaign's own cache; for the resident
    /// engine, the deltas of the shared cache around this cell. A
    /// campaign whose `(machine, setup)` template was already resident
    /// shows `boot_cache.misses == 0` here — cross-campaign reuse is
    /// observable per cell.
    pub boot_cache: crate::boot_cache::CacheCounters,
}

impl CampaignTelemetry {
    /// Fraction of measured worker time spent on setup (0 when nothing was
    /// measured).
    pub fn setup_fraction(&self) -> f64 {
        let total = self.setup_nanos + self.run_nanos;
        if total == 0 {
            0.0
        } else {
            self.setup_nanos as f64 / total as f64
        }
    }
}

/// Aggregated results of a fault-injection campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Mechanism name.
    pub mechanism: String,
    /// Fault type injected.
    pub fault: FaultType,
    /// Number of trials run.
    pub trials: u64,
    /// Trials with no observable effect.
    pub non_manifested: u64,
    /// Trials with silent data corruption.
    pub sdc: u64,
    /// Trials in which a detector fired (= recovery attempts).
    pub detected: u64,
    /// Detected trials classified as successful recovery.
    pub successes: u64,
    /// Detected trials with no AppVM failures at all.
    pub no_vmf: u64,
    /// Histogram of recovery-failure reasons.
    pub failure_reasons: BTreeMap<String, u64>,
    /// Performance counters for this run.
    pub telemetry: CampaignTelemetry,
}

impl CampaignResult {
    /// Successful-recovery rate over detected faults (the paper's headline
    /// metric), with confidence-interval accessors.
    pub fn success_rate(&self) -> Proportion {
        Proportion::new(self.successes, self.detected)
    }

    /// Rate of detected faults with no VM failures (`noVMF` in Figure 2).
    pub fn no_vmf_rate(&self) -> Proportion {
        Proportion::new(self.no_vmf, self.detected)
    }

    /// Breakdown over all injections: (non-manifested, SDC, detected)
    /// fractions, as reported in Section VII-A.
    pub fn manifestation_breakdown(&self) -> (f64, f64, f64) {
        if self.trials == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.trials as f64;
        (
            self.non_manifested as f64 / n,
            self.sdc as f64 / n,
            self.detected as f64 / n,
        )
    }
}

/// Runs `trials` fault-injection trials in parallel and aggregates.
///
/// `base_seed` makes the whole campaign reproducible; trial `i` uses seed
/// `base_seed + i`. The mechanism factory is invoked once per worker
/// thread. Trials are warm-started from a per-campaign [`BootCache`]; use
/// [`run_campaign_with`] to force cold boots.
pub fn run_campaign<M, F>(
    setup: SetupKind,
    fault: FaultType,
    trials: u64,
    base_seed: u64,
    make_mechanism: F,
) -> CampaignResult
where
    M: RecoveryMechanism,
    F: Fn() -> M + Sync,
{
    run_campaign_with(
        setup,
        fault,
        trials,
        base_seed,
        make_mechanism,
        BootMode::Warm,
    )
}

/// [`run_campaign`] with an explicit [`BootMode`].
pub fn run_campaign_with<M, F>(
    setup: SetupKind,
    fault: FaultType,
    trials: u64,
    base_seed: u64,
    make_mechanism: F,
    boot_mode: BootMode,
) -> CampaignResult
where
    M: RecoveryMechanism,
    F: Fn() -> M + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(trials.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let cache = BootCache::new();
    let started = Instant::now();

    // Each worker aggregates into a private shard and returns it through
    // its join handle; the only cross-thread traffic on the trial path is
    // the work-stealing counter (and the boot cache's template lookup).
    let shards: Vec<Shard> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mech = make_mechanism();
                    let mut shard = Shard::new(mech.name().to_string());
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        let cfg = TrialConfig::new(setup, fault, base_seed + i);
                        let t0 = Instant::now();
                        let result = match boot_mode {
                            BootMode::Warm => {
                                let (hv, layout) =
                                    cache.checkout(&cfg.machine, cfg.setup, cfg.seed);
                                shard.setup_nanos += elapsed_nanos(t0);
                                let t1 = Instant::now();
                                let r = crate::trial::run_trial_on(hv, &layout, &cfg, &mech);
                                shard.run_nanos += elapsed_nanos(t1);
                                r
                            }
                            BootMode::Cold => {
                                // run_trial boots internally; count its
                                // whole cost as setup + run by splitting at
                                // the boot boundary the same way.
                                let (hv, layout) = crate::setup::build_system(
                                    cfg.machine.clone(),
                                    cfg.setup,
                                    cfg.seed,
                                );
                                shard.setup_nanos += elapsed_nanos(t0);
                                let t1 = Instant::now();
                                let r = crate::trial::run_trial_on(hv, &layout, &cfg, &mech);
                                shard.run_nanos += elapsed_nanos(t1);
                                r
                            }
                        };
                        shard.add(&result);
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });

    let wall_secs = started.elapsed().as_secs_f64();
    let mut merged = Shard::new(String::new());
    for shard in shards {
        merged.merge(shard);
    }
    let boot_cache = match boot_mode {
        BootMode::Warm => cache.counters(),
        BootMode::Cold => Default::default(),
    };
    merged.into_result(fault, trials, boot_mode, threads, wall_secs, boot_cache)
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One worker's private aggregation state. Also the aggregation core of
/// the resident campaign engine (`engine.rs`), which feeds seed-ordered
/// trial results through one shard — every count, histogram and reason
/// bucket is commutative, so per-worker-shard merging and seed-order
/// feeding produce identical results.
#[derive(Debug)]
pub(crate) struct Shard {
    mechanism: String,
    non_manifested: u64,
    sdc: u64,
    detected: u64,
    successes: u64,
    no_vmf: u64,
    failure_reasons: BTreeMap<String, u64>,
    setup_nanos: u64,
    run_nanos: u64,
    steps: u64,
    recovery_latency_us: Histogram,
    phase_latency_us: BTreeMap<String, Histogram>,
}

impl Shard {
    pub(crate) fn new(mechanism: String) -> Self {
        Shard {
            mechanism,
            non_manifested: 0,
            sdc: 0,
            detected: 0,
            successes: 0,
            no_vmf: 0,
            failure_reasons: BTreeMap::new(),
            setup_nanos: 0,
            run_nanos: 0,
            steps: 0,
            recovery_latency_us: Histogram::new(),
            phase_latency_us: BTreeMap::new(),
        }
    }

    /// Accounts wall-clock time spent obtaining a booted system / running
    /// a trial body (the engine's workers report these in bulk).
    pub(crate) fn add_nanos(&mut self, setup: u64, run: u64) {
        self.setup_nanos += setup;
        self.run_nanos += run;
    }

    pub(crate) fn add(&mut self, result: &TrialResult) {
        self.steps += result.steps;
        match &result.class {
            TrialClass::NonManifested => self.non_manifested += 1,
            TrialClass::Sdc => self.sdc += 1,
            TrialClass::RecoverySuccess { no_vm_failures } => {
                self.detected += 1;
                self.successes += 1;
                if *no_vm_failures {
                    self.no_vmf += 1;
                }
            }
            TrialClass::RecoveryFailure(reason) => {
                self.detected += 1;
                // Bucket by a shortened reason to keep the histogram small.
                let key = reason.chars().take(60).collect::<String>();
                *self.failure_reasons.entry(key).or_insert(0) += 1;
            }
        }
        if let Some(report) = &result.recovery {
            self.recovery_latency_us
                .add(report.total.as_micros() as f64);
            for step in &report.steps {
                self.phase_latency_us
                    .entry(step.name.clone())
                    .or_default()
                    .add(step.duration.as_micros() as f64);
            }
        }
    }

    /// Packages the aggregated counts as a [`CampaignResult`]. Used by
    /// both the legacy per-campaign path and the resident engine, so the
    /// two construct results through the identical code.
    pub(crate) fn into_result(
        self,
        fault: FaultType,
        trials: u64,
        boot_mode: BootMode,
        workers: usize,
        wall_secs: f64,
        boot_cache: crate::boot_cache::CacheCounters,
    ) -> CampaignResult {
        CampaignResult {
            mechanism: self.mechanism,
            fault,
            trials,
            non_manifested: self.non_manifested,
            sdc: self.sdc,
            detected: self.detected,
            successes: self.successes,
            no_vmf: self.no_vmf,
            failure_reasons: self.failure_reasons,
            telemetry: CampaignTelemetry {
                boot_mode,
                workers,
                wall_secs,
                trials_per_sec: if wall_secs > 0.0 {
                    trials as f64 / wall_secs
                } else {
                    0.0
                },
                setup_nanos: self.setup_nanos,
                run_nanos: self.run_nanos,
                total_steps: self.steps,
                steps_per_sec: if self.run_nanos > 0 {
                    self.steps as f64 / (self.run_nanos as f64 / 1e9)
                } else {
                    0.0
                },
                recovery_latency_us: self.recovery_latency_us,
                phase_latency_us: self.phase_latency_us,
                boot_cache,
            },
        }
    }

    fn merge(&mut self, other: Shard) {
        if self.mechanism.is_empty() {
            self.mechanism = other.mechanism;
        }
        self.non_manifested += other.non_manifested;
        self.sdc += other.sdc;
        self.detected += other.detected;
        self.successes += other.successes;
        self.no_vmf += other.no_vmf;
        for (k, v) in other.failure_reasons {
            *self.failure_reasons.entry(k).or_insert(0) += v;
        }
        self.setup_nanos += other.setup_nanos;
        self.run_nanos += other.run_nanos;
        self.steps += other.steps;
        self.recovery_latency_us.merge(&other.recovery_latency_us);
        for (k, h) in other.phase_latency_us {
            self.phase_latency_us.entry(k).or_default().merge(&h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;
    use nlh_core::Microreset;

    #[test]
    fn small_failstop_campaign_aggregates() {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            24,
            7,
            Microreset::nilihype,
        );
        assert_eq!(r.trials, 24);
        assert_eq!(r.detected, 24, "failstop always detected");
        assert_eq!(r.non_manifested + r.sdc, 0);
        assert!(r.success_rate().value() > 0.5);
        assert_eq!(r.mechanism, "NiLiHype");
        let (nm, sdc, det) = r.manifestation_breakdown();
        assert_eq!((nm, sdc, det), (0.0, 0.0, 1.0));
    }

    #[test]
    fn campaign_is_reproducible() {
        let run = || {
            run_campaign(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Register,
                16,
                99,
                Microreset::nilihype,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.non_manifested, b.non_manifested);
        assert_eq!(a.sdc, b.sdc);
    }

    #[test]
    fn warm_and_cold_campaigns_agree() {
        let run = |mode| {
            run_campaign_with(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                12,
                321,
                Microreset::nilihype,
                mode,
            )
        };
        let warm = run(BootMode::Warm);
        let cold = run(BootMode::Cold);
        assert_eq!(warm.successes, cold.successes);
        assert_eq!(warm.detected, cold.detected);
        assert_eq!(warm.failure_reasons, cold.failure_reasons);
        // The simulated-latency histograms are deterministic, so they must
        // agree exactly too.
        assert_eq!(
            warm.telemetry.recovery_latency_us,
            cold.telemetry.recovery_latency_us
        );
        assert_eq!(
            warm.telemetry.phase_latency_us,
            cold.telemetry.phase_latency_us
        );
    }

    #[test]
    fn telemetry_counts_recoveries_and_time() {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            8,
            5,
            Microreset::nilihype,
        );
        let t = &r.telemetry;
        assert_eq!(t.boot_mode, BootMode::Warm);
        assert!(t.workers >= 1);
        assert_eq!(t.recovery_latency_us.count(), r.detected);
        assert!(t.trials_per_sec > 0.0);
        assert!(t.setup_nanos > 0 && t.run_nanos > 0);
        assert!(t.setup_fraction() > 0.0 && t.setup_fraction() < 1.0);
        assert!(t.total_steps > 0, "trial bodies execute steps");
        assert!(t.steps_per_sec > 0.0);
        // The per-campaign cache builds one template and serves the rest.
        assert_eq!(t.boot_cache.misses, 1);
        assert_eq!(t.boot_cache.hits, r.trials - 1);
        assert_eq!(t.boot_cache.resident_templates, 1);
        // Phase histograms carry the per-step breakdown of Table III.
        assert!(!t.phase_latency_us.is_empty());
        for h in t.phase_latency_us.values() {
            assert!(h.count() <= r.detected);
        }
    }
}
