//! Campaign execution: many trials, in parallel, with aggregate statistics.

use std::collections::BTreeMap;
use std::sync::Mutex;

use nlh_core::RecoveryMechanism;
use nlh_inject::FaultType;
use nlh_sim::stats::Proportion;
use serde::{Deserialize, Serialize};

use crate::classify::TrialClass;
use crate::trial::{run_trial, TrialConfig};
use crate::setup::SetupKind;

/// Aggregated results of a fault-injection campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Mechanism name.
    pub mechanism: String,
    /// Fault type injected.
    pub fault: FaultType,
    /// Number of trials run.
    pub trials: u64,
    /// Trials with no observable effect.
    pub non_manifested: u64,
    /// Trials with silent data corruption.
    pub sdc: u64,
    /// Trials in which a detector fired (= recovery attempts).
    pub detected: u64,
    /// Detected trials classified as successful recovery.
    pub successes: u64,
    /// Detected trials with no AppVM failures at all.
    pub no_vmf: u64,
    /// Histogram of recovery-failure reasons.
    pub failure_reasons: BTreeMap<String, u64>,
}

impl CampaignResult {
    /// Successful-recovery rate over detected faults (the paper's headline
    /// metric), with confidence-interval accessors.
    pub fn success_rate(&self) -> Proportion {
        Proportion::new(self.successes, self.detected)
    }

    /// Rate of detected faults with no VM failures (`noVMF` in Figure 2).
    pub fn no_vmf_rate(&self) -> Proportion {
        Proportion::new(self.no_vmf, self.detected)
    }

    /// Breakdown over all injections: (non-manifested, SDC, detected)
    /// fractions, as reported in Section VII-A.
    pub fn manifestation_breakdown(&self) -> (f64, f64, f64) {
        if self.trials == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.trials as f64;
        (
            self.non_manifested as f64 / n,
            self.sdc as f64 / n,
            self.detected as f64 / n,
        )
    }
}

/// Runs `trials` fault-injection trials in parallel and aggregates.
///
/// `base_seed` makes the whole campaign reproducible; trial `i` uses seed
/// `base_seed + i`. The mechanism factory is invoked once per worker
/// thread.
pub fn run_campaign<M, F>(
    setup: SetupKind,
    fault: FaultType,
    trials: u64,
    base_seed: u64,
    make_mechanism: F,
) -> CampaignResult
where
    M: RecoveryMechanism,
    F: Fn() -> M + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(trials.max(1) as usize);
    let next = std::sync::atomic::AtomicU64::new(0);
    let agg = Mutex::new(CampaignAgg::default());
    let name = Mutex::new(String::new());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mech = make_mechanism();
                {
                    let mut n = name.lock().unwrap();
                    if n.is_empty() {
                        *n = mech.name().to_string();
                    }
                }
                let mut local = CampaignAgg::default();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    let cfg = TrialConfig::new(setup, fault, base_seed + i);
                    let result = run_trial(&cfg, &mech);
                    local.add(&result.class);
                }
                agg.lock().unwrap().merge(local);
            });
        }
    });

    let agg = agg.into_inner().unwrap();
    CampaignResult {
        mechanism: name.into_inner().unwrap(),
        fault,
        trials,
        non_manifested: agg.non_manifested,
        sdc: agg.sdc,
        detected: agg.detected,
        successes: agg.successes,
        no_vmf: agg.no_vmf,
        failure_reasons: agg.failure_reasons,
    }
}

#[derive(Default)]
struct CampaignAgg {
    non_manifested: u64,
    sdc: u64,
    detected: u64,
    successes: u64,
    no_vmf: u64,
    failure_reasons: BTreeMap<String, u64>,
}

impl CampaignAgg {
    fn add(&mut self, class: &TrialClass) {
        match class {
            TrialClass::NonManifested => self.non_manifested += 1,
            TrialClass::Sdc => self.sdc += 1,
            TrialClass::RecoverySuccess { no_vm_failures } => {
                self.detected += 1;
                self.successes += 1;
                if *no_vm_failures {
                    self.no_vmf += 1;
                }
            }
            TrialClass::RecoveryFailure(reason) => {
                self.detected += 1;
                // Bucket by a shortened reason to keep the histogram small.
                let key = reason.chars().take(60).collect::<String>();
                *self.failure_reasons.entry(key).or_insert(0) += 1;
            }
        }
    }

    fn merge(&mut self, other: CampaignAgg) {
        self.non_manifested += other.non_manifested;
        self.sdc += other.sdc;
        self.detected += other.detected;
        self.successes += other.successes;
        self.no_vmf += other.no_vmf;
        for (k, v) in other.failure_reasons {
            *self.failure_reasons.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;
    use nlh_core::Microreset;

    #[test]
    fn small_failstop_campaign_aggregates() {
        let r = run_campaign(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            24,
            7,
            Microreset::nilihype,
        );
        assert_eq!(r.trials, 24);
        assert_eq!(r.detected, 24, "failstop always detected");
        assert_eq!(r.non_manifested + r.sdc, 0);
        assert!(r.success_rate().value() > 0.5);
        assert_eq!(r.mechanism, "NiLiHype");
        let (nm, sdc, det) = r.manifestation_breakdown();
        assert_eq!((nm, sdc, det), (0.0, 0.0, 1.0));
    }

    #[test]
    fn campaign_is_reproducible() {
        let run = || {
            run_campaign(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Register,
                16,
                99,
                Microreset::nilihype,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.successes, b.successes);
        assert_eq!(a.non_manifested, b.non_manifested);
        assert_eq!(a.sdc, b.sdc);
    }
}
