//! Coverage-guided fault campaigns: steer the trigger toward
//! under-explored (handler × fault-window) cells.
//!
//! A uniform campaign draws the second-level trigger budget uniformly from
//! `[0, MAX_TRIGGER_OPS)` on every trial, so it resamples the
//! hottest handler contexts over and over and reaches rare trigger strata
//! only by luck. The guided mode maintains a [`CoverageMap`] over
//! (handler family × trigger-ops window) cells and, before each trial,
//! picks the window with the best exploration score — least-sampled
//! first, with a bonus for windows that have already produced residual
//! failures — then narrows the injector's budget draw to that stratum via
//! [`TrialRunOptions::trigger_ops`]. Every window is visited within the
//! first `windows` trials (uniform sampling needs a coupon-collector's
//! wait for the same guarantee), and once a failure-prone stratum is
//! found it is revisited preferentially.
//!
//! Steering is deterministic: same base seed, same trial sequence. Each
//! trial remains individually replayable because its [`TrialRecord`]
//! stores the steered range.

use std::fmt;
use std::fmt::Write as _;

use nlh_core::RecoveryMechanism;
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;

use crate::boot_cache::BootCache;
use crate::classify::TrialClass;
use crate::record::TrialRecord;
use crate::setup::SetupKind;
use crate::trial::{run_trial_with, TrialConfig, TrialRunOptions, MAX_TRIGGER_OPS};

/// Default number of trigger-ops windows (strata) on the coverage map's
/// second axis.
pub const DEFAULT_OPS_WINDOWS: usize = 8;

/// A (handler family × trigger-ops window) coverage map.
///
/// Rows are [`HandlerKind`]s; columns split `[0, MAX_TRIGGER_OPS)` into
/// equal windows. `observe` files each injection under the cell it
/// actually landed in (the steered window and the observed handler).
#[derive(Debug, Clone)]
pub struct CoverageMap {
    windows: usize,
    /// Injections observed per cell, handler-major.
    counts: Vec<u64>,
    /// Residual failures per cell, handler-major.
    failures: Vec<u64>,
    /// Trials assigned to each window by the steering loop.
    assigned: Vec<u64>,
    /// Residual failures per assigned window.
    window_failures: Vec<u64>,
    /// Trials whose trigger never fired (no injection to file).
    misses: u64,
    trials: u64,
}

impl CoverageMap {
    /// An empty map with `windows` trigger-ops strata.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is 0 or exceeds `MAX_TRIGGER_OPS`.
    pub fn new(windows: usize) -> Self {
        assert!(windows > 0 && (windows as u64) <= MAX_TRIGGER_OPS);
        CoverageMap {
            windows,
            counts: vec![0; HandlerKind::ALL.len() * windows],
            failures: vec![0; HandlerKind::ALL.len() * windows],
            assigned: vec![0; windows],
            window_failures: vec![0; windows],
            misses: 0,
            trials: 0,
        }
    }

    /// Number of trigger-ops windows.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Total trials observed.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Trials whose trigger never fired.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The window an ops budget falls into.
    pub fn window_of(&self, ops_budget: u64) -> usize {
        ((ops_budget * self.windows as u64) / MAX_TRIGGER_OPS).min(self.windows as u64 - 1) as usize
    }

    /// The ops range covered by `window`.
    pub fn window_range(&self, window: usize) -> (u64, u64) {
        let span = MAX_TRIGGER_OPS / self.windows as u64;
        let lo = window as u64 * span;
        let hi = if window + 1 == self.windows {
            MAX_TRIGGER_OPS
        } else {
            lo + span
        };
        (lo, hi)
    }

    /// Injections observed in a cell.
    pub fn cell(&self, handler: HandlerKind, window: usize) -> u64 {
        self.counts[handler.index() * self.windows + window]
    }

    /// Residual failures observed in a cell.
    pub fn cell_failures(&self, handler: HandlerKind, window: usize) -> u64 {
        self.failures[handler.index() * self.windows + window]
    }

    /// Number of cells with at least one observation.
    pub fn covered_cells(&self) -> usize {
        self.counts.iter().filter(|c| **c > 0).count()
    }

    /// Files one trial: where its injection landed (if it fired) and
    /// whether it ended in residual failure. `assigned_window` is the
    /// stratum the steering loop chose (equal to the observed window when
    /// steering; the budget's own window under uniform sampling).
    pub fn observe(
        &mut self,
        assigned_window: usize,
        injection: Option<(HandlerKind, u64)>,
        failed: bool,
    ) {
        self.trials += 1;
        self.assigned[assigned_window] += 1;
        if failed {
            self.window_failures[assigned_window] += 1;
        }
        match injection {
            Some((handler, ops_budget)) => {
                let w = self.window_of(ops_budget);
                let idx = handler.index() * self.windows + w;
                self.counts[idx] += 1;
                if failed {
                    self.failures[idx] += 1;
                }
            }
            None => self.misses += 1,
        }
    }

    /// The window the steering loop should try next: the best ratio of
    /// observed failures to assigned trials, i.e. least-sampled windows
    /// first (pure round-robin exploration until something fails) and
    /// failure-prone windows preferentially afterwards. Ties break to the
    /// lowest index, so steering is deterministic.
    pub fn next_window(&self) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::MIN;
        for w in 0..self.windows {
            let score = (1.0 + self.window_failures[w] as f64) / (1.0 + self.assigned[w] as f64);
            if score > best_score {
                best = w;
                best_score = score;
            }
        }
        best
    }

    /// Renders the map as JSON (hand-rolled: the workspace `serde` is a
    /// no-op shim). Cells are handler-major.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"max_trigger_ops\": {},", MAX_TRIGGER_OPS);
        let _ = writeln!(out, "  \"windows\": {},", self.windows);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"misses\": {},", self.misses);
        let _ = writeln!(out, "  \"covered_cells\": {},", self.covered_cells());
        let _ = writeln!(out, "  \"total_cells\": {},", self.counts.len());
        out.push_str("  \"handlers\": {\n");
        for (i, h) in HandlerKind::ALL.iter().enumerate() {
            let row: Vec<String> = (0..self.windows)
                .map(|w| format!("[{},{}]", self.cell(*h, w), self.cell_failures(*h, w)))
                .collect();
            let comma = if i + 1 == HandlerKind::ALL.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "    \"{}\": [{}]{}", h, row.join(","), comma);
        }
        out.push_str("  }\n}\n");
        out
    }
}

impl fmt::Display for CoverageMap {
    /// A fixed-width (handler × window) table of `count/failures`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<16}", "handler")?;
        for w in 0..self.windows {
            let (lo, hi) = self.window_range(w);
            write!(f, " {:>9}", format!("{lo}..{hi}"))?;
        }
        writeln!(f)?;
        for h in HandlerKind::ALL {
            write!(f, "{:<16}", h.to_string())?;
            for w in 0..self.windows {
                let cell = format!("{}/{}", self.cell(h, w), self.cell_failures(h, w));
                write!(f, " {cell:>9}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// How a sampled campaign draws its trigger points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Uniform draws over the full trigger space (the historical
    /// behaviour).
    Uniform,
    /// Coverage-guided steering via [`CoverageMap::next_window`].
    CoverageGuided,
}

/// The result of [`run_sampled_campaign`].
#[derive(Debug)]
pub struct SampledCampaign {
    /// The sampling mode that ran.
    pub mode: SamplingMode,
    /// Trials executed.
    pub trials: u64,
    /// 0-based index of the first residual-failure trial, if any.
    pub first_failure_trial: Option<u64>,
    /// Total residual failures (detected, recovery failed).
    pub failures: u64,
    /// Total recovery successes.
    pub successes: u64,
    /// The final coverage map.
    pub coverage: CoverageMap,
    /// The record of the first residual failure (replayable).
    pub first_failure_record: Option<TrialRecord>,
}

/// Runs a sequential, deterministic fault campaign in either sampling
/// mode, filing every trial in a coverage map.
///
/// Trial `i` uses seed `base_seed + i`; under guided sampling its
/// trigger-ops draw is narrowed to the steered window, so the same seed
/// corpus explores the trigger space in a different order than uniform
/// sampling — strata-first instead of luck-first.
pub fn run_sampled_campaign(
    setup: SetupKind,
    fault: FaultType,
    mechanism: &dyn RecoveryMechanism,
    base_seed: u64,
    trials: u64,
    windows: usize,
    mode: SamplingMode,
) -> SampledCampaign {
    run_sampled_campaign_steered(
        setup, fault, mechanism, base_seed, trials, windows, mode, None,
    )
}

/// [`run_sampled_campaign`] with an optional handler filter: every trial's
/// armed injector is held until the struck CPU executes inside
/// `steer_handler` (see [`nlh_inject::Injector::steer_to_handler`]). The
/// device-heavy campaigns use `HandlerKind::VirtioMmio` to land every
/// fault mid-virtqueue-transaction.
#[allow(clippy::too_many_arguments)]
pub fn run_sampled_campaign_steered(
    setup: SetupKind,
    fault: FaultType,
    mechanism: &dyn RecoveryMechanism,
    base_seed: u64,
    trials: u64,
    windows: usize,
    mode: SamplingMode,
    steer_handler: Option<HandlerKind>,
) -> SampledCampaign {
    run_sampled_campaign_steered_depth(
        setup,
        fault,
        mechanism,
        base_seed,
        trials,
        windows,
        mode,
        steer_handler,
        1,
    )
}

/// [`run_sampled_campaign_steered`] with a per-trial in-handler op delay:
/// trial `i` is injected `i % depth_cycle` micro-ops *after* the struck CPU
/// enters the steered handler (see [`nlh_inject::Injector::with_steer_depth`]),
/// so the corpus sweeps the whole op range of the handler's programs instead
/// of always striking the first op. `depth_cycle == 1` reproduces the plain
/// steered campaign exactly (every trial at depth 0).
#[allow(clippy::too_many_arguments)]
pub fn run_sampled_campaign_steered_depth(
    setup: SetupKind,
    fault: FaultType,
    mechanism: &dyn RecoveryMechanism,
    base_seed: u64,
    trials: u64,
    windows: usize,
    mode: SamplingMode,
    steer_handler: Option<HandlerKind>,
    depth_cycle: u64,
) -> SampledCampaign {
    let cache = BootCache::new();
    run_sampled_campaign_in(
        &cache,
        setup,
        fault,
        mechanism,
        base_seed,
        trials,
        windows,
        mode,
        steer_handler,
        depth_cycle,
        &mut |_, _, _| false,
    )
}

/// The sampled-campaign core: [`run_sampled_campaign_steered_depth`] with
/// the boot cache supplied by the caller (so a resident
/// [`crate::CampaignEngine`] can share warm templates across campaigns)
/// and a per-trial hook for streaming and early stopping.
///
/// `after_trial` is called once per completed trial with
/// `(trials_done, detected, successes)`; returning `true` halts the
/// campaign there, and the returned [`SampledCampaign::trials`] records
/// the executed count. The legacy entry points pass a fresh cache and a
/// never-stop hook, so their behaviour is unchanged bit-for-bit — trial
/// `i` still checks out from the cache and reseeds with `base_seed + i`,
/// making results independent of what else the shared cache has served.
#[allow(clippy::too_many_arguments)]
pub fn run_sampled_campaign_in(
    cache: &BootCache,
    setup: SetupKind,
    fault: FaultType,
    mechanism: &dyn RecoveryMechanism,
    base_seed: u64,
    trials: u64,
    windows: usize,
    mode: SamplingMode,
    steer_handler: Option<HandlerKind>,
    depth_cycle: u64,
    after_trial: &mut dyn FnMut(u64, u64, u64) -> bool,
) -> SampledCampaign {
    let mut coverage = CoverageMap::new(windows);
    let mut out = SampledCampaign {
        mode,
        trials,
        first_failure_trial: None,
        failures: 0,
        successes: 0,
        coverage: CoverageMap::new(windows),
        first_failure_record: None,
    };
    let mut detected = 0u64;
    let mut executed = 0u64;
    for i in 0..trials {
        let config = TrialConfig::new(setup, fault, base_seed + i);
        let (assigned, trigger_ops) = match mode {
            SamplingMode::Uniform => (None, None),
            SamplingMode::CoverageGuided => {
                let w = coverage.next_window();
                (Some(w), Some(coverage.window_range(w)))
            }
        };
        let (hv, layout) = cache.checkout(&config.machine, config.setup, config.seed);
        let opts = TrialRunOptions {
            trigger_ops,
            steer_handler,
            steer_depth: i % depth_cycle.max(1),
            ..TrialRunOptions::default()
        };
        let (result, record, _) = run_trial_with(hv, &layout, &config, mechanism, opts);

        let failed = matches!(result.class, TrialClass::RecoveryFailure(_));
        if failed || result.class.is_success() {
            detected += 1;
        }
        if result.class.is_success() {
            out.successes += 1;
        }
        if failed {
            out.failures += 1;
            if out.first_failure_trial.is_none() {
                out.first_failure_trial = Some(i);
                out.first_failure_record = Some(record.clone());
            }
        }
        let injection = record.injection.map(|p| (p.handler, p.ops_budget));
        let assigned = assigned.unwrap_or_else(|| coverage.window_of(record.ops_budget));
        coverage.observe(assigned, injection, failed);
        executed = i + 1;
        if after_trial(executed, detected, out.successes) {
            break;
        }
    }
    out.trials = executed;
    out.coverage = coverage;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_partition_covers_trigger_space() {
        let map = CoverageMap::new(DEFAULT_OPS_WINDOWS);
        let mut expected_lo = 0;
        for w in 0..map.windows() {
            let (lo, hi) = map.window_range(w);
            assert_eq!(lo, expected_lo, "window {w} must start where {w}-1 ended");
            assert!(lo < hi);
            expected_lo = hi;
            for b in [lo, hi - 1] {
                assert_eq!(map.window_of(b), w, "budget {b}");
            }
        }
        assert_eq!(expected_lo, MAX_TRIGGER_OPS);
    }

    #[test]
    fn steering_explores_all_windows_first() {
        let mut map = CoverageMap::new(4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let w = map.next_window();
            seen.push(w);
            map.observe(
                w,
                Some((HandlerKind::TimerInterrupt, map.window_range(w).0)),
                false,
            );
        }
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![0, 1, 2, 3],
            "each window probed once before repeats"
        );
    }

    #[test]
    fn steering_prefers_failing_windows() {
        let mut map = CoverageMap::new(4);
        // One failure in window 2, one success everywhere else.
        for w in 0..4 {
            map.observe(
                w,
                Some((HandlerKind::Hypercall, map.window_range(w).0)),
                w == 2,
            );
        }
        assert_eq!(map.next_window(), 2);
    }

    #[test]
    fn observe_files_cells_and_misses() {
        let mut map = CoverageMap::new(8);
        map.observe(0, Some((HandlerKind::Scheduler, 10)), true);
        map.observe(3, None, false);
        assert_eq!(map.cell(HandlerKind::Scheduler, 0), 1);
        assert_eq!(map.cell_failures(HandlerKind::Scheduler, 0), 1);
        assert_eq!(map.misses(), 1);
        assert_eq!(map.trials(), 2);
        assert_eq!(map.covered_cells(), 1);
    }

    #[test]
    fn json_and_table_render() {
        let mut map = CoverageMap::new(4);
        map.observe(1, Some((HandlerKind::Hypercall, 600)), false);
        let json = map.to_json();
        assert!(json.contains("\"windows\": 4"));
        assert!(json.contains("\"Hypercall\""));
        let table = map.to_string();
        assert!(table.contains("TimerInterrupt"));
    }
}
