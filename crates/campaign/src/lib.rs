//! Fault-injection campaigns (Section VI): trial orchestration, outcome
//! classification, and recovery-rate statistics.
//!
//! A **trial** boots the target system, starts the benchmarks, injects one
//! fault, performs recovery when a detector fires, and classifies the
//! outcome (Section VI-C). A **campaign** runs many trials (in parallel
//! across OS threads — the analogue of the paper's Campaign Agent) and
//! aggregates recovery rates with 95% confidence intervals.
//!
//! The two system configurations of Section VI-A are provided: the 1AppVM
//! setup used for measurement-driven development (Table I, Section IV) and
//! the 3AppVM setup used for the headline recovery-rate results (Figure 2),
//! including the post-recovery creation of a third, BlkBench-running AppVM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod boot_cache;
mod campaign;
mod classify;
mod coverage;
mod engine;
mod ladder;
mod overhead;
mod record;
mod setup;
mod spec;
mod stream;
mod trial;

pub use bisect::{bisect_trials, first_divergence, BisectReport, DivergenceSide};
pub use boot_cache::{BootCache, CacheCounters};
pub use campaign::{run_campaign, run_campaign_with, BootMode, CampaignResult, CampaignTelemetry};
pub use classify::{classify, netbench_affected, TrialClass};
pub use coverage::{
    run_sampled_campaign, run_sampled_campaign_in, run_sampled_campaign_steered,
    run_sampled_campaign_steered_depth, CoverageMap, SampledCampaign, SamplingMode,
    DEFAULT_OPS_WINDOWS,
};
pub use engine::{CampaignEngine, CellOutput, CellResult, JobOutcome, SuiteError};
pub use ladder::{run_ladder, run_ladder_on, run_ladder_with, LadderRow};
pub use overhead::{measure_hv_cycles, overhead_percent, OverheadPoint};
pub use record::{
    mechanism_for_name, EventRing, RecordedOutcome, TrialEvent, TrialEventKind, TrialRecord,
    EVENT_RING_CAPACITY,
};
pub use setup::{build_system, reseed_system, BenchKind, SetupKind, SystemLayout};
pub use spec::{
    parse_handler, parse_setup, setup_manifest_name, CampaignSpec, ExecMode, JobSpec,
    MechanismSpec, StopPolicy, SuiteSpec,
};
pub use stream::{CampaignSnapshot, MemorySink, NullSink, TelemetrySink};
pub use trial::{
    run_trial, run_trial_on, run_trial_on_unbatched, run_trial_recorded, run_trial_warm,
    run_trial_with, TrialConfig, TrialObservations, TrialResult, TrialRunOptions, MAX_TRIGGER_OPS,
};
