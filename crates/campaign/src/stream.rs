//! Streaming campaign telemetry: incremental per-cell snapshots.
//!
//! The resident [`crate::CampaignEngine`] emits a [`CampaignSnapshot`]
//! after every batch (and once at cell completion) to a caller-supplied
//! [`TelemetrySink`], so a long suite shows its recovery-rate estimates
//! and Wilson intervals tightening live instead of going silent until the
//! end. Snapshots are derived state — dropping them never changes a
//! campaign's result, which is what keeps the streaming path golden-safe.

use nlh_sim::stats::Proportion;

use crate::boot_cache::CacheCounters;

/// One point-in-time view of a running campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSnapshot {
    /// The cell's job name ([`crate::CampaignSpec::name`]).
    pub job: String,
    /// Trials completed so far (seed-ordered prefix).
    pub trials_done: u64,
    /// The cell's trial budget.
    pub trials_target: u64,
    /// Detected faults among completed trials.
    pub detected: u64,
    /// Successful recoveries among completed trials.
    pub successes: u64,
    /// `true` once the cell has finished (final snapshot).
    pub done: bool,
    /// `Some(n)` if the stop-at-confidence policy halted the cell after
    /// exactly `n` trials.
    pub stopped_at: Option<u64>,
    /// Boot-cache activity attributable to this cell so far (counter
    /// deltas since the cell started; gauges are current values).
    pub cache: CacheCounters,
    /// Wall-clock seconds since the cell started.
    pub wall_secs: f64,
}

impl CampaignSnapshot {
    /// Recovery rate over detected faults, as a [`Proportion`].
    pub fn recovery(&self) -> Proportion {
        Proportion::new(self.successes, self.detected)
    }

    /// The 95% Wilson half-width of the recovery-rate estimate.
    pub fn halfwidth(&self) -> f64 {
        self.recovery().wilson_halfwidth_95()
    }

    /// A one-line human rendering (`job: 40/100 trials, 31/38 recovered,
    /// 81.6% ±9.5%`).
    pub fn render_line(&self) -> String {
        let p = self.recovery();
        let (lo, hi) = p.wilson_95();
        let mark = if self.done {
            if self.stopped_at.is_some() {
                " [stopped at confidence]"
            } else {
                " [done]"
            }
        } else {
            ""
        };
        format!(
            "{}: {}/{} trials, {}/{} recovered, {:.1}% [{:.1}%, {:.1}%]{}",
            self.job,
            self.trials_done,
            self.trials_target,
            self.successes,
            self.detected,
            p.value() * 100.0,
            lo * 100.0,
            hi * 100.0,
            mark
        )
    }
}

/// Receives streaming snapshots from the engine.
///
/// Sinks observe; they cannot influence execution, so any sink (or none)
/// yields bit-identical campaign results.
pub trait TelemetrySink {
    /// Called with each incremental or final snapshot, in order.
    fn snapshot(&mut self, snap: &CampaignSnapshot);
}

/// Discards every snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn snapshot(&mut self, _snap: &CampaignSnapshot) {}
}

/// Collects every snapshot in memory (tests, post-hoc inspection).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// All snapshots received, in emission order.
    pub snapshots: Vec<CampaignSnapshot>,
}

impl TelemetrySink for MemorySink {
    fn snapshot(&mut self, snap: &CampaignSnapshot) {
        self.snapshots.push(snap.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: u64, detected: u64, successes: u64) -> CampaignSnapshot {
        CampaignSnapshot {
            job: "cell".into(),
            trials_done: done,
            trials_target: 100,
            detected,
            successes,
            done: false,
            stopped_at: None,
            cache: CacheCounters::default(),
            wall_secs: 0.0,
        }
    }

    #[test]
    fn snapshot_derives_rate_and_halfwidth() {
        let s = snap(40, 38, 31);
        let p = Proportion::new(31, 38);
        assert_eq!(s.recovery().value(), p.value());
        assert_eq!(s.halfwidth(), p.wilson_halfwidth_95());
        assert!(s.render_line().contains("31/38 recovered"));
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::default();
        sink.snapshot(&snap(10, 9, 7));
        sink.snapshot(&snap(20, 18, 15));
        assert_eq!(sink.snapshots.len(), 2);
        assert_eq!(sink.snapshots[0].trials_done, 10);
        assert_eq!(sink.snapshots[1].trials_done, 20);
        NullSink.snapshot(&snap(1, 1, 1));
    }
}
