//! Warm-start boot templates: build the post-boot system once, clone it
//! per trial.
//!
//! Every trial needs a freshly booted `(Hypervisor, SystemLayout)` pair.
//! Booting is deterministic and — because no simulation steps run during
//! [`build_system`] — the trial seed influences nothing but RNG state.
//! A [`BootCache`] therefore builds the system once per
//! `(MachineConfig, SetupKind)` key from a canonical seed, and each trial
//! checks out a deep clone with its own seed re-derived into every RNG via
//! [`reseed_system`]. The clone is bit-for-bit what a cold boot with that
//! seed would have produced, at a fraction of the cost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nlh_hv::{Hypervisor, MachineConfig};

use crate::setup::{build_system, reseed_system, SetupKind, SystemLayout};

/// Seed used to build templates. Arbitrary: checkout re-derives all RNG
/// state from the trial seed, so the template seed never leaks into trials.
const TEMPLATE_SEED: u64 = 0;

/// A pristine post-boot system, shared read-only between workers.
type Template = Arc<(Hypervisor, SystemLayout)>;

/// A cache of pristine post-boot systems, keyed by machine + setup.
///
/// Shared by the campaign worker threads; the map lock is held only to
/// look up (or build) the `Arc`'d template, never during the per-trial
/// deep clone.
#[derive(Debug, Default)]
pub struct BootCache {
    templates: Mutex<HashMap<(MachineConfig, SetupKind), Template>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BootCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        BootCache::default()
    }

    /// Returns a ready-to-run system for `seed`: a deep clone of the cached
    /// post-boot template with every RNG re-derived from `seed`. Builds and
    /// caches the template on first use of a `(machine, setup)` key.
    pub fn checkout(
        &self,
        machine: &MachineConfig,
        setup: SetupKind,
        seed: u64,
    ) -> (Hypervisor, SystemLayout) {
        let template = {
            let mut map = self.templates.lock().unwrap();
            match map.get(&(machine.clone(), setup)) {
                Some(t) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(t)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let built = Arc::new(build_system(machine.clone(), setup, TEMPLATE_SEED));
                    map.insert((machine.clone(), setup), Arc::clone(&built));
                    built
                }
            }
        };
        let (mut hv, layout) = (*template).clone();
        reseed_system(&mut hv, seed);
        (hv, layout)
    }

    /// `(hits, misses)` — checkouts served from a cached template vs.
    /// template builds.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;

    #[test]
    fn checkout_builds_once_per_key() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        let one = SetupKind::OneAppVm(BenchKind::UnixBench);
        cache.checkout(&machine, one, 1);
        cache.checkout(&machine, one, 2);
        cache.checkout(&machine, SetupKind::ThreeAppVm, 3);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn checkout_matches_cold_boot_layout_and_state() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        for setup in [
            SetupKind::OneAppVm(BenchKind::NetBench),
            SetupKind::ThreeAppVm,
            SetupKind::TwoAppVmSharedCpu,
        ] {
            let (warm_hv, warm_layout) = cache.checkout(&machine, setup, 42);
            let (cold_hv, cold_layout) = build_system(machine.clone(), setup, 42);
            assert_eq!(warm_layout, cold_layout);
            assert_eq!(warm_hv.rng, cold_hv.rng, "{setup:?}: hypervisor RNG");
            assert_eq!(warm_hv.domains.len(), cold_hv.domains.len());
            assert_eq!(warm_hv.pft.free_count(), cold_hv.pft.free_count());
            assert_eq!(warm_hv.create_queue.len(), cold_hv.create_queue.len());
        }
    }

    #[test]
    fn concurrent_checkouts_share_one_template() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let cache = &cache;
                let machine = &machine;
                scope.spawn(move || {
                    let (hv, _) = cache.checkout(machine, setup, i);
                    assert_eq!(hv.domains.len(), 2);
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "exactly one build despite 8 threads");
        assert_eq!(hits, 7);
    }
}
