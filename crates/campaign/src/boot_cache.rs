//! Warm-start boot templates: build the post-boot system once, clone it
//! per trial.
//!
//! Every trial needs a freshly booted `(Hypervisor, SystemLayout)` pair.
//! Booting is deterministic and — because no simulation steps run during
//! [`build_system`] — the trial seed influences nothing but RNG state.
//! A [`BootCache`] therefore builds the system once per
//! `(MachineConfig, SetupKind)` key from a canonical seed, and each trial
//! checks out a deep clone with its own seed re-derived into every RNG via
//! [`reseed_system`]. The clone is bit-for-bit what a cold boot with that
//! seed would have produced, at a fraction of the cost.
//!
//! The cache is the resident campaign engine's shared service: one cache
//! outlives many campaigns, so a whole suite pays each template build once
//! (see `engine.rs`). To keep a full-suite job graph from holding every
//! template resident forever, the cache accounts an estimated byte size
//! per template ([`nlh_hv::Hypervisor::estimated_template_bytes`]) and
//! evicts least-recently-used templates beyond an optional byte cap.
//! Eviction is invisible to trial results: a re-built template is
//! bit-identical to the evicted one (boots are deterministic), so only the
//! hit/miss/eviction counters can tell the difference.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

use nlh_hv::{Hypervisor, MachineConfig};

use crate::setup::{build_system, reseed_system, SetupKind, SystemLayout};

/// Seed used to build templates. Arbitrary: checkout re-derives all RNG
/// state from the trial seed, so the template seed never leaks into trials.
const TEMPLATE_SEED: u64 = 0;

/// A pristine post-boot system, shared read-only between workers.
type Template = Arc<(Hypervisor, SystemLayout)>;

/// Point-in-time counters of a [`BootCache`], embedded in campaign
/// telemetry so cross-campaign template reuse is observable per cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Checkouts served from a cached template.
    pub hits: u64,
    /// Checkouts that had to build a template.
    pub misses: u64,
    /// Templates evicted to stay under the byte cap.
    pub evictions: u64,
    /// Estimated bytes of the currently resident templates.
    pub resident_bytes: u64,
    /// Number of currently resident templates.
    pub resident_templates: u64,
}

impl CacheCounters {
    /// Counter deltas since `earlier` (resident gauges are taken from
    /// `self`, the later snapshot).
    pub fn since(&self, earlier: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            resident_bytes: self.resident_bytes,
            resident_templates: self.resident_templates,
        }
    }
}

/// One resident template with its LRU bookkeeping.
#[derive(Debug)]
struct CacheEntry {
    template: Template,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug)]
struct CacheInner {
    templates: HashMap<(MachineConfig, SetupKind), CacheEntry>,
    /// Monotone use clock; the entry with the smallest stamp is the LRU
    /// eviction victim.
    clock: u64,
    total_bytes: u64,
    cap_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A cache of pristine post-boot systems, keyed by machine + setup.
///
/// Shared by the campaign worker threads; the map lock is held only to
/// look up (or build) a template, never during the per-trial deep clone.
#[derive(Debug)]
pub struct BootCache {
    inner: Mutex<CacheInner>,
}

impl Default for BootCache {
    fn default() -> Self {
        BootCache::new()
    }
}

impl BootCache {
    /// Creates an empty cache with no byte cap (templates stay resident
    /// for the cache's lifetime — the historical per-campaign behaviour).
    pub fn new() -> Self {
        BootCache::with_capacity(u64::MAX)
    }

    /// Creates an empty cache that evicts least-recently-used templates
    /// once the estimated resident bytes exceed `cap_bytes`. The most
    /// recently inserted template is never evicted, so a cap smaller than
    /// any single template degrades to "resident set of one", not to a
    /// build-per-checkout storm.
    pub fn with_capacity(cap_bytes: u64) -> Self {
        BootCache {
            inner: Mutex::new(CacheInner {
                templates: HashMap::new(),
                clock: 0,
                total_bytes: 0,
                cap_bytes,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Returns a ready-to-run system for `seed`: a deep clone of the cached
    /// post-boot template with every RNG re-derived from `seed`. Builds and
    /// caches the template on first use of a `(machine, setup)` key —
    /// evicting least-recently-used templates if the insertion pushes the
    /// cache over its byte cap.
    pub fn checkout(
        &self,
        machine: &MachineConfig,
        setup: SetupKind,
        seed: u64,
    ) -> (Hypervisor, SystemLayout) {
        let template = {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let stamp = inner.clock;
            match inner.templates.get_mut(&(machine.clone(), setup)) {
                Some(entry) => {
                    entry.last_used = stamp;
                    let template = Arc::clone(&entry.template);
                    inner.hits += 1;
                    template
                }
                None => {
                    // Build under the lock: concurrent first checkouts of
                    // one key must produce exactly one build.
                    inner.misses += 1;
                    let built = Arc::new(build_system(machine.clone(), setup, TEMPLATE_SEED));
                    let bytes = built.0.estimated_template_bytes();
                    inner.templates.insert(
                        (machine.clone(), setup),
                        CacheEntry {
                            template: Arc::clone(&built),
                            bytes,
                            last_used: stamp,
                        },
                    );
                    inner.total_bytes += bytes;
                    inner.evict_beyond_cap(stamp);
                    built
                }
            }
        };
        let (mut hv, layout) = (*template).clone();
        reseed_system(&mut hv, seed);
        (hv, layout)
    }

    /// `(hits, misses)` — checkouts served from a cached template vs.
    /// template builds.
    pub fn stats(&self) -> (u64, u64) {
        let c = self.counters();
        (c.hits, c.misses)
    }

    /// A full snapshot of the cache's counters and resident set.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock().unwrap();
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.total_bytes,
            resident_templates: inner.templates.len() as u64,
        }
    }
}

impl CacheInner {
    /// Evicts least-recently-used templates until the resident estimate
    /// fits the cap, never evicting the entry stamped `keep_stamp` (the
    /// one being inserted or refreshed right now).
    fn evict_beyond_cap(&mut self, keep_stamp: u64) {
        while self.total_bytes > self.cap_bytes {
            let victim = self
                .templates
                .iter()
                .filter(|(_, e)| e.last_used != keep_stamp)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    let entry = self.templates.remove(&key).expect("victim exists");
                    self.total_bytes -= entry.bytes;
                    self.evictions += 1;
                }
                // Only the just-inserted template remains; it stays
                // resident even over-cap.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;

    #[test]
    fn checkout_builds_once_per_key() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        let one = SetupKind::OneAppVm(BenchKind::UnixBench);
        cache.checkout(&machine, one, 1);
        cache.checkout(&machine, one, 2);
        cache.checkout(&machine, SetupKind::ThreeAppVm, 3);
        assert_eq!(cache.stats(), (1, 2));
        let c = cache.counters();
        assert_eq!(c.resident_templates, 2);
        assert!(c.resident_bytes > 0);
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn checkout_matches_cold_boot_layout_and_state() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        for setup in [
            SetupKind::OneAppVm(BenchKind::NetBench),
            SetupKind::ThreeAppVm,
            SetupKind::TwoAppVmSharedCpu,
        ] {
            let (warm_hv, warm_layout) = cache.checkout(&machine, setup, 42);
            let (cold_hv, cold_layout) = build_system(machine.clone(), setup, 42);
            assert_eq!(warm_layout, cold_layout);
            assert_eq!(warm_hv.rng, cold_hv.rng, "{setup:?}: hypervisor RNG");
            assert_eq!(warm_hv.domains.len(), cold_hv.domains.len());
            assert_eq!(warm_hv.pft.free_count(), cold_hv.pft.free_count());
            assert_eq!(warm_hv.create_queue.len(), cold_hv.create_queue.len());
        }
    }

    #[test]
    fn concurrent_checkouts_share_one_template() {
        let cache = BootCache::new();
        let machine = MachineConfig::small();
        let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
        std::thread::scope(|scope| {
            for i in 0..8u64 {
                let cache = &cache;
                let machine = &machine;
                scope.spawn(move || {
                    let (hv, _) = cache.checkout(machine, setup, i);
                    assert_eq!(hv.domains.len(), 2);
                });
            }
        });
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "exactly one build despite 8 threads");
        assert_eq!(hits, 7);
    }

    #[test]
    fn lru_cap_evicts_oldest_key_first() {
        let machine = MachineConfig::small();
        let a = SetupKind::OneAppVm(BenchKind::UnixBench);
        let b = SetupKind::OneAppVm(BenchKind::BlkBench);
        // Size the cap off a real template so exactly one fits.
        let probe = BootCache::new();
        probe.checkout(&machine, a, 0);
        let one_template = probe.counters().resident_bytes;

        let cache = BootCache::with_capacity(one_template);
        cache.checkout(&machine, a, 1); // build A
        cache.checkout(&machine, b, 2); // build B, evict A
        let c = cache.counters();
        assert_eq!(c.evictions, 1, "A evicted to fit B");
        assert_eq!(c.resident_templates, 1);
        cache.checkout(&machine, a, 3); // rebuild A, evict B
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions), (0, 3, 2));
    }

    #[test]
    fn lru_refresh_protects_recently_used_keys() {
        let machine = MachineConfig::small();
        let a = SetupKind::OneAppVm(BenchKind::UnixBench);
        let b = SetupKind::OneAppVm(BenchKind::BlkBench);
        let c_kind = SetupKind::OneAppVm(BenchKind::NetBench);
        // Measure each template's estimate so the cap holds exactly two.
        let probe = BootCache::new();
        probe.checkout(&machine, a, 0);
        let bytes_a = probe.counters().resident_bytes;
        probe.checkout(&machine, b, 0);
        let bytes_b = probe.counters().resident_bytes - bytes_a;
        probe.checkout(&machine, c_kind, 0);
        let bytes_c = probe.counters().resident_bytes - bytes_a - bytes_b;

        let cache = BootCache::with_capacity(bytes_a + bytes_b.max(bytes_c));
        cache.checkout(&machine, a, 1); // build A
        cache.checkout(&machine, b, 2); // build B
        cache.checkout(&machine, a, 3); // hit A: B is now LRU
        cache.checkout(&machine, c_kind, 4); // build C, evict B
        let counters = cache.counters();
        assert_eq!(counters.evictions, 1);
        let (hv, _) = cache.checkout(&machine, a, 5); // still a hit
        assert_eq!(hv.domains.len(), 2);
        assert_eq!(cache.counters().hits, 2);
    }

    #[test]
    fn undersized_cap_keeps_latest_template_resident() {
        let machine = MachineConfig::small();
        let cache = BootCache::with_capacity(1); // smaller than any template
        let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
        cache.checkout(&machine, setup, 1);
        cache.checkout(&machine, setup, 2);
        let c = cache.counters();
        // The sole template is never its own eviction victim, so the
        // second checkout is still a hit.
        assert_eq!((c.hits, c.misses, c.evictions), (1, 1, 0));
        assert_eq!(c.resident_templates, 1);
    }

    #[test]
    fn eviction_then_rebuild_is_bit_identical() {
        let machine = MachineConfig::small();
        let a = SetupKind::OneAppVm(BenchKind::UnixBench);
        let b = SetupKind::OneAppVm(BenchKind::BlkBench);
        let probe = BootCache::new();
        probe.checkout(&machine, a, 0);
        let one_template = probe.counters().resident_bytes;

        let cache = BootCache::with_capacity(one_template);
        let (hv_before, layout_before) = cache.checkout(&machine, a, 77);
        cache.checkout(&machine, b, 1); // evicts A
        let (hv_after, layout_after) = cache.checkout(&machine, a, 77); // rebuild
        assert!(cache.counters().evictions >= 1);
        assert_eq!(layout_before, layout_after);
        assert_eq!(hv_before.rng, hv_after.rng);
        assert_eq!(hv_before.state_digest(), hv_after.state_digest());
    }
}
