//! Normal-operation hypervisor processing overhead (Figure 3,
//! Section VII-C).
//!
//! The paper measures, per configuration, the percent increase in unhalted
//! cycles spent executing hypervisor code with the NiLiHype modifications
//! relative to stock Xen, on bare hardware with synchronized benchmarks.
//! Here the equivalent is a fault-free run of the same workload under two
//! [`OpSupport`] configurations, comparing total hypervisor cycles.

use nlh_hv::hypercalls::OpSupport;
use nlh_hv::MachineConfig;
use nlh_sim::{Cycles, SimDuration};
use serde::{Deserialize, Serialize};

use crate::setup::{build_system, SetupKind};

/// One measured configuration for the Figure 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Configuration label (e.g. `"BlkBench"`, `"3AppVM"`).
    pub label: String,
    /// Hypervisor cycles with the full mechanism (logging on).
    pub cycles_full: u64,
    /// Hypervisor cycles without the non-idempotent logging (NiLiHype*).
    pub cycles_no_logging: u64,
    /// Hypervisor cycles with stock support (no recovery features).
    pub cycles_stock: u64,
    /// Hypervisor share of total cycles (sanity: the paper cites <5%).
    pub hv_share: f64,
}

impl OverheadPoint {
    /// Overhead of the full mechanism vs stock, in percent.
    pub fn overhead_full(&self) -> f64 {
        overhead_percent(self.cycles_full, self.cycles_stock)
    }

    /// Overhead of NiLiHype* (no logging) vs stock, in percent.
    pub fn overhead_no_logging(&self) -> f64 {
        overhead_percent(self.cycles_no_logging, self.cycles_stock)
    }
}

/// Percent increase of `with` over `base`.
pub fn overhead_percent(with: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (with as f64 - base as f64) / base as f64 * 100.0
    }
}

/// Runs a fault-free measurement window of `dur` under `support` and
/// returns (hypervisor cycles, guest cycles).
pub fn measure_hv_cycles(
    setup: SetupKind,
    support: OpSupport,
    seed: u64,
    dur: SimDuration,
) -> (Cycles, Cycles) {
    let (mut hv, _) = build_system(MachineConfig::small(), setup, seed);
    if setup == SetupKind::ThreeAppVm {
        // Figure 3 uses "a slightly modified version of the 3AppVM setup":
        // since no recovery happens, all three AppVMs are created at the
        // same time and run throughout (Section VII-C).
        hv.create_queue.clear();
        hv.add_boot_domain(nlh_hv::domain::DomainSpec {
            kind: nlh_hv::domain::DomainKind::App,
            pages: 192,
            pinned_cpu: nlh_sim::CpuId(3),
            program: Box::new(nlh_workloads::BlkBench::new(
                seed ^ 0xB1,
                dur + SimDuration::from_secs(2),
                hv.tuning.tls_sensitivity,
            )),
        });
    }
    hv.support = support;
    // Warm up briefly, then reset counters for the measurement window (the
    // paper starts counting when all benchmarks are ready).
    hv.run_for(SimDuration::from_millis(50));
    hv.accounting.reset();
    hv.run_for(dur);
    assert!(
        hv.detection().is_none(),
        "overhead runs are fault-free: {:?}",
        hv.detection()
    );
    (
        hv.accounting.total_hypervisor(),
        hv.accounting.total_guest(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchKind;

    #[test]
    fn logging_costs_hypervisor_cycles() {
        let dur = SimDuration::from_millis(800);
        let full = OpSupport::full();
        let stock = OpSupport::none();
        let (hv_full, _) =
            measure_hv_cycles(SetupKind::OneAppVm(BenchKind::UnixBench), full, 5, dur);
        let (hv_stock, guest) =
            measure_hv_cycles(SetupKind::OneAppVm(BenchKind::UnixBench), stock, 5, dur);
        let pct = overhead_percent(hv_full.count(), hv_stock.count());
        assert!(pct > 0.2, "logging must cost something: {pct:.3}%");
        assert!(pct < 25.0, "but not absurdly much: {pct:.3}%");
        // Hypervisor share of total cycles is small.
        let share = hv_stock.count() as f64 / (hv_stock.count() + guest.count()) as f64;
        assert!(share < 0.25, "hv share {share}");
    }

    #[test]
    fn overhead_percent_edge_cases() {
        assert_eq!(overhead_percent(100, 0), 0.0);
        assert!((overhead_percent(105, 100) - 5.0).abs() < 1e-9);
        assert!(overhead_percent(95, 100) < 0.0);
    }
}
