//! Golden record: a known mid-scheduler-program residual failure at 8:1
//! overcommit, checked in as text.
//!
//! `data/golden_sched_residual_trial.log` was written by
//! `replay --setup oc8 --fault Code --steer Scheduler --steer-depth 9
//! --seed 2277 --out ...` — an 8:1 overcommit trial whose Code fault is
//! held for the `Scheduler` handler and then delayed nine further
//! micro-ops, landing deep inside a credit context-switch program (op 12
//! of 18, well past the first metadata mutation at op 4). Full NiLiHype
//! recovers — the record shows the `Ensure consistency within scheduling
//! metadata` phase running — but the propagated corruption still takes
//! down an AppVM, classifying as `RecoveryFailure`. CI replays it on
//! every push: any drift in the credit scheduler, its micro-op program
//! shapes, the depth-steered injector, or the consistency rung breaks
//! bit-identical replay and this test names the divergence.
//!
//! To regenerate after an *intentional* behaviour change:
//! `cargo run --release -p nlh-experiments --bin replay -- \
//!     --setup oc8 --fault Code --steer Scheduler --steer-depth 9 \
//!     --seed 2277 \
//!     --out crates/campaign/tests/data/golden_sched_residual_trial.log`

use nlh_campaign::{mechanism_for_name, BootCache, TrialClass, TrialRecord};
use nlh_hv::HandlerKind;

const GOLDEN: &str = include_str!("data/golden_sched_residual_trial.log");

#[test]
fn golden_sched_residual_failure_replays_identically() {
    let record = TrialRecord::from_text(GOLDEN).expect("golden log parses");
    assert_eq!(record.steer_handler, Some(HandlerKind::Scheduler));
    assert!(
        record.steer_depth > 0,
        "the golden trial uses depth steering to pass the mutation ops"
    );
    let point = record.injection.expect("golden log records an injection");
    assert_eq!(
        point.handler,
        HandlerKind::Scheduler,
        "the steered fault must land inside a scheduler program"
    );
    assert!(
        point.op_index > 4 && point.op_index < point.program_len,
        "past the first metadata mutation: {} of {}",
        point.op_index,
        point.program_len
    );
    // The repair step ran: the rung is active even though this trial still
    // fails for other reasons.
    assert!(
        record.events.iter().any(|e| e
            .detail
            .starts_with("Ensure consistency within scheduling metadata")),
        "golden log must show the scheduler-consistency recovery phase"
    );

    let mech = mechanism_for_name(&record.mechanism)
        .unwrap_or_else(|| panic!("golden log names unknown mechanism {}", record.mechanism));
    let cache = BootCache::new();
    let result = record
        .replay(mech.as_ref(), &cache)
        .expect("golden sched trial replays bit-identically");

    assert_eq!(
        result.class,
        TrialClass::RecoveryFailure("the AppVM was affected".into())
    );
    let outcome = record
        .outcome
        .as_ref()
        .expect("golden log records an outcome");
    assert_eq!(result.class, outcome.class);
    assert_eq!(result.steps, outcome.steps);
    assert_eq!(result.injection, outcome.injection);
}
