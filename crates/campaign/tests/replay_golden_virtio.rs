//! Golden record: a known mid-virtqueue residual failure, checked in as
//! text.
//!
//! `data/golden_virtio_residual_trial.log` was written by
//! `replay --setup vswitch --fault Code --steer VirtioMmio --seed 2020
//! --out ...` — a 2AppVM vswitch trial whose Code fault is held for the
//! `VirtioMmio` queue-notify handler and lands mid-virtqueue-transaction
//! (op 1 of 13). Full NiLiHype recovers — the record shows the `Repair
//! virtqueue ring consistency` phase running — but the propagated
//! corruption still takes down an AppVM, classifying as
//! `RecoveryFailure`. CI replays it on every push: any drift in the
//! virtio device models, the vswitch forwarding path, the steered
//! injector, or the ring-repair step breaks bit-identical replay and this
//! test names the divergence.
//!
//! To regenerate after an *intentional* behaviour change:
//! `cargo run --release -p nlh-experiments --bin replay -- \
//!     --setup vswitch --fault Code --steer VirtioMmio --seed 2020 \
//!     --out crates/campaign/tests/data/golden_virtio_residual_trial.log`

use nlh_campaign::{mechanism_for_name, BootCache, TrialClass, TrialRecord};
use nlh_hv::HandlerKind;

const GOLDEN: &str = include_str!("data/golden_virtio_residual_trial.log");

#[test]
fn golden_virtio_residual_failure_replays_identically() {
    let record = TrialRecord::from_text(GOLDEN).expect("golden log parses");
    assert_eq!(record.steer_handler, Some(HandlerKind::VirtioMmio));
    let point = record.injection.expect("golden log records an injection");
    assert_eq!(
        point.handler,
        HandlerKind::VirtioMmio,
        "the steered fault must land inside the queue-notify handler"
    );
    assert!(
        point.op_index > 0 && point.op_index < point.program_len,
        "mid-transaction: {} of {}",
        point.op_index,
        point.program_len
    );
    // The repair step ran: the rung is active even though this trial still
    // fails for other reasons.
    assert!(
        record
            .events
            .iter()
            .any(|e| e.detail.starts_with("Repair virtqueue ring consistency")),
        "golden log must show the ring-repair recovery phase"
    );

    let mech = mechanism_for_name(&record.mechanism)
        .unwrap_or_else(|| panic!("golden log names unknown mechanism {}", record.mechanism));
    let cache = BootCache::new();
    let result = record
        .replay(mech.as_ref(), &cache)
        .expect("golden virtio trial replays bit-identically");

    assert_eq!(
        result.class,
        TrialClass::RecoveryFailure("the AppVM was affected".into())
    );
    let outcome = record
        .outcome
        .as_ref()
        .expect("golden log records an outcome");
    assert_eq!(result.class, outcome.class);
    assert_eq!(result.steps, outcome.steps);
    assert_eq!(result.injection, outcome.injection);
}
