//! Table-driven coverage of [`classify`]: every manifestation class ×
//! recovery-outcome pair, for every setup family.
//!
//! Each case starts from a real recovered machine — a full fail-stop trial
//! run to completion under NiLiHype at a seed pinned to classify as
//! `RecoverySuccess { no_vm_failures: true }` — then perturbs exactly one
//! observation or machine fact and asserts the resulting class. Building
//! the fixture from a real trial (rather than a synthetic `Hypervisor`)
//! keeps the table honest: every row is one mutation away from a state the
//! simulator actually produces.

use nlh_campaign::{
    classify, run_trial_with, BenchKind, BootCache, SetupKind, SystemLayout, TrialClass,
    TrialConfig, TrialObservations, TrialRunOptions,
};
use nlh_core::{LadderRung, Microreset};
use nlh_hv::domain::DomainState;
use nlh_hv::hypercalls::{PendingKind, PendingRequest};
use nlh_hv::{HandlerKind, Hypervisor};
use nlh_inject::FaultType;
use nlh_sim::{SimDuration, SimTime};

/// A recovered machine plus the times `classify` was called with at the
/// end of its trial.
struct Fixture {
    hv: Hypervisor,
    layout: SystemLayout,
    now: SimTime,
    deadline: SimTime,
}

/// Runs one full detected-and-recovered trial and captures its final state.
/// Seed 1 classifies as `RecoverySuccess { no_vm_failures: true }` in every
/// setup (asserted below, so a behaviour change shows up as a test failure
/// here rather than as nonsense rows).
fn recovered_fixture(setup: SetupKind) -> Fixture {
    let cache = BootCache::new();
    let mech = Microreset::nilihype();
    let cfg = TrialConfig::new(setup, FaultType::Failstop, 1);
    let (hv, layout) = cache.checkout(&cfg.machine, cfg.setup, cfg.seed);
    let (result, _, hv) = run_trial_with(hv, &layout, &cfg, &mech, TrialRunOptions::default());
    assert_eq!(
        result.class,
        TrialClass::RecoverySuccess {
            no_vm_failures: true
        },
        "fixture seed no longer recovers cleanly for {setup:?}; pick a new pinned seed"
    );
    let trial_end = SimTime::ZERO + setup.trial_duration();
    let deadline = SimTime::ZERO
        + trial_end
            .saturating_since(SimTime::ZERO)
            .saturating_sub(SimDuration::from_millis(500));
    Fixture {
        now: hv.now_max(),
        hv,
        layout,
        deadline,
    }
}

/// Observations for a trial whose detector fired and whose recovery ran to
/// completion without any post-recovery detection.
fn detected_obs() -> TrialObservations {
    TrialObservations {
        detected: true,
        ..TrialObservations::default()
    }
}

fn crash_initial_app(fix: &mut Fixture, which: usize) {
    let (dom, _) = fix.layout.initial_apps[which];
    fix.hv.domains[dom.index()].state = DomainState::Crashed("oracle mismatch".into());
}

/// One row of the table: a mutation applied to a freshly recovered machine,
/// and the class it must produce.
struct Row {
    name: &'static str,
    mutate: fn(&mut Fixture, &mut TrialObservations),
    expect: fn(&TrialClass) -> bool,
}

fn run_table(setup: SetupKind, rows: &[Row]) {
    for row in rows {
        let mut fix = recovered_fixture(setup);
        let mut obs = detected_obs();
        (row.mutate)(&mut fix, &mut obs);
        let class = classify(&fix.hv, &fix.layout, &obs, fix.now, fix.deadline);
        assert!(
            (row.expect)(&class),
            "{setup:?} / {}: got {class:?}",
            row.name
        );
    }
}

/// Rows valid for every setup family: the manifestation classes and the
/// setup-independent recovery failures, in the same precedence order
/// `classify` checks them.
fn common_rows() -> Vec<Row> {
    vec![
        Row {
            name: "not detected, all benchmarks healthy -> NonManifested",
            mutate: |_, obs| obs.detected = false,
            expect: |c| *c == TrialClass::NonManifested,
        },
        Row {
            name: "not detected, a benchmark failed -> Sdc",
            mutate: |fix, obs| {
                obs.detected = false;
                crash_initial_app(fix, 0);
            },
            expect: |c| *c == TrialClass::Sdc,
        },
        Row {
            name: "recovery aborted -> RecoveryFailure(recovery aborted)",
            mutate: |_, obs| obs.recovery_error = Some("CPU1 failed to reach rendezvous".into()),
            expect: |c| matches!(c, TrialClass::RecoveryFailure(r) if r.starts_with("recovery aborted:")),
        },
        Row {
            name: "abort outranks second detection",
            mutate: |_, obs| {
                obs.recovery_error = Some("CPU1 failed to reach rendezvous".into());
                obs.second_detection = true;
                obs.second_detection_reason = Some("panic".into());
            },
            expect: |c| matches!(c, TrialClass::RecoveryFailure(r) if r.starts_with("recovery aborted:")),
        },
        Row {
            name: "second detection -> RecoveryFailure(post-recovery failure)",
            mutate: |_, obs| {
                obs.second_detection = true;
                obs.second_detection_reason = Some("BUG: bad page state".into());
            },
            expect: |c| {
                *c == TrialClass::RecoveryFailure(
                    "post-recovery failure: BUG: bad page state".into(),
                )
            },
        },
        Row {
            name: "second detection with no reason text",
            mutate: |_, obs| obs.second_detection = true,
            expect: |c| *c == TrialClass::RecoveryFailure("post-recovery failure: unknown".into()),
        },
        Row {
            name: "time sync stopped -> RecoveryFailure",
            mutate: |fix, _| fix.hv.last_time_sync = SimTime::ZERO,
            expect: |c| {
                *c == TrialClass::RecoveryFailure("platform time synchronization stopped".into())
            },
        },
        Row {
            name: "PrivVM crashed -> RecoveryFailure(PrivVM failed)",
            mutate: |fix, _| {
                fix.hv.domains[0].state = DomainState::Crashed("triple fault".into());
            },
            expect: |c| *c == TrialClass::RecoveryFailure("PrivVM failed".into()),
        },
        Row {
            name: "PrivVM request stuck without retry -> RecoveryFailure(PrivVM failed)",
            mutate: |fix, _| {
                fix.hv.domains[0].pending = Some(PendingRequest {
                    kind: PendingKind::Syscall,
                    bindings: Vec::new(),
                    completed_subcalls: 0,
                    will_retry: false,
                });
            },
            expect: |c| *c == TrialClass::RecoveryFailure("PrivVM failed".into()),
        },
        Row {
            name: "clean recovery -> RecoverySuccess with no VM failures",
            mutate: |_, _| {},
            expect: |c| {
                *c == TrialClass::RecoverySuccess {
                    no_vm_failures: true,
                }
            },
        },
    ]
}

#[test]
fn one_appvm_covers_every_class_pair() {
    let mut rows = common_rows();
    rows.push(Row {
        name: "the AppVM affected -> RecoveryFailure",
        mutate: |fix, _| crash_initial_app(fix, 0),
        expect: |c| *c == TrialClass::RecoveryFailure("the AppVM was affected".into()),
    });
    run_table(SetupKind::OneAppVm(BenchKind::UnixBench), &rows);
}

#[test]
fn shared_cpu_covers_every_class_pair() {
    let mut rows = common_rows();
    // The 2AppVM shared-CPU criterion is the 1AppVM one: *any* affected VM
    // is a recovery failure.
    rows.push(Row {
        name: "one of two AppVMs affected -> RecoveryFailure",
        mutate: |fix, _| crash_initial_app(fix, 1),
        expect: |c| *c == TrialClass::RecoveryFailure("the AppVM was affected".into()),
    });
    run_table(SetupKind::TwoAppVmSharedCpu, &rows);
}

#[test]
fn virtio_blk_one_appvm_covers_every_class_pair() {
    let mut rows = common_rows();
    rows.push(Row {
        name: "the virtio-blk AppVM affected -> RecoveryFailure",
        mutate: |fix, _| crash_initial_app(fix, 0),
        expect: |c| *c == TrialClass::RecoveryFailure("the AppVM was affected".into()),
    });
    run_table(SetupKind::OneAppVm(BenchKind::VirtioBlkBench), &rows);
}

#[test]
fn virtio_net_one_appvm_covers_every_class_pair() {
    let mut rows = common_rows();
    rows.push(Row {
        name: "the virtio-net AppVM affected -> RecoveryFailure",
        mutate: |fix, _| crash_initial_app(fix, 0),
        expect: |c| *c == TrialClass::RecoveryFailure("the AppVM was affected".into()),
    });
    run_table(SetupKind::OneAppVm(BenchKind::VirtioNetBench), &rows);
}

#[test]
fn vswitch_covers_every_class_pair() {
    let mut rows = common_rows();
    rows.push(Row {
        name: "one of two vswitch AppVMs affected -> RecoveryFailure",
        mutate: |fix, _| crash_initial_app(fix, 1),
        expect: |c| *c == TrialClass::RecoveryFailure("the AppVM was affected".into()),
    });
    run_table(SetupKind::TwoAppVmVswitch, &rows);
}

/// The ring-consistency rung changes a real steered trial's class: with
/// the fault held for the `VirtioMmio` notify handler, the stranded
/// descriptor blocks a guest forever unless the rung repairs the ring.
/// One classification row per device family, rung off and on.
#[test]
fn ring_consistency_rung_flips_steered_trial_class() {
    for setup in [
        SetupKind::OneAppVm(BenchKind::VirtioBlkBench),
        SetupKind::TwoAppVmVswitch,
    ] {
        let cache = BootCache::new();
        let run = |rung: LadderRung, seed: u64| {
            let mech = Microreset::with_enhancements(rung.enhancements());
            let cfg = TrialConfig::new(setup, FaultType::Failstop, seed);
            let (hv, layout) = cache.checkout(&cfg.machine, cfg.setup, cfg.seed);
            let opts = TrialRunOptions {
                steer_handler: Some(HandlerKind::VirtioMmio),
                ..TrialRunOptions::default()
            };
            run_trial_with(hv, &layout, &cfg, &mech, opts).0
        };
        // A seed whose mid-virtqueue fault is repairable: rung off leaves
        // the AppVM stuck on a lost completion, rung on recovers cleanly.
        let seed = (0..40)
            .find(|&s| {
                run(LadderRung::VirtqueueConsistency, s).class.is_success()
                    && !run(LadderRung::ReactivateTimerEvents, s).class.is_success()
            })
            .expect("some steered seed must be flipped by the rung");
        let off = run(LadderRung::ReactivateTimerEvents, seed);
        assert_eq!(
            off.class,
            TrialClass::RecoveryFailure("the AppVM was affected".into()),
            "{setup:?} seed {seed} rung off"
        );
        let on = run(LadderRung::VirtqueueConsistency, seed);
        assert!(
            matches!(
                on.class,
                TrialClass::RecoverySuccess {
                    no_vm_failures: true
                }
            ),
            "{setup:?} seed {seed} rung on: got {:?}",
            on.class
        );
    }
}

#[test]
fn three_appvm_covers_every_class_pair() {
    let mut rows = common_rows();
    rows.extend([
        Row {
            name: "post-recovery VM creation failed -> RecoveryFailure",
            mutate: |fix, _| fix.hv.domains[3].state = DomainState::Destroyed,
            expect: |c| {
                *c == TrialClass::RecoveryFailure(
                    "post-recovery VM creation or execution failed".into(),
                )
            },
        },
        Row {
            name: "one initial AppVM affected -> RecoverySuccess without noVMF",
            mutate: |fix, _| crash_initial_app(fix, 0),
            expect: |c| {
                *c == TrialClass::RecoverySuccess {
                    no_vm_failures: false,
                }
            },
        },
        Row {
            name: "two initial AppVMs affected -> RecoveryFailure",
            mutate: |fix, _| {
                crash_initial_app(fix, 0);
                crash_initial_app(fix, 1);
            },
            expect: |c| *c == TrialClass::RecoveryFailure("2 AppVMs affected".into()),
        },
        Row {
            name: "new-VM check outranks affected count",
            mutate: |fix, _| {
                fix.hv.domains[3].state = DomainState::Destroyed;
                crash_initial_app(fix, 0);
                crash_initial_app(fix, 1);
            },
            expect: |c| {
                *c == TrialClass::RecoveryFailure(
                    "post-recovery VM creation or execution failed".into(),
                )
            },
        },
    ]);
    run_table(SetupKind::ThreeAppVm, &rows);
}
