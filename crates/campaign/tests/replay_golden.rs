//! Golden record: a known residual-failure trial, checked in as text.
//!
//! `data/golden_residual_trial.log` was written by
//! `replay --seed 3 --out ...` — a 1AppVM / UnixBench / fail-stop trial
//! under full NiLiHype whose recovery completes but whose machine panics
//! again right after (`BUG: use count underflow`), classifying as
//! `RecoveryFailure`. CI replays it on every push: if the simulator's step
//! sequence, the injector's RNG draws, or the recovery model drift in any
//! observable way, the replay stops being bit-identical and this test
//! names the divergence.
//!
//! To regenerate after an *intentional* behaviour change:
//! `cargo run --release -p nlh-experiments --bin replay -- --seed 3 \
//!     --out crates/campaign/tests/data/golden_residual_trial.log`

use nlh_campaign::{mechanism_for_name, BootCache, TrialClass, TrialRecord};

const GOLDEN: &str = include_str!("data/golden_residual_trial.log");

#[test]
fn golden_residual_failure_replays_identically() {
    let record = TrialRecord::from_text(GOLDEN).expect("golden log parses");
    let mech = mechanism_for_name(&record.mechanism)
        .unwrap_or_else(|| panic!("golden log names unknown mechanism {}", record.mechanism));

    let cache = BootCache::new();
    let result = record
        .replay(mech.as_ref(), &cache)
        .expect("golden trial replays bit-identically");

    // The outcome class is pinned in the log itself; `replay` has already
    // verified the injection point, step count and class against the file.
    // Re-assert the headline facts here so a drift reads as a plain
    // assertion, not only as a replay error.
    assert!(
        matches!(&result.class, TrialClass::RecoveryFailure(r) if r.starts_with("post-recovery failure:")),
        "golden trial is a residual failure, got {:?}",
        result.class
    );
    let outcome = record
        .outcome
        .as_ref()
        .expect("golden log records an outcome");
    assert_eq!(result.class, outcome.class);
    assert_eq!(result.steps, outcome.steps);
    assert_eq!(result.injection, outcome.injection);
}
