//! Record-then-replay determinism: every trial's event record is enough to
//! reproduce the trial bit for bit.
//!
//! [`run_trial_recorded`] logs the trial's seed, config key, steered
//! trigger range and injection point. These properties pin the claim that
//! the record is *complete*: parsing the record back from its text form and
//! replaying it from a [`BootCache`] snapshot reproduces the full
//! [`TrialResult`] — injection outcome, observations, recovery report,
//! classification and exact step count — and, with tracing wide open, an
//! identical `Debug`-level trace dump. Nothing the trial did escaped the
//! record.

use nlh_campaign::{
    bisect_trials, run_trial_recorded, run_trial_with, BenchKind, BootCache, SetupKind,
    TrialConfig, TrialRecord, TrialRunOptions,
};
use nlh_core::Microreset;
use nlh_inject::FaultType;
use nlh_sim::trace::{TraceLevel, TraceRing};
use proptest::prelude::*;

fn setups() -> impl Strategy<Value = SetupKind> {
    prop_oneof![
        Just(SetupKind::OneAppVm(BenchKind::UnixBench)),
        Just(SetupKind::OneAppVm(BenchKind::BlkBench)),
        Just(SetupKind::OneAppVm(BenchKind::NetBench)),
        Just(SetupKind::ThreeAppVm),
        Just(SetupKind::TwoAppVmSharedCpu),
    ]
}

fn faults() -> impl Strategy<Value = FaultType> {
    prop_oneof![
        Just(FaultType::Failstop),
        Just(FaultType::Register),
        Just(FaultType::Code),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record → text → parse → replay reproduces the original
    /// [`TrialResult`] bit for bit, across the whole configuration space.
    /// The replay goes through the text form deliberately: what CI replays
    /// from a checked-in log is exactly what this property exercises.
    #[test]
    fn recorded_trials_replay_bit_identically(
        seed in 0u64..100_000,
        setup in setups(),
        fault in faults(),
    ) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let (original, record) = run_trial_recorded(&cfg, &mech, &cache);

        let text = record.to_text();
        let parsed = TrialRecord::from_text(&text);
        prop_assert!(parsed.is_ok(), "record does not parse: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &record, "text round trip is lossy");

        let replayed = parsed.replay(&mech, &cache);
        prop_assert!(replayed.is_ok(), "replay diverged: {:?}", replayed.err());
        prop_assert_eq!(original, replayed.unwrap());
    }

    /// Same property at the trace level: a replay steered by the record's
    /// trigger range leaves a `Debug`-level trace dump identical to the
    /// original run's. Trial results never expose intermediate states, so
    /// this closes the gap — the replay may not even *transiently* diverge
    /// in anything the trace ring can observe.
    #[test]
    fn replay_traces_identically(seed in 0u64..100_000, setup in setups(), fault in faults()) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let run = |opts: TrialRunOptions| {
            let (mut hv, layout) = cache.checkout(&cfg.machine, cfg.setup, cfg.seed);
            hv.trace = TraceRing::new(4096, TraceLevel::Debug);
            let (result, record, hv) = run_trial_with(hv, &layout, &cfg, &mech, opts);
            (result, record, hv.trace.dump())
        };
        let (original, record, original_dump) = run(TrialRunOptions::default());
        let (replayed, _, replay_dump) = run(TrialRunOptions {
            trigger_ops: Some(record.trigger_ops),
            ..TrialRunOptions::default()
        });
        prop_assert_eq!(original, replayed);
        prop_assert_eq!(original_dump, replay_dump);
    }
}

/// End-to-end bisection: a detected fail-stop trial must diverge from its
/// fault-free reference execution, and the divergent step the search pins
/// must fall inside both runs.
#[test]
fn bisect_pins_injected_trial_against_reference() {
    let cache = BootCache::new();
    let mech = Microreset::nilihype();
    let cfg = TrialConfig::new(
        SetupKind::OneAppVm(BenchKind::UnixBench),
        FaultType::Failstop,
        2018,
    );
    let (result, record) = run_trial_recorded(&cfg, &mech, &cache);
    assert!(
        result.observations.detected,
        "seed 2018 is a detected fail-stop trial (pinned by tests/golden.rs)"
    );

    let steered = TrialRunOptions {
        trigger_ops: Some(record.trigger_ops),
        ..TrialRunOptions::default()
    };
    let reference = TrialRunOptions {
        inject: false,
        ..TrialRunOptions::default()
    };
    let report = bisect_trials((&cfg, &steered), (&cfg, &reference), &mech, &cache)
        .expect("a detected fault must diverge from its fault-free reference");
    assert!(report.divergent_step < report.a.steps.min(report.b.steps) + 1);
    // Binary search over ~half a million steps: ~20 probes, never hundreds.
    assert!(report.probes <= 64, "{} probes", report.probes);
}
