//! The three checked-in golden residual logs, re-run through the superop
//! dispatch path and cross-checked against an unfused execution.
//!
//! [`TrialRecord::replay`] drives the standard trial loop, which since the
//! superop layer fuses micro-op runs, fast-forwards idle windows in bulk
//! and batches the injector's counting window. Each test here replays one
//! golden log through that path (any drift in fusion fails the replay's
//! own bit-identity checks), then runs the same recorded trial with
//! `Hypervisor::superops` off and asserts the full [`TrialResult`]s are
//! equal — fused and unfused executions of a recorded residual-failure
//! trial may not differ in any observable way.

use nlh_campaign::{mechanism_for_name, BootCache, TrialRecord, TrialRunOptions};

fn replay_fused_and_unfused(golden: &str) {
    let record = TrialRecord::from_text(golden).expect("golden log parses");
    let mech = mechanism_for_name(&record.mechanism)
        .unwrap_or_else(|| panic!("golden log names unknown mechanism {}", record.mechanism));
    let cache = BootCache::new();

    // Superop path: `replay` itself verifies the trigger draws, injection
    // point, step count and outcome against the record.
    let fused = record
        .replay(mech.as_ref(), &cache)
        .expect("golden trial replays bit-identically through the superop path");

    // Unfused cross-check: same recorded trigger and steering, fusion off.
    let (mut hv, layout) = cache.checkout(
        &record.config.machine,
        record.config.setup,
        record.config.seed,
    );
    hv.superops = false;
    let opts = TrialRunOptions {
        trigger_ops: Some(record.trigger_ops),
        steer_handler: record.steer_handler,
        steer_depth: record.steer_depth,
        ..TrialRunOptions::default()
    };
    let (unfused, _, _) =
        nlh_campaign::run_trial_with(hv, &layout, &record.config, mech.as_ref(), opts);
    assert_eq!(
        fused, unfused,
        "superops on/off diverged replaying a golden residual log"
    );
}

#[test]
fn golden_residual_replays_through_superops() {
    replay_fused_and_unfused(include_str!("data/golden_residual_trial.log"));
}

#[test]
fn golden_sched_residual_replays_through_superops() {
    replay_fused_and_unfused(include_str!("data/golden_sched_residual_trial.log"));
}

#[test]
fn golden_virtio_residual_replays_through_superops() {
    replay_fused_and_unfused(include_str!("data/golden_virtio_residual_trial.log"));
}
