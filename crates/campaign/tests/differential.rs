//! Differential determinism: warm-started trials are indistinguishable
//! from cold-booted ones, and the stepper fast path (pooled programs +
//! batched stepping) is indistinguishable from the per-step reference.
//!
//! The warm-start engine clones a cached post-boot template and re-derives
//! all RNG state from the trial seed. These properties pin the claim that
//! this changes *nothing*: across seeds, setups and fault types, the full
//! [`TrialResult`] — injection outcome, observations, recovery report
//! (every step, latency and repair count), final classification and step
//! count — is equal to what a cold boot produces.
//!
//! The second family pins the stepper fast path the same way:
//! [`run_trial_on`] (batched stepping, pooled program buffers) against
//! [`run_trial_on_unbatched`] with pooling disabled (one checked `step_any`
//! per iteration, fresh `Vec` per hypervisor entry — the pre-optimisation
//! stepper, kept at runtime exactly for this comparison).

use nlh_campaign::{
    build_system, run_trial, run_trial_on, run_trial_on_unbatched, run_trial_warm, BenchKind,
    BootCache, SetupKind, TrialConfig,
};
use nlh_core::{Enhancements, Microreboot, Microreset, RecoveryMechanism};
use nlh_inject::FaultType;
use proptest::prelude::*;

fn setups() -> impl Strategy<Value = SetupKind> {
    prop_oneof![
        Just(SetupKind::OneAppVm(BenchKind::UnixBench)),
        Just(SetupKind::OneAppVm(BenchKind::BlkBench)),
        Just(SetupKind::OneAppVm(BenchKind::NetBench)),
        Just(SetupKind::ThreeAppVm),
        Just(SetupKind::TwoAppVmSharedCpu),
        // Credit-mode overcommit: the scheduler datapath (preemption
        // switches, WFI blocking, migrations) must be bit-identical under
        // batched/pooled stepping and warm starts too.
        Just(SetupKind::Overcommit(2)),
        Just(SetupKind::Overcommit(4)),
        // Virtio vswitch: descriptor-ring handlers and guest-to-guest
        // forwarding must survive superop fusion bit-for-bit too.
        Just(SetupKind::TwoAppVmVswitch),
    ]
}

fn faults() -> impl Strategy<Value = FaultType> {
    prop_oneof![
        Just(FaultType::Failstop),
        Just(FaultType::Register),
        Just(FaultType::Code),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NiLiHype trials: warm == cold, bit for bit, across the whole
    /// configuration space.
    #[test]
    fn warm_equals_cold_nilihype(seed in 0u64..100_000, setup in setups(), fault in faults()) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let cold = run_trial(&cfg, &mech);
        let warm = run_trial_warm(&cfg, &mech, &cache);
        prop_assert_eq!(cold, warm);
    }

    /// The equivalence holds for ReHype and for crippled mechanisms too —
    /// it is a property of the boot path, not of any one recovery flavor.
    #[test]
    fn warm_equals_cold_other_mechanisms(seed in 0u64..100_000, pick in 0u8..2) {
        let cache = BootCache::new();
        let mech: Box<dyn RecoveryMechanism> = match pick {
            0 => Box::new(Microreboot::rehype()),
            _ => Box::new(Microreset::with_enhancements(Enhancements::none())),
        };
        let cfg = TrialConfig::new(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            seed,
        );
        let cold = run_trial(&cfg, mech.as_ref());
        let warm = run_trial_warm(&cfg, mech.as_ref(), &cache);
        prop_assert_eq!(cold, warm);
    }

    /// A single cache checked out repeatedly stays pristine: later
    /// checkouts are unaffected by earlier trials having run (and mutated)
    /// their clones.
    #[test]
    fn cache_reuse_does_not_leak_state(seed in 0u64..100_000) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Register,
            seed,
        );
        let first = run_trial_warm(&cfg, &mech, &cache);
        let second = run_trial_warm(&cfg, &mech, &cache);
        prop_assert_eq!(first, second);
    }

    /// Stepper fast path == reference stepper, bit for bit. The fast side
    /// runs batched stepping with pooled program buffers; the reference
    /// side steps one checked micro-op at a time with pooling off (fresh
    /// allocation per hypervisor entry). `TrialResult::steps` participates
    /// in the equality, so the two must execute identical step sequences —
    /// not merely reach the same classification.
    #[test]
    fn batched_pooled_equals_reference_stepper(
        seed in 0u64..100_000,
        setup in setups(),
        fault in faults(),
    ) {
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let (fast_hv, layout) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        let (mut ref_hv, _) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        ref_hv.pooling = false;
        let fast = run_trial_on(fast_hv, &layout, &cfg, &mech);
        let reference = run_trial_on_unbatched(ref_hv, &layout, &cfg, &mech);
        prop_assert_eq!(fast, reference);
    }

    /// Superop dispatch three ways: fused (superops on, the default),
    /// unfused batched (superops off — every micro-op through the single
    /// dispatch), and the per-step reference loop, all producing the same
    /// full [`TrialResult`] across every setup family (including credit
    /// overcommit and the virtio vswitch) and fault type. `steps`
    /// participates in the equality, so fused runs, bulk idle windows and
    /// the batched counting window must execute — and count — the exact
    /// reference step sequence.
    #[test]
    fn superops_equal_unfused_and_reference(
        seed in 0u64..100_000,
        setup in setups(),
        fault in faults(),
    ) {
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let (fused_hv, layout) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        let (mut plain_hv, _) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        plain_hv.superops = false;
        let (mut ref_hv, _) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        ref_hv.superops = false;
        ref_hv.pooling = false;
        let fused = run_trial_on(fused_hv, &layout, &cfg, &mech);
        let plain = run_trial_on(plain_hv, &layout, &cfg, &mech);
        let reference = run_trial_on_unbatched(ref_hv, &layout, &cfg, &mech);
        prop_assert_eq!(&fused, &plain);
        prop_assert_eq!(fused, reference);
    }

    /// Same comparison at the hypervisor level with tracing wide open:
    /// batched + pooled stepping must leave identical traces, per-CPU
    /// clocks and step counts as unbatched + fresh-allocation stepping.
    /// (Trial loops never see intermediate states, so this closes the gap:
    /// the fast path may not even *transiently* diverge in anything the
    /// trace ring can observe.)
    #[test]
    fn batched_stepping_traces_identically(seed in 0u64..100_000, pick in 0u8..3) {
        use nlh_sim::trace::{TraceLevel, TraceRing};
        let setup = match pick {
            0 => SetupKind::OneAppVm(BenchKind::UnixBench),
            1 => SetupKind::ThreeAppVm,
            _ => SetupKind::TwoAppVmSharedCpu,
        };
        let cfg = TrialConfig::new(setup, FaultType::Failstop, seed);
        let (mut fast, _) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        let (mut slow, _) = build_system(cfg.machine.clone(), cfg.setup, cfg.seed);
        fast.trace = TraceRing::new(4096, TraceLevel::Debug);
        slow.trace = TraceRing::new(4096, TraceLevel::Debug);
        slow.pooling = false;
        let deadline = fast.now() + nlh_sim::SimDuration::from_millis(40);
        fast.run_until(deadline);
        slow.run_until_unbatched(deadline);
        prop_assert_eq!(fast.steps_executed(), slow.steps_executed());
        prop_assert_eq!(fast.now(), slow.now());
        prop_assert_eq!(fast.now_max(), slow.now_max());
        prop_assert_eq!(fast.trace.dump(), slow.trace.dump());
    }
}
