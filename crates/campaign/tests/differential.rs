//! Differential determinism: warm-started trials are indistinguishable
//! from cold-booted ones.
//!
//! The warm-start engine clones a cached post-boot template and re-derives
//! all RNG state from the trial seed. These properties pin the claim that
//! this changes *nothing*: across seeds, setups and fault types, the full
//! [`TrialResult`] — injection outcome, observations, recovery report
//! (every step, latency and repair count) and final classification — is
//! equal to what a cold boot produces.

use nlh_campaign::{run_trial, run_trial_warm, BenchKind, BootCache, SetupKind, TrialConfig};
use nlh_core::{Enhancements, Microreboot, Microreset, RecoveryMechanism};
use nlh_inject::FaultType;
use proptest::prelude::*;

fn setups() -> impl Strategy<Value = SetupKind> {
    prop_oneof![
        Just(SetupKind::OneAppVm(BenchKind::UnixBench)),
        Just(SetupKind::OneAppVm(BenchKind::BlkBench)),
        Just(SetupKind::OneAppVm(BenchKind::NetBench)),
        Just(SetupKind::ThreeAppVm),
        Just(SetupKind::TwoAppVmSharedCpu),
    ]
}

fn faults() -> impl Strategy<Value = FaultType> {
    prop_oneof![
        Just(FaultType::Failstop),
        Just(FaultType::Register),
        Just(FaultType::Code),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NiLiHype trials: warm == cold, bit for bit, across the whole
    /// configuration space.
    #[test]
    fn warm_equals_cold_nilihype(seed in 0u64..100_000, setup in setups(), fault in faults()) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(setup, fault, seed);
        let cold = run_trial(&cfg, &mech);
        let warm = run_trial_warm(&cfg, &mech, &cache);
        prop_assert_eq!(cold, warm);
    }

    /// The equivalence holds for ReHype and for crippled mechanisms too —
    /// it is a property of the boot path, not of any one recovery flavor.
    #[test]
    fn warm_equals_cold_other_mechanisms(seed in 0u64..100_000, pick in 0u8..2) {
        let cache = BootCache::new();
        let mech: Box<dyn RecoveryMechanism> = match pick {
            0 => Box::new(Microreboot::rehype()),
            _ => Box::new(Microreset::with_enhancements(Enhancements::none())),
        };
        let cfg = TrialConfig::new(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            seed,
        );
        let cold = run_trial(&cfg, mech.as_ref());
        let warm = run_trial_warm(&cfg, mech.as_ref(), &cache);
        prop_assert_eq!(cold, warm);
    }

    /// A single cache checked out repeatedly stays pristine: later
    /// checkouts are unaffected by earlier trials having run (and mutated)
    /// their clones.
    #[test]
    fn cache_reuse_does_not_leak_state(seed in 0u64..100_000) {
        let cache = BootCache::new();
        let mech = Microreset::nilihype();
        let cfg = TrialConfig::new(
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Register,
            seed,
        );
        let first = run_trial_warm(&cfg, &mech, &cache);
        let second = run_trial_warm(&cfg, &mech, &cache);
        prop_assert_eq!(first, second);
    }
}
