//! Engine ⇔ legacy equivalence: the resident campaign engine must be a
//! pure orchestration change.
//!
//! The [`CampaignEngine`] shares one boot cache across campaigns, executes
//! in batches, folds results seed-ordered, and optionally stops cells at a
//! confidence threshold — none of which may change what any trial
//! computes. These tests pin that claim differentially for every
//! `SetupKind` family at fixed seeds, by property over random specs, and
//! for the stop-at-confidence policy (a stopped cell must equal a
//! fixed-trials run of exactly the stop length).

use nlh_campaign::{
    run_campaign_with, run_sampled_campaign_steered_depth, run_trial, BenchKind, BootMode,
    CampaignEngine, CampaignResult, CampaignSpec, ExecMode, MechanismSpec, MemorySink, NullSink,
    SampledCampaign, SamplingMode, SetupKind, StopPolicy, TrialConfig,
};
use nlh_core::LadderRung;
use nlh_hv::HandlerKind;
use nlh_inject::FaultType;
use proptest::prelude::*;

/// Runs a spec's cell through the legacy per-campaign path.
fn legacy_sharded(spec: &CampaignSpec) -> CampaignResult {
    let (setup, fault, trials, seed, boot) =
        (spec.setup, spec.fault, spec.trials, spec.seed, spec.boot);
    match spec.mechanism {
        MechanismSpec::Nilihype => run_campaign_with(
            setup,
            fault,
            trials,
            seed,
            nlh_core::Microreset::nilihype,
            boot,
        ),
        MechanismSpec::Rehype => run_campaign_with(
            setup,
            fault,
            trials,
            seed,
            nlh_core::Microreboot::rehype,
            boot,
        ),
        MechanismSpec::Rung(rung) => run_campaign_with(
            setup,
            fault,
            trials,
            seed,
            move || nlh_core::Microreset::with_enhancements(rung.enhancements()),
            boot,
        ),
        MechanismSpec::NilihypeNoSchedFix => run_campaign_with(
            setup,
            fault,
            trials,
            seed,
            || {
                let mut e = nlh_core::Enhancements::full();
                e.sched_consistency = false;
                nlh_core::Microreset::with_enhancements(e)
            },
            boot,
        ),
    }
}

/// Asserts every deterministic field of two campaign results agrees
/// (wall-clock telemetry and cache counters are host- or
/// context-dependent by design and excluded).
fn assert_campaigns_equal(engine: &CampaignResult, legacy: &CampaignResult, label: &str) {
    assert_eq!(engine.mechanism, legacy.mechanism, "{label}: mechanism");
    assert_eq!(engine.fault, legacy.fault, "{label}: fault");
    assert_eq!(engine.trials, legacy.trials, "{label}: trials");
    assert_eq!(
        engine.non_manifested, legacy.non_manifested,
        "{label}: non_manifested"
    );
    assert_eq!(engine.sdc, legacy.sdc, "{label}: sdc");
    assert_eq!(engine.detected, legacy.detected, "{label}: detected");
    assert_eq!(engine.successes, legacy.successes, "{label}: successes");
    assert_eq!(engine.no_vmf, legacy.no_vmf, "{label}: no_vmf");
    assert_eq!(
        engine.failure_reasons, legacy.failure_reasons,
        "{label}: failure_reasons"
    );
    assert_eq!(
        engine.telemetry.total_steps, legacy.telemetry.total_steps,
        "{label}: total_steps"
    );
    assert_eq!(
        engine.telemetry.recovery_latency_us, legacy.telemetry.recovery_latency_us,
        "{label}: recovery latency histogram"
    );
    assert_eq!(
        engine.telemetry.phase_latency_us, legacy.telemetry.phase_latency_us,
        "{label}: phase latency histograms"
    );
}

fn assert_sampled_equal(engine: &SampledCampaign, legacy: &SampledCampaign, label: &str) {
    assert_eq!(engine.trials, legacy.trials, "{label}: trials");
    assert_eq!(engine.successes, legacy.successes, "{label}: successes");
    assert_eq!(engine.failures, legacy.failures, "{label}: failures");
    assert_eq!(
        engine.first_failure_trial, legacy.first_failure_trial,
        "{label}: first failure trial"
    );
    assert_eq!(
        engine.coverage.to_json(),
        legacy.coverage.to_json(),
        "{label}: coverage map"
    );
    assert_eq!(
        format!("{:?}", engine.first_failure_record),
        format!("{:?}", legacy.first_failure_record),
        "{label}: first failure record"
    );
}

/// Every `SetupKind` family, engine vs legacy, fixed seeds: identical
/// `CampaignResult`s AND identical per-trial `TrialResult` sequences
/// (each engine trial equals a standalone cold-boot run of that seed).
#[test]
fn engine_equals_legacy_for_every_setup_family() {
    let engine = CampaignEngine::new();
    let cells: [(SetupKind, FaultType, u64, u64); 7] = [
        (
            SetupKind::OneAppVm(BenchKind::UnixBench),
            FaultType::Failstop,
            10,
            2018,
        ),
        (
            SetupKind::OneAppVm(BenchKind::VirtioBlkBench),
            FaultType::Register,
            8,
            41,
        ),
        (SetupKind::ThreeAppVm, FaultType::Code, 8, 77),
        (SetupKind::TwoAppVmSharedCpu, FaultType::Register, 8, 99),
        (SetupKind::TwoAppVmVswitch, FaultType::Failstop, 6, 2018),
        (SetupKind::Overcommit(2), FaultType::Code, 6, 7),
        (SetupKind::Overcommit(4), FaultType::Failstop, 6, 11),
    ];
    for (setup, fault, trials, seed) in cells {
        let mut spec = CampaignSpec::new(format!("{setup:?}"), setup, fault, trials);
        spec.seed = seed;
        let cell = engine.run_spec(&spec, &mut NullSink);
        let legacy = legacy_sharded(&spec);
        let label = format!("{setup:?}/{fault}");
        assert_campaigns_equal(cell.sharded().unwrap(), &legacy, &label);

        assert_eq!(cell.per_trial.len() as u64, trials, "{label}: trial count");
        let mech = spec.mechanism.build();
        for (i, engine_trial) in cell.per_trial.iter().enumerate() {
            let cfg = TrialConfig::new(setup, fault, seed + i as u64);
            let standalone = run_trial(&cfg, mech.as_ref());
            assert_eq!(
                engine_trial, &standalone,
                "{label}: trial {i} diverged from a standalone cold-boot run"
            );
        }
    }
}

/// Cross-campaign cache reuse is observable in telemetry, and templates
/// are RNG-isolated: running other campaigns against the shared cache
/// first (in any order) never changes a campaign's counts.
#[test]
fn shared_cache_reuse_is_observable_and_rng_isolated() {
    let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
    let mut a = CampaignSpec::new("a", setup, FaultType::Register, 8);
    a.seed = 5;
    let mut b = CampaignSpec::new("b", setup, FaultType::Failstop, 8);
    b.seed = 900;

    // Fresh engines, opposite orders; plus B in isolation as the oracle.
    let ab = CampaignEngine::new();
    let a_first = ab.run_spec(&a, &mut NullSink);
    let b_second = ab.run_spec(&b, &mut NullSink);
    let ba = CampaignEngine::new();
    let b_first = ba.run_spec(&b, &mut NullSink);
    let a_second = ba.run_spec(&a, &mut NullSink);
    let b_alone = CampaignEngine::new().run_spec(&b, &mut NullSink);

    assert_campaigns_equal(
        b_second.sharded().unwrap(),
        b_alone.sharded().unwrap(),
        "B after A vs B alone",
    );
    assert_campaigns_equal(
        b_first.sharded().unwrap(),
        b_alone.sharded().unwrap(),
        "B before A vs B alone",
    );
    assert_campaigns_equal(
        a_first.sharded().unwrap(),
        a_second.sharded().unwrap(),
        "A first vs A second",
    );

    // The second campaign on each engine found the template resident —
    // visible both in the cell's counters and the result telemetry.
    assert_eq!(a_first.cache.misses, 1);
    assert_eq!(b_second.cache.misses, 0, "B reused A's template");
    assert_eq!(b_second.cache.hits, 8);
    assert_eq!(
        b_second.sharded().unwrap().telemetry.boot_cache.misses,
        0,
        "reuse visible in CampaignTelemetry"
    );
    assert_eq!(a_second.cache.misses, 0, "A reused B's template");
}

/// Stop-at-confidence: deterministic, golden-pinned stop trial, and the
/// stopped cell is bit-identical to a fixed-trials run of that length.
#[test]
fn stop_at_confidence_is_deterministic_and_prefix_exact() {
    let setup = SetupKind::OneAppVm(BenchKind::UnixBench);
    let mut spec = CampaignSpec::new("stop", setup, FaultType::Failstop, 60);
    spec.seed = 2018;
    spec.stop = StopPolicy::AtConfidence {
        halfwidth: 0.11,
        min_detected: 10,
        check_every: 7,
    };

    let engine = CampaignEngine::new();
    let mut sink = MemorySink::default();
    let first = engine.run_spec(&spec, &mut sink);
    let second = CampaignEngine::new().run_spec(&spec, &mut NullSink);

    // Golden: with seed 2018 the Wilson half-width of the seed-ordered
    // prefix first crosses 0.11 after exactly this many trials. Update
    // only on intentional behaviour changes (the assertion message
    // carries the actual).
    const GOLDEN_STOP_TRIAL: u64 = 14;
    assert_eq!(
        first.stopped_at,
        Some(GOLDEN_STOP_TRIAL),
        "stop trial drifted (executed {} trials)",
        first.executed
    );
    assert_eq!(
        second.stopped_at, first.stopped_at,
        "stop must be deterministic"
    );
    assert_eq!(first.executed, GOLDEN_STOP_TRIAL);
    assert_campaigns_equal(
        first.sharded().unwrap(),
        second.sharded().unwrap(),
        "two stopped runs",
    );

    // The stopped cell equals a fixed-trials cell of exactly the stop
    // length — the batch executor discards the overshoot bit-exactly.
    let mut fixed = spec.clone();
    fixed.trials = GOLDEN_STOP_TRIAL;
    fixed.stop = StopPolicy::FixedTrials;
    let fixed_cell = CampaignEngine::new().run_spec(&fixed, &mut NullSink);
    assert_campaigns_equal(
        first.sharded().unwrap(),
        fixed_cell.sharded().unwrap(),
        "stopped vs fixed-trials prefix",
    );
    assert_eq!(first.per_trial, fixed_cell.per_trial);

    // The final snapshot records the stop; its CI is at or under the
    // threshold, and the cell reports exactly the prefix's counts.
    let last = sink.snapshots.last().unwrap();
    assert!(last.done);
    assert_eq!(last.stopped_at, Some(GOLDEN_STOP_TRIAL));
    assert!(last.halfwidth() <= 0.11, "halfwidth {}", last.halfwidth());
    assert!(last.detected >= 10);
}

/// Disabled stop policy (fixed trials) reproduces the legacy golden
/// ladder counts through the engine path (the root `tests/golden.rs`
/// pins the full set; this is the in-crate guard).
#[test]
fn fixed_trials_engine_reproduces_legacy_goldens() {
    let engine = CampaignEngine::new();
    let mut spec = CampaignSpec::new(
        "ladder-top",
        SetupKind::OneAppVm(BenchKind::UnixBench),
        FaultType::Failstop,
        40,
    );
    spec.seed = 2018;
    spec.mechanism = MechanismSpec::Rung(LadderRung::VirtqueueConsistency);
    let cell = engine.run_spec(&spec, &mut NullSink);
    let r = cell.sharded().unwrap();
    assert_eq!(
        (r.detected, r.successes, r.no_vmf),
        (40, 38, 38),
        "GOLDEN_LADDER top rung via the engine"
    );
}

fn setups() -> impl Strategy<Value = SetupKind> {
    prop_oneof![
        Just(SetupKind::OneAppVm(BenchKind::UnixBench)),
        Just(SetupKind::OneAppVm(BenchKind::NetBench)),
        Just(SetupKind::ThreeAppVm),
        Just(SetupKind::TwoAppVmSharedCpu),
        Just(SetupKind::TwoAppVmVswitch),
        Just(SetupKind::Overcommit(2)),
    ]
}

fn faults() -> impl Strategy<Value = FaultType> {
    prop_oneof![
        Just(FaultType::Failstop),
        Just(FaultType::Register),
        Just(FaultType::Code),
    ]
}

fn mechanisms() -> impl Strategy<Value = MechanismSpec> {
    prop_oneof![
        Just(MechanismSpec::Nilihype),
        Just(MechanismSpec::Rehype),
        Just(MechanismSpec::Rung(LadderRung::SchedConsistency)),
        Just(MechanismSpec::NilihypeNoSchedFix),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random sharded specs: engine == legacy.
    #[test]
    fn engine_equals_legacy_sharded(
        seed in 0u64..100_000,
        setup in setups(),
        fault in faults(),
        mechanism in mechanisms(),
        trials in 1u64..6,
        cold in 0u8..2,
    ) {
        let mut spec = CampaignSpec::new("prop", setup, fault, trials);
        spec.seed = seed;
        spec.mechanism = mechanism;
        spec.boot = if cold == 1 { BootMode::Cold } else { BootMode::Warm };
        let cell = CampaignEngine::new().run_spec(&spec, &mut NullSink);
        let legacy = legacy_sharded(&spec);
        assert_campaigns_equal(cell.sharded().unwrap(), &legacy, "prop-sharded");
    }

    /// Random sampled specs (windows, sampling mode, steer handler, depth
    /// cycle): engine == `run_sampled_campaign_steered_depth`.
    #[test]
    fn engine_equals_legacy_sampled(
        seed in 0u64..100_000,
        fault in faults(),
        trials in 1u64..6,
        windows in 1usize..9,
        guided in 0u8..2,
        steer in 0u8..3,
        depth_cycle in 1u64..4,
    ) {
        let sampling = if guided == 1 {
            SamplingMode::CoverageGuided
        } else {
            SamplingMode::Uniform
        };
        let steer_handler = match steer {
            0 => None,
            1 => Some(HandlerKind::VirtioMmio),
            _ => Some(HandlerKind::Scheduler),
        };
        let setup = SetupKind::TwoAppVmVswitch;
        let mut spec = CampaignSpec::new("prop-sampled", setup, fault, trials);
        spec.seed = seed;
        spec.mode = ExecMode::Sampled { windows, sampling, steer_handler, depth_cycle };
        let cell = CampaignEngine::new().run_spec(&spec, &mut NullSink);
        let mech = spec.mechanism.build();
        let legacy = run_sampled_campaign_steered_depth(
            setup, fault, mech.as_ref(), seed, trials, windows, sampling, steer_handler,
            depth_cycle,
        );
        assert_sampled_equal(cell.sampled().unwrap(), &legacy, "prop-sampled");
    }
}
