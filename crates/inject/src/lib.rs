//! A Gigan-style software-implemented fault injector (Section VI-C).
//!
//! Faults are injected through a **two-level chained trigger**: a timer
//! fires at a random point of the benchmark run, arming a counter that
//! fires after a random number of instructions executed *in the target
//! hypervisor* — guaranteeing the fault lands while hypervisor code is
//! running, uniformly over hypervisor execution. In this reproduction the
//! "instructions" are hypervisor micro-ops, so the fault strikes between
//! two arbitrary state updates of an arbitrary handler.
//!
//! Three fault types are modelled, as in the paper:
//!
//! * **Failstop** — the program counter is forced to 0: an immediate fatal
//!   exception, detected on the spot, with no state corruption.
//! * **Register** — a bit flip in a random architectural register.
//! * **Code** — a bit flip in the instruction stream near the program
//!   counter (repaired at detection, so effectively transient).
//!
//! For Register and Code faults the *manifestation* of the bit flip
//! (non-manifested / silent data corruption / detected) cannot be derived
//! from a behavioural simulator; the [`ManifestModel`] reproduces the
//! paper's measured outcome breakdown (Section VII-A: Register
//! 74.8/5.6/19.6, Code 35.0/12.1/52.9) as calibrated constants. Everything
//! *after* manifestation — what state is corrupted, what residue the
//! abandoned handlers leave, and whether recovery copes — is mechanistic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use nlh_hv::chaos::CorruptionKind;
use nlh_hv::{CpuId, HandlerKind, Hypervisor, StepOutcome};
use nlh_sim::{Pcg64, SimTime};
use serde::{Deserialize, Serialize};

/// The fault types of the paper's campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultType {
    /// Program counter forced to 0 (immediate detected crash).
    Failstop,
    /// Transient bit flip in a random register.
    Register,
    /// Transient bit flip in the instruction stream.
    Code,
}

impl FaultType {
    /// All fault types, in the paper's presentation order.
    pub const ALL: [FaultType; 3] = [FaultType::Failstop, FaultType::Register, FaultType::Code];

    /// Parses the name produced by the `Display` impl.
    pub fn from_name(s: &str) -> Option<FaultType> {
        match s {
            "Failstop" => Some(FaultType::Failstop),
            "Register" => Some(FaultType::Register),
            "Code" => Some(FaultType::Code),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultType::Failstop => write!(f, "Failstop"),
            FaultType::Register => write!(f, "Register"),
            FaultType::Code => write!(f, "Code"),
        }
    }
}

/// How an injected fault manifested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionOutcome {
    /// No observable abnormal behaviour.
    NonManifested,
    /// Silent data corruption: detectors silent, benchmark output wrong.
    Sdc,
    /// A detector fired (panic or, after the watchdog latency, hang);
    /// recovery will be triggered.
    Detected,
}

/// Manifestation probabilities for one fault type.
///
/// `p_nonmanifested + p_sdc + p_detected` must be 1. Within detected cases,
/// `p_hang` selects watchdog-detected hangs (longer detection latency →
/// more propagation), the rest are immediate panics. `propagation` gives
/// the probability of 0, 1, 2, ... additional state corruptions applied
/// before detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestModel {
    /// P(no observable effect).
    pub p_nonmanifested: f64,
    /// P(silent data corruption).
    pub p_sdc: f64,
    /// P(detected).
    pub p_detected: f64,
    /// Within detected: P(hang rather than immediate panic).
    pub p_hang: f64,
    /// Distribution over the number of propagated corruptions.
    pub propagation: Vec<f64>,
}

impl ManifestModel {
    /// The model for a fault type, calibrated to Section VII-A.
    pub fn for_fault(fault: FaultType) -> Self {
        match fault {
            FaultType::Failstop => ManifestModel {
                p_nonmanifested: 0.0,
                p_sdc: 0.0,
                p_detected: 1.0,
                p_hang: 0.0,
                propagation: vec![1.0], // failstop cannot corrupt state
            },
            FaultType::Register => ManifestModel {
                p_nonmanifested: 0.748,
                p_sdc: 0.056,
                p_detected: 0.196,
                p_hang: 0.25,
                propagation: vec![0.55, 0.33, 0.12],
            },
            FaultType::Code => ManifestModel {
                p_nonmanifested: 0.350,
                p_sdc: 0.121,
                p_detected: 0.529,
                // Longer detection latency (Section VII-A: Code faults are
                // detected later, so errors propagate further).
                p_hang: 0.35,
                propagation: vec![0.45, 0.32, 0.16, 0.07],
            },
        }
    }
}

/// Relative likelihood of each propagation target.
///
/// These weights shape *where* errors propagate before detection. Page
/// frames and scheduler metadata dominate (they are the biggest mutable
/// structures touched by hot paths); the heap free list and
/// boot-reinitialized scratch are the targets that give the reboot-based
/// ReHype its small recovery-rate edge; recovery-critical state and the
/// PrivVM reproduce the paper's top recovery-failure causes.
pub fn corruption_weights() -> Vec<(CorruptionKind, f64)> {
    vec![
        (CorruptionKind::PageFrame, 0.36),
        (CorruptionKind::SchedMetadata, 0.21),
        (CorruptionKind::TimerHeapNode, 0.12),
        (CorruptionKind::HeapFreelist, 0.01),
        (CorruptionKind::BootScratch, 0.02),
        (CorruptionKind::RecoveryCritical, 0.07),
        (CorruptionKind::GuestData, 0.14),
        (CorruptionKind::PrivVm, 0.07),
    ]
}

/// Where a fault actually landed: the handler context at the moment of
/// injection. Captured by the injector at fire time for the trial record,
/// and the unit the campaign coverage map counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPoint {
    /// The CPU the fault struck.
    pub cpu: CpuId,
    /// The stepped CPU's local clock at injection.
    pub at: SimTime,
    /// The handler family executing when the fault struck.
    pub handler: HandlerKind,
    /// How many of the handler's micro-ops had already retired (the top
    /// frame's program counter).
    pub op_index: usize,
    /// Total micro-ops in the struck handler's program.
    pub program_len: usize,
    /// The second-level trigger's micro-op budget that led here.
    pub ops_budget: u64,
}

/// Injector phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the first-level timer.
    Waiting,
    /// Timer fired; counting hypervisor micro-ops.
    Counting(u64),
    /// Fault applied.
    Done,
}

/// The fault injector for one trial.
#[derive(Debug)]
pub struct Injector {
    fault: FaultType,
    model: ManifestModel,
    rng: Pcg64,
    fire_at: SimTime,
    phase: Phase,
    ops_budget: u64,
    ops_range: (u64, u64),
    only_handler: Option<HandlerKind>,
    steer_depth: u64,
    depth_left: u64,
    outcome: Option<InjectionOutcome>,
    injected_on: Option<CpuId>,
    point: Option<InjectionPoint>,
}

impl Injector {
    /// Creates an injector for one trial.
    ///
    /// The first-level trigger fires uniformly inside `window`; the second
    /// fires after a uniform number of hypervisor micro-ops in
    /// `[0, max_hv_ops)` (the paper uses 0–20 000 instructions).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(fault: FaultType, seed: u64, window: (SimTime, SimTime), max_hv_ops: u64) -> Self {
        // Delegating with [0, max) keeps the RNG draw sequence identical to
        // the historical constructor, so existing pinned-seed campaigns do
        // not drift.
        Injector::with_ops_range(fault, seed, window, (0, max_hv_ops.max(1)))
    }

    /// Creates an injector whose second-level trigger draws its micro-op
    /// budget uniformly from `[ops_range.0, ops_range.1)` instead of the
    /// full `[0, max_hv_ops)` span.
    ///
    /// This is the hook the coverage-guided campaign mode uses to steer
    /// injections into a chosen stratum of the trigger space; replay stores
    /// the range so a steered trial reproduces bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the time window or the ops range is empty.
    pub fn with_ops_range(
        fault: FaultType,
        seed: u64,
        window: (SimTime, SimTime),
        ops_range: (u64, u64),
    ) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed);
        let (lo, hi) = window;
        assert!(lo < hi, "empty trigger window");
        let fire_at = SimTime::from_nanos(rng.gen_range_u64(lo.as_nanos(), hi.as_nanos()));
        let ops_budget = rng.gen_range_u64(ops_range.0, ops_range.1);
        Injector {
            model: ManifestModel::for_fault(fault),
            fault,
            rng,
            fire_at,
            phase: Phase::Waiting,
            ops_budget,
            ops_range,
            only_handler: None,
            steer_depth: 0,
            depth_left: 0,
            outcome: None,
            injected_on: None,
            point: None,
        }
    }

    /// The fault type.
    pub fn fault(&self) -> FaultType {
        self.fault
    }

    /// When the first-level trigger fires.
    pub fn fire_at(&self) -> SimTime {
        self.fire_at
    }

    /// The manifestation outcome, once injected.
    pub fn outcome(&self) -> Option<InjectionOutcome> {
        self.outcome
    }

    /// The CPU the fault was injected on, once injected.
    pub fn injected_on(&self) -> Option<CpuId> {
        self.injected_on
    }

    /// The second-level trigger's drawn micro-op budget.
    pub fn ops_budget(&self) -> u64 {
        self.ops_budget
    }

    /// The range the micro-op budget was drawn from.
    pub fn ops_range(&self) -> (u64, u64) {
        self.ops_range
    }

    /// Restricts injection to steps executing inside the given handler
    /// family: once the micro-op budget is spent, the armed injector keeps
    /// waiting until the stepped CPU is mid-program in a matching handler —
    /// the mid-transaction fault windows the device campaigns target. The
    /// filter draws no extra randomness, so a steered trial replays
    /// bit-identically from the same seed and range.
    pub fn steer_to_handler(mut self, handler: HandlerKind) -> Self {
        self.only_handler = Some(handler);
        self
    }

    /// The handler filter, if the injector was steered.
    pub fn steered_handler(&self) -> Option<HandlerKind> {
        self.only_handler
    }

    /// Delays a steered injection by `depth` additional micro-ops executed
    /// *inside* the steered handler (carrying across program instances if
    /// one retires first). Without it a steered fault almost always lands
    /// on the first op of a matching program — before the handler has
    /// mutated anything — because the spent budget usually runs out
    /// elsewhere. A nonzero depth pushes the fault into the handler's
    /// mutation window. No extra randomness: callers derive the depth from
    /// the trial seed and replay restores it verbatim.
    pub fn with_steer_depth(mut self, depth: u64) -> Self {
        self.steer_depth = depth;
        self.depth_left = depth;
        self
    }

    /// The steered in-handler op delay, if any.
    pub fn steer_depth(&self) -> u64 {
        self.steer_depth
    }

    /// Where the fault landed (handler, op index, CPU, time), once
    /// injected.
    pub fn injection_point(&self) -> Option<&InjectionPoint> {
        self.point.as_ref()
    }

    /// Whether the injector is still waiting for the first-level timer.
    ///
    /// In this phase `on_step` only compares the stepped CPU's clock to
    /// [`Injector::fire_at`] — it has no side effects — so a driver may run
    /// the hypervisor in a batched loop and hand over only the step on
    /// which the clock first reaches `fire_at` (see
    /// `Hypervisor::run_until_marker`).
    pub fn is_waiting(&self) -> bool {
        self.phase == Phase::Waiting
    }

    /// Whether the fault has been applied (the trigger chain is spent).
    /// From here `on_step` is a no-op, so the remainder of a trial can run
    /// batched without consulting the injector.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the first-level timer has fired and the injector is counting
    /// hypervisor micro-ops toward the second-level trigger. In this phase
    /// a driver may hand the whole window to [`Injector::run_counting`]
    /// instead of feeding steps one at a time.
    pub fn is_counting(&self) -> bool {
        matches!(self.phase, Phase::Counting(_))
    }

    /// Drives the hypervisor's batched engine through the counting window:
    /// equivalent to stepping one micro-op at a time and feeding every step
    /// to [`Injector::on_step`], but executed on the superop/batched path
    /// (`Hypervisor::run_counting`), which fuses Compute runs while the
    /// budget drains and splits the batch exactly at the fire index.
    /// Returns `true` if the fault was injected before `deadline`;
    /// otherwise the deadline was reached (or an organic detection froze
    /// the machine) with the remaining budget carried over. Draws exactly
    /// the same randomness as the per-step path (none until injection);
    /// bit-identity is pinned by differential tests.
    ///
    /// # Panics
    ///
    /// Panics unless the injector is in the counting phase
    /// ([`Injector::is_counting`]).
    pub fn run_counting(&mut self, hv: &mut Hypervisor, deadline: SimTime) -> bool {
        let left = match self.phase {
            Phase::Counting(left) => left,
            _ => panic!("run_counting requires the counting phase"),
        };
        let w = hv.run_counting(deadline, left, self.only_handler, self.depth_left);
        self.depth_left = w.depth_left;
        self.phase = Phase::Counting(w.left);
        match w.fired {
            Some(cpu) => {
                self.inject(hv, cpu);
                true
            }
            None => false,
        }
    }

    /// Feeds one simulation step to the trigger chain; call after every
    /// [`Hypervisor::step_any`]. Returns `true` at the step that injects.
    pub fn on_step(&mut self, hv: &mut Hypervisor, cpu: CpuId, outcome: StepOutcome) -> bool {
        match self.phase {
            Phase::Done => false,
            Phase::Waiting => {
                if hv.cpu_now(cpu) >= self.fire_at {
                    self.phase = Phase::Counting(self.ops_budget);
                    // The armed counter may fire on this very step.
                    self.on_step(hv, cpu, outcome)
                } else {
                    false
                }
            }
            Phase::Counting(left) => {
                if outcome != StepOutcome::HvOp {
                    return false;
                }
                if left == 0 {
                    // Inject only while the CPU is still inside hypervisor
                    // code: there is no "between handlers" gap on real
                    // hardware — the exit path is still hypervisor
                    // execution, accounted to the next entry here.
                    if !hv.cpu_mid_program(cpu) {
                        return false;
                    }
                    if let Some(filter) = self.only_handler {
                        let here = hv.cpu_program_context(cpu).map(|(c, _)| c.handler_kind());
                        if here != Some(filter) {
                            return false;
                        }
                        if self.depth_left > 0 {
                            self.depth_left -= 1;
                            return false;
                        }
                    }
                    self.inject(hv, cpu);
                    true
                } else {
                    self.phase = Phase::Counting(left - 1);
                    false
                }
            }
        }
    }

    fn inject(&mut self, hv: &mut Hypervisor, cpu: CpuId) {
        self.phase = Phase::Done;
        self.injected_on = Some(cpu);
        // `on_step` guarantees `cpu_mid_program(cpu)` here, so a program
        // context always exists.
        if let Some((cause, pc)) = hv.cpu_program_context(cpu) {
            self.point = Some(InjectionPoint {
                cpu,
                at: hv.cpu_now(cpu),
                handler: cause.handler_kind(),
                op_index: pc,
                program_len: hv.cpu_program_len(cpu).unwrap_or(pc),
                ops_budget: self.ops_budget,
            });
        }
        let roll = self.rng.gen_f64();
        let outcome = if roll < self.model.p_nonmanifested {
            InjectionOutcome::NonManifested
        } else if roll < self.model.p_nonmanifested + self.model.p_sdc {
            InjectionOutcome::Sdc
        } else {
            InjectionOutcome::Detected
        };
        self.outcome = Some(outcome);
        match outcome {
            InjectionOutcome::NonManifested => {}
            InjectionOutcome::Sdc => hv.apply_corruption(CorruptionKind::GuestData),
            InjectionOutcome::Detected => {
                // Error propagation before the detector fires.
                let n = self
                    .rng
                    .choose_weighted(&self.model.propagation)
                    .unwrap_or(0);
                let weights = corruption_weights();
                let ws: Vec<f64> = weights.iter().map(|(_, w)| *w).collect();
                for _ in 0..n {
                    if let Some(idx) = self.rng.choose_weighted(&ws) {
                        hv.apply_corruption(weights[idx].0);
                    }
                }
                if self.fault != FaultType::Failstop && self.rng.gen_bool(self.model.p_hang) {
                    // The CPU spins with interrupts off until the watchdog
                    // declares a hang (~300 ms of extra detection latency).
                    hv.wedge_cpu(cpu);
                } else {
                    hv.raise_panic(cpu, format!("injected {} fault", self.fault));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::MachineConfig;

    fn window() -> (SimTime, SimTime) {
        (SimTime::from_millis(20), SimTime::from_millis(120))
    }

    fn run_one(fault: FaultType, seed: u64) -> (Option<InjectionOutcome>, Hypervisor) {
        let mut hv = Hypervisor::new(MachineConfig::small(), seed);
        let mut inj = Injector::new(fault, seed ^ 0xBEEF, window(), 2_000);
        let deadline = SimTime::from_secs(3);
        while hv.detection().is_none() && hv.now() < deadline {
            let (cpu, out) = hv.step_any();
            inj.on_step(&mut hv, cpu, out);
            if matches!(
                inj.outcome(),
                Some(InjectionOutcome::NonManifested) | Some(InjectionOutcome::Sdc)
            ) {
                break;
            }
        }
        (inj.outcome(), hv)
    }

    #[test]
    fn failstop_always_detected_immediately() {
        for seed in 0..20 {
            let (outcome, hv) = run_one(FaultType::Failstop, seed);
            assert_eq!(outcome, Some(InjectionOutcome::Detected), "seed {seed}");
            let det = hv.detection().expect("must be detected");
            assert_eq!(det.kind, nlh_hv::detect::DetectionKind::Panic);
        }
    }

    #[test]
    fn fault_lands_inside_hypervisor_execution() {
        let (outcome, hv) = run_one(FaultType::Failstop, 42);
        assert_eq!(outcome, Some(InjectionOutcome::Detected));
        let det = hv.detection().unwrap();
        assert!(det.at >= SimTime::from_millis(20));
    }

    #[test]
    fn register_breakdown_roughly_matches_paper() {
        let mut counts = [0usize; 3];
        let n = 600;
        for seed in 0..n {
            let (outcome, _) = run_one(FaultType::Register, seed as u64);
            match outcome.expect("fault must inject within 3 s") {
                InjectionOutcome::NonManifested => counts[0] += 1,
                InjectionOutcome::Sdc => counts[1] += 1,
                InjectionOutcome::Detected => counts[2] += 1,
            }
        }
        let nm = counts[0] as f64 / n as f64;
        let det = counts[2] as f64 / n as f64;
        assert!((nm - 0.748).abs() < 0.06, "non-manifested {nm}");
        assert!((det - 0.196).abs() < 0.06, "detected {det}");
    }

    #[test]
    fn hang_cases_are_detected_by_watchdog() {
        let mut saw_hang = false;
        for seed in 0..120 {
            let (outcome, hv) = run_one(FaultType::Code, seed);
            if outcome == Some(InjectionOutcome::Detected) {
                if let Some(det) = hv.detection() {
                    if det.kind == nlh_hv::detect::DetectionKind::Hang {
                        saw_hang = true;
                        break;
                    }
                }
            }
        }
        assert!(saw_hang, "some Code faults must manifest as hangs");
    }

    #[test]
    fn trigger_is_deterministic_per_seed() {
        let a = Injector::new(FaultType::Register, 5, window(), 2_000);
        let b = Injector::new(FaultType::Register, 5, window(), 2_000);
        assert_eq!(a.fire_at(), b.fire_at());
        assert_eq!(a.ops_budget, b.ops_budget);
    }

    #[test]
    fn no_injection_before_window() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 1);
        let mut inj = Injector::new(FaultType::Failstop, 1, window(), 100);
        while hv.now() < SimTime::from_millis(19) {
            let (cpu, out) = hv.step_any();
            assert!(!inj.on_step(&mut hv, cpu, out));
        }
        assert!(inj.outcome().is_none());
    }

    #[test]
    fn steered_injection_lands_in_matching_handler() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 9);
        let mut inj = Injector::new(FaultType::Failstop, 9, window(), 50)
            .steer_to_handler(HandlerKind::TimerInterrupt);
        let deadline = SimTime::from_secs(3);
        while hv.detection().is_none() && hv.now() < deadline {
            let (cpu, out) = hv.step_any();
            inj.on_step(&mut hv, cpu, out);
        }
        let point = inj.injection_point().expect("steered fault must land");
        assert_eq!(point.handler, HandlerKind::TimerInterrupt);
        // Steering consumes no randomness: the trigger draws match an
        // unsteered twin.
        let twin = Injector::new(FaultType::Failstop, 9, window(), 50);
        assert_eq!(inj.fire_at(), twin.fire_at());
        assert_eq!(inj.ops_budget(), twin.ops_budget());
    }

    #[test]
    #[should_panic(expected = "empty trigger window")]
    fn empty_window_rejected() {
        Injector::new(FaultType::Failstop, 1, (SimTime::ZERO, SimTime::ZERO), 10);
    }

    #[test]
    fn model_probabilities_sum_to_one() {
        for f in FaultType::ALL {
            let m = ManifestModel::for_fault(f);
            let s = m.p_nonmanifested + m.p_sdc + m.p_detected;
            assert!((s - 1.0).abs() < 1e-9, "{f}: {s}");
            let p: f64 = m.propagation.iter().sum();
            assert!((p - 1.0).abs() < 1e-9, "{f} propagation: {p}");
        }
        let w: f64 = corruption_weights().iter().map(|(_, w)| w).sum();
        assert!((w - 1.0).abs() < 1e-9, "corruption weights: {w}");
    }

    #[test]
    fn detection_leaves_abandonment_residue_sometimes() {
        // Over many failstop trials, at least one detection must land while
        // a lock is held or interrupt nesting is nonzero — the residue the
        // recovery enhancements exist for.
        let mut saw_residue = false;
        for seed in 0..60 {
            let (_, hv) = run_one(FaultType::Failstop, seed + 1000);
            if hv.detection().is_some() {
                let held = !hv.locks.held_locks().is_empty();
                let irq = hv.percpu.iter().any(|p| p.local_irq_count > 0);
                if held || irq {
                    saw_residue = true;
                    break;
                }
            }
        }
        assert!(saw_residue);
    }
}
