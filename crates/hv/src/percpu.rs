//! Per-CPU architectural state the recovery mechanisms repair.
//!
//! Each physical CPU carries:
//!
//! * `local_irq_count` — interrupt-nesting depth, incremented/decremented on
//!   interrupt entry/exit. Hypervisor assertions consult it; because
//!   microreset discards execution threads mid-interrupt, NiLiHype must zero
//!   it explicitly ("Clear IRQ count", Section V-A).
//! * The **local APIC timer** — a one-shot hardware timer. The timer
//!   interrupt handler reprograms it from the software timer heap; a fault
//!   between firing and reprogramming leaves it dead ("Reprogram hardware
//!   timer").
//! * **FS/GS save area** — Xen on x86-64 does not save the guest's FS/GS on
//!   hypervisor entry; the "Save FS/GS" enhancement snapshots them when an
//!   error is detected (Section IV).
//! * **Watchdog state** — the heartbeat counter a recurring software timer
//!   event increments, and the perf-counter-NMI bookkeeping that detects a
//!   stalled heartbeat (Section VI-B).

use nlh_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The per-CPU one-shot local APIC timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ApicTimer {
    deadline: Option<SimTime>,
}

impl ApicTimer {
    /// An unprogrammed timer.
    pub fn new() -> Self {
        ApicTimer { deadline: None }
    }

    /// Programs the timer to fire at `when`.
    pub fn program(&mut self, when: SimTime) {
        self.deadline = Some(when);
    }

    /// The programmed deadline, if any.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// Whether the timer is armed.
    pub fn is_programmed(&self) -> bool {
        self.deadline.is_some()
    }

    /// If the deadline has passed, *fires*: clears the deadline (one-shot
    /// semantics — the handler must reprogram) and returns `true`.
    pub fn take_fire(&mut self, now: SimTime) -> bool {
        match self.deadline {
            Some(d) if now >= d => {
                self.deadline = None;
                true
            }
            _ => false,
        }
    }

    /// Disarms the timer (fault-injection surface).
    pub fn disarm(&mut self) {
        self.deadline = None;
    }
}

/// Watchdog bookkeeping for one CPU (Section VI-B).
///
/// A recurring software timer event increments [`heartbeat`] every 100 ms; a
/// performance-counter NMI fires every 100 ms of unhalted cycles and checks
/// whether the heartbeat advanced. Three consecutive stalled checks declare
/// a hang.
///
/// [`heartbeat`]: WatchdogState::heartbeat
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogState {
    /// Counter incremented by the recurring heartbeat timer event.
    pub heartbeat: u64,
    /// Heartbeat value seen at the previous NMI check.
    pub last_seen: u64,
    /// Consecutive NMI checks that observed no heartbeat progress.
    pub stall_checks: u32,
    /// When the next NMI check is due.
    pub next_check: SimTime,
}

impl WatchdogState {
    /// Fresh watchdog state with the first check at `first_check`.
    pub fn new(first_check: SimTime) -> Self {
        WatchdogState {
            heartbeat: 0,
            last_seen: 0,
            stall_checks: 0,
            next_check: first_check,
        }
    }

    /// Runs one NMI check at `now`; returns `true` if the stall threshold
    /// has been reached (hang detected). `period` schedules the next check.
    pub fn nmi_check(
        &mut self,
        now: SimTime,
        period: nlh_sim::SimDuration,
        threshold: u32,
    ) -> bool {
        self.next_check = now + period;
        if self.heartbeat == self.last_seen {
            self.stall_checks += 1;
        } else {
            self.stall_checks = 0;
            self.last_seen = self.heartbeat;
        }
        self.stall_checks >= threshold
    }

    /// Resets stall tracking (done when recovery completes, so the first
    /// post-recovery checks don't see stale history).
    pub fn reset(&mut self, now: SimTime, period: nlh_sim::SimDuration) {
        self.stall_checks = 0;
        self.last_seen = self.heartbeat;
        self.next_check = now + period;
    }
}

/// Per-CPU architectural state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerCpu {
    /// Interrupt nesting depth (`local_irq_count` in Xen).
    pub local_irq_count: u32,
    /// The local APIC one-shot timer.
    pub apic: ApicTimer,
    /// FS/GS of the interrupted guest, saved at error detection when the
    /// "Save FS/GS" enhancement is enabled.
    pub saved_fs_gs: Option<(u64, u64)>,
    /// Watchdog heartbeat/NMI bookkeeping.
    pub watchdog: WatchdogState,
    /// Whether interrupts are disabled on this CPU.
    pub interrupts_disabled: bool,
}

impl PerCpu {
    /// Boot-time per-CPU state; the first watchdog check is due one period
    /// after boot.
    pub fn new(first_check: SimTime) -> Self {
        PerCpu {
            local_irq_count: 0,
            apic: ApicTimer::new(),
            saved_fs_gs: None,
            watchdog: WatchdogState::new(first_check),
            interrupts_disabled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_sim::SimDuration;

    #[test]
    fn apic_is_one_shot() {
        let mut apic = ApicTimer::new();
        assert!(!apic.take_fire(SimTime::from_millis(5)));
        apic.program(SimTime::from_millis(10));
        assert!(apic.is_programmed());
        assert!(!apic.take_fire(SimTime::from_millis(9)));
        assert!(apic.take_fire(SimTime::from_millis(10)));
        assert!(!apic.is_programmed(), "one-shot: cleared after firing");
        assert!(!apic.take_fire(SimTime::from_millis(11)));
    }

    #[test]
    fn watchdog_detects_stall_after_threshold() {
        let period = SimDuration::from_millis(100);
        let mut wd = WatchdogState::new(SimTime::from_millis(100));
        let mut now = SimTime::from_millis(100);
        // Heartbeat never advances: the third check trips.
        assert!(!wd.nmi_check(now, period, 3));
        now += period;
        assert!(!wd.nmi_check(now, period, 3));
        now += period;
        assert!(wd.nmi_check(now, period, 3));
    }

    #[test]
    fn watchdog_progress_resets_stall() {
        let period = SimDuration::from_millis(100);
        let mut wd = WatchdogState::new(SimTime::from_millis(100));
        let mut now = SimTime::from_millis(100);
        assert!(!wd.nmi_check(now, period, 3));
        assert!(!wd.nmi_check(now, period, 3));
        wd.heartbeat += 1; // the recurring event ran
        now += period;
        assert!(!wd.nmi_check(now, period, 3));
        assert_eq!(wd.stall_checks, 0);
        assert!(!wd.nmi_check(now, period, 3));
        assert!(!wd.nmi_check(now, period, 3));
        assert!(
            wd.nmi_check(now, period, 3),
            "stalls again without progress"
        );
    }

    #[test]
    fn watchdog_reset_clears_history() {
        let period = SimDuration::from_millis(100);
        let mut wd = WatchdogState::new(SimTime::ZERO);
        wd.nmi_check(SimTime::ZERO, period, 3);
        wd.nmi_check(SimTime::ZERO, period, 3);
        assert_eq!(wd.stall_checks, 2);
        wd.reset(SimTime::from_millis(500), period);
        assert_eq!(wd.stall_checks, 0);
        assert_eq!(wd.next_check, SimTime::from_millis(600));
    }

    #[test]
    fn percpu_boots_clean() {
        let pc = PerCpu::new(SimTime::from_millis(100));
        assert_eq!(pc.local_irq_count, 0);
        assert!(!pc.apic.is_programmed());
        assert!(pc.saved_fs_gs.is_none());
        assert!(!pc.interrupts_disabled);
    }
}
