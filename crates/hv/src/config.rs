//! Machine and hypervisor tuning parameters.

use nlh_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Physical machine configuration.
///
/// The paper's testbed is an 8-core Intel Nehalem machine with 8 GB of
/// memory and a clock around 2.5 GHz. Fault-injection campaigns use a
/// smaller memory so trials stay fast (the recovery *rate* is insensitive to
/// memory size; the recovery *latency* experiments use [`MachineConfig::paper`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical CPUs.
    pub num_cpus: usize,
    /// Physical memory in MiB (4 KiB pages).
    pub memory_mib: u64,
    /// CPU clock frequency in MHz.
    pub cpu_freq_mhz: u64,
}

impl MachineConfig {
    /// The paper's testbed: 8 cores, 8 GiB, ~2.5 GHz.
    pub fn paper() -> Self {
        MachineConfig {
            num_cpus: 8,
            memory_mib: 8 * 1024,
            cpu_freq_mhz: 2_500,
        }
    }

    /// A small machine for fast campaign trials: 8 cores, 64 MiB.
    pub fn small() -> Self {
        MachineConfig {
            num_cpus: 8,
            memory_mib: 64,
            cpu_freq_mhz: 2_500,
        }
    }

    /// Total number of 4 KiB page frames.
    pub fn num_pages(&self) -> usize {
        (self.memory_mib * 1024 / 4) as usize
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::small()
    }
}

/// Hypervisor simulation tuning knobs.
///
/// These set the granularity of the simulation: how long guest compute
/// slices are, how often the per-CPU tick fires, and how many cycles each
/// hypervisor micro-op costs. The *ratios* between them determine where
/// faults land (which hypervisor context) and therefore drive the recovery
/// rates; they are calibrated once in `nlh-campaign` against the paper's
/// Table I ladder and then shared by every experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HvTuning {
    /// Period of the per-CPU APIC tick (drives timer heap + scheduler).
    pub tick_period: SimDuration,
    /// Period of the global time-sync recurring event.
    pub time_sync_period: SimDuration,
    /// Period of the per-CPU watchdog heartbeat event.
    pub watchdog_heartbeat_period: SimDuration,
    /// Interval of the watchdog perf-counter NMI check.
    pub watchdog_nmi_period: SimDuration,
    /// Consecutive stalled NMI checks before a hang is declared (paper: 3).
    pub watchdog_stall_threshold: u32,
    /// Cycles charged per generic hypervisor micro-op.
    pub cycles_per_micro_op: u64,
    /// Extra cycles charged per undo-log write (the paper's main source of
    /// normal-operation overhead).
    pub cycles_per_log_write: u64,
    /// Extra cycles charged per batched-hypercall completion-log write
    /// (one word, much cheaper than an undo record).
    pub cycles_per_completion_log: u64,
    /// Simulated quantum a halted/idle CPU advances per step.
    pub idle_quantum: SimDuration,
    /// Probability that a guest whose FS/GS was clobbered is actively using
    /// TLS and therefore fails (see Section IV, "Save FS/GS").
    pub tls_sensitivity: f64,
}

impl HvTuning {
    /// The calibrated defaults used by all experiments.
    pub fn calibrated() -> Self {
        HvTuning {
            tick_period: SimDuration::from_millis(40),
            time_sync_period: SimDuration::from_millis(30),
            watchdog_heartbeat_period: SimDuration::from_millis(100),
            watchdog_nmi_period: SimDuration::from_millis(100),
            watchdog_stall_threshold: 3,
            cycles_per_micro_op: 2_500, // 1 us at 2.5 GHz: coarse-grained micro-ops
            cycles_per_log_write: 400,
            cycles_per_completion_log: 80,
            idle_quantum: SimDuration::from_micros(500),
            tls_sensitivity: 0.55,
        }
    }
}

impl Default for HvTuning {
    fn default() -> Self {
        HvTuning::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_has_2m_pages() {
        assert_eq!(MachineConfig::paper().num_pages(), 2 * 1024 * 1024);
    }

    #[test]
    fn small_machine_is_small() {
        let c = MachineConfig::small();
        assert_eq!(c.num_pages(), 16_384);
        assert_eq!(c.num_cpus, 8);
    }

    #[test]
    fn tuning_defaults_are_calibrated() {
        assert_eq!(HvTuning::default(), HvTuning::calibrated());
        let t = HvTuning::default();
        assert!(t.watchdog_stall_threshold >= 1);
        assert!(t.cycles_per_micro_op > 0);
    }
}
