//! The software timer subsystem.
//!
//! Xen keeps a per-CPU heap of software timer events; the local APIC
//! one-shot timer is programmed to fire when the earliest event is due
//! (Section V-A, "Reprogram hardware timer"). Several events are
//! *recurring*: their handlers re-insert them with the next deadline. A
//! fault after an event is popped but before it is re-armed silently kills
//! the recurrence — NiLiHype's "reactivate recurring timer events"
//! enhancement re-creates any missing ones.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nlh_sim::{CpuId, SimDuration, SimTime, VcpuId};
use serde::{Deserialize, Serialize};

/// What a timer event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerEventKind {
    /// Global platform-time synchronization (runs under the static `time`
    /// lock). Losing it drifts the platform clock.
    TimeSync,
    /// Increments the watchdog heartbeat counter of a CPU. Losing it makes
    /// the watchdog NMI later declare a false hang.
    WatchdogHeartbeat(CpuId),
    /// The scheduler tick of a CPU (preemption + accounting).
    SchedTick(CpuId),
    /// A domain's periodic virtual timer (guest timekeeping). Losing it
    /// stalls the guest's sleeps.
    DomainTimer(VcpuId),
    /// A one-shot event (identified for bookkeeping only).
    OneShot(u64),
}

impl TimerEventKind {
    /// Whether this kind is supposed to recur forever.
    pub fn is_recurring(self) -> bool {
        !matches!(self, TimerEventKind::OneShot(_))
    }
}

/// A pending software timer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerEvent {
    /// When the event is due.
    pub deadline: SimTime,
    /// What it does.
    pub kind: TimerEventKind,
    /// Re-arm period for recurring events.
    pub period: Option<SimDuration>,
}

/// Heap wrapper ordered soonest-deadline-first with a deterministic
/// tie-break.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct HeapEntry {
    event: TimerEvent,
    seq: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so earliest deadline is on top.
        other
            .event
            .deadline
            .cmp(&self.event.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-CPU software timer heaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimerSubsystem {
    heaps: Vec<BinaryHeap<HeapEntry>>,
    next_seq: u64,
}

impl TimerSubsystem {
    /// Empty heaps for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        TimerSubsystem {
            heaps: (0..num_cpus).map(|_| BinaryHeap::new()).collect(),
            next_seq: 0,
        }
    }

    /// Inserts `event` on `cpu`'s heap.
    pub fn insert(&mut self, cpu: CpuId, event: TimerEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heaps[cpu.index()].push(HeapEntry { event, seq });
    }

    /// The earliest deadline on `cpu`'s heap.
    pub fn peek_deadline(&self, cpu: CpuId) -> Option<SimTime> {
        self.heaps[cpu.index()].peek().map(|e| e.event.deadline)
    }

    /// Pops the earliest event on `cpu`'s heap if it is due at `now`.
    pub fn pop_due(&mut self, cpu: CpuId, now: SimTime) -> Option<TimerEvent> {
        match self.heaps[cpu.index()].peek() {
            Some(top) if top.event.deadline <= now => {
                Some(self.heaps[cpu.index()].pop().unwrap().event)
            }
            _ => None,
        }
    }

    /// Number of pending events on `cpu`'s heap.
    pub fn len(&self, cpu: CpuId) -> usize {
        self.heaps[cpu.index()].len()
    }

    /// Whether `cpu`'s heap is empty.
    pub fn is_empty(&self, cpu: CpuId) -> bool {
        self.heaps[cpu.index()].is_empty()
    }

    /// Total pending events across all CPUs.
    pub fn total_len(&self) -> usize {
        self.heaps.iter().map(|h| h.len()).sum()
    }

    /// Whether an event of `kind` is pending anywhere.
    pub fn contains_kind(&self, kind: TimerEventKind) -> bool {
        self.heaps
            .iter()
            .any(|h| h.iter().any(|e| e.event.kind == kind))
    }

    /// Removes one pending event of `kind`, wherever it is (fault-injection
    /// surface — models heap-node corruption). Returns whether one was
    /// removed.
    pub fn remove_kind(&mut self, kind: TimerEventKind) -> bool {
        for heap in &mut self.heaps {
            if heap.iter().any(|e| e.event.kind == kind) {
                let mut entries: Vec<HeapEntry> = std::mem::take(heap).into_vec();
                let pos = entries.iter().position(|e| e.event.kind == kind).unwrap();
                entries.swap_remove(pos);
                *heap = entries.into_iter().collect();
                return true;
            }
        }
        false
    }

    /// Re-inserts any of `expected` recurring events that are missing,
    /// due one period from `now` — NiLiHype's "reactivate recurring timer
    /// events" enhancement. Returns how many were re-created.
    ///
    /// `expected` pairs each recurring kind with the CPU heap it belongs on
    /// and its period.
    pub fn reactivate_recurring(
        &mut self,
        expected: &[(TimerEventKind, CpuId, SimDuration)],
        now: SimTime,
    ) -> usize {
        let mut recreated = 0;
        for &(kind, cpu, period) in expected {
            if !self.contains_kind(kind) {
                self.insert(
                    cpu,
                    TimerEvent {
                        deadline: now + period,
                        kind,
                        period: Some(period),
                    },
                );
                recreated += 1;
            }
        }
        recreated
    }

    /// Drops all pending events (ReHype's reboot rebuilds timer state from
    /// scratch before recurring events are re-registered).
    pub fn clear(&mut self) {
        for h in &mut self.heaps {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, kind: TimerEventKind) -> TimerEvent {
        TimerEvent {
            deadline: SimTime::from_millis(ms),
            kind,
            period: Some(SimDuration::from_millis(10)),
        }
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut t = TimerSubsystem::new(1);
        t.insert(CpuId(0), ev(30, TimerEventKind::TimeSync));
        t.insert(CpuId(0), ev(10, TimerEventKind::SchedTick(CpuId(0))));
        t.insert(
            CpuId(0),
            ev(20, TimerEventKind::WatchdogHeartbeat(CpuId(0))),
        );
        assert_eq!(t.peek_deadline(CpuId(0)), Some(SimTime::from_millis(10)));
        let now = SimTime::from_millis(100);
        assert_eq!(
            t.pop_due(CpuId(0), now).unwrap().kind,
            TimerEventKind::SchedTick(CpuId(0))
        );
        assert_eq!(
            t.pop_due(CpuId(0), now).unwrap().kind,
            TimerEventKind::WatchdogHeartbeat(CpuId(0))
        );
        assert_eq!(
            t.pop_due(CpuId(0), now).unwrap().kind,
            TimerEventKind::TimeSync
        );
        assert!(t.pop_due(CpuId(0), now).is_none());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut t = TimerSubsystem::new(1);
        t.insert(CpuId(0), ev(50, TimerEventKind::TimeSync));
        assert!(t.pop_due(CpuId(0), SimTime::from_millis(49)).is_none());
        assert!(t.pop_due(CpuId(0), SimTime::from_millis(50)).is_some());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut t = TimerSubsystem::new(1);
        t.insert(CpuId(0), ev(10, TimerEventKind::OneShot(1)));
        t.insert(CpuId(0), ev(10, TimerEventKind::OneShot(2)));
        let now = SimTime::from_millis(10);
        assert_eq!(
            t.pop_due(CpuId(0), now).unwrap().kind,
            TimerEventKind::OneShot(1)
        );
        assert_eq!(
            t.pop_due(CpuId(0), now).unwrap().kind,
            TimerEventKind::OneShot(2)
        );
    }

    #[test]
    fn heaps_are_per_cpu() {
        let mut t = TimerSubsystem::new(2);
        t.insert(CpuId(0), ev(10, TimerEventKind::SchedTick(CpuId(0))));
        assert_eq!(t.len(CpuId(0)), 1);
        assert_eq!(t.len(CpuId(1)), 0);
        assert!(t.is_empty(CpuId(1)));
        assert!(t.pop_due(CpuId(1), SimTime::from_millis(99)).is_none());
    }

    #[test]
    fn remove_kind_models_lost_event() {
        let mut t = TimerSubsystem::new(2);
        t.insert(
            CpuId(1),
            ev(10, TimerEventKind::WatchdogHeartbeat(CpuId(1))),
        );
        t.insert(CpuId(1), ev(20, TimerEventKind::SchedTick(CpuId(1))));
        assert!(t.remove_kind(TimerEventKind::WatchdogHeartbeat(CpuId(1))));
        assert!(!t.contains_kind(TimerEventKind::WatchdogHeartbeat(CpuId(1))));
        assert!(t.contains_kind(TimerEventKind::SchedTick(CpuId(1))));
        assert!(!t.remove_kind(TimerEventKind::WatchdogHeartbeat(CpuId(1))));
    }

    #[test]
    fn reactivate_restores_missing_only() {
        let mut t = TimerSubsystem::new(2);
        let period = SimDuration::from_millis(100);
        let expected = vec![
            (TimerEventKind::TimeSync, CpuId(0), period),
            (
                TimerEventKind::WatchdogHeartbeat(CpuId(0)),
                CpuId(0),
                period,
            ),
            (
                TimerEventKind::WatchdogHeartbeat(CpuId(1)),
                CpuId(1),
                period,
            ),
        ];
        t.insert(CpuId(0), ev(10, TimerEventKind::TimeSync));
        let n = t.reactivate_recurring(&expected, SimTime::from_millis(500));
        assert_eq!(n, 2, "only the two missing heartbeats were recreated");
        assert_eq!(t.total_len(), 3);
        // Recreated events are due one period out.
        assert_eq!(t.peek_deadline(CpuId(1)), Some(SimTime::from_millis(600)));
    }

    #[test]
    fn reactivate_is_idempotent() {
        let mut t = TimerSubsystem::new(1);
        let period = SimDuration::from_millis(100);
        let expected = vec![(TimerEventKind::TimeSync, CpuId(0), period)];
        assert_eq!(t.reactivate_recurring(&expected, SimTime::ZERO), 1);
        assert_eq!(t.reactivate_recurring(&expected, SimTime::ZERO), 0);
    }

    #[test]
    fn clear_empties_all_heaps() {
        let mut t = TimerSubsystem::new(2);
        t.insert(CpuId(0), ev(1, TimerEventKind::TimeSync));
        t.insert(CpuId(1), ev(2, TimerEventKind::OneShot(9)));
        t.clear();
        assert_eq!(t.total_len(), 0);
    }
}
