//! A simulated Xen-like virtualization platform.
//!
//! This crate is the substrate the NiLiHype reproduction runs on. The paper
//! ("Fast Hypervisor Recovery Without Reboot", DSN 2018) modifies the Xen
//! hypervisor; since no Rust Xen exists, this crate models the hypervisor at
//! exactly the level of abstraction the paper's recovery mechanisms operate
//! on:
//!
//! * [`mem`] — page-frame descriptors (validation bit + use counter), the
//!   hypervisor heap, and guest page mappings.
//! * [`locks`] — spinlocks, split into the *static segment* (the array the
//!   paper's "unlock static locks" enhancement iterates) and heap locks.
//! * [`percpu`] — per-CPU state: `local_irq_count`, the hypervisor stack,
//!   saved FS/GS, and the local APIC timer.
//! * [`sched`] — runqueues and the redundantly-stored current-vCPU metadata
//!   whose inconsistencies the paper's scheduling enhancement repairs.
//! * [`timers`] — the software timer heap and the recurring events
//!   (time-sync, watchdog heartbeat, scheduler tick) that must be re-armed.
//! * [`interrupts`] — pending/in-service interrupt state, I/O APIC registers,
//!   and inter-processor interrupts.
//! * [`hypercalls`] — hypercall handlers compiled to micro-op programs so a
//!   fault can strike *between* any two state updates, leaving exactly the
//!   partial-execution residue the paper's enhancements must repair.
//! * [`domain`] — the privileged VM and application VMs, their vCPUs, and
//!   the [`domain::GuestProgram`] trait workloads implement.
//! * [`detect`] — the panic and watchdog (hang) detectors that initiate
//!   recovery.
//! * [`Hypervisor`] — the aggregate machine, stepped one micro-op at a time.
//!
//! The simulation is fully deterministic: all randomness flows through a
//! seeded [`nlh_sim::Pcg64`].
//!
//! # Example
//!
//! ```
//! use nlh_hv::{Hypervisor, MachineConfig};
//!
//! let mut hv = Hypervisor::new(MachineConfig::small(), 42);
//! hv.run_for(nlh_sim::SimDuration::from_millis(50));
//! assert!(hv.detection().is_none(), "no faults injected, so no detection");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod accounting;
pub mod chaos;
mod config;
pub mod detect;
pub mod domain;
pub mod hypercalls;
mod hypervisor;
pub mod interrupts;
pub mod invariants;
pub mod locks;
pub mod mem;
pub mod percpu;
pub mod sched;
pub mod timers;

pub use config::{HvTuning, MachineConfig};
pub use hypercalls::HandlerKind;
pub use hypervisor::{CpuMode, Hypervisor, StepOutcome};

/// Re-exported id types, so downstream crates rarely need `nlh-sim` directly.
pub use nlh_sim::{CpuId, DomId, IrqVector, LockId, PageNum, VcpuId};
