//! Whole-machine invariant checks, used by tests and by the recovery test
//! suite to verify that a "recovered" hypervisor really is in a valid,
//! self-consistent state.

use crate::hypervisor::Hypervisor;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Details.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Checks every steady-state invariant of a quiescent hypervisor (one with
/// no execution threads in flight):
///
/// * no lock is held;
/// * no CPU has nonzero interrupt nesting;
/// * every CPU's APIC timer is armed;
/// * the scheduler's redundant metadata is mutually consistent;
/// * every page-frame descriptor is internally consistent;
/// * the expected recurring timer events are present;
/// * the heap free list is intact.
///
/// Returns all violations found (empty = healthy). These are exactly the
/// post-conditions a successful recovery must establish.
pub fn check_quiescent(hv: &Hypervisor) -> Vec<Violation> {
    let mut out = Vec::new();

    let held = hv.locks.held_locks();
    if !held.is_empty() {
        out.push(Violation {
            invariant: "no-locks-held",
            detail: format!("{} locks held: {held:?}", held.len()),
        });
    }

    for cpu in 0..hv.num_cpus() {
        let pc = &hv.percpu[cpu];
        if pc.local_irq_count != 0 {
            out.push(Violation {
                invariant: "irq-count-zero",
                detail: format!("cpu{cpu} local_irq_count={}", pc.local_irq_count),
            });
        }
        if !pc.apic.is_programmed() {
            out.push(Violation {
                invariant: "apic-armed",
                detail: format!("cpu{cpu} APIC timer not programmed"),
            });
        }
    }

    if let Err(inc) = hv.sched.check_all() {
        out.push(Violation {
            invariant: "sched-consistent",
            detail: inc.detail,
        });
    }

    let bad_pfd = hv.pft.count_inconsistent();
    if bad_pfd != 0 {
        out.push(Violation {
            invariant: "pfd-consistent",
            detail: format!("{bad_pfd} inconsistent page-frame descriptors"),
        });
    }

    for (kind, _, _) in hv.expected_recurring() {
        if !hv.timers.contains_kind(kind) {
            out.push(Violation {
                invariant: "recurring-events-present",
                detail: format!("missing recurring event {kind:?}"),
            });
        }
    }

    if hv.heap.is_freelist_corrupted() {
        out.push(Violation {
            invariant: "heap-intact",
            detail: "heap free list corrupted".to_string(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::CorruptionKind;
    use crate::config::MachineConfig;
    use nlh_sim::CpuId;

    #[test]
    fn fresh_machine_is_quiescent() {
        let hv = Hypervisor::new(MachineConfig::small(), 1);
        assert_eq!(check_quiescent(&hv), Vec::new());
    }

    #[test]
    fn violations_are_reported() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 2);
        hv.percpu[0].local_irq_count = 2;
        hv.percpu[1].apic.disarm();
        hv.locks
            .acquire(crate::locks::StaticLock::Time.id(), CpuId(0));
        hv.apply_corruption(CorruptionKind::HeapFreelist);
        let v = check_quiescent(&hv);
        let names: Vec<_> = v.iter().map(|x| x.invariant).collect();
        assert!(names.contains(&"irq-count-zero"));
        assert!(names.contains(&"apic-armed"));
        assert!(names.contains(&"no-locks-held"));
        assert!(names.contains(&"heap-intact"));
    }

    #[test]
    fn missing_recurring_event_is_a_violation() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 3);
        hv.timers
            .remove_kind(crate::timers::TimerEventKind::TimeSync);
        let v = check_quiescent(&hv);
        assert!(v.iter().any(|x| x.invariant == "recurring-events-present"));
    }
}
