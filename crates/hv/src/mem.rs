//! Hypervisor memory management: page-frame descriptors and the heap.
//!
//! Two pieces of memory state matter to the paper's recovery mechanisms:
//!
//! * **Page-frame descriptors** (`struct page_info` in Xen). Each frame
//!   carries a *use counter* and a *validation bit*. Hypercalls update the
//!   two in separate steps, so a fault can leave them inconsistent; both
//!   ReHype and NiLiHype run a consistency scan over all descriptors during
//!   recovery (the dominant 21 ms of NiLiHype's 22 ms latency on an 8 GB
//!   machine — Table III).
//! * **The hypervisor heap**. ReHype reboots into a fresh heap and must
//!   re-integrate preserved allocations (211 ms, Table II); NiLiHype keeps
//!   the heap in place. The heap also hosts dynamically-allocated locks,
//!   which the shared "release heap locks" enhancement walks.
//!
//! A third piece matters to *campaign cost* rather than recovery:
//! the **boot-time memory scrub** ([`boot_scrub`]). Xen walks and scrubs
//! all of RAM when it boots (`bootscrub`, on by default), which is the bulk
//! of why a full platform boot — and therefore reboot-based recovery, the
//! paper's foil — is slow. Cold-booting a target system pays this walk;
//! the campaign boot cache exists to pay it once per configuration.

use nlh_sim::{DomId, LockId, PageNum};
use serde::{Deserialize, Serialize};

/// Lifecycle state of a physical page frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// On the free list.
    Free,
    /// Backing a hypervisor heap allocation.
    HeapAllocated,
    /// Owned by a domain (guest memory).
    DomainOwned,
}

/// A page-frame descriptor (`struct page_info`).
///
/// The invariant the recovery scan restores is `validated == (use_count > 0)`
/// for domain-owned pages: a page is validated as a page-table page exactly
/// while references to it are held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFrameDescriptor {
    /// Reference count of mappings/pins of this frame.
    pub use_count: u32,
    /// Whether the frame has been validated as a page-table page.
    pub validated: bool,
    /// Owning domain, if any.
    pub owner: Option<DomId>,
    /// Current lifecycle state.
    pub state: PageState,
}

impl PageFrameDescriptor {
    /// A clean, free frame.
    pub const fn free() -> Self {
        PageFrameDescriptor {
            use_count: 0,
            validated: false,
            owner: None,
            state: PageState::Free,
        }
    }

    /// Whether the validation bit and use counter are mutually consistent.
    pub fn is_consistent(&self) -> bool {
        match self.state {
            PageState::Free => self.use_count == 0 && !self.validated,
            PageState::HeapAllocated => !self.validated,
            PageState::DomainOwned => self.validated == (self.use_count > 0),
        }
    }
}

/// Errors from page-frame operations.
///
/// In the real hypervisor these conditions trip `BUG_ON`/`ASSERT` and panic
/// the hypervisor; callers in this crate translate them into detections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// The free list is exhausted.
    OutOfMemory,
    /// An allocated frame was found in an invalid state (e.g. a "free" page
    /// that still has references — the signature of a double-applied
    /// non-idempotent hypercall retry).
    CorruptFrame(PageNum),
    /// A reference count would underflow.
    RefUnderflow(PageNum),
    /// The frame index is out of range.
    BadFrame(PageNum),
    /// The heap free list metadata is corrupted.
    HeapCorrupt,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of hypervisor memory"),
            MemError::CorruptFrame(p) => write!(f, "page frame {p} is in a corrupt state"),
            MemError::RefUnderflow(p) => write!(f, "use count underflow on frame {p}"),
            MemError::BadFrame(p) => write!(f, "page frame {p} out of range"),
            MemError::HeapCorrupt => write!(f, "hypervisor heap free list corrupted"),
        }
    }
}

impl std::error::Error for MemError {}

/// The table of all page-frame descriptors plus the frame free list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageFrameTable {
    frames: Vec<PageFrameDescriptor>,
    free: Vec<PageNum>,
}

impl PageFrameTable {
    /// Creates a table with `num_pages` clean, free frames.
    pub fn new(num_pages: usize) -> Self {
        PageFrameTable {
            frames: vec![PageFrameDescriptor::free(); num_pages],
            // Pop from the back: low frames get handed out first.
            free: (0..num_pages).rev().map(PageNum::from_index).collect(),
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the table has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of free frames.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The descriptor for `page`.
    pub fn get(&self, page: PageNum) -> Result<&PageFrameDescriptor, MemError> {
        self.frames
            .get(page.index())
            .ok_or(MemError::BadFrame(page))
    }

    /// Mutable access to the descriptor for `page`.
    pub fn get_mut(&mut self, page: PageNum) -> Result<&mut PageFrameDescriptor, MemError> {
        self.frames
            .get_mut(page.index())
            .ok_or(MemError::BadFrame(page))
    }

    /// Allocates a frame for `owner` in state `state`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the free list is empty, and
    /// [`MemError::CorruptFrame`] when the popped frame is not clean — the
    /// real hypervisor `BUG()`s here, and this is how a double-applied
    /// non-idempotent hypercall retry eventually manifests.
    pub fn alloc(&mut self, owner: Option<DomId>, state: PageState) -> Result<PageNum, MemError> {
        let page = self.free.pop().ok_or(MemError::OutOfMemory)?;
        let pfd = &mut self.frames[page.index()];
        if pfd.use_count != 0 || pfd.validated || pfd.state != PageState::Free {
            return Err(MemError::CorruptFrame(page));
        }
        pfd.owner = owner;
        pfd.state = state;
        Ok(page)
    }

    /// Returns `page` to the free list.
    ///
    /// # Errors
    ///
    /// [`MemError::CorruptFrame`] if the frame still has references or a set
    /// validation bit (hypervisor `BUG()` in the real system).
    pub fn free(&mut self, page: PageNum) -> Result<(), MemError> {
        let pfd = self.get_mut(page)?;
        if pfd.use_count != 0 || pfd.validated {
            return Err(MemError::CorruptFrame(page));
        }
        if pfd.state == PageState::Free {
            return Err(MemError::CorruptFrame(page));
        }
        pfd.owner = None;
        pfd.state = PageState::Free;
        self.free.push(page);
        Ok(())
    }

    /// Increments the use counter (one half of a pin operation).
    pub fn inc_ref(&mut self, page: PageNum) -> Result<(), MemError> {
        let pfd = self.get_mut(page)?;
        pfd.use_count += 1;
        Ok(())
    }

    /// Decrements the use counter.
    ///
    /// # Errors
    ///
    /// [`MemError::RefUnderflow`] when the counter is already zero — the
    /// signature of a lost (never-applied or undone-twice) reference.
    pub fn dec_ref(&mut self, page: PageNum) -> Result<(), MemError> {
        let pfd = self.get_mut(page)?;
        if pfd.use_count == 0 {
            return Err(MemError::RefUnderflow(page));
        }
        pfd.use_count -= 1;
        Ok(())
    }

    /// Sets the validation bit (the other half of a pin operation).
    pub fn set_validated(&mut self, page: PageNum, validated: bool) -> Result<(), MemError> {
        self.get_mut(page)?.validated = validated;
        Ok(())
    }

    /// The recovery-time consistency scan over **all** page-frame
    /// descriptors (Tables II and III: 21 ms on an 8 GB machine).
    ///
    /// Restores `validated == (use_count > 0)` on domain-owned frames and
    /// clears stray bits on free/heap frames. Returns the number of frames
    /// repaired. The cost is proportional to [`PageFrameTable::len`]; the
    /// recovery latency model charges it accordingly.
    pub fn consistency_scan(&mut self) -> usize {
        let mut fixed = 0;
        for pfd in &mut self.frames {
            if pfd.is_consistent() {
                continue;
            }
            match pfd.state {
                PageState::Free | PageState::HeapAllocated => {
                    pfd.use_count = 0;
                    pfd.validated = false;
                }
                PageState::DomainOwned => {
                    // The validation bit is the more reliable source: an
                    // abandoned pin takes its reference *before* setting
                    // the bit, so a mismatch means the references are
                    // stray (half-applied pin, leaked grant, or corruption)
                    // and must be dropped. Repairing in the other
                    // direction would fabricate pins and trip Xen's
                    // "already validated" BUG on the next real pin.
                    pfd.use_count = 0;
                    pfd.validated = false;
                }
            }
            fixed += 1;
        }
        fixed
    }

    /// Counts inconsistent descriptors without repairing them.
    pub fn count_inconsistent(&self) -> usize {
        self.frames.iter().filter(|p| !p.is_consistent()).count()
    }

    /// Iterates over `(page, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, &PageFrameDescriptor)> {
        self.frames
            .iter()
            .enumerate()
            .map(|(i, p)| (PageNum::from_index(i), p))
    }
}

/// Bytes per simulated page frame.
pub const PAGE_BYTES: usize = 4096;

/// Evidence left behind by the boot-time memory scrub: one checksum per
/// scrubbed frame, plus a whole-memory digest.
///
/// Recovery code never consults the ledger — NiLiHype's point is precisely
/// that recovery must *not* redo boot work, and ReHype's reboot preserves
/// VM memory rather than re-scrubbing it. It exists so that the scrub is
/// real work with an observable result (and so a cloned warm-start system
/// provably carries the same scrubbed-memory state as a cold boot).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubLedger {
    checksums: Vec<u64>,
}

impl ScrubLedger {
    /// Number of scrubbed frames.
    pub fn len(&self) -> usize {
        self.checksums.len()
    }

    /// Whether no frames were scrubbed.
    pub fn is_empty(&self) -> bool {
        self.checksums.is_empty()
    }

    /// The scrub checksum recorded for `page`.
    pub fn checksum(&self, page: PageNum) -> Option<u64> {
        self.checksums.get(page.index()).copied()
    }

    /// A digest over all per-frame checksums.
    pub fn digest(&self) -> u64 {
        self.checksums.iter().fold(0xcbf29ce484222325, |acc, &c| {
            (acc ^ c).rotate_left(5).wrapping_mul(0x100000001b3)
        })
    }
}

/// The boot-time memory scrub (Xen's `bootscrub`): fills every word of
/// every frame with a frame-specific poison pattern, reads it back into a
/// checksum, then repeats with the inverted pattern — the classic
/// write/verify double pass of a memory test. The walk touches all of
/// simulated RAM at word granularity, so its host cost scales with the
/// machine's memory size exactly as the real scrub does; on the campaign
/// machine it dominates the cost of a cold boot.
pub fn boot_scrub(num_pages: usize) -> ScrubLedger {
    const WORDS: usize = PAGE_BYTES / 8;
    let mut frame = [0u64; WORDS];
    let mut checksums = Vec::with_capacity(num_pages);
    for page in 0..num_pages {
        let mut sum = 0xcbf29ce484222325u64;
        for pass in 0..2u64 {
            // Frame-specific xorshift pattern, inverted on the second pass.
            let mut x = (page as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(pass)
                | 1;
            for w in frame.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *w = if pass == 0 { x } else { !x };
            }
            for &w in frame.iter() {
                sum = (sum ^ w).rotate_left(7).wrapping_mul(0x100000001b3);
            }
        }
        checksums.push(sum);
    }
    ScrubLedger { checksums }
}

/// Kinds of hypervisor heap allocations the simulation tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapObjKind {
    /// Per-CPU scheduler data (runqueue + its lock).
    PerCpuSched(u32),
    /// Per-CPU timer heap data (and its lock).
    PerCpuTimer(u32),
    /// A domain descriptor.
    DomainStruct(DomId),
    /// A vCPU descriptor.
    VcpuStruct(u32),
    /// A domain's grant table.
    GrantTable(DomId),
    /// Anything else.
    Misc,
}

/// A live hypervisor heap allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapObject {
    /// Stable id of the allocation.
    pub id: u64,
    /// What the allocation is for.
    pub kind: HeapObjKind,
    /// A spinlock embedded in the object, if any (walked by the
    /// "release heap locks" recovery enhancement).
    pub lock: Option<LockId>,
    /// Page frames backing the allocation.
    pub pages: Vec<PageNum>,
}

/// The hypervisor heap.
///
/// The simulation tracks allocations as objects rather than bytes; what
/// recovery cares about is *which* objects exist (to find their locks), how
/// many pages they cover (ReHype's heap rebuild cost), and whether the free
/// list metadata is intact (a corruption target that the reboot repairs but
/// microreset does not).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heap {
    objects: Vec<HeapObject>,
    next_id: u64,
    freelist_corrupted: bool,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap {
            objects: Vec::new(),
            next_id: 1,
            freelist_corrupted: false,
        }
    }

    /// Allocates an object of `kind` backed by `n_pages` frames from `pft`.
    ///
    /// # Errors
    ///
    /// [`MemError::HeapCorrupt`] if the free-list metadata has been
    /// corrupted (the allocation path walks it), or any frame-allocation
    /// error.
    pub fn alloc(
        &mut self,
        pft: &mut PageFrameTable,
        kind: HeapObjKind,
        n_pages: usize,
        lock: Option<LockId>,
    ) -> Result<u64, MemError> {
        if self.freelist_corrupted {
            return Err(MemError::HeapCorrupt);
        }
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            match pft.alloc(None, PageState::HeapAllocated) {
                Ok(p) => pages.push(p),
                Err(e) => {
                    // Roll back partial allocation.
                    for p in pages {
                        let _ = pft.free(p);
                    }
                    return Err(e);
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.objects.push(HeapObject {
            id,
            kind,
            lock,
            pages,
        });
        Ok(id)
    }

    /// Frees object `id`, returning its frames to `pft`.
    ///
    /// # Errors
    ///
    /// [`MemError::HeapCorrupt`] if the free list is corrupted or the id is
    /// unknown (a double free).
    pub fn free(&mut self, pft: &mut PageFrameTable, id: u64) -> Result<(), MemError> {
        if self.freelist_corrupted {
            return Err(MemError::HeapCorrupt);
        }
        let idx = self
            .objects
            .iter()
            .position(|o| o.id == id)
            .ok_or(MemError::HeapCorrupt)?;
        let obj = self.objects.swap_remove(idx);
        for p in obj.pages {
            pft.free(p)?;
        }
        Ok(())
    }

    /// Live allocations.
    pub fn objects(&self) -> &[HeapObject] {
        &self.objects
    }

    /// Total pages backing live allocations.
    pub fn allocated_pages(&self) -> usize {
        self.objects.iter().map(|o| o.pages.len()).sum()
    }

    /// Whether the free-list metadata is corrupted.
    pub fn is_freelist_corrupted(&self) -> bool {
        self.freelist_corrupted
    }

    /// Corrupts the free-list metadata (fault-injection surface).
    pub fn corrupt_freelist(&mut self) {
        self.freelist_corrupted = true;
    }

    /// Rebuilds the free-list metadata from the live allocations, as
    /// ReHype's reboot does when it recreates the heap and re-integrates
    /// preserved allocations. Clears any corruption.
    pub fn rebuild_freelist(&mut self) {
        self.freelist_corrupted = false;
    }

    /// Locks embedded in live heap objects (the set the shared
    /// "release heap locks" enhancement walks).
    pub fn embedded_locks(&self) -> impl Iterator<Item = LockId> + '_ {
        self.objects.iter().filter_map(|o| o.lock)
    }
}

impl Default for Heap {
    fn default() -> Self {
        Heap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageFrameTable {
        PageFrameTable::new(64)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut t = table();
        assert_eq!(t.free_count(), 64);
        let p = t.alloc(Some(DomId(1)), PageState::DomainOwned).unwrap();
        assert_eq!(t.free_count(), 63);
        let pfd = t.get(p).unwrap();
        assert_eq!(pfd.owner, Some(DomId(1)));
        assert_eq!(pfd.state, PageState::DomainOwned);
        t.free(p).unwrap();
        assert_eq!(t.free_count(), 64);
        assert_eq!(t.get(p).unwrap().state, PageState::Free);
    }

    #[test]
    fn alloc_detects_dirty_free_page() {
        let mut t = table();
        let p = t.alloc(None, PageState::DomainOwned).unwrap();
        t.inc_ref(p).unwrap();
        // Simulate corruption: force the frame back onto the free list with
        // a stale reference (what a double-applied retry produces).
        t.get_mut(p).unwrap().state = PageState::Free;
        t.free.push(p);
        // Allocation of other pages is fine until the dirty one is popped.
        assert_eq!(
            t.alloc(None, PageState::DomainOwned),
            Err(MemError::CorruptFrame(p))
        );
    }

    #[test]
    fn free_rejects_referenced_page() {
        let mut t = table();
        let p = t.alloc(None, PageState::DomainOwned).unwrap();
        t.inc_ref(p).unwrap();
        assert_eq!(t.free(p), Err(MemError::CorruptFrame(p)));
        t.dec_ref(p).unwrap();
        t.free(p).unwrap();
    }

    #[test]
    fn double_free_is_an_error() {
        let mut t = table();
        let p = t.alloc(None, PageState::DomainOwned).unwrap();
        t.free(p).unwrap();
        assert_eq!(t.free(p), Err(MemError::CorruptFrame(p)));
    }

    #[test]
    fn dec_ref_underflow() {
        let mut t = table();
        let p = t.alloc(None, PageState::DomainOwned).unwrap();
        assert_eq!(t.dec_ref(p), Err(MemError::RefUnderflow(p)));
    }

    #[test]
    fn out_of_range_frame() {
        let t = table();
        assert_eq!(
            t.get(PageNum(999)).err(),
            Some(MemError::BadFrame(PageNum(999)))
        );
    }

    #[test]
    fn out_of_memory() {
        let mut t = PageFrameTable::new(1);
        t.alloc(None, PageState::HeapAllocated).unwrap();
        assert_eq!(
            t.alloc(None, PageState::HeapAllocated),
            Err(MemError::OutOfMemory)
        );
    }

    #[test]
    fn consistency_scan_repairs_half_pin() {
        let mut t = table();
        let p = t.alloc(Some(DomId(1)), PageState::DomainOwned).unwrap();
        // A pin is inc_ref + set_validated; a fault between the two leaves
        // the pair inconsistent: the reference is stray and gets dropped.
        t.inc_ref(p).unwrap();
        assert!(!t.get(p).unwrap().is_consistent());
        assert_eq!(t.count_inconsistent(), 1);
        let fixed = t.consistency_scan();
        assert_eq!(fixed, 1);
        let pfd = t.get(p).unwrap();
        assert_eq!(pfd.use_count, 0, "stray reference dropped");
        assert!(!pfd.validated);
        assert_eq!(t.count_inconsistent(), 0);
    }

    #[test]
    fn consistency_scan_clears_stray_validation() {
        let mut t = table();
        let p = t.alloc(Some(DomId(1)), PageState::DomainOwned).unwrap();
        t.set_validated(p, true).unwrap(); // validated with zero refs
        assert_eq!(t.consistency_scan(), 1);
        assert!(!t.get(p).unwrap().validated);
    }

    #[test]
    fn consistency_scan_is_idempotent() {
        let mut t = table();
        for _ in 0..8 {
            let p = t.alloc(Some(DomId(2)), PageState::DomainOwned).unwrap();
            t.inc_ref(p).unwrap();
        }
        assert_eq!(t.consistency_scan(), 8);
        assert_eq!(t.consistency_scan(), 0);
    }

    #[test]
    fn scan_does_not_hide_double_apply() {
        // A double-applied pin (count 2, validated) is *consistent* and must
        // survive the scan — the paper's logging enhancement exists exactly
        // because the scan cannot repair it.
        let mut t = table();
        let p = t.alloc(Some(DomId(1)), PageState::DomainOwned).unwrap();
        t.inc_ref(p).unwrap();
        t.inc_ref(p).unwrap();
        t.set_validated(p, true).unwrap();
        assert_eq!(t.consistency_scan(), 0);
        assert_eq!(t.get(p).unwrap().use_count, 2);
    }

    #[test]
    fn heap_alloc_free() {
        let mut t = table();
        let mut h = Heap::new();
        let id = h
            .alloc(&mut t, HeapObjKind::PerCpuSched(0), 2, Some(LockId(5)))
            .unwrap();
        assert_eq!(h.allocated_pages(), 2);
        assert_eq!(h.embedded_locks().collect::<Vec<_>>(), vec![LockId(5)]);
        h.free(&mut t, id).unwrap();
        assert_eq!(h.allocated_pages(), 0);
        assert_eq!(t.free_count(), 64);
    }

    #[test]
    fn heap_corruption_blocks_alloc_until_rebuild() {
        let mut t = table();
        let mut h = Heap::new();
        h.corrupt_freelist();
        assert_eq!(
            h.alloc(&mut t, HeapObjKind::Misc, 1, None),
            Err(MemError::HeapCorrupt)
        );
        h.rebuild_freelist();
        assert!(h.alloc(&mut t, HeapObjKind::Misc, 1, None).is_ok());
    }

    #[test]
    fn heap_alloc_rolls_back_on_failure() {
        let mut t = PageFrameTable::new(2);
        let mut h = Heap::new();
        assert_eq!(
            h.alloc(&mut t, HeapObjKind::Misc, 3, None),
            Err(MemError::OutOfMemory)
        );
        assert_eq!(t.free_count(), 2, "partial allocation was rolled back");
    }

    #[test]
    fn boot_scrub_is_deterministic_and_per_frame() {
        let a = boot_scrub(16);
        let b = boot_scrub(16);
        assert_eq!(a, b, "scrub patterns are fixed, not seeded");
        assert_eq!(a.len(), 16);
        assert_eq!(a.digest(), b.digest());
        // Each frame gets its own pattern, so checksums differ.
        let first = a.checksum(PageNum::from_index(0)).unwrap();
        let second = a.checksum(PageNum::from_index(1)).unwrap();
        assert_ne!(first, second);
        assert_eq!(a.checksum(PageNum::from_index(16)), None);
    }

    #[test]
    fn boot_scrub_digest_depends_on_memory_size() {
        assert_ne!(boot_scrub(8).digest(), boot_scrub(16).digest());
        assert!(boot_scrub(0).is_empty());
    }

    #[test]
    fn heap_double_free_is_error() {
        let mut t = table();
        let mut h = Heap::new();
        let id = h.alloc(&mut t, HeapObjKind::Misc, 1, None).unwrap();
        h.free(&mut t, id).unwrap();
        assert_eq!(h.free(&mut t, id), Err(MemError::HeapCorrupt));
    }
}
