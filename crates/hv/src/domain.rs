//! Domains (VMs), vCPUs, and the guest-workload interface.
//!
//! The platform hosts the privileged VM (PrivVM / Dom0) plus application
//! VMs, as in the paper's 1AppVM and 3AppVM setups. Each domain has one
//! vCPU pinned to a distinct physical CPU (Section VI-A). What a guest
//! *does* is supplied by a [`GuestProgram`] implementation (the synthetic
//! benchmarks live in the `nlh-workloads` crate); the hypervisor sees the
//! guest purely as the stream of [`GuestOp`]s it emits — compute, hypercalls,
//! syscalls and blocking — which is exactly the interface the real
//! hypervisor has to its guests.

use std::fmt;

use nlh_sim::{CpuId, DomId, PageNum, Pcg64, SimTime, VcpuId};
use serde::{Deserialize, Serialize};

use crate::hypercalls::{HcRequest, PendingRequest};
use crate::interrupts::GuestEventKind;

/// What a guest does next when its vCPU runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestOp {
    /// Execute guest code for the given duration (no hypervisor entry).
    Compute(nlh_sim::SimDuration),
    /// Issue a hypercall.
    Hypercall(HcRequest),
    /// Issue a syscall (on x86-64 this traps into the hypervisor, which
    /// forwards it to the guest kernel — Section IV, "Syscall retry").
    Syscall,
    /// Block until an event is delivered (event channel or virtual timer).
    Block,
    /// Write the queue-notify MMIO register of the domain's virtio
    /// device: submit `payload` on queue `queue` and trap into the
    /// hypervisor's virtio MMIO handler to run the transaction.
    VirtioKick {
        /// Queue index within the domain's device.
        queue: u8,
        /// Descriptor payload (request id or frame sequence number).
        payload: u64,
    },
    /// The benchmark has finished; the vCPU idles from now on.
    Done,
}

/// Notifications from the platform to a guest workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestNotice {
    /// The guest's pending hypercall completed.
    HypercallDone {
        /// Whether the hypervisor reported success.
        ok: bool,
    },
    /// The guest's forwarded syscall was delivered back.
    SyscallDone,
    /// A paravirtual event arrived on the domain's event channel.
    Event(GuestEventKind),
    /// The guest's FS/GS were clobbered across a recovery (the "Save FS/GS"
    /// enhancement was off). Whether this is fatal depends on whether the
    /// workload's processes are in TLS-dependent code.
    TlsClobbered,
    /// A fault silently corrupted data in this guest's memory (SDC path).
    DataCorrupted,
}

/// Why a workload failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailReason {
    /// Output differs from the golden copy (Section VI-A).
    OutputMismatch,
    /// A syscall into the guest OS failed or was lost.
    SyscallFailed,
    /// The benchmark did not complete in time (e.g. a lost hypercall left
    /// the vCPU blocked forever).
    Incomplete,
    /// The guest OS crashed.
    GuestCrash(String),
    /// Service degradation beyond the benchmark's threshold (NetBench's
    /// "reception rate drops more than 10% in any one-second interval").
    ServiceDegraded,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::OutputMismatch => write!(f, "output differs from golden copy"),
            FailReason::SyscallFailed => write!(f, "a syscall failed or was lost"),
            FailReason::Incomplete => write!(f, "benchmark did not complete"),
            FailReason::GuestCrash(why) => write!(f, "guest crashed: {why}"),
            FailReason::ServiceDegraded => write!(f, "service degraded beyond threshold"),
        }
    }
}

/// The verdict of a workload at the end of a trial.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadVerdict {
    /// Still running (only meaningful mid-trial).
    Running,
    /// Completed and produced correct output.
    CompletedOk,
    /// Failed.
    Failed(FailReason),
}

impl WorkloadVerdict {
    /// Whether the workload finished successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, WorkloadVerdict::CompletedOk)
    }
}

/// A guest workload: the program running inside a VM.
///
/// Implementations are deterministic given the RNG handed to
/// [`GuestProgram::next_op`].
pub trait GuestProgram: fmt::Debug + Send + Sync {
    /// Short name for reports (e.g. `"UnixBench"`).
    fn name(&self) -> &str;

    /// The guest's next action. Called when the vCPU is scheduled and has
    /// no outstanding request.
    fn next_op(&mut self, now: SimTime, rng: &mut Pcg64) -> GuestOp;

    /// Delivers a platform notification.
    fn notice(&mut self, now: SimTime, notice: GuestNotice);

    /// The workload's verdict as of `now`. `deadline` is the time by which
    /// the benchmark was expected to finish; a workload still incomplete
    /// after it should report [`FailReason::Incomplete`].
    fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict;

    /// Clones the workload behind the trait object. Required so a booted
    /// system (domains and their programs included) can serve as a reusable
    /// warm-boot template.
    fn clone_box(&self) -> Box<dyn GuestProgram>;

    /// Re-derives every internal RNG from `seed`, exactly as if the
    /// workload had been constructed with it. Warm-started trials clone a
    /// template built from a canonical seed and then reseed; workloads
    /// whose behaviour is seed-independent keep the default no-op.
    fn reseed(&mut self, seed: u64) {
        let _ = seed;
    }
}

impl Clone for Box<dyn GuestProgram> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainKind {
    /// The privileged VM (Dom0): management + device-driver domain. The
    /// PrivVM is always paravirtualized (Section III-A).
    Priv,
    /// A paravirtualized application VM (the paper's default; on x86-64
    /// its syscalls trap through the hypervisor).
    App,
    /// A fully hardware-virtualized application VM (HVM). Its syscalls
    /// stay inside the guest; the paper reports fault-injection results
    /// with HVM AppVMs "very similar" to paravirtualized ones
    /// (Section VI-A).
    AppHvm,
}

/// Domain lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainState {
    /// Being constructed by a `domctl` hypercall.
    Building,
    /// Running normally.
    Active,
    /// The guest OS crashed.
    Crashed(String),
    /// Destroyed.
    Destroyed,
}

/// A domain (VM) and all its hypervisor-side state.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Domain id (0 = PrivVM).
    pub id: DomId,
    /// Privileged or application VM.
    pub kind: DomainKind,
    /// The domain's single vCPU.
    pub vcpu: VcpuId,
    /// Physical CPU the vCPU is pinned to.
    pub pinned_cpu: CpuId,
    /// Lifecycle state.
    pub state: DomainState,
    /// Pages owned by this domain.
    pub owned_pages: Vec<PageNum>,
    /// Subset of owned pages currently pinned as page-table pages.
    pub pinned_pages: Vec<PageNum>,
    /// The workload running inside.
    pub program: Option<Box<dyn GuestProgram>>,
    /// Outstanding request into the hypervisor, if any.
    pub pending: Option<PendingRequest>,
    /// Whether the vCPU is blocked waiting for an event.
    pub blocked: bool,
    /// Whether the workload reported [`GuestOp::Done`].
    pub finished: bool,
    /// Pages to allocate during `domctl` construction.
    pub target_pages: usize,
    /// The guest's live FS/GS values (clobbered by recovery when the
    /// "Save FS/GS" enhancement is off and the vCPU was in the hypervisor).
    pub fs_gs: (u64, u64),
}

impl Domain {
    /// Creates a domain shell in the `Building` state.
    pub fn new(id: DomId, kind: DomainKind, vcpu: VcpuId, pinned_cpu: CpuId) -> Self {
        Domain {
            id,
            kind,
            vcpu,
            pinned_cpu,
            state: DomainState::Building,
            owned_pages: Vec::new(),
            pinned_pages: Vec::new(),
            program: None,
            pending: None,
            blocked: false,
            finished: false,
            target_pages: 0,
            fs_gs: (0x7f00_0000, 0x6f00_0000),
        }
    }

    /// Whether the domain is alive and schedulable.
    pub fn is_active(&self) -> bool {
        self.state == DomainState::Active
    }

    /// Marks the guest OS as crashed.
    pub fn crash(&mut self, why: impl Into<String>) {
        if self.state == DomainState::Active {
            self.state = DomainState::Crashed(why.into());
        }
    }

    /// Forwards a notification to the workload, if present.
    pub fn notify(&mut self, now: SimTime, notice: GuestNotice) {
        if let Some(p) = self.program.as_mut() {
            p.notice(now, notice);
        }
    }

    /// The workload verdict, folding in guest-level failures the workload
    /// itself cannot observe (a crashed guest never reports).
    pub fn verdict(&self, now: SimTime, deadline: SimTime) -> WorkloadVerdict {
        match &self.state {
            DomainState::Crashed(why) => {
                WorkloadVerdict::Failed(FailReason::GuestCrash(why.clone()))
            }
            DomainState::Destroyed | DomainState::Building => {
                WorkloadVerdict::Failed(FailReason::Incomplete)
            }
            DomainState::Active => match &self.program {
                Some(p) => p.verdict(now, deadline),
                None => WorkloadVerdict::Running,
            },
        }
    }
}

/// Specification for creating a domain.
#[derive(Clone)]
pub struct DomainSpec {
    /// Privileged or application VM.
    pub kind: DomainKind,
    /// Number of pages to allocate to the domain.
    pub pages: usize,
    /// Physical CPU to pin the vCPU to.
    pub pinned_cpu: CpuId,
    /// The workload to run inside.
    pub program: Box<dyn GuestProgram>,
}

impl fmt::Debug for DomainSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DomainSpec")
            .field("kind", &self.kind)
            .field("pages", &self.pages)
            .field("pinned_cpu", &self.pinned_cpu)
            .field("program", &self.program.name())
            .finish()
    }
}

/// A trivial workload that computes forever; useful in tests.
#[derive(Debug, Clone, Default)]
pub struct IdleLoop;

impl GuestProgram for IdleLoop {
    fn name(&self) -> &str {
        "IdleLoop"
    }

    fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        GuestOp::Compute(nlh_sim::SimDuration::from_millis(1))
    }

    fn notice(&mut self, _now: SimTime, _notice: GuestNotice) {}

    fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
        WorkloadVerdict::CompletedOk
    }

    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_lifecycle() {
        let mut d = Domain::new(DomId(1), DomainKind::App, VcpuId(1), CpuId(1));
        assert_eq!(d.state, DomainState::Building);
        assert!(!d.is_active());
        d.state = DomainState::Active;
        assert!(d.is_active());
        d.crash("triple fault");
        assert_eq!(d.state, DomainState::Crashed("triple fault".into()));
        // Crashing again keeps the original reason.
        d.crash("other");
        assert_eq!(d.state, DomainState::Crashed("triple fault".into()));
    }

    #[test]
    fn crashed_domain_verdict_is_guest_crash() {
        let mut d = Domain::new(DomId(1), DomainKind::App, VcpuId(1), CpuId(1));
        d.state = DomainState::Active;
        d.program = Some(Box::new(IdleLoop));
        d.crash("oops");
        match d.verdict(SimTime::ZERO, SimTime::from_secs(1)) {
            WorkloadVerdict::Failed(FailReason::GuestCrash(w)) => assert_eq!(w, "oops"),
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn active_domain_delegates_verdict() {
        let mut d = Domain::new(DomId(1), DomainKind::App, VcpuId(1), CpuId(1));
        d.state = DomainState::Active;
        d.program = Some(Box::new(IdleLoop));
        assert!(d.verdict(SimTime::ZERO, SimTime::from_secs(1)).is_ok());
    }

    #[test]
    fn building_domain_is_incomplete() {
        let d = Domain::new(DomId(2), DomainKind::App, VcpuId(2), CpuId(2));
        assert_eq!(
            d.verdict(SimTime::ZERO, SimTime::ZERO),
            WorkloadVerdict::Failed(FailReason::Incomplete)
        );
    }

    #[test]
    fn idle_loop_behaves() {
        let mut w = IdleLoop;
        let mut rng = Pcg64::seed_from_u64(1);
        match w.next_op(SimTime::ZERO, &mut rng) {
            GuestOp::Compute(d) => assert_eq!(d.as_millis(), 1),
            op => panic!("unexpected {op:?}"),
        }
        assert_eq!(w.name(), "IdleLoop");
    }

    #[test]
    fn fail_reason_display() {
        assert_eq!(
            FailReason::GuestCrash("x".into()).to_string(),
            "guest crashed: x"
        );
        assert!(FailReason::ServiceDegraded.to_string().contains("degraded"));
    }

    #[test]
    fn domain_spec_debug_includes_workload_name() {
        let spec = DomainSpec {
            kind: DomainKind::App,
            pages: 128,
            pinned_cpu: CpuId(3),
            program: Box::new(IdleLoop),
        };
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("IdleLoop"));
        assert!(dbg.contains("128"));
    }
}
