//! The vCPU scheduler and its redundantly-stored metadata.
//!
//! Xen stores "which vCPU is currently running on each CPU" in **three**
//! places: a per-CPU pointer plus two fields of the per-vCPU structure
//! (Section V-A, "Ensure consistency within scheduling metadata"). The
//! context-switch path updates them in separate steps, so an abandoned
//! execution thread can leave them disagreeing; the scheduler's assertions
//! then fail, or the wrong register context gets restored. NiLiHype's
//! enhancement rebuilds the per-vCPU copies from the per-CPU copy (chosen as
//! the most reliable source).

use std::collections::VecDeque;

use nlh_sim::{CpuId, VcpuId};
use serde::{Deserialize, Serialize};

/// Execution state of a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Eligible to run, waiting on a runqueue.
    Runnable,
    /// Currently executing on some CPU.
    Running,
    /// Blocked waiting for an event (e.g. an I/O completion).
    Blocked,
    /// Taken offline (domain destroyed or paused for recovery).
    Offline,
}

/// Per-vCPU scheduling metadata — including the two *redundant* copies of
/// "where am I running".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuSchedInfo {
    /// Coarse execution state.
    pub state: RunState,
    /// Redundant copy #1: the CPU this vCPU believes it is running on.
    pub running_on: Option<CpuId>,
    /// Redundant copy #2: whether this vCPU believes it is the current one.
    pub is_current: bool,
    /// The physical CPU this vCPU is pinned to (the paper pins each vCPU to
    /// a distinct physical CPU).
    pub pinned_to: CpuId,
}

/// A scheduling-metadata inconsistency found by [`Scheduler::check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedInconsistency {
    /// The CPU whose view disagrees.
    pub cpu: CpuId,
    /// Description of the disagreement (mirrors a Xen `ASSERT` message).
    pub detail: String,
}

/// The scheduler: per-CPU runqueues, the per-CPU current pointer, and
/// per-vCPU metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    runqueues: Vec<VecDeque<VcpuId>>,
    /// Per-CPU "current vCPU" — the source of truth recovery trusts.
    current: Vec<Option<VcpuId>>,
    vcpus: Vec<VcpuSchedInfo>,
}

impl Scheduler {
    /// A scheduler for `num_cpus` CPUs with no vCPUs yet.
    pub fn new(num_cpus: usize) -> Self {
        Scheduler {
            runqueues: vec![VecDeque::new(); num_cpus],
            current: vec![None; num_cpus],
            vcpus: Vec::new(),
        }
    }

    /// Registers vCPU number `vcpu` pinned to `cpu`, initially runnable.
    ///
    /// vCPU ids are issued by the domain layer; they must be registered here
    /// in id order.
    pub fn register_vcpu(&mut self, vcpu: VcpuId, cpu: CpuId) {
        assert_eq!(
            vcpu.index(),
            self.vcpus.len(),
            "vCPUs must be registered in id order"
        );
        self.vcpus.push(VcpuSchedInfo {
            state: RunState::Runnable,
            running_on: None,
            is_current: false,
            pinned_to: cpu,
        });
        self.runqueues[cpu.index()].push_back(vcpu);
    }

    /// Number of registered vCPUs.
    pub fn num_vcpus(&self) -> usize {
        self.vcpus.len()
    }

    /// Metadata for `vcpu`.
    pub fn vcpu(&self, vcpu: VcpuId) -> &VcpuSchedInfo {
        &self.vcpus[vcpu.index()]
    }

    /// Mutable metadata for `vcpu` (fault-injection and recovery surface).
    pub fn vcpu_mut(&mut self, vcpu: VcpuId) -> &mut VcpuSchedInfo {
        &mut self.vcpus[vcpu.index()]
    }

    /// The per-CPU current pointer.
    pub fn current(&self, cpu: CpuId) -> Option<VcpuId> {
        self.current[cpu.index()]
    }

    /// The next runnable vCPU pinned to `cpu`, if any (peek).
    pub fn peek_next(&self, cpu: CpuId) -> Option<VcpuId> {
        self.runqueues[cpu.index()]
            .iter()
            .copied()
            .find(|v| self.vcpus[v.index()].state == RunState::Runnable)
    }

    // --- The three context-switch sub-steps. ---
    //
    // The context-switch path in the hypervisor executes these as *separate
    // micro-ops*; a fault between any two leaves the metadata inconsistent.

    /// Context-switch step 1: update the per-CPU current pointer.
    pub fn cs_set_percpu_current(&mut self, cpu: CpuId, vcpu: Option<VcpuId>) {
        self.current[cpu.index()] = vcpu;
    }

    /// Context-switch step 2: update the vCPU's `running_on` field.
    pub fn cs_set_running_on(&mut self, vcpu: VcpuId, cpu: Option<CpuId>) {
        self.vcpus[vcpu.index()].running_on = cpu;
    }

    /// Context-switch step 3: update the vCPU's `is_current` flag and state.
    pub fn cs_set_is_current(&mut self, vcpu: VcpuId, is_current: bool) {
        let info = &mut self.vcpus[vcpu.index()];
        info.is_current = is_current;
        info.state = if is_current {
            RunState::Running
        } else if info.state == RunState::Running {
            RunState::Runnable
        } else {
            info.state
        };
    }

    /// Dequeues `vcpu` from its runqueue (it is about to run).
    pub fn dequeue(&mut self, vcpu: VcpuId) {
        let cpu = self.vcpus[vcpu.index()].pinned_to;
        self.runqueues[cpu.index()].retain(|v| *v != vcpu);
    }

    /// Enqueues `vcpu` on its pinned CPU's runqueue and marks it runnable.
    pub fn enqueue(&mut self, vcpu: VcpuId) {
        let cpu = self.vcpus[vcpu.index()].pinned_to;
        if !self.runqueues[cpu.index()].contains(&vcpu) {
            self.runqueues[cpu.index()].push_back(vcpu);
        }
        let info = &mut self.vcpus[vcpu.index()];
        if info.state != RunState::Offline {
            info.state = RunState::Runnable;
        }
    }

    /// Blocks `vcpu` (e.g. waiting for an event channel).
    pub fn block(&mut self, vcpu: VcpuId) {
        self.vcpus[vcpu.index()].state = RunState::Blocked;
    }

    /// Unregisters all vCPUs of a destroyed domain, given their ids.
    pub fn offline_vcpus(&mut self, vcpus: &[VcpuId]) {
        for &v in vcpus {
            self.vcpus[v.index()].state = RunState::Offline;
            self.vcpus[v.index()].is_current = false;
            self.vcpus[v.index()].running_on = None;
            for rq in &mut self.runqueues {
                rq.retain(|x| *x != v);
            }
            for cur in &mut self.current {
                if *cur == Some(v) {
                    *cur = None;
                }
            }
        }
    }

    /// Verifies the three redundant copies agree for `cpu` — the check the
    /// scheduler's assertions perform on every scheduling decision.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (which, in the real hypervisor,
    /// is an `ASSERT` failure — i.e. a hypervisor panic).
    pub fn check_consistency(&self, cpu: CpuId) -> Result<(), SchedInconsistency> {
        let cur = self.current[cpu.index()];
        if let Some(v) = cur {
            let info = &self.vcpus[v.index()];
            if info.running_on != Some(cpu) {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!(
                        "percpu current={v} but {v}.running_on={:?}",
                        info.running_on
                    ),
                });
            }
            if !info.is_current {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!("percpu current={v} but {v}.is_current=false"),
                });
            }
        }
        // No other vCPU may claim to be current on this CPU.
        for (i, info) in self.vcpus.iter().enumerate() {
            let v = VcpuId::from_index(i);
            if Some(v) != cur && info.running_on == Some(cpu) && info.is_current {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!("{v} claims cpu but percpu current={cur:?}"),
                });
            }
        }
        Ok(())
    }

    /// NiLiHype's "ensure consistency within scheduling metadata"
    /// enhancement: rebuild every per-vCPU copy from the per-CPU copies.
    /// Returns the number of fields repaired.
    pub fn make_consistent_from_percpu(&mut self) -> usize {
        let mut fixed = 0;
        // The per-CPU copies are the chosen source of truth, but they can
        // themselves be conflicted after corruption (two CPUs claiming one
        // vCPU, or a claim on an offline vCPU): keep the first claim, drop
        // the rest.
        let mut seen: Vec<VcpuId> = Vec::new();
        for c in 0..self.current.len() {
            if let Some(v) = self.current[c] {
                let offline = self
                    .vcpus
                    .get(v.index())
                    .map(|i| i.state == RunState::Offline)
                    .unwrap_or(true);
                if seen.contains(&v) || offline {
                    self.current[c] = None;
                    fixed += 1;
                } else {
                    seen.push(v);
                }
            }
        }
        let current = self.current.clone();
        for (i, info) in self.vcpus.iter_mut().enumerate() {
            let v = VcpuId::from_index(i);
            let claimed: Option<CpuId> = current
                .iter()
                .enumerate()
                .find(|(_, c)| **c == Some(v))
                .map(|(c, _)| CpuId::from_index(c));
            let want_running_on = claimed;
            let want_is_current = claimed.is_some();
            if info.running_on != want_running_on {
                info.running_on = want_running_on;
                fixed += 1;
            }
            if info.is_current != want_is_current {
                info.is_current = want_is_current;
                fixed += 1;
            }
            if want_is_current && info.state != RunState::Running && info.state != RunState::Offline
            {
                info.state = RunState::Running;
                fixed += 1;
            }
            if !want_is_current && info.state == RunState::Running {
                info.state = RunState::Runnable;
                fixed += 1;
            }
        }
        fixed
    }

    /// Re-enqueues every runnable, non-current vCPU that fell off its
    /// runqueue (e.g. a vCPU descheduled by an abandoned context switch).
    /// Returns how many were re-enqueued. Run by recovery after
    /// [`Scheduler::make_consistent_from_percpu`].
    pub fn requeue_runnable(&mut self) -> usize {
        let mut fixed = 0;
        for i in 0..self.vcpus.len() {
            let v = VcpuId::from_index(i);
            let info = self.vcpus[i];
            if info.state == RunState::Runnable
                && !info.is_current
                && !self.runqueues[info.pinned_to.index()].contains(&v)
            {
                self.runqueues[info.pinned_to.index()].push_back(v);
                fixed += 1;
            }
        }
        fixed
    }

    /// Checks every CPU's consistency; used by invariant tests.
    pub fn check_all(&self) -> Result<(), SchedInconsistency> {
        for c in 0..self.current.len() {
            self.check_consistency(CpuId::from_index(c))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_with(n_cpu: usize, n_vcpu: usize) -> Scheduler {
        let mut s = Scheduler::new(n_cpu);
        for i in 0..n_vcpu {
            s.register_vcpu(VcpuId::from_index(i), CpuId::from_index(i));
        }
        s
    }

    /// Runs the full three-step context switch to `vcpu` on `cpu`.
    fn full_switch(s: &mut Scheduler, cpu: CpuId, vcpu: VcpuId) {
        s.dequeue(vcpu);
        s.cs_set_percpu_current(cpu, Some(vcpu));
        s.cs_set_running_on(vcpu, Some(cpu));
        s.cs_set_is_current(vcpu, true);
    }

    #[test]
    fn full_context_switch_is_consistent() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(0), VcpuId(0));
        assert!(s.check_consistency(CpuId(0)).is_ok());
        assert_eq!(s.current(CpuId(0)), Some(VcpuId(0)));
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Running);
    }

    #[test]
    fn partial_context_switch_is_inconsistent() {
        let mut s = sched_with(2, 2);
        // Fault strikes after step 1 of 3.
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        let err = s.check_consistency(CpuId(0)).unwrap_err();
        assert!(err.detail.contains("running_on"), "{}", err.detail);
    }

    #[test]
    fn partial_switch_after_step2_still_inconsistent() {
        let mut s = sched_with(2, 2);
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        s.cs_set_running_on(VcpuId(0), Some(CpuId(0)));
        let err = s.check_consistency(CpuId(0)).unwrap_err();
        assert!(err.detail.contains("is_current"), "{}", err.detail);
    }

    #[test]
    fn make_consistent_repairs_partial_switch() {
        let mut s = sched_with(2, 2);
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        assert!(s.check_consistency(CpuId(0)).is_err());
        let fixed = s.make_consistent_from_percpu();
        assert!(fixed >= 2, "repaired running_on and is_current: {fixed}");
        assert!(s.check_all().is_ok());
        assert_eq!(s.vcpu(VcpuId(0)).running_on, Some(CpuId(0)));
    }

    #[test]
    fn make_consistent_clears_stale_claim() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(1), VcpuId(1));
        // Corrupt: vCPU 0 claims CPU 1 too.
        s.cs_set_running_on(VcpuId(0), Some(CpuId(1)));
        s.cs_set_is_current(VcpuId(0), true);
        assert!(s.check_consistency(CpuId(1)).is_err());
        s.make_consistent_from_percpu();
        assert!(s.check_all().is_ok());
        assert!(!s.vcpu(VcpuId(0)).is_current);
        assert!(s.vcpu(VcpuId(1)).is_current);
    }

    #[test]
    fn make_consistent_is_idempotent() {
        let mut s = sched_with(4, 4);
        full_switch(&mut s, CpuId(2), VcpuId(2));
        s.cs_set_percpu_current(CpuId(3), Some(VcpuId(3)));
        s.make_consistent_from_percpu();
        assert_eq!(s.make_consistent_from_percpu(), 0);
    }

    #[test]
    fn peek_next_respects_runnable_only() {
        let mut s = sched_with(2, 2);
        assert_eq!(s.peek_next(CpuId(0)), Some(VcpuId(0)));
        s.block(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), None);
        s.enqueue(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), Some(VcpuId(0)));
    }

    #[test]
    fn enqueue_is_idempotent() {
        let mut s = sched_with(1, 1);
        s.enqueue(VcpuId(0));
        s.enqueue(VcpuId(0));
        s.dequeue(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), None, "no duplicate entries");
    }

    #[test]
    fn offline_removes_all_traces() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(0), VcpuId(0));
        s.offline_vcpus(&[VcpuId(0)]);
        assert_eq!(s.current(CpuId(0)), None);
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Offline);
        assert!(s.check_all().is_ok());
        // Offline vCPUs stay offline through enqueue attempts.
        s.enqueue(VcpuId(0));
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Offline);
    }
}
