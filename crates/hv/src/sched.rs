//! The vCPU scheduler and its redundantly-stored metadata.
//!
//! Xen stores "which vCPU is currently running on each CPU" in **three**
//! places: a per-CPU pointer plus two fields of the per-vCPU structure
//! (Section V-A, "Ensure consistency within scheduling metadata"). The
//! context-switch path updates them in separate steps, so an abandoned
//! execution thread can leave them disagreeing; the scheduler's assertions
//! then fail, or the wrong register context gets restored. NiLiHype's
//! enhancement rebuilds the per-vCPU copies from the per-CPU copy (chosen as
//! the most reliable source).
//!
//! # Two scheduling modes
//!
//! The paper pins one vCPU per physical CPU; that remains the default and
//! every paper campaign runs in it. **Credit mode** (enabled per-machine by
//! [`Scheduler::enable_credit`]) generalizes to N:M overcommit: per-vCPU
//! credit accounting debited by a preemption tick, WFI-style blocking until
//! a virtual interrupt wakes the vCPU, and periodic load balancing that
//! migrates runnable vCPUs between the balance CPUs. All credit-mode
//! transitions execute as abandonable micro-op programs in the hypervisor,
//! so a fault can strike mid-context-switch or mid-migration; the repair
//! pass in [`Scheduler::requeue_runnable`] then has to undo double-queued
//! vCPUs, torn migrations and lost wakeups — far more in-flight state than
//! the pinned model ever exposes.

use std::collections::VecDeque;
use std::fmt;

use nlh_sim::{CpuId, VcpuId};
use serde::{Deserialize, Serialize};

/// Credits a vCPU starts with when registered.
pub const CREDIT_INIT: i32 = 300;
/// Credits debited from the running vCPU on each scheduler tick.
pub const CREDIT_DEBIT: i32 = 100;
/// Credits every schedulable vCPU on a CPU is reset to when the whole set
/// is exhausted.
pub const CREDIT_REFILL: i32 = 300;
/// Floor a running vCPU's account saturates at (Xen's `over` priority):
/// without it a CPU-bound vCPU running unopposed drifts unboundedly
/// negative and an I/O-bound vCPU waking with leftover positive credits
/// would out-credit it forever.
pub const CREDIT_FLOOR: i32 = -300;

/// Execution state of a vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Eligible to run, waiting on a runqueue.
    Runnable,
    /// Currently executing on some CPU.
    Running,
    /// Blocked waiting for an event (e.g. an I/O completion). The reason is
    /// recorded separately in [`VcpuSchedInfo::block_reason`].
    Blocked,
    /// Taken offline (domain destroyed or paused for recovery).
    Offline,
}

/// Why a vCPU is parked. Only meaningful while the state is
/// [`RunState::Blocked`] or [`RunState::Offline`]; cleared when the vCPU
/// becomes runnable again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockReason {
    /// Voluntarily parked (WFI / block hypercall) until a virtual interrupt
    /// or event-channel notification arrives.
    WaitForEvent,
    /// Parked because its domain was taken offline.
    Offline,
}

/// Per-vCPU scheduling metadata — including the two *redundant* copies of
/// "where am I running".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuSchedInfo {
    /// Coarse execution state.
    pub state: RunState,
    /// Redundant copy #1: the CPU this vCPU believes it is running on.
    pub running_on: Option<CpuId>,
    /// Redundant copy #2: whether this vCPU believes it is the current one.
    pub is_current: bool,
    /// The physical CPU this vCPU is assigned to. In the default pinned
    /// model this never changes; in credit mode load balancing migrates it
    /// between the balance CPUs.
    pub pinned_to: CpuId,
    /// Credit-mode account; ignored in the pinned model.
    pub credits: i32,
    /// A wakeup arrived while the vCPU was blocked and the wake path could
    /// not (or might not) complete — e.g. during recovery. Consumed by
    /// [`Scheduler::requeue_runnable`] and by [`Scheduler::enqueue`].
    pub pending_wake: bool,
    /// Why the vCPU is parked, when it is.
    pub block_reason: Option<BlockReason>,
}

/// A scheduling-metadata inconsistency found by [`Scheduler::check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedInconsistency {
    /// The CPU whose view disagrees.
    pub cpu: CpuId,
    /// Description of the disagreement (mirrors a Xen `ASSERT` message).
    pub detail: String,
}

/// The scheduler: per-CPU runqueues, the per-CPU current pointer, and
/// per-vCPU metadata.
#[derive(Clone, Serialize, Deserialize)]
pub struct Scheduler {
    runqueues: Vec<VecDeque<VcpuId>>,
    /// Per-CPU "current vCPU" — the source of truth recovery trusts.
    current: Vec<Option<VcpuId>>,
    vcpus: Vec<VcpuSchedInfo>,
    /// Credit (N:M overcommit) mode switch. Off by default: the paper's
    /// pinned model, which draws no extra RNG and takes no extra micro-ops.
    credit_mode: bool,
    /// CPUs the load balancer may migrate vCPUs between (credit mode only).
    balance_cpus: Vec<CpuId>,
    /// Per-CPU "a higher-credit vCPU is waiting" flag, set by the tick and
    /// consumed by the hypervisor's run loop to build a switch program.
    resched: Vec<bool>,
    /// At most one load-balancing migration in flight at a time
    /// (vCPU, from-CPU, to-CPU), consumed by the from-CPU's run loop.
    pending_migration: Option<(VcpuId, CpuId, CpuId)>,
    /// Generation counter for the pick cache below; bumped by every
    /// mutation that can change a `peek_next` result.
    cache_gen: u64,
    /// Per-CPU cached `peek_next` result: (generation it was computed at,
    /// value). Excluded from `Debug` so state digests ignore it — the cache
    /// is never observable behaviour, as `cached_pick` always equals a
    /// fresh scan (pinned by a differential proptest).
    pick_cache: Vec<(u64, Option<VcpuId>)>,
}

// Hand-written so the pick cache stays out of the Debug output (and thus
// out of `Hypervisor::state_digest`), while every behavioural field —
// including the credit-mode ones — stays in.
impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("runqueues", &self.runqueues)
            .field("current", &self.current)
            .field("vcpus", &self.vcpus)
            .field("credit_mode", &self.credit_mode)
            .field("balance_cpus", &self.balance_cpus)
            .field("resched", &self.resched)
            .field("pending_migration", &self.pending_migration)
            .finish()
    }
}

impl Scheduler {
    /// A scheduler for `num_cpus` CPUs with no vCPUs yet.
    pub fn new(num_cpus: usize) -> Self {
        Scheduler {
            runqueues: vec![VecDeque::new(); num_cpus],
            current: vec![None; num_cpus],
            vcpus: Vec::new(),
            credit_mode: false,
            balance_cpus: Vec::new(),
            resched: vec![false; num_cpus],
            pending_migration: None,
            cache_gen: 1,
            pick_cache: vec![(0, None); num_cpus],
        }
    }

    /// Invalidate every cached pick (any mutation that can change what
    /// `peek_next` returns must call this).
    fn bump(&mut self) {
        self.cache_gen = self.cache_gen.wrapping_add(1);
    }

    /// The mutation-generation counter — bumped by every state change that
    /// could alter a scheduling decision. Tests use it as a cheap "the
    /// scheduler actually did work in this window" witness.
    pub fn mutation_generation(&self) -> u64 {
        self.cache_gen
    }

    /// Switches the scheduler into credit (N:M overcommit) mode. The load
    /// balancer migrates runnable vCPUs between `cpus` only, so CPUs
    /// outside the set (e.g. the PrivVM's CPU 0) keep their pinned vCPUs.
    pub fn enable_credit(&mut self, cpus: &[CpuId]) {
        self.bump();
        self.credit_mode = true;
        self.balance_cpus = cpus.to_vec();
    }

    /// Whether credit (overcommit) mode is on.
    pub fn credit_mode(&self) -> bool {
        self.credit_mode
    }

    /// Registers vCPU number `vcpu` assigned to `cpu`, initially runnable.
    ///
    /// vCPU ids are issued by the domain layer; they must be registered here
    /// in id order.
    pub fn register_vcpu(&mut self, vcpu: VcpuId, cpu: CpuId) {
        assert_eq!(
            vcpu.index(),
            self.vcpus.len(),
            "vCPUs must be registered in id order"
        );
        self.bump();
        self.vcpus.push(VcpuSchedInfo {
            state: RunState::Runnable,
            running_on: None,
            is_current: false,
            pinned_to: cpu,
            credits: CREDIT_INIT,
            pending_wake: false,
            block_reason: None,
        });
        self.runqueues[cpu.index()].push_back(vcpu);
    }

    /// Number of registered vCPUs.
    pub fn num_vcpus(&self) -> usize {
        self.vcpus.len()
    }

    /// Metadata for `vcpu`.
    pub fn vcpu(&self, vcpu: VcpuId) -> &VcpuSchedInfo {
        &self.vcpus[vcpu.index()]
    }

    /// Mutable metadata for `vcpu` (fault-injection and recovery surface).
    pub fn vcpu_mut(&mut self, vcpu: VcpuId) -> &mut VcpuSchedInfo {
        self.bump();
        &mut self.vcpus[vcpu.index()]
    }

    /// The per-CPU current pointer.
    pub fn current(&self, cpu: CpuId) -> Option<VcpuId> {
        self.current[cpu.index()]
    }

    /// The next runnable vCPU for `cpu` (peek; pure reference scan).
    ///
    /// Pinned model: the first runnable vCPU in queue order. Credit mode:
    /// the runnable vCPU with the most credits, queue order breaking ties.
    pub fn peek_next(&self, cpu: CpuId) -> Option<VcpuId> {
        let rq = &self.runqueues[cpu.index()];
        if !self.credit_mode {
            return rq
                .iter()
                .copied()
                .find(|v| self.vcpus[v.index()].state == RunState::Runnable);
        }
        let mut best: Option<VcpuId> = None;
        for &v in rq {
            if self.vcpus[v.index()].state != RunState::Runnable {
                continue;
            }
            match best {
                Some(b) if self.vcpus[v.index()].credits <= self.vcpus[b.index()].credits => {}
                _ => best = Some(v),
            }
        }
        best
    }

    /// Cache-served [`Scheduler::peek_next`]: the hot idle/switch paths call
    /// this every step, so the scan result is memoized per CPU and
    /// invalidated (generation bump) by every mutation that could change
    /// it — enqueue, dequeue, block, wake, tick, migration, repair.
    pub fn cached_pick(&mut self, cpu: CpuId) -> Option<VcpuId> {
        let i = cpu.index();
        let (gen, val) = self.pick_cache[i];
        if gen == self.cache_gen {
            return val;
        }
        let fresh = self.peek_next(cpu);
        self.pick_cache[i] = (self.cache_gen, fresh);
        fresh
    }

    // --- The three context-switch sub-steps. ---
    //
    // The context-switch path in the hypervisor executes these as *separate
    // micro-ops*; a fault between any two leaves the metadata inconsistent.

    /// Context-switch step 1: update the per-CPU current pointer.
    pub fn cs_set_percpu_current(&mut self, cpu: CpuId, vcpu: Option<VcpuId>) {
        self.current[cpu.index()] = vcpu;
    }

    /// Context-switch step 2: update the vCPU's `running_on` field.
    pub fn cs_set_running_on(&mut self, vcpu: VcpuId, cpu: Option<CpuId>) {
        self.vcpus[vcpu.index()].running_on = cpu;
    }

    /// Context-switch step 3: update the vCPU's `is_current` flag and state.
    pub fn cs_set_is_current(&mut self, vcpu: VcpuId, is_current: bool) {
        self.bump();
        let info = &mut self.vcpus[vcpu.index()];
        info.is_current = is_current;
        info.state = if is_current {
            info.block_reason = None;
            RunState::Running
        } else if info.state == RunState::Running {
            RunState::Runnable
        } else {
            info.state
        };
    }

    /// Dequeues `vcpu` from its runqueue (it is about to run).
    pub fn dequeue(&mut self, vcpu: VcpuId) {
        self.bump();
        let cpu = self.vcpus[vcpu.index()].pinned_to;
        self.runqueues[cpu.index()].retain(|v| *v != vcpu);
    }

    /// Enqueues `vcpu` on its assigned CPU's runqueue and marks it runnable.
    pub fn enqueue(&mut self, vcpu: VcpuId) {
        self.bump();
        let cpu = self.vcpus[vcpu.index()].pinned_to;
        if !self.runqueues[cpu.index()].contains(&vcpu) {
            self.runqueues[cpu.index()].push_back(vcpu);
        }
        let info = &mut self.vcpus[vcpu.index()];
        if info.state != RunState::Offline {
            info.state = RunState::Runnable;
            info.pending_wake = false;
            info.block_reason = None;
        }
    }

    /// Blocks `vcpu` (WFI-style: parked until a virtual interrupt or event
    /// wakes it).
    pub fn block(&mut self, vcpu: VcpuId) {
        self.bump();
        let info = &mut self.vcpus[vcpu.index()];
        info.state = RunState::Blocked;
        info.block_reason = Some(BlockReason::WaitForEvent);
        // Credit mode charges the partial timeslice on a voluntary block
        // (as Xen does on deschedule). Without it an I/O-bound vCPU that
        // always blocks between two ticks is never debited, wakes with
        // positive credits forever, and permanently out-credits every
        // CPU-bound vCPU parked at the floor.
        if self.credit_mode {
            info.credits = (info.credits - CREDIT_DEBIT).max(CREDIT_FLOOR);
        }
    }

    /// Records that a wakeup arrived for a blocked vCPU while the normal
    /// wake path could not be trusted to complete (e.g. mid-recovery).
    /// Never set on offline vCPUs, so a mid-teardown interrupt cannot
    /// resurrect one. Consumed by [`Scheduler::requeue_runnable`].
    pub fn note_pending_wake(&mut self, vcpu: VcpuId) {
        let info = &mut self.vcpus[vcpu.index()];
        if info.state == RunState::Blocked {
            info.pending_wake = true;
        }
    }

    /// Unregisters all vCPUs of a destroyed domain, given their ids.
    pub fn offline_vcpus(&mut self, vcpus: &[VcpuId]) {
        self.bump();
        for &v in vcpus {
            self.vcpus[v.index()].state = RunState::Offline;
            self.vcpus[v.index()].is_current = false;
            self.vcpus[v.index()].running_on = None;
            self.vcpus[v.index()].pending_wake = false;
            self.vcpus[v.index()].block_reason = Some(BlockReason::Offline);
            for rq in &mut self.runqueues {
                rq.retain(|x| *x != v);
            }
            for cur in &mut self.current {
                if *cur == Some(v) {
                    *cur = None;
                }
            }
        }
    }

    // --- Credit-mode accounting, preemption and load balancing. ---

    /// The scheduler-tick micro-op body (`MicroOp::SchedCreditTick`): debit
    /// the running vCPU, refill the active set when exhausted, flag a
    /// preemption if a higher-credit vCPU waits, and propose at most one
    /// load-balancing migration from the most- to the least-loaded balance
    /// CPU. Deterministic; draws no RNG; allocation-free.
    pub fn credit_tick(&mut self, cpu: CpuId) {
        if !self.credit_mode {
            return;
        }
        self.bump();
        if let Some(v) = self.current[cpu.index()] {
            let c = &mut self.vcpus[v.index()].credits;
            *c = (*c - CREDIT_DEBIT).max(CREDIT_FLOOR);
        }
        // Refill when this CPU's schedulable set — current plus its queued
        // runnables — is out of credits, so relative order is preserved but
        // rotation continues. Per-CPU on purpose: vCPUs elsewhere that
        // rotate by blocking (I/O-bound guests) retain positive credits
        // indefinitely, and a global condition would therefore never fire,
        // letting one CPU-bound vCPU monopolize its CPU forever.
        let Scheduler {
            runqueues,
            vcpus,
            current,
            ..
        } = self;
        let cur = current[cpu.index()];
        let mut any_active = cur.is_some();
        let mut all_exhausted = cur.is_none_or(|v| vcpus[v.index()].credits <= 0);
        for v in runqueues[cpu.index()].iter() {
            let info = &vcpus[v.index()];
            if info.state == RunState::Runnable && !info.is_current {
                any_active = true;
                if info.credits > 0 {
                    all_exhausted = false;
                }
            }
        }
        if any_active && all_exhausted {
            // Reset (not add): converges in one tick from the floor, and
            // equal credits make the subsequent rotation pure queue order.
            if let Some(v) = cur {
                vcpus[v.index()].credits = CREDIT_REFILL;
            }
            for v in runqueues[cpu.index()].iter() {
                let info = &mut vcpus[v.index()];
                if info.state == RunState::Runnable && !info.is_current {
                    info.credits = CREDIT_REFILL;
                }
            }
        }
        // Preemption: does a queued runnable vCPU now out-credit current?
        if let Some(cur) = self.current[cpu.index()] {
            let cur_credits = self.vcpus[cur.index()].credits;
            let waiting_better = self.runqueues[cpu.index()].iter().any(|v| {
                let info = &self.vcpus[v.index()];
                info.state == RunState::Runnable && info.credits > cur_credits
            });
            if waiting_better {
                self.resched[cpu.index()] = true;
            }
        }
        // Load balancing: one migration in flight at a time (so the
        // migration program never deadlocks against a second one over the
        // two runqueue locks it holds).
        if self.pending_migration.is_none() && self.balance_cpus.len() >= 2 {
            let (mut max_c, mut min_c) = (self.balance_cpus[0], self.balance_cpus[0]);
            let (mut max_l, mut min_l) = (usize::MIN, usize::MAX);
            for &c in &self.balance_cpus {
                let load = self.queued_runnable(c);
                if load > max_l {
                    max_l = load;
                    max_c = c;
                }
                if load < min_l {
                    min_l = load;
                    min_c = c;
                }
            }
            if max_l >= min_l + 2 {
                // Migrate the coldest (tail) queued runnable vCPU.
                let victim = self.runqueues[max_c.index()]
                    .iter()
                    .rev()
                    .copied()
                    .find(|v| {
                        let info = &self.vcpus[v.index()];
                        info.state == RunState::Runnable && !info.is_current
                    });
                if let Some(v) = victim {
                    self.pending_migration = Some((v, max_c, min_c));
                }
            }
        }
    }

    /// Consumes the per-CPU resched flag (set by the credit tick); the run
    /// loop builds a context-switch program when this returns true.
    pub fn take_resched(&mut self, cpu: CpuId) -> bool {
        std::mem::take(&mut self.resched[cpu.index()])
    }

    /// Consumes the pending migration if its source CPU is `cpu` (the
    /// source CPU executes the migration program).
    pub fn take_pending_migration(&mut self, cpu: CpuId) -> Option<(VcpuId, CpuId, CpuId)> {
        match self.pending_migration {
            Some((_, from, _)) if from == cpu => self.pending_migration.take(),
            _ => None,
        }
    }

    /// Non-consuming [`Scheduler::take_resched`]: whether the resched flag
    /// is raised for `cpu`. The superop idle window uses this to prove a
    /// CPU's next steps stay idle without disturbing the flag.
    pub fn peek_resched(&self, cpu: CpuId) -> bool {
        self.resched[cpu.index()]
    }

    /// Non-consuming [`Scheduler::take_pending_migration`]: whether a
    /// pending migration is waiting on `cpu` as its source.
    pub fn peek_pending_migration(&self, cpu: CpuId) -> bool {
        matches!(self.pending_migration, Some((_, from, _)) if from == cpu)
    }

    /// Migration step 1 (`MicroOp::SchedMigrateEnqueue`): the vCPU joins the
    /// destination queue *before* leaving the source one — the transient
    /// double-queued window a fault can freeze, which repair must clear.
    pub fn migrate_enqueue(&mut self, v: VcpuId, to: CpuId) {
        self.bump();
        if self.vcpus[v.index()].state == RunState::Offline {
            return;
        }
        if !self.runqueues[to.index()].contains(&v) {
            self.runqueues[to.index()].push_back(v);
        }
    }

    /// Migration step 2 (`MicroOp::SchedMigrateDequeue`): leave the source
    /// queue.
    pub fn migrate_dequeue(&mut self, v: VcpuId, from: CpuId) {
        self.bump();
        self.runqueues[from.index()].retain(|x| *x != v);
    }

    /// Migration step 3 (`MicroOp::SchedSetAssigned`): the vCPU's home CPU
    /// becomes the destination.
    pub fn set_assigned(&mut self, v: VcpuId, to: CpuId) {
        self.bump();
        if self.vcpus[v.index()].state == RunState::Offline {
            return;
        }
        self.vcpus[v.index()].pinned_to = to;
    }

    /// Queued, runnable, non-current vCPUs on `cpu` — the load metric.
    pub fn queued_runnable(&self, cpu: CpuId) -> usize {
        self.runqueues[cpu.index()]
            .iter()
            .filter(|v| {
                let info = &self.vcpus[v.index()];
                info.state == RunState::Runnable && !info.is_current
            })
            .count()
    }

    /// How many runqueue entries reference `vcpu` across all CPUs (exactly
    /// one for a queued runnable vCPU in a consistent state; invariant
    /// tests use this).
    pub fn queue_occurrences(&self, vcpu: VcpuId) -> usize {
        self.runqueues
            .iter()
            .map(|rq| rq.iter().filter(|v| **v == vcpu).count())
            .sum()
    }

    /// Verifies the three redundant copies agree for `cpu` — the check the
    /// scheduler's assertions perform on every scheduling decision.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (which, in the real hypervisor,
    /// is an `ASSERT` failure — i.e. a hypervisor panic).
    pub fn check_consistency(&self, cpu: CpuId) -> Result<(), SchedInconsistency> {
        let cur = self.current[cpu.index()];
        if let Some(v) = cur {
            let info = &self.vcpus[v.index()];
            if info.running_on != Some(cpu) {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!(
                        "percpu current={v} but {v}.running_on={:?}",
                        info.running_on
                    ),
                });
            }
            if !info.is_current {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!("percpu current={v} but {v}.is_current=false"),
                });
            }
        }
        // No other vCPU may claim to be current on this CPU.
        for (i, info) in self.vcpus.iter().enumerate() {
            let v = VcpuId::from_index(i);
            if Some(v) != cur && info.running_on == Some(cpu) && info.is_current {
                return Err(SchedInconsistency {
                    cpu,
                    detail: format!("{v} claims cpu but percpu current={cur:?}"),
                });
            }
        }
        Ok(())
    }

    /// NiLiHype's "ensure consistency within scheduling metadata"
    /// enhancement: rebuild every per-vCPU copy from the per-CPU copies.
    /// Returns the number of fields repaired.
    pub fn make_consistent_from_percpu(&mut self) -> usize {
        self.bump();
        let mut fixed = 0;
        // The per-CPU copies are the chosen source of truth, but they can
        // themselves be conflicted after corruption (two CPUs claiming one
        // vCPU, or a claim on an offline vCPU): keep the first claim, drop
        // the rest.
        let mut seen: Vec<VcpuId> = Vec::new();
        for c in 0..self.current.len() {
            if let Some(v) = self.current[c] {
                let offline = self
                    .vcpus
                    .get(v.index())
                    .map(|i| i.state == RunState::Offline)
                    .unwrap_or(true);
                if seen.contains(&v) || offline {
                    self.current[c] = None;
                    fixed += 1;
                } else {
                    seen.push(v);
                }
            }
        }
        let current = self.current.clone();
        for (i, info) in self.vcpus.iter_mut().enumerate() {
            let v = VcpuId::from_index(i);
            let claimed: Option<CpuId> = current
                .iter()
                .enumerate()
                .find(|(_, c)| **c == Some(v))
                .map(|(c, _)| CpuId::from_index(c));
            let want_running_on = claimed;
            let want_is_current = claimed.is_some();
            if info.running_on != want_running_on {
                info.running_on = want_running_on;
                fixed += 1;
            }
            if info.is_current != want_is_current {
                info.is_current = want_is_current;
                fixed += 1;
            }
            if want_is_current && info.state != RunState::Running && info.state != RunState::Offline
            {
                info.state = RunState::Running;
                fixed += 1;
            }
            if !want_is_current && info.state == RunState::Running {
                info.state = RunState::Runnable;
                fixed += 1;
            }
        }
        fixed
    }

    /// Re-enqueues every runnable, non-current vCPU that fell off its
    /// runqueue (e.g. a vCPU descheduled by an abandoned context switch).
    /// Returns how many repairs were made. Run by recovery after
    /// [`Scheduler::make_consistent_from_percpu`].
    ///
    /// In credit mode this additionally (a) consumes pending-wake bits —
    /// a blocked vCPU whose wakeup was lost to recovery becomes runnable —
    /// and (b) canonicalizes queue membership, clearing double-queued
    /// vCPUs, torn migrations (queued on a CPU that is not their assigned
    /// one) and queued-but-running entries.
    pub fn requeue_runnable(&mut self) -> usize {
        self.bump();
        let mut fixed = 0;
        if self.credit_mode {
            // Lost-wakeup repair: the wake landed while the wake path could
            // not complete; honour it now. Offline vCPUs never wake.
            for info in self.vcpus.iter_mut() {
                if info.pending_wake && info.state == RunState::Blocked {
                    info.state = RunState::Runnable;
                    info.block_reason = None;
                    fixed += 1;
                }
                if info.state != RunState::Blocked {
                    info.pending_wake = false;
                }
            }
            // Canonicalize: each vCPU at most once, on its assigned CPU's
            // queue, only while runnable and not current.
            let Scheduler {
                runqueues, vcpus, ..
            } = self;
            let mut kept = vec![false; vcpus.len()];
            for (c, rq) in runqueues.iter_mut().enumerate() {
                let before = rq.len();
                rq.retain(|v| {
                    let info = &vcpus[v.index()];
                    let keep = info.state == RunState::Runnable
                        && !info.is_current
                        && info.pinned_to.index() == c
                        && !kept[v.index()];
                    if keep {
                        kept[v.index()] = true;
                    }
                    keep
                });
                fixed += before - rq.len();
            }
            // A stale migration proposal may reference a vCPU that is no
            // longer runnable or no longer on the source CPU; drop it.
            if let Some((v, from, _)) = self.pending_migration {
                let info = &self.vcpus[v.index()];
                if info.state != RunState::Runnable || info.pinned_to != from {
                    self.pending_migration = None;
                    fixed += 1;
                }
            }
        }
        for i in 0..self.vcpus.len() {
            let v = VcpuId::from_index(i);
            let info = self.vcpus[i];
            if info.state == RunState::Runnable
                && !info.is_current
                && !self.runqueues[info.pinned_to.index()].contains(&v)
            {
                self.runqueues[info.pinned_to.index()].push_back(v);
                fixed += 1;
            }
        }
        fixed
    }

    /// Checks every CPU's consistency; used by invariant tests.
    pub fn check_all(&self) -> Result<(), SchedInconsistency> {
        for c in 0..self.current.len() {
            self.check_consistency(CpuId::from_index(c))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_with(n_cpu: usize, n_vcpu: usize) -> Scheduler {
        let mut s = Scheduler::new(n_cpu);
        for i in 0..n_vcpu {
            s.register_vcpu(VcpuId::from_index(i), CpuId::from_index(i));
        }
        s
    }

    /// A credit-mode scheduler: `n_vcpu` vCPUs spread over CPUs 1 and 2
    /// (CPU 0 stays out of the balance set, like the PrivVM's CPU).
    fn credit_sched(n_cpu: usize, n_vcpu: usize) -> Scheduler {
        let mut s = Scheduler::new(n_cpu);
        s.enable_credit(&[CpuId(1), CpuId(2)]);
        for i in 0..n_vcpu {
            s.register_vcpu(VcpuId::from_index(i), CpuId(1 + (i as u32) % 2));
        }
        s
    }

    /// Runs the full three-step context switch to `vcpu` on `cpu`.
    fn full_switch(s: &mut Scheduler, cpu: CpuId, vcpu: VcpuId) {
        s.dequeue(vcpu);
        s.cs_set_percpu_current(cpu, Some(vcpu));
        s.cs_set_running_on(vcpu, Some(cpu));
        s.cs_set_is_current(vcpu, true);
    }

    #[test]
    fn full_context_switch_is_consistent() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(0), VcpuId(0));
        assert!(s.check_consistency(CpuId(0)).is_ok());
        assert_eq!(s.current(CpuId(0)), Some(VcpuId(0)));
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Running);
    }

    #[test]
    fn partial_context_switch_is_inconsistent() {
        let mut s = sched_with(2, 2);
        // Fault strikes after step 1 of 3.
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        let err = s.check_consistency(CpuId(0)).unwrap_err();
        assert!(err.detail.contains("running_on"), "{}", err.detail);
    }

    #[test]
    fn partial_switch_after_step2_still_inconsistent() {
        let mut s = sched_with(2, 2);
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        s.cs_set_running_on(VcpuId(0), Some(CpuId(0)));
        let err = s.check_consistency(CpuId(0)).unwrap_err();
        assert!(err.detail.contains("is_current"), "{}", err.detail);
    }

    #[test]
    fn make_consistent_repairs_partial_switch() {
        let mut s = sched_with(2, 2);
        s.cs_set_percpu_current(CpuId(0), Some(VcpuId(0)));
        assert!(s.check_consistency(CpuId(0)).is_err());
        let fixed = s.make_consistent_from_percpu();
        assert!(fixed >= 2, "repaired running_on and is_current: {fixed}");
        assert!(s.check_all().is_ok());
        assert_eq!(s.vcpu(VcpuId(0)).running_on, Some(CpuId(0)));
    }

    #[test]
    fn make_consistent_clears_stale_claim() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(1), VcpuId(1));
        // Corrupt: vCPU 0 claims CPU 1 too.
        s.cs_set_running_on(VcpuId(0), Some(CpuId(1)));
        s.cs_set_is_current(VcpuId(0), true);
        assert!(s.check_consistency(CpuId(1)).is_err());
        s.make_consistent_from_percpu();
        assert!(s.check_all().is_ok());
        assert!(!s.vcpu(VcpuId(0)).is_current);
        assert!(s.vcpu(VcpuId(1)).is_current);
    }

    #[test]
    fn make_consistent_is_idempotent() {
        let mut s = sched_with(4, 4);
        full_switch(&mut s, CpuId(2), VcpuId(2));
        s.cs_set_percpu_current(CpuId(3), Some(VcpuId(3)));
        s.make_consistent_from_percpu();
        assert_eq!(s.make_consistent_from_percpu(), 0);
    }

    #[test]
    fn peek_next_respects_runnable_only() {
        let mut s = sched_with(2, 2);
        assert_eq!(s.peek_next(CpuId(0)), Some(VcpuId(0)));
        s.block(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), None);
        s.enqueue(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), Some(VcpuId(0)));
    }

    #[test]
    fn enqueue_is_idempotent() {
        let mut s = sched_with(1, 1);
        s.enqueue(VcpuId(0));
        s.enqueue(VcpuId(0));
        s.dequeue(VcpuId(0));
        assert_eq!(s.peek_next(CpuId(0)), None, "no duplicate entries");
    }

    #[test]
    fn offline_removes_all_traces() {
        let mut s = sched_with(2, 2);
        full_switch(&mut s, CpuId(0), VcpuId(0));
        s.offline_vcpus(&[VcpuId(0)]);
        assert_eq!(s.current(CpuId(0)), None);
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Offline);
        assert!(s.check_all().is_ok());
        // Offline vCPUs stay offline through enqueue attempts.
        s.enqueue(VcpuId(0));
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Offline);
    }

    // --- Credit-mode tests. ---

    #[test]
    fn credit_pick_prefers_highest_credits_with_queue_order_tiebreak() {
        let mut s = credit_sched(4, 4);
        // CPU 1's queue holds vCPUs 0 and 2, both at CREDIT_INIT: queue
        // order breaks the tie.
        assert_eq!(s.peek_next(CpuId(1)), Some(VcpuId(0)));
        s.vcpu_mut(VcpuId(2)).credits += 1;
        assert_eq!(s.peek_next(CpuId(1)), Some(VcpuId(2)));
    }

    #[test]
    fn credit_tick_debits_refills_and_preempts() {
        let mut s = credit_sched(4, 4);
        full_switch(&mut s, CpuId(1), VcpuId(0));
        // First tick: current drops to 200, vCPU 2 still at 300 => resched.
        s.credit_tick(CpuId(1));
        assert_eq!(s.vcpu(VcpuId(0)).credits, CREDIT_INIT - CREDIT_DEBIT);
        assert!(s.take_resched(CpuId(1)), "higher-credit waiter preempts");
        assert!(!s.take_resched(CpuId(1)), "flag is consumed");
        // Exhaust everyone: the refill lifts the whole active set.
        for info_id in 0..4 {
            s.vcpu_mut(VcpuId(info_id)).credits = 0;
        }
        s.credit_tick(CpuId(1));
        assert!(
            s.vcpu(VcpuId(2)).credits > 0,
            "refill restores credits to queued vCPUs"
        );
    }

    #[test]
    fn credit_tick_proposes_migration_on_imbalance() {
        let mut s = Scheduler::new(4);
        s.enable_credit(&[CpuId(1), CpuId(2)]);
        // Three vCPUs on CPU 1, none on CPU 2 — imbalance of 3.
        for i in 0..3 {
            s.register_vcpu(VcpuId(i), CpuId(1));
        }
        s.credit_tick(CpuId(1));
        let (v, from, to) = s
            .take_pending_migration(CpuId(1))
            .expect("imbalance proposes a migration");
        assert_eq!(from, CpuId(1));
        assert_eq!(to, CpuId(2));
        assert_eq!(v, VcpuId(2), "the tail (coldest) vCPU migrates");
    }

    #[test]
    fn migration_is_consumed_only_by_the_source_cpu() {
        let mut s = Scheduler::new(4);
        s.enable_credit(&[CpuId(1), CpuId(2)]);
        for i in 0..3 {
            s.register_vcpu(VcpuId(i), CpuId(1));
        }
        s.credit_tick(CpuId(1));
        assert!(s.take_pending_migration(CpuId(2)).is_none());
        assert!(s.take_pending_migration(CpuId(1)).is_some());
    }

    #[test]
    fn torn_migration_double_queue_is_repaired() {
        let mut s = credit_sched(4, 4);
        // Migration of vCPU 0 from CPU 1 to CPU 2, abandoned after step 1:
        // the vCPU is now on both queues.
        s.migrate_enqueue(VcpuId(0), CpuId(2));
        assert_eq!(s.queue_occurrences(VcpuId(0)), 2);
        s.make_consistent_from_percpu();
        s.requeue_runnable();
        assert_eq!(s.queue_occurrences(VcpuId(0)), 1, "double-queue cleared");
        assert_eq!(s.vcpu(VcpuId(0)).pinned_to, CpuId(1), "still assigned home");
        assert!(s.check_all().is_ok());
    }

    #[test]
    fn torn_migration_dropped_from_both_queues_is_repaired() {
        let mut s = credit_sched(4, 4);
        // Abandoned between dequeue and set_assigned: enqueued on 2,
        // dequeued from 1, but still assigned to 1 — the canonical pass
        // strips the wrong-queue entry and the requeue pass restores it.
        s.migrate_enqueue(VcpuId(0), CpuId(2));
        s.migrate_dequeue(VcpuId(0), CpuId(1));
        s.requeue_runnable();
        assert_eq!(s.queue_occurrences(VcpuId(0)), 1);
        // Restored at the tail of its home queue (vCPU 2 was already there
        // and wins the equal-credit queue-order tiebreak).
        assert!(s.runqueues[CpuId(1).index()].contains(&VcpuId(0)));
        assert!(!s.runqueues[CpuId(2).index()].contains(&VcpuId(0)));
        assert!(s.check_all().is_ok());
    }

    #[test]
    fn completed_migration_is_consistent() {
        let mut s = credit_sched(4, 4);
        s.migrate_enqueue(VcpuId(0), CpuId(2));
        s.migrate_dequeue(VcpuId(0), CpuId(1));
        s.set_assigned(VcpuId(0), CpuId(2));
        assert_eq!(s.queue_occurrences(VcpuId(0)), 1);
        assert_eq!(s.vcpu(VcpuId(0)).pinned_to, CpuId(2));
        // Repair finds nothing extra to do beyond dropping the (none)
        // migration proposal.
        s.make_consistent_from_percpu();
        assert_eq!(s.requeue_runnable(), 0);
    }

    #[test]
    fn pending_wake_is_consumed_by_repair_never_for_offline() {
        let mut s = credit_sched(4, 4);
        s.dequeue(VcpuId(0));
        s.block(VcpuId(0));
        assert_eq!(
            s.vcpu(VcpuId(0)).block_reason,
            Some(BlockReason::WaitForEvent)
        );
        s.note_pending_wake(VcpuId(0));
        assert!(s.vcpu(VcpuId(0)).pending_wake);
        s.requeue_runnable();
        assert_eq!(s.vcpu(VcpuId(0)).state, RunState::Runnable);
        assert!(!s.vcpu(VcpuId(0)).pending_wake);
        assert_eq!(s.queue_occurrences(VcpuId(0)), 1);

        // Offline vCPUs never accumulate or honour pending wakes.
        s.offline_vcpus(&[VcpuId(1)]);
        s.note_pending_wake(VcpuId(1));
        assert!(!s.vcpu(VcpuId(1)).pending_wake);
        s.requeue_runnable();
        assert_eq!(s.vcpu(VcpuId(1)).state, RunState::Offline);
        assert_eq!(s.queue_occurrences(VcpuId(1)), 0);
    }

    #[test]
    fn stale_migration_proposal_is_dropped_by_repair() {
        let mut s = Scheduler::new(4);
        s.enable_credit(&[CpuId(1), CpuId(2)]);
        for i in 0..3 {
            s.register_vcpu(VcpuId(i), CpuId(1));
        }
        s.credit_tick(CpuId(1));
        // The proposed victim blocks before the migration runs.
        s.dequeue(VcpuId(2));
        s.block(VcpuId(2));
        s.requeue_runnable();
        assert!(
            s.take_pending_migration(CpuId(1)).is_none(),
            "repair drops proposals whose victim is no longer runnable"
        );
    }

    #[test]
    fn cached_pick_always_equals_fresh_scan() {
        let mut s = credit_sched(4, 6);
        for step in 0..200u32 {
            // A deterministic little driver: mutate, then compare on all
            // CPUs. (The proptest suite covers random interleavings; this
            // pins the invalidation wiring at the unit level.)
            match step % 6 {
                0 => s.credit_tick(CpuId(1 + step % 2)),
                1 => {
                    let v = VcpuId(step % 6);
                    if s.vcpu(v).state == RunState::Runnable {
                        s.dequeue(v);
                        s.block(v);
                    }
                }
                2 => s.enqueue(VcpuId((step + 3) % 6)),
                3 => s.migrate_enqueue(VcpuId(step % 6), CpuId(2)),
                4 => {
                    s.migrate_dequeue(VcpuId(step % 6), CpuId(1));
                    s.set_assigned(VcpuId(step % 6), CpuId(2));
                }
                _ => {
                    s.make_consistent_from_percpu();
                    s.requeue_runnable();
                }
            }
            for c in 0..4 {
                let cpu = CpuId(c);
                assert_eq!(s.cached_pick(cpu), s.peek_next(cpu), "step {step} cpu {c}");
                // Serve it twice: the cached value must stay equal.
                assert_eq!(s.cached_pick(cpu), s.peek_next(cpu));
            }
        }
    }

    #[test]
    fn legacy_mode_is_unaffected_by_credit_fields() {
        // The pinned model must behave exactly as before: first-runnable
        // pick, no resched flags, no migrations.
        let mut s = sched_with(2, 2);
        s.vcpu_mut(VcpuId(1)).credits = 9999;
        assert_eq!(s.peek_next(CpuId(0)), Some(VcpuId(0)));
        s.credit_tick(CpuId(0));
        assert!(!s.take_resched(CpuId(0)));
        assert!(s.take_pending_migration(CpuId(0)).is_none());
        assert_eq!(s.vcpu(VcpuId(0)).credits, CREDIT_INIT, "tick is a no-op");
    }
}
