//! Hypercalls, syscall forwarding, and the micro-op execution model.
//!
//! Every hypervisor activity — hypercall handlers, the forwarded-syscall
//! path (x86-64 traps syscalls into the hypervisor, Section IV), timer and
//! device interrupt handlers — is compiled into a [`Program`]: a flat list
//! of [`MicroOp`]s executed one simulation step at a time. A fault can
//! therefore strike *between any two state updates*, leaving exactly the
//! partial-execution residue the paper's recovery enhancements exist to
//! repair: held locks, half-applied page pins, unacknowledged interrupts,
//! un-reprogrammed APIC timers, lost recurring events, torn scheduler
//! metadata, and partially executed (possibly non-idempotent) hypercalls.
//!
//! ## Non-idempotent hypercalls and the vulnerability window
//!
//! A handler's *side effects* (e.g. [`MicroOp::IncRef`]) occur before its
//! [`MicroOp::CommitHypercall`]. If recovery abandons the handler inside
//! that window and then retries the hypercall, the side effects apply
//! twice. The paper's mitigation (Section IV) is reproduced in two parts:
//!
//! * **Undo logging** — when enabled, a [`MicroOp::LogUndo`] op precedes
//!   each side effect; recovery replays the log backwards before retrying.
//! * **Code reordering** — handler builders emit a variant with all side
//!   effects packed immediately before the commit, shrinking the window
//!   without runtime cost.

use std::fmt;

use nlh_sim::{CpuId, DomId, IrqVector, LockId, PageNum, SimDuration, VcpuId};
use serde::{Deserialize, Serialize};

use crate::interrupts::GuestEventKind;
use crate::timers::TimerEventKind;

/// An abstract hypercall request as issued by a guest workload.
///
/// Requests are *templates*: the hypervisor instantiates them against the
/// issuing domain's concrete pages when it builds the handler [`Program`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HcRequest {
    /// Pin `n` of the caller's pages as page-table pages
    /// (`mmu_update`/`MMUEXT_PIN`; non-idempotent: use counter + validation).
    PinPages(usize),
    /// Unpin `n` previously pinned pages (non-idempotent).
    UnpinPages(usize),
    /// Populate `n` new pages into the caller (`memory_op` increase;
    /// non-idempotent; takes the static page-allocator lock).
    MemoryIncrease(usize),
    /// Release `n` of the caller's pages (`memory_op` decrease;
    /// non-idempotent; static page-allocator lock).
    MemoryDecrease(usize),
    /// Map a grant reference from another domain (`grant_table_op`;
    /// non-idempotent and — deliberately — *not* covered by undo logging:
    /// it models the paper's "infrequently-used handlers we have not
    /// properly enhanced").
    GrantMap {
        /// The granting domain.
        from: DomId,
    },
    /// Send an event-channel notification (idempotent).
    EventSend {
        /// Destination domain.
        to: DomId,
        /// Event payload to deliver.
        event: GuestEventKind,
    },
    /// Write to the console (static console lock; idempotent).
    ConsoleWrite,
    /// Arm the caller's one-shot timer (idempotent).
    SetTimer,
    /// A batch of sub-hypercalls (`multicall`). The completion of each
    /// sub-call is logged when batched-completion logging is enabled, so a
    /// retry can skip the already-finished prefix (Section IV).
    Multicall(Vec<HcRequest>),
    /// A multicall whose sub-call list is one of the fixed shapes the
    /// bundled workloads issue ([`MulticallShape`]). Semantically identical
    /// to [`HcRequest::Multicall`] over the same calls — binding, undo and
    /// completion logging, and commit bookkeeping all route through the
    /// shared sub-call slice — but the list is a static template, so
    /// issuing one performs no heap allocation on the guest hot path.
    FixedMulticall(MulticallShape),
    /// Create a new domain (PrivVM only; static domctl + page-alloc locks).
    DomctlCreate,
    /// Destroy a domain (PrivVM only).
    DomctlDestroy(DomId),
    /// Reprogram an I/O APIC route (PrivVM only; the writes ReHype must log).
    PhysdevRoute(IrqVector, CpuId),
    /// A trivial read-only hypercall (`xen_version`; idempotent).
    XenVersion,
    /// Voluntarily block the calling vCPU until an event arrives
    /// (`sched_op(SCHEDOP_block)`; idempotent).
    SchedBlock,
    /// Transmit a NetBench reply packet (idempotent; duplicates are
    /// de-duplicated by sequence number at the measuring sender).
    NetReply(u64),
    /// A paravirtual block I/O request: grant + notify the PrivVM's driver
    /// domain. Completion arrives later as a [`GuestEventKind::BlkComplete`].
    BlockIo {
        /// Request id chosen by the guest.
        req: u64,
    },
}

impl HcRequest {
    /// Whether a partial execution of this request can corrupt state when
    /// blindly retried (i.e. it has side effects before its commit).
    pub fn is_non_idempotent(&self) -> bool {
        match self {
            HcRequest::PinPages(_)
            | HcRequest::UnpinPages(_)
            | HcRequest::MemoryIncrease(_)
            | HcRequest::MemoryDecrease(_)
            | HcRequest::GrantMap { .. }
            | HcRequest::DomctlCreate
            | HcRequest::DomctlDestroy(_) => true,
            HcRequest::Multicall(calls) => calls.iter().any(|c| c.is_non_idempotent()),
            HcRequest::FixedMulticall(shape) => shape.calls().iter().any(|c| c.is_non_idempotent()),
            HcRequest::EventSend { .. }
            | HcRequest::ConsoleWrite
            | HcRequest::SetTimer
            | HcRequest::PhysdevRoute(..)
            | HcRequest::XenVersion
            | HcRequest::SchedBlock
            | HcRequest::NetReply(_)
            | HcRequest::BlockIo { .. } => false,
        }
    }

    /// The sub-call slice when this request is a multicall of either
    /// variant, `None` otherwise. Every multicall consumer (binding,
    /// handler emission, commit bookkeeping) goes through this accessor so
    /// [`HcRequest::Multicall`] and [`HcRequest::FixedMulticall`] are
    /// bit-identical in behaviour.
    pub fn multicall_calls(&self) -> Option<&[HcRequest]> {
        match self {
            HcRequest::Multicall(calls) => Some(calls),
            HcRequest::FixedMulticall(shape) => Some(shape.calls()),
            _ => None,
        }
    }
}

/// The fixed sub-call shapes issued by the bundled workloads through
/// [`HcRequest::FixedMulticall`].
///
/// Workloads used to build these bursts with `Multicall(vec![...])`, which
/// was the last steady-state heap allocation on the guest hot path (one
/// `Vec` per burst, millions per campaign — visible as the fractional
/// `allocs_per_step` in BENCH_stepper.json before PR 10). A shape is
/// `Copy` and expands to a `'static` slice instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MulticallShape {
    /// UnixBench's mmap-heavy burst: pin a page-table page, probe the
    /// hypervisor version, unpin it, and re-arm the one-shot timer.
    PinProbeUnpinTimer,
    /// The block workloads' add/remove churn: pin one page, unpin it.
    PinUnpin,
}

/// Template for [`MulticallShape::PinProbeUnpinTimer`].
static PIN_PROBE_UNPIN_TIMER: [HcRequest; 4] = [
    HcRequest::PinPages(1),
    HcRequest::XenVersion,
    HcRequest::UnpinPages(1),
    HcRequest::SetTimer,
];

/// Template for [`MulticallShape::PinUnpin`].
static PIN_UNPIN: [HcRequest; 2] = [HcRequest::PinPages(1), HcRequest::UnpinPages(1)];

impl MulticallShape {
    /// The sub-calls this shape expands to.
    pub fn calls(self) -> &'static [HcRequest] {
        match self {
            MulticallShape::PinProbeUnpinTimer => &PIN_PROBE_UNPIN_TIMER,
            MulticallShape::PinUnpin => &PIN_UNPIN,
        }
    }
}

/// An entry in the undo log: how to revert one applied side effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UndoEntry {
    /// Revert an `inc_ref`.
    DecRef(PageNum),
    /// Revert a `dec_ref`.
    IncRef(PageNum),
    /// Restore the validation bit to `bool`.
    SetValidated(PageNum, bool),
    /// Return a freshly allocated page to the free list.
    UnallocPage(PageNum),
}

/// One micro-operation of hypervisor execution.
///
/// Executing a micro-op advances the hypervisor by one atomic state change;
/// faults are injected at micro-op boundaries.
///
/// `MicroOp` is deliberately `Copy` (every payload is a small plain id or
/// enum): the stepper fetches the current op by value on every simulation
/// step, and a `Copy` fetch keeps that fast path free of clones and drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// Generic computation with no architectural side effect.
    Compute,
    /// `ASSERT(!in_irq())` — panics the hypervisor if `local_irq_count` is
    /// nonzero. Emitted at the head of every non-interrupt entry path, as
    /// Xen does in code that must not run in interrupt context.
    AssertNotInIrq,
    /// Interrupt-handler entry: increments `local_irq_count`.
    EnterIrq,
    /// Interrupt-handler exit: decrements `local_irq_count`.
    LeaveIrq,
    /// Acquire a spinlock (spins while contended).
    Acquire(LockId),
    /// Release a spinlock.
    Release(LockId),
    /// Increment a page's use counter (side effect).
    IncRef(PageNum),
    /// Decrement a page's use counter (side effect).
    DecRef(PageNum),
    /// Set a page's validation bit (side effect). Setting it on an
    /// already-validated page is a hypervisor `BUG()` — the signature of a
    /// double-applied pin retry.
    SetValidated(PageNum, bool),
    /// Append an undo-log entry for a preceding side effect. The gap
    /// between a side effect and its log write is the paper's residual
    /// vulnerability window: "even for the handlers that have been
    /// modified, the changes do not resolve 100% of the problem"
    /// (Section IV).
    LogUndo(UndoEntry),
    /// Allocate one page into a domain (side effect; fails the hypervisor
    /// on corrupt free-list state).
    AllocPage(DomId),
    /// Free one specific page from a domain (side effect; fails the
    /// hypervisor on refcount anomalies).
    FreePage(DomId, PageNum),
    /// Pop one due software timer event (timer-interrupt handler).
    PopTimerEvent(TimerEventKind),
    /// Re-arm a recurring timer event `period` in the future.
    RearmTimerEvent(TimerEventKind, SimDuration),
    /// Apply the global time synchronization (under the static time lock).
    TimeSyncApply,
    /// Increment this CPU's watchdog heartbeat.
    HeartbeatIncrement,
    /// Post a paravirtual event to a domain's event channel.
    PostGuestEvent(DomId, GuestEventKind),
    /// Reprogram the local APIC one-shot timer from the software timer heap.
    ProgramApic,
    /// Context-switch step 1: set the per-CPU current pointer.
    CsSetPercpuCurrent(Option<VcpuId>),
    /// Context-switch step 2: set the vCPU's `running_on`.
    CsSetRunningOn(VcpuId, Option<CpuId>),
    /// Context-switch step 3: set the vCPU's `is_current`.
    CsSetIsCurrent(VcpuId, bool),
    /// The scheduler's consistency `ASSERT` (panics the hypervisor when the
    /// redundant metadata disagrees).
    SchedConsistencyAssert,
    /// Complete the current hypercall: deliver the result to the guest and
    /// clear its pending-request state.
    CommitHypercall,
    /// Record that sub-call `i` of a multicall finished (present only when
    /// batched-completion logging is enabled; charged the logging cost).
    LogCompletion(usize),
    /// Deliver the forwarded syscall to the guest kernel (completion of the
    /// x86-64 syscall-forwarding path).
    DeliverSyscall,
    /// Signal end-of-interrupt for a vector on this CPU.
    Eoi(IrqVector),
    /// Write an I/O APIC redirection entry (ReHype logs these).
    IoapicWrite(IrqVector, Option<CpuId>),
    /// Create-domain step: allocate all pages and build structures for a
    /// pending domain specification.
    BuildDomain(DomId),
    /// Create-domain final step: mark the domain runnable.
    FinalizeDomain(DomId),
    /// Destroy-domain step: tear down the domain and free its pages.
    TeardownDomain(DomId),
    /// Mark a blocked vCPU runnable again (event delivery wakes it).
    UnblockVcpu(VcpuId),
    /// Put a descheduled vCPU back on its runqueue (context-switch path).
    EnqueueVcpu(VcpuId),
    /// Remove a vCPU being switched in from its runqueue.
    DequeueVcpu(VcpuId),
    /// Credit-scheduler tick: debit the running vCPU, refill an exhausted
    /// active set, flag preemption, and propose a load-balancing migration
    /// (credit mode only; a no-op in the pinned model).
    SchedCreditTick,
    /// Migration step 1: enqueue the vCPU on the destination CPU's
    /// runqueue (before leaving the source — the double-queued window).
    SchedMigrateEnqueue {
        /// The migrating vCPU.
        v: VcpuId,
        /// The destination CPU.
        to: CpuId,
    },
    /// Migration step 2: dequeue the vCPU from the source CPU's runqueue.
    SchedMigrateDequeue {
        /// The migrating vCPU.
        v: VcpuId,
        /// The source CPU.
        from: CpuId,
    },
    /// Migration step 3: rewrite the vCPU's assigned (home) CPU.
    SchedSetAssigned {
        /// The migrating vCPU.
        v: VcpuId,
        /// The destination CPU.
        to: CpuId,
    },
    /// Record an outbound NetBench reply at the external sender (used to
    /// measure service interruption — Section VII-B).
    RecordNetReply(u64),
    /// Virtio device model: pop the oldest available descriptor of queue
    /// `q` of device `dev` into the in-flight FIFO.
    VqPopAvail {
        /// Device index in the hypervisor's virtio state.
        dev: u8,
        /// Queue index within the device.
        q: u8,
    },
    /// Virtio device model: backend work on the oldest in-flight
    /// descriptor (block storage op; net tx frames forward through the
    /// vswitch into the peer's rx queue).
    VqDeviceWork {
        /// Device index in the hypervisor's virtio state.
        dev: u8,
        /// Queue index within the device.
        q: u8,
    },
    /// Virtio device model: record the oldest in-flight descriptor's
    /// completion in the device's completion log.
    VqLogComplete {
        /// Device index in the hypervisor's virtio state.
        dev: u8,
        /// Queue index within the device.
        q: u8,
    },
    /// Virtio device model: publish the oldest logged completion to the
    /// used ring.
    VqPushUsed {
        /// Device index in the hypervisor's virtio state.
        dev: u8,
        /// Queue index within the device.
        q: u8,
    },
    /// Virtio device model: raise device `dev`'s interrupt vector at its
    /// routed CPU.
    VqRaiseIrq {
        /// Device index in the hypervisor's virtio state.
        dev: u8,
    },
    /// Virtio interrupt handler: drain every used ring of every device on
    /// this vector — post completion events to the owning guests, repost
    /// consumed rx buffers, and unblock waiting vCPUs.
    VqDeliverUsed(IrqVector),
}

/// Why the hypervisor was entered (what the current program is doing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryCause {
    /// Servicing a hypercall from `vcpu`.
    Hypercall(VcpuId),
    /// Forwarding a syscall for `vcpu` (x86-64 path).
    Syscall(VcpuId),
    /// Servicing the local APIC timer interrupt.
    TimerInterrupt,
    /// Servicing a device interrupt.
    DeviceInterrupt(IrqVector),
    /// The scheduler switching a woken vCPU in on an idle CPU.
    Scheduler,
    /// Servicing a virtio MMIO register write (a queue notify) trapped
    /// from `vcpu`. Runs in the kicking guest's context, like a
    /// hypercall: the vCPU is inside the hypervisor, not in an interrupt.
    VirtioMmio(VcpuId),
}

impl EntryCause {
    /// The vCPU on whose behalf this entry runs, if any.
    pub fn vcpu(self) -> Option<VcpuId> {
        match self {
            EntryCause::Hypercall(v) | EntryCause::Syscall(v) | EntryCause::VirtioMmio(v) => {
                Some(v)
            }
            EntryCause::TimerInterrupt | EntryCause::DeviceInterrupt(_) | EntryCause::Scheduler => {
                None
            }
        }
    }

    /// Whether this is an interrupt context (enters via `EnterIrq`).
    pub fn is_interrupt(self) -> bool {
        matches!(
            self,
            EntryCause::TimerInterrupt | EntryCause::DeviceInterrupt(_)
        )
    }

    /// The handler family this entry belongs to, with per-vCPU / per-vector
    /// detail erased. Trial records and the campaign coverage map bucket
    /// injection points by this kind.
    pub fn handler_kind(self) -> HandlerKind {
        match self {
            EntryCause::Hypercall(_) => HandlerKind::Hypercall,
            EntryCause::Syscall(_) => HandlerKind::Syscall,
            EntryCause::TimerInterrupt => HandlerKind::TimerInterrupt,
            EntryCause::DeviceInterrupt(_) => HandlerKind::DeviceInterrupt,
            EntryCause::Scheduler => HandlerKind::Scheduler,
            EntryCause::VirtioMmio(_) => HandlerKind::VirtioMmio,
        }
    }
}

/// A coarse handler family: [`EntryCause`] with its operands erased.
///
/// Small and dense so it can index a coverage-map axis — see
/// [`HandlerKind::ALL`] and [`HandlerKind::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HandlerKind {
    /// A hypercall handler.
    Hypercall,
    /// The forwarded-syscall path.
    Syscall,
    /// The local APIC timer interrupt handler.
    TimerInterrupt,
    /// A device interrupt handler.
    DeviceInterrupt,
    /// The scheduler switching a woken vCPU in.
    Scheduler,
    /// A virtio MMIO register handler (queue notify).
    VirtioMmio,
}

impl HandlerKind {
    /// Every handler kind, in [`HandlerKind::index`] order.
    pub const ALL: [HandlerKind; 6] = [
        HandlerKind::Hypercall,
        HandlerKind::Syscall,
        HandlerKind::TimerInterrupt,
        HandlerKind::DeviceInterrupt,
        HandlerKind::Scheduler,
        HandlerKind::VirtioMmio,
    ];

    /// A dense index in `0..HandlerKind::ALL.len()`.
    pub fn index(self) -> usize {
        match self {
            HandlerKind::Hypercall => 0,
            HandlerKind::Syscall => 1,
            HandlerKind::TimerInterrupt => 2,
            HandlerKind::DeviceInterrupt => 3,
            HandlerKind::Scheduler => 4,
            HandlerKind::VirtioMmio => 5,
        }
    }

    /// Short stable name, used by the trial-record text format.
    pub fn name(self) -> &'static str {
        match self {
            HandlerKind::Hypercall => "Hypercall",
            HandlerKind::Syscall => "Syscall",
            HandlerKind::TimerInterrupt => "TimerInterrupt",
            HandlerKind::DeviceInterrupt => "DeviceInterrupt",
            HandlerKind::Scheduler => "Scheduler",
            HandlerKind::VirtioMmio => "VirtioMmio",
        }
    }

    /// Parses a name produced by [`HandlerKind::name`].
    pub fn from_name(s: &str) -> Option<HandlerKind> {
        HandlerKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

impl fmt::Display for HandlerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage behind a program's micro-ops.
///
/// Handler builders run on every hypervisor entry — millions of times per
/// fault-injection campaign — so the hot path never allocates for them:
/// fixed-shape handlers point at a precompiled static template, and
/// variable-shape handlers borrow a buffer from the per-CPU
/// [`ProgramPool`] that is returned when the program's last op retires.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProgramBody {
    /// A precompiled template shared by every instance of a fixed-shape
    /// handler (e.g. the forwarded-syscall path), paired with its equally
    /// static superop fusion table.
    Static(&'static [MicroOp], &'static [u16]),
    /// A buffer filled by a handler builder plus its fusion table, both
    /// usually recycled through a [`ProgramPool`].
    Pooled(Vec<MicroOp>, Vec<u16>),
}

/// Compiles the superop fusion table for `ops` into `runs`, reusing its
/// capacity: `runs[i]` is the number of consecutive [`MicroOp::Compute`]
/// ops starting at index `i` (0 when `ops[i]` is any other op).
///
/// `Compute` is the only micro-op with no architectural side effect, so a
/// run of them is the only sequence the batched stepper may execute as one
/// fused superop without changing where faults can land: every other op is
/// an abandonment boundary (a state change recovery must be able to observe
/// half-done). One backward pass at program build time; see
/// ARCHITECTURE.md §9.
fn compile_runs(ops: &[MicroOp], runs: &mut Vec<u16>) {
    runs.clear();
    runs.resize(ops.len(), 0);
    let mut r: u16 = 0;
    for i in (0..ops.len()).rev() {
        r = if matches!(ops[i], MicroOp::Compute) {
            r.saturating_add(1)
        } else {
            0
        };
        runs[i] = r;
    }
}

/// A compiled hypervisor execution: the micro-ops plus their cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Why the hypervisor is executing.
    pub cause: EntryCause,
    /// The micro-ops, executed in order.
    body: ProgramBody,
    /// Whether this handler's side effects are covered by undo logging
    /// (enhanced handlers only; `GrantMap` models the paper's un-enhanced
    /// infrequent handlers and is never logged).
    pub logged: bool,
}

impl Program {
    /// Creates an unlogged program. `runs` is a scratch buffer (usually
    /// recycled through the same [`ProgramPool`] as `ops`) into which the
    /// superop fusion table is compiled.
    pub fn new(cause: EntryCause, ops: Vec<MicroOp>, mut runs: Vec<u16>) -> Self {
        compile_runs(&ops, &mut runs);
        Program {
            cause,
            body: ProgramBody::Pooled(ops, runs),
            logged: false,
        }
    }

    /// Creates a program whose side effects are undo-logged.
    pub fn new_logged(cause: EntryCause, ops: Vec<MicroOp>, mut runs: Vec<u16>) -> Self {
        compile_runs(&ops, &mut runs);
        Program {
            cause,
            body: ProgramBody::Pooled(ops, runs),
            logged: true,
        }
    }

    /// Creates an unlogged program over a precompiled static template and
    /// its precompiled fusion table (which must match what
    /// `compile_runs(ops)` would produce).
    ///
    /// No allocation happens at build time and none is returned to a pool
    /// at retirement; use this for handlers whose op sequence is the same
    /// on every entry.
    pub fn from_static(cause: EntryCause, ops: &'static [MicroOp], runs: &'static [u16]) -> Self {
        #[cfg(debug_assertions)]
        {
            // Allocation-free equivalent of compile_runs: static programs
            // are built on the zero-alloc hot path, so even the debug
            // check must not touch the heap.
            debug_assert_eq!(runs.len(), ops.len(), "static runs table out of date");
            let mut r: u16 = 0;
            for i in (0..ops.len()).rev() {
                r = if matches!(ops[i], MicroOp::Compute) {
                    r.saturating_add(1)
                } else {
                    0
                };
                debug_assert_eq!(runs[i], r, "static runs table out of date");
            }
        }
        Program {
            cause,
            body: ProgramBody::Static(ops, runs),
            logged: false,
        }
    }

    /// The micro-ops, in execution order.
    pub fn ops(&self) -> &[MicroOp] {
        match &self.body {
            ProgramBody::Static(s, _) => s,
            ProgramBody::Pooled(v, _) => v,
        }
    }

    /// The superop fusion table, parallel to [`Program::ops`]: entry `pc`
    /// is the length of the run of consecutive [`MicroOp::Compute`] ops
    /// starting at `pc` (0 for any other op).
    pub fn runs(&self) -> &[u16] {
        match &self.body {
            ProgramBody::Static(_, r) => r,
            ProgramBody::Pooled(_, r) => r,
        }
    }

    /// Length of the fused `Compute` run starting at `pc` (0 when the op
    /// at `pc` is an abandonment boundary, i.e. anything but `Compute`).
    pub fn run_len_at(&self, pc: usize) -> usize {
        self.runs().get(pc).copied().unwrap_or(0) as usize
    }

    /// Consumes the program, recovering its op and fusion-table buffers
    /// for pooling. Returns `None` for programs over static templates
    /// (there is nothing to recycle).
    pub fn into_buffer(self) -> Option<(Vec<MicroOp>, Vec<u16>)> {
        match self.body {
            ProgramBody::Static(..) => None,
            ProgramBody::Pooled(v, r) => Some((v, r)),
        }
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.ops().len()
    }

    /// Whether the program has no ops.
    pub fn is_empty(&self) -> bool {
        self.ops().is_empty()
    }
}

/// A free list of micro-op buffers, one pool per physical CPU.
///
/// Before this pool existed every hypervisor entry (hypercall, timer or
/// device interrupt, scheduler wakeup) built its handler [`Program`] into
/// a fresh `Vec<MicroOp>` — one heap allocation plus one free per entry,
/// millions of times per campaign. The stepper now takes a buffer here
/// when it compiles a handler and gives it back when the program's last
/// op retires, so steady-state stepping performs no heap traffic at all
/// (asserted by the counting-allocator test in `nlh-hv`).
///
/// The pool is host-side memory reuse only: simulated behaviour is
/// bit-identical with pooling on or off (differential-tested via
/// [`Hypervisor::pooling`](crate::Hypervisor)).
#[derive(Debug, Clone, Default)]
pub struct ProgramPool {
    free: Vec<(Vec<MicroOp>, Vec<u16>)>,
}

/// Buffers retained per CPU. Program stacks nest at most a few frames
/// deep (an interrupt over a hypercall), so a small cap bounds idle
/// memory without ever forcing a steady-state allocation.
const POOL_CAP: usize = 8;

impl ProgramPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ProgramPool::default()
    }

    /// Takes an empty op buffer and its paired fusion-table buffer out of
    /// the pool (allocating only when the pool is dry, i.e. during the
    /// first few entries after boot).
    pub fn take(&mut self) -> (Vec<MicroOp>, Vec<u16>) {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a retired program's buffers to the pool.
    pub fn give(&mut self, buf: (Vec<MicroOp>, Vec<u16>)) {
        if self.free.len() < POOL_CAP {
            let (mut ops, mut runs) = buf;
            ops.clear();
            runs.clear();
            self.free.push((ops, runs));
        }
    }

    /// Number of buffers currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// A request a vCPU has issued into the hypervisor and is waiting on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingRequest {
    /// The request (hypercall template or forwarded syscall).
    pub kind: PendingKind,
    /// Concrete pages each sub-call operates on, fixed at first dispatch so
    /// a retry re-executes against the *same* pages (simple requests use a
    /// single binding set).
    pub bindings: Vec<Vec<PageNum>>,
    /// Sub-calls of a multicall already logged as complete.
    pub completed_subcalls: usize,
    /// Set by recovery's retry enhancements: re-execute on next dispatch.
    pub will_retry: bool,
}

/// What kind of request is pending.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PendingKind {
    /// A hypercall.
    Hypercall(HcRequest),
    /// A forwarded syscall.
    Syscall,
}

/// Normal-operation support features the recovery mechanism configures on
/// the hypervisor (they exist to make recovery possible and are the source
/// of the paper's normal-operation overhead, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSupport {
    /// Undo logging for non-idempotent hypercalls (Section IV). The paper's
    /// "NiLiHype*" configuration turns this off.
    pub undo_logging: bool,
    /// Code reordering that shrinks non-idempotent vulnerability windows.
    pub reorder_nonidem: bool,
    /// Per-sub-call completion logging for batched hypercalls.
    pub batched_completion_log: bool,
    /// Log I/O APIC register writes (needed by ReHype only).
    pub ioapic_write_log: bool,
    /// Log boot-line options (needed by ReHype only).
    pub bootline_log: bool,
    /// Save guest FS/GS when an error is detected (Section IV).
    pub save_fsgs: bool,
}

impl OpSupport {
    /// Everything enabled — NiLiHype's evaluated configuration (the I/O APIC
    /// and boot-line logs are harmless when unused).
    pub fn full() -> Self {
        OpSupport {
            undo_logging: true,
            reorder_nonidem: true,
            batched_completion_log: true,
            ioapic_write_log: true,
            bootline_log: true,
            save_fsgs: true,
        }
    }

    /// Nothing enabled — the "basic" starting point of the ladders.
    pub fn none() -> Self {
        OpSupport {
            undo_logging: false,
            reorder_nonidem: false,
            batched_completion_log: false,
            ioapic_write_log: false,
            bootline_log: false,
            save_fsgs: false,
        }
    }
}

impl Default for OpSupport {
    fn default() -> Self {
        OpSupport::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_idempotence_classification() {
        assert!(HcRequest::PinPages(1).is_non_idempotent());
        assert!(HcRequest::MemoryDecrease(1).is_non_idempotent());
        assert!(HcRequest::GrantMap { from: DomId(0) }.is_non_idempotent());
        assert!(!HcRequest::XenVersion.is_non_idempotent());
        assert!(!HcRequest::ConsoleWrite.is_non_idempotent());
        assert!(!HcRequest::SetTimer.is_non_idempotent());
    }

    #[test]
    fn multicall_inherits_non_idempotence() {
        let clean = HcRequest::Multicall(vec![HcRequest::XenVersion, HcRequest::ConsoleWrite]);
        assert!(!clean.is_non_idempotent());
        let dirty = HcRequest::Multicall(vec![HcRequest::XenVersion, HcRequest::PinPages(1)]);
        assert!(dirty.is_non_idempotent());
    }

    #[test]
    fn entry_cause_accessors() {
        assert_eq!(EntryCause::Hypercall(VcpuId(3)).vcpu(), Some(VcpuId(3)));
        assert_eq!(EntryCause::Syscall(VcpuId(1)).vcpu(), Some(VcpuId(1)));
        assert_eq!(EntryCause::TimerInterrupt.vcpu(), None);
        assert!(EntryCause::TimerInterrupt.is_interrupt());
        assert!(EntryCause::DeviceInterrupt(IrqVector(1)).is_interrupt());
        assert!(!EntryCause::Hypercall(VcpuId(0)).is_interrupt());
    }

    #[test]
    fn op_support_presets() {
        let full = OpSupport::full();
        assert!(full.undo_logging && full.save_fsgs && full.batched_completion_log);
        let none = OpSupport::none();
        assert!(!none.undo_logging && !none.save_fsgs && !none.ioapic_write_log);
        assert_eq!(OpSupport::default(), full);
    }

    #[test]
    fn program_len() {
        let p = Program::new(
            EntryCause::TimerInterrupt,
            vec![MicroOp::EnterIrq, MicroOp::LeaveIrq],
            Vec::new(),
        );
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn fusion_table_marks_compute_runs_only() {
        let p = Program::new(
            EntryCause::TimerInterrupt,
            vec![
                MicroOp::EnterIrq,
                MicroOp::Compute,
                MicroOp::Compute,
                MicroOp::Compute,
                MicroOp::HeartbeatIncrement,
                MicroOp::Compute,
                MicroOp::LeaveIrq,
            ],
            Vec::new(),
        );
        assert_eq!(p.runs(), &[0, 3, 2, 1, 0, 1, 0]);
        assert_eq!(p.run_len_at(1), 3);
        assert_eq!(p.run_len_at(4), 0);
        assert_eq!(p.run_len_at(99), 0);
    }

    #[test]
    fn pool_recycles_fusion_table_with_ops() {
        let mut pool = ProgramPool::new();
        let p = Program::new(
            EntryCause::Scheduler,
            vec![MicroOp::Compute, MicroOp::Compute],
            Vec::new(),
        );
        pool.give(p.into_buffer().expect("pooled body"));
        let (ops, runs) = pool.take();
        assert!(ops.is_empty() && runs.is_empty());
        assert!(ops.capacity() >= 2 && runs.capacity() >= 2);
    }

    #[test]
    fn fixed_multicall_matches_vec_multicall() {
        for shape in [MulticallShape::PinProbeUnpinTimer, MulticallShape::PinUnpin] {
            let fixed = HcRequest::FixedMulticall(shape);
            let grown = HcRequest::Multicall(shape.calls().to_vec());
            assert_eq!(fixed.multicall_calls(), grown.multicall_calls());
            assert_eq!(fixed.is_non_idempotent(), grown.is_non_idempotent());
            assert!(fixed.is_non_idempotent(), "both shapes pin pages");
        }
    }
}
