//! Hypervisor spinlocks.
//!
//! Both recovery mechanisms must leave every lock unlocked, since all
//! hypervisor execution threads are discarded (Section V-A, "Unlock static
//! locks"). Locks live in two places:
//!
//! * **Heap locks**, embedded in heap allocations (per-CPU scheduler and
//!   timer structures, domain structs, ...). ReHype already had a mechanism
//!   to release these; NiLiHype reuses it.
//! * **Static locks**, in the hypervisor image's static data segment.
//!   ReHype's reboot re-initializes them for free. NiLiHype instead relies
//!   on the paper's linker-script trick: all static locks are declared via a
//!   macro and placed in one contiguous segment, so recovery can iterate the
//!   segment and unlock them. [`LockRegistry::static_segment`] models that
//!   segment.

use nlh_sim::{CpuId, LockId};
use serde::{Deserialize, Serialize};

/// Where a lock is stored — determines which recovery enhancement can
/// release it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockPlacement {
    /// In the static data segment (released by "unlock static locks" /
    /// re-initialized by ReHype's reboot).
    Static,
    /// Embedded in a heap allocation (released by the shared "release heap
    /// locks" enhancement).
    Heap,
}

/// A spinlock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lock {
    /// Stable identifier.
    pub id: LockId,
    /// Human-readable name (e.g. `"timer_heap[3]"`).
    pub name: String,
    /// Storage placement.
    pub placement: LockPlacement,
    /// The CPU currently holding the lock, if any.
    pub holder: Option<CpuId>,
}

/// Result of attempting to acquire a lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The lock was free and is now held by the requester.
    Acquired,
    /// The lock is held by another CPU; the requester must spin.
    Contended(CpuId),
}

/// The set of all hypervisor spinlocks.
///
/// Well-known locks (console, page allocator, domain control, time) are
/// created statically at boot; per-CPU scheduler/timer locks are registered
/// as their heap objects are allocated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LockRegistry {
    locks: Vec<Lock>,
}

/// Well-known static locks, created by [`LockRegistry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticLock {
    /// Serializes console output (`console_io` hypercall).
    Console,
    /// Serializes the page allocator (`memory_op`, domain construction).
    PageAlloc,
    /// Serializes domain-control operations (domain create/destroy).
    Domctl,
    /// Serializes platform time updates (the time-sync recurring event).
    Time,
    /// Serializes grant-table setup.
    Grant,
}

impl StaticLock {
    /// All well-known static locks, in registration order.
    pub const ALL: [StaticLock; 5] = [
        StaticLock::Console,
        StaticLock::PageAlloc,
        StaticLock::Domctl,
        StaticLock::Time,
        StaticLock::Grant,
    ];

    fn name(self) -> &'static str {
        match self {
            StaticLock::Console => "console",
            StaticLock::PageAlloc => "page_alloc",
            StaticLock::Domctl => "domctl",
            StaticLock::Time => "time",
            StaticLock::Grant => "grant",
        }
    }

    /// The registry id of this static lock.
    pub fn id(self) -> LockId {
        let idx = StaticLock::ALL.iter().position(|s| *s == self).unwrap();
        LockId::from_index(idx)
    }
}

impl LockRegistry {
    /// Creates a registry pre-populated with the well-known static locks.
    pub fn new() -> Self {
        let locks = StaticLock::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| Lock {
                id: LockId::from_index(i),
                name: s.name().to_string(),
                placement: LockPlacement::Static,
                holder: None,
            })
            .collect();
        LockRegistry { locks }
    }

    /// Registers a new lock and returns its id.
    pub fn register(&mut self, name: impl Into<String>, placement: LockPlacement) -> LockId {
        let id = LockId::from_index(self.locks.len());
        self.locks.push(Lock {
            id,
            name: name.into(),
            placement,
            holder: None,
        });
        id
    }

    /// The lock with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this registry.
    pub fn get(&self, id: LockId) -> &Lock {
        &self.locks[id.index()]
    }

    /// Attempts to acquire `id` for `cpu`.
    ///
    /// Re-acquisition by the current holder is modelled as contention
    /// (hypervisor spinlocks are not recursive) — in practice recovery has
    /// released everything before any retry, so this arises only when a lock
    /// was leaked.
    pub fn acquire(&mut self, id: LockId, cpu: CpuId) -> AcquireOutcome {
        let lock = &mut self.locks[id.index()];
        match lock.holder {
            None => {
                lock.holder = Some(cpu);
                AcquireOutcome::Acquired
            }
            Some(holder) => AcquireOutcome::Contended(holder),
        }
    }

    /// Releases `id`. Releasing an unheld lock is a no-op (recovery paths
    /// release defensively).
    pub fn release(&mut self, id: LockId) {
        self.locks[id.index()].holder = None;
    }

    /// All locks currently held by `cpu`.
    pub fn held_by(&self, cpu: CpuId) -> Vec<LockId> {
        self.locks
            .iter()
            .filter(|l| l.holder == Some(cpu))
            .map(|l| l.id)
            .collect()
    }

    /// The static-segment lock array (the paper's linker-script segment).
    pub fn static_segment(&self) -> impl Iterator<Item = &Lock> {
        self.locks
            .iter()
            .filter(|l| l.placement == LockPlacement::Static)
    }

    /// Unlocks every lock in the static segment, returning how many were
    /// held. This is NiLiHype's "unlock static locks" enhancement.
    pub fn unlock_static_segment(&mut self) -> usize {
        let mut released = 0;
        for lock in &mut self.locks {
            if lock.placement == LockPlacement::Static && lock.holder.is_some() {
                lock.holder = None;
                released += 1;
            }
        }
        released
    }

    /// Unlocks the given heap locks (the shared ReHype mechanism walks the
    /// heap to find them). Returns how many were held.
    pub fn unlock_heap_locks(&mut self, ids: impl IntoIterator<Item = LockId>) -> usize {
        let mut released = 0;
        for id in ids {
            let lock = &mut self.locks[id.index()];
            debug_assert_eq!(lock.placement, LockPlacement::Heap);
            if lock.holder.is_some() {
                lock.holder = None;
                released += 1;
            }
        }
        released
    }

    /// Ids of all locks that are currently held.
    pub fn held_locks(&self) -> Vec<LockId> {
        self.locks
            .iter()
            .filter(|l| l.holder.is_some())
            .map(|l| l.id)
            .collect()
    }

    /// Total number of registered locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the registry is empty (it never is — static locks exist).
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

impl Default for LockRegistry {
    fn default() -> Self {
        LockRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_locks_preregistered() {
        let reg = LockRegistry::new();
        assert_eq!(reg.static_segment().count(), StaticLock::ALL.len());
        assert_eq!(reg.get(StaticLock::Console.id()).name, "console");
        assert_eq!(reg.get(StaticLock::Time.id()).name, "time");
    }

    #[test]
    fn acquire_release_cycle() {
        let mut reg = LockRegistry::new();
        let id = StaticLock::PageAlloc.id();
        assert_eq!(reg.acquire(id, CpuId(1)), AcquireOutcome::Acquired);
        assert_eq!(
            reg.acquire(id, CpuId(2)),
            AcquireOutcome::Contended(CpuId(1))
        );
        reg.release(id);
        assert_eq!(reg.acquire(id, CpuId(2)), AcquireOutcome::Acquired);
    }

    #[test]
    fn locks_are_not_recursive() {
        let mut reg = LockRegistry::new();
        let id = StaticLock::Console.id();
        assert_eq!(reg.acquire(id, CpuId(0)), AcquireOutcome::Acquired);
        assert_eq!(
            reg.acquire(id, CpuId(0)),
            AcquireOutcome::Contended(CpuId(0))
        );
    }

    #[test]
    fn held_by_reports_only_that_cpu() {
        let mut reg = LockRegistry::new();
        let h = reg.register("timer[0]", LockPlacement::Heap);
        reg.acquire(StaticLock::Time.id(), CpuId(3));
        reg.acquire(h, CpuId(4));
        assert_eq!(reg.held_by(CpuId(3)), vec![StaticLock::Time.id()]);
        assert_eq!(reg.held_by(CpuId(4)), vec![h]);
        assert!(reg.held_by(CpuId(5)).is_empty());
    }

    #[test]
    fn unlock_static_segment_skips_heap_locks() {
        let mut reg = LockRegistry::new();
        let h = reg.register("runq[2]", LockPlacement::Heap);
        reg.acquire(StaticLock::Domctl.id(), CpuId(0));
        reg.acquire(StaticLock::Time.id(), CpuId(1));
        reg.acquire(h, CpuId(2));
        assert_eq!(reg.unlock_static_segment(), 2);
        assert_eq!(reg.held_locks(), vec![h], "heap lock untouched");
    }

    #[test]
    fn unlock_heap_locks_releases_listed_only() {
        let mut reg = LockRegistry::new();
        let h1 = reg.register("runq[0]", LockPlacement::Heap);
        let h2 = reg.register("timer[0]", LockPlacement::Heap);
        reg.acquire(h1, CpuId(0));
        reg.acquire(h2, CpuId(1));
        reg.acquire(StaticLock::Console.id(), CpuId(2));
        assert_eq!(reg.unlock_heap_locks([h1, h2]), 2);
        assert_eq!(reg.held_locks(), vec![StaticLock::Console.id()]);
    }

    #[test]
    fn release_unheld_is_noop() {
        let mut reg = LockRegistry::new();
        reg.release(StaticLock::Grant.id());
        assert!(reg.held_locks().is_empty());
    }
}
