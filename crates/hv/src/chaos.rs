//! The fault-injection surface of the hypervisor.
//!
//! The Gigan-style injector (`nlh-inject`) manipulates hypervisor state
//! through these methods only. Each corruption corresponds to an error-
//! propagation effect the paper observed or guards against: corrupted page
//! frame descriptors (repaired by the consistency scan), torn scheduler
//! metadata, lost timer-heap nodes, heap free-list damage (repaired only by
//! ReHype's reboot), boot-reinitialized scratch state (likewise), a broken
//! recovery routine (the paper's top recovery-failure cause), and PrivVM
//! damage (the second).

use nlh_sim::{CpuId, DomId, PageNum, VcpuId};

use crate::domain::GuestNotice;
use crate::hypervisor::{CpuMode, Hypervisor};
use crate::timers::TimerEventKind;

/// Ways an error can propagate into hypervisor state before detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip the validation bit or bump the use counter of a random frame.
    PageFrame,
    /// Tear a random vCPU's scheduling metadata.
    SchedMetadata,
    /// Drop a random recurring timer event from the heap.
    TimerHeapNode,
    /// Damage the heap free-list metadata.
    HeapFreelist,
    /// Corrupt static scratch state that only a reboot re-initializes.
    BootScratch,
    /// Corrupt the recovery routine's own state so recovery cannot run.
    RecoveryCritical,
    /// Corrupt memory belonging to a random application VM (silent data
    /// corruption inside the guest).
    GuestData,
    /// Corrupt state critical to the PrivVM.
    PrivVm,
}

/// All corruption kinds (for weighted sampling in the injector).
pub const ALL_CORRUPTIONS: [CorruptionKind; 8] = [
    CorruptionKind::PageFrame,
    CorruptionKind::SchedMetadata,
    CorruptionKind::TimerHeapNode,
    CorruptionKind::HeapFreelist,
    CorruptionKind::BootScratch,
    CorruptionKind::RecoveryCritical,
    CorruptionKind::GuestData,
    CorruptionKind::PrivVm,
];

impl Hypervisor {
    /// Applies one corruption of the given kind, using the trial RNG for
    /// target selection.
    pub fn apply_corruption(&mut self, kind: CorruptionKind) {
        match kind {
            CorruptionKind::PageFrame => {
                // Error propagation writes through live pointers, so it is
                // strongly biased toward descriptors of pages in active
                // use (domain memory) rather than a uniformly random frame.
                let owned: Vec<PageNum> = self
                    .domains
                    .iter()
                    .filter(|d| d.is_active())
                    .flat_map(|d| d.owned_pages.iter().copied())
                    .collect();
                let p = if !owned.is_empty() && self.rng.gen_bool(0.8) {
                    owned[self.rng.gen_range_usize(0, owned.len())]
                } else if !self.pft.is_empty() {
                    PageNum::from_index(self.rng.gen_range_usize(0, self.pft.len()))
                } else {
                    return;
                };
                if self.rng.gen_bool(0.5) {
                    let cur = self.pft.get(p).map(|d| d.validated).unwrap_or(false);
                    let _ = self.pft.set_validated(p, !cur);
                } else {
                    let _ = self.pft.inc_ref(p);
                }
            }
            CorruptionKind::SchedMetadata => {
                let n = self.sched.num_vcpus();
                if n == 0 {
                    return;
                }
                let v = VcpuId::from_index(self.rng.gen_range_usize(0, n));
                match self.rng.gen_range_usize(0, 3) {
                    0 => self.sched.cs_set_running_on(v, None),
                    1 => {
                        let c = CpuId::from_index(self.rng.gen_range_usize(0, self.num_cpus()));
                        self.sched.cs_set_running_on(v, Some(c));
                    }
                    _ => {
                        let cur = self.sched.vcpu(v).is_current;
                        self.sched.cs_set_is_current(v, !cur);
                    }
                }
            }
            CorruptionKind::TimerHeapNode => {
                let mut kinds: Vec<TimerEventKind> = vec![TimerEventKind::TimeSync];
                for cpu in 0..self.num_cpus() {
                    let c = CpuId::from_index(cpu);
                    kinds.push(TimerEventKind::WatchdogHeartbeat(c));
                    kinds.push(TimerEventKind::SchedTick(c));
                }
                for d in &self.domains {
                    if d.is_active() {
                        kinds.push(TimerEventKind::DomainTimer(d.vcpu));
                    }
                }
                if let Some(&k) = self.rng.choose(&kinds) {
                    self.timers.remove_kind(k);
                }
            }
            CorruptionKind::HeapFreelist => self.heap.corrupt_freelist(),
            CorruptionKind::BootScratch => self.boot_scratch_corrupted = true,
            CorruptionKind::RecoveryCritical => self.recovery_entry_ok = false,
            CorruptionKind::GuestData => {
                let apps: Vec<DomId> = self
                    .domains
                    .iter()
                    .filter(|d| d.is_active() && !d.id.is_priv())
                    .map(|d| d.id)
                    .collect();
                if let Some(&dom) = self.rng.choose(&apps) {
                    let now = self.now_max();
                    self.domains[dom.index()].notify(now, GuestNotice::DataCorrupted);
                }
            }
            CorruptionKind::PrivVm => {
                if !self.domains.is_empty() {
                    self.domains[DomId::PRIV.index()].crash("PrivVM state corrupted by fault");
                }
            }
        }
    }

    /// Wedges `cpu` in a tight loop with interrupts disabled (a hang the
    /// watchdog will eventually detect). The hypervisor stack of the CPU
    /// keeps whatever frames were in flight.
    pub fn wedge_cpu(&mut self, cpu: CpuId) {
        self.set_cpu_mode(cpu, CpuMode::Wedged);
    }

    /// Whether `cpu` is currently executing hypervisor code (has in-flight
    /// frames). Used by the injector's second-level trigger bookkeeping.
    pub fn cpu_in_hv(&self, cpu: CpuId) -> bool {
        self.cpu_mode(cpu) == CpuMode::Hv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::detect::DetectionKind;
    use nlh_sim::SimDuration;

    #[test]
    fn pfd_corruption_is_visible_to_scan() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 1);
        let before = hv.pft.count_inconsistent();
        for _ in 0..16 {
            hv.apply_corruption(CorruptionKind::PageFrame);
        }
        assert!(hv.pft.count_inconsistent() > before);
    }

    #[test]
    fn heap_and_scratch_corruptions_set_flags() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 2);
        hv.apply_corruption(CorruptionKind::HeapFreelist);
        assert!(hv.heap.is_freelist_corrupted());
        hv.apply_corruption(CorruptionKind::BootScratch);
        assert!(hv.boot_scratch_corrupted);
        hv.apply_corruption(CorruptionKind::RecoveryCritical);
        assert!(!hv.recovery_entry_ok);
    }

    #[test]
    fn wedged_cpu_is_caught_by_watchdog() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 3);
        hv.wedge_cpu(CpuId(2));
        hv.run_for(SimDuration::from_secs(2));
        let det = hv.detection().expect("watchdog must catch the wedge");
        assert_eq!(det.kind, DetectionKind::Hang);
        assert_eq!(det.cpu, CpuId(2));
    }

    #[test]
    fn timer_node_corruption_removes_an_event() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 4);
        let before = hv.timers.total_len();
        hv.apply_corruption(CorruptionKind::TimerHeapNode);
        assert_eq!(hv.timers.total_len(), before - 1);
    }

    #[test]
    fn scratch_corruption_panics_at_next_time_sync() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 5);
        hv.apply_corruption(CorruptionKind::BootScratch);
        hv.run_for(SimDuration::from_millis(200));
        let det = hv.detection().expect("TimeSync must trip over scratch");
        assert!(det.reason.contains("time records"), "{}", det.reason);
    }
}
