//! Interrupt-controller and event-channel state.
//!
//! Three pieces matter to recovery:
//!
//! * **Pending / in-service vectors.** A fault while an interrupt is in
//!   service leaves it un-acknowledged; the local APIC then blocks further
//!   delivery of that vector. Both mechanisms run the shared "acknowledge
//!   pending and in-service interrupts" enhancement (Section III-B).
//! * **I/O APIC redirection registers.** ReHype's reboot re-initializes
//!   them, so ReHype must log writes during normal operation and replay the
//!   log during recovery (Section VII-D) — one of the two logs NiLiHype does
//!   not need.
//! * **Event channels** — the paravirtual notification path from the
//!   hypervisor/PrivVM to guests (network receive, block completion,
//!   virtual timer).

use std::collections::VecDeque;

use nlh_sim::{CpuId, DomId, IrqVector};
use serde::{Deserialize, Serialize};

/// Paravirtual event kinds delivered over event channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuestEventKind {
    /// A network packet arrived (NetBench traffic).
    NetRx {
        /// Sender-side sequence number of the packet.
        seq: u64,
    },
    /// A block I/O request completed (BlkBench traffic).
    BlkComplete {
        /// Request id.
        req: u64,
    },
    /// A block I/O request arrived at the PrivVM's driver domain.
    BlkRequest {
        /// The requesting domain.
        from: DomId,
        /// Request id.
        req: u64,
    },
    /// The domain's periodic virtual timer fired.
    TimerVirq,
    /// A virtio-blk request completed (used-ring entry delivered).
    VirtioBlkDone {
        /// Request id (the descriptor's payload).
        req: u64,
    },
    /// A virtio-net frame arrived in the domain's rx queue.
    VirtioNetRx {
        /// Frame sequence number.
        frame: u64,
    },
    /// A virtio-net tx descriptor was consumed (frame sent).
    VirtioNetTxDone {
        /// Frame sequence number.
        frame: u64,
    },
}

/// Number of distinct hardware vectors the simulation models.
pub const NUM_VECTORS: usize = 4;

/// The timer vector (local APIC timer).
pub const VEC_TIMER: IrqVector = IrqVector(0);
/// The network device vector.
pub const VEC_NET: IrqVector = IrqVector(1);
/// The block device vector.
pub const VEC_BLK: IrqVector = IrqVector(2);
/// The inter-processor-interrupt vector.
pub const VEC_IPI: IrqVector = IrqVector(3);

/// Interrupt-controller and event-channel state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IrqSubsystem {
    /// Per-CPU, per-vector pending bit.
    pending: Vec<[bool; NUM_VECTORS]>,
    /// Per-CPU, per-vector in-service bit (set at dispatch, cleared by EOI).
    in_service: Vec<[bool; NUM_VECTORS]>,
    /// I/O APIC redirection entries (one per vector): which CPU a device
    /// vector is routed to. Reset by ReHype's reboot.
    ioapic_route: [Option<CpuId>; NUM_VECTORS],
    /// Per-domain queues of pending paravirtual events.
    event_channels: Vec<VecDeque<GuestEventKind>>,
}

impl IrqSubsystem {
    /// Boot-time state: device vectors routed to CPU 0, no pending events.
    pub fn new(num_cpus: usize, num_domains_hint: usize) -> Self {
        let mut ioapic_route = [None; NUM_VECTORS];
        ioapic_route[VEC_NET.index()] = Some(CpuId(0));
        ioapic_route[VEC_BLK.index()] = Some(CpuId(0));
        IrqSubsystem {
            pending: vec![[false; NUM_VECTORS]; num_cpus],
            in_service: vec![[false; NUM_VECTORS]; num_cpus],
            ioapic_route,
            event_channels: vec![VecDeque::new(); num_domains_hint],
        }
    }

    /// Ensures an event-channel queue exists for `dom`.
    pub fn ensure_domain(&mut self, dom: DomId) {
        if self.event_channels.len() <= dom.index() {
            self.event_channels.resize(dom.index() + 1, VecDeque::new());
        }
    }

    /// Marks `vec` pending on `cpu`.
    pub fn raise(&mut self, cpu: CpuId, vec: IrqVector) {
        self.pending[cpu.index()][vec.index()] = true;
    }

    /// Dispatches `vec` on `cpu`: pending → in-service. Returns whether the
    /// vector could be dispatched (blocked while a previous instance is
    /// still in service — the hardware rule that makes a missing EOI fatal).
    pub fn dispatch(&mut self, cpu: CpuId, vec: IrqVector) -> bool {
        if self.in_service[cpu.index()][vec.index()] {
            return false;
        }
        if !self.pending[cpu.index()][vec.index()] {
            return false;
        }
        self.pending[cpu.index()][vec.index()] = false;
        self.in_service[cpu.index()][vec.index()] = true;
        true
    }

    /// End-of-interrupt for `vec` on `cpu`.
    pub fn eoi(&mut self, cpu: CpuId, vec: IrqVector) {
        self.in_service[cpu.index()][vec.index()] = false;
    }

    /// Whether `vec` is blocked on `cpu` by a missing EOI.
    pub fn is_in_service(&self, cpu: CpuId, vec: IrqVector) -> bool {
        self.in_service[cpu.index()][vec.index()]
    }

    /// Whether `vec` is pending on `cpu`.
    pub fn is_pending(&self, cpu: CpuId, vec: IrqVector) -> bool {
        self.pending[cpu.index()][vec.index()]
    }

    /// The shared recovery enhancement: acknowledge (EOI + clear) every
    /// pending and in-service interrupt everywhere. Returns how many bits
    /// were cleared.
    pub fn ack_all(&mut self) -> usize {
        let mut cleared = 0;
        for cpu in 0..self.pending.len() {
            for v in 0..NUM_VECTORS {
                if self.pending[cpu][v] {
                    self.pending[cpu][v] = false;
                    cleared += 1;
                }
                if self.in_service[cpu][v] {
                    self.in_service[cpu][v] = false;
                    cleared += 1;
                }
            }
        }
        cleared
    }

    /// Reads the I/O APIC route for `vec`.
    pub fn ioapic_route(&self, vec: IrqVector) -> Option<CpuId> {
        self.ioapic_route[vec.index()]
    }

    /// Writes an I/O APIC redirection entry (normal-operation path; ReHype
    /// logs these writes).
    pub fn ioapic_write(&mut self, vec: IrqVector, route: Option<CpuId>) {
        self.ioapic_route[vec.index()] = route;
    }

    /// ReHype's reboot re-initializes the I/O APIC: all device routes reset
    /// to the boot default (unrouted).
    pub fn ioapic_reset_to_boot(&mut self) {
        self.ioapic_route = [None; NUM_VECTORS];
    }

    /// Snapshot of the current routes (what ReHype's write log reconstructs).
    pub fn ioapic_snapshot(&self) -> [Option<CpuId>; NUM_VECTORS] {
        self.ioapic_route
    }

    /// Restores routes from a snapshot (replaying ReHype's write log).
    pub fn ioapic_restore(&mut self, snapshot: [Option<CpuId>; NUM_VECTORS]) {
        self.ioapic_route = snapshot;
    }

    /// Queues a paravirtual event for `dom`.
    pub fn post_event(&mut self, dom: DomId, ev: GuestEventKind) {
        self.ensure_domain(dom);
        self.event_channels[dom.index()].push_back(ev);
    }

    /// Takes the next pending event for `dom`.
    pub fn take_event(&mut self, dom: DomId) -> Option<GuestEventKind> {
        self.event_channels.get_mut(dom.index())?.pop_front()
    }

    /// Number of queued events for `dom`.
    pub fn pending_events(&self, dom: DomId) -> usize {
        self.event_channels.get(dom.index()).map_or(0, |q| q.len())
    }

    /// Drops all queued events for `dom` (domain destruction).
    pub fn clear_domain(&mut self, dom: DomId) {
        if let Some(q) = self.event_channels.get_mut(dom.index()) {
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub() -> IrqSubsystem {
        IrqSubsystem::new(2, 2)
    }

    #[test]
    fn dispatch_requires_pending() {
        let mut s = sub();
        assert!(!s.dispatch(CpuId(0), VEC_NET));
        s.raise(CpuId(0), VEC_NET);
        assert!(s.dispatch(CpuId(0), VEC_NET));
        assert!(s.is_in_service(CpuId(0), VEC_NET));
        assert!(!s.is_pending(CpuId(0), VEC_NET));
    }

    #[test]
    fn missing_eoi_blocks_vector() {
        let mut s = sub();
        s.raise(CpuId(0), VEC_NET);
        assert!(s.dispatch(CpuId(0), VEC_NET));
        // Next packet arrives, but without an EOI it cannot be dispatched.
        s.raise(CpuId(0), VEC_NET);
        assert!(!s.dispatch(CpuId(0), VEC_NET));
        s.eoi(CpuId(0), VEC_NET);
        assert!(s.dispatch(CpuId(0), VEC_NET));
    }

    #[test]
    fn ack_all_unblocks_everything() {
        let mut s = sub();
        s.raise(CpuId(0), VEC_NET);
        s.dispatch(CpuId(0), VEC_NET);
        s.raise(CpuId(1), VEC_TIMER);
        let cleared = s.ack_all();
        assert_eq!(cleared, 2);
        assert!(!s.is_in_service(CpuId(0), VEC_NET));
        assert!(!s.is_pending(CpuId(1), VEC_TIMER));
    }

    #[test]
    fn vectors_are_independent_per_cpu() {
        let mut s = sub();
        s.raise(CpuId(0), VEC_BLK);
        assert!(!s.is_pending(CpuId(1), VEC_BLK));
        assert!(!s.dispatch(CpuId(1), VEC_BLK));
    }

    #[test]
    fn ioapic_reset_and_restore() {
        let mut s = sub();
        s.ioapic_write(VEC_NET, Some(CpuId(1)));
        let snap = s.ioapic_snapshot();
        s.ioapic_reset_to_boot();
        assert_eq!(s.ioapic_route(VEC_NET), None);
        s.ioapic_restore(snap);
        assert_eq!(s.ioapic_route(VEC_NET), Some(CpuId(1)));
        assert_eq!(s.ioapic_route(VEC_BLK), Some(CpuId(0)), "boot default kept");
    }

    #[test]
    fn event_channels_fifo_per_domain() {
        let mut s = sub();
        s.post_event(DomId(1), GuestEventKind::NetRx { seq: 1 });
        s.post_event(DomId(1), GuestEventKind::NetRx { seq: 2 });
        s.post_event(DomId(0), GuestEventKind::TimerVirq);
        assert_eq!(s.pending_events(DomId(1)), 2);
        assert_eq!(
            s.take_event(DomId(1)),
            Some(GuestEventKind::NetRx { seq: 1 })
        );
        assert_eq!(
            s.take_event(DomId(1)),
            Some(GuestEventKind::NetRx { seq: 2 })
        );
        assert_eq!(s.take_event(DomId(1)), None);
        assert_eq!(s.take_event(DomId(0)), Some(GuestEventKind::TimerVirq));
    }

    #[test]
    fn event_channels_grow_on_demand() {
        let mut s = sub();
        s.post_event(DomId(5), GuestEventKind::BlkComplete { req: 7 });
        assert_eq!(s.pending_events(DomId(5)), 1);
        s.clear_domain(DomId(5));
        assert_eq!(s.pending_events(DomId(5)), 0);
    }
}
