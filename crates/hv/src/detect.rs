//! Error detection: panics and the watchdog hang detector.
//!
//! The paper relies on Xen's built-in detectors (Section VI-B): a *panic*
//! fires on fatal exceptions and failed software assertions; a *hang* is
//! declared by a watchdog built from a per-CPU performance-counter NMI
//! (every 100 ms of unhalted cycles) that checks a heartbeat counter
//! incremented by a recurring 100 ms software timer event — three stalled
//! checks in a row mean the CPU stopped making timer progress.
//!
//! The watchdog bookkeeping itself lives in [`crate::percpu::WatchdogState`];
//! this module defines the detection record handed to the recovery
//! mechanism.

use nlh_sim::{CpuId, SimTime};
use serde::{Deserialize, Serialize};

/// How the error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionKind {
    /// Fatal exception or failed assertion.
    Panic,
    /// Watchdog-declared hang.
    Hang,
}

/// A detected hypervisor error — the event that triggers recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// When the detector fired.
    pub at: SimTime,
    /// The CPU on which the error was detected (NiLiHype's recovery handler
    /// runs on this CPU).
    pub cpu: CpuId,
    /// Panic or hang.
    pub kind: DetectionKind,
    /// Human-readable reason (assertion text, `BUG()` location, ...).
    pub reason: String,
}

impl Detection {
    /// Creates a detection record.
    pub fn new(at: SimTime, cpu: CpuId, kind: DetectionKind, reason: impl Into<String>) -> Self {
        Detection {
            at,
            cpu,
            kind,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Detection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} on {} at {}: {}",
            self.kind, self.cpu, self.at, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let d = Detection::new(
            SimTime::from_millis(1500),
            CpuId(2),
            DetectionKind::Panic,
            "ASSERT(local_irq_count == 0)",
        );
        let s = d.to_string();
        assert!(s.contains("Panic"));
        assert!(s.contains("cpu2"));
        assert!(s.contains("local_irq_count"));
    }
}
