//! The aggregate simulated machine and its micro-op execution loop.
//!
//! A [`Hypervisor`] owns every subsystem (memory, locks, scheduler, timers,
//! interrupts, domains) plus per-CPU runtime state. The simulation advances
//! by stepping the CPU with the smallest local clock; a step is either a
//! slice of guest execution or exactly one hypervisor [`MicroOp`]. All the
//! recovery-relevant residue — held locks, interrupt nesting, partial
//! hypercalls, unprogrammed APIC timers — arises from abandoning these
//! micro-op programs mid-flight.

use std::collections::VecDeque;

use nlh_sim::trace::{TraceLevel, TraceRing};
use nlh_sim::{
    CpuId, Cycles, DomId, IrqVector, LockId, PageNum, Pcg64, SimDuration, SimTime, VcpuId,
};

use crate::accounting::CycleAccounting;
use crate::config::{HvTuning, MachineConfig};
use crate::detect::{Detection, DetectionKind};
use crate::domain::{Domain, DomainSpec, DomainState, GuestNotice, GuestOp};
use crate::hypercalls::{
    EntryCause, HandlerKind, HcRequest, MicroOp, OpSupport, PendingKind, PendingRequest, Program,
    ProgramPool, UndoEntry,
};
use crate::interrupts::{GuestEventKind, IrqSubsystem, VEC_BLK, VEC_NET};
use crate::locks::{AcquireOutcome, LockPlacement, LockRegistry, StaticLock};
use crate::mem::{Heap, HeapObjKind, PageFrameTable, PageState};
use crate::percpu::PerCpu;
use crate::sched::Scheduler;
use crate::timers::{TimerEvent, TimerEventKind, TimerSubsystem};

/// Coarse per-CPU execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// Running guest code or idling; the scheduler decides which each step.
    Run,
    /// Executing hypervisor micro-ops (a non-empty program stack).
    Hv,
    /// Parked in the recovery busy-wait.
    Parked,
    /// Spinning in a fault-induced infinite loop with interrupts disabled
    /// (will be caught by the watchdog).
    Wedged,
}

/// What one simulation step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A slice of guest execution.
    Guest,
    /// One hypervisor micro-op.
    HvOp,
    /// Idle/parked/wedged time passed.
    Idle,
    /// Nothing ran: a detection is pending and the machine is frozen until
    /// recovery clears it.
    Frozen,
}

/// Charge base for pure log-write micro-ops (a store plus a pointer
/// bump, far cheaper than a full micro-op).
const LOG_OP_BASE_CYCLES: u64 = 150;

/// An in-flight hypervisor execution on one CPU.
#[derive(Debug, Clone)]
struct Frame {
    program: Program,
    pc: usize,
}

/// The forwarded-syscall handler executes the same four micro-ops on every
/// entry, so all syscall programs share this precompiled template (zero
/// build cost; see [`Program::from_static`]).
static SYSCALL_OPS: [MicroOp; 4] = [
    MicroOp::AssertNotInIrq,
    MicroOp::Compute,
    MicroOp::Compute,
    MicroOp::DeliverSyscall,
];

/// Precompiled superop fusion table for [`SYSCALL_OPS`] (what
/// `compile_runs` would produce; checked by a debug assertion in
/// [`Program::from_static`]).
static SYSCALL_RUNS: [u16; 4] = [0, 2, 1, 0];

/// External NetBench traffic: the sender on a separate physical host that
/// emits one UDP packet per millisecond (Section VI-A).
#[derive(Debug, Clone)]
pub struct NetTraffic {
    /// The receiving domain.
    pub target: DomId,
    /// Packet period (1 ms in the paper).
    pub period: SimDuration,
    /// Next packet send time.
    pub next: SimTime,
    /// Next sequence number.
    pub seq: u64,
    /// Packets handed to (or dropped at) the guest so far.
    pub delivered: u64,
    /// Packets dropped because the receive ring was full.
    pub drops: u64,
    /// Receive-ring capacity.
    pub ring_capacity: usize,
}

/// Result of a batched injector counting window
/// ([`Hypervisor::run_counting`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingWindow {
    /// Remaining micro-op budget (0 once the window is in its fire-attempt
    /// region).
    pub left: u64,
    /// Remaining handler-steering depth (meaningful only with a handler
    /// filter).
    pub depth_left: u64,
    /// The CPU whose last step satisfied the fire condition, if the window
    /// got that far before the deadline (or an organic detection) stopped
    /// it. The hypervisor is left exactly at that post-step instant; the
    /// caller performs the injection itself.
    pub fired: Option<CpuId>,
}

/// Summary returned by [`Hypervisor::discard_all_stacks`].
#[derive(Debug, Clone)]
pub struct AbandonReport {
    /// Number of execution threads (program frames) discarded.
    pub frames_discarded: usize,
    /// vCPUs that were *inside* the hypervisor (their request in flight) —
    /// their FS/GS are clobbered unless saved at detection.
    pub in_hv_vcpus: Vec<VcpuId>,
    /// Locks that were held at the moment of abandonment.
    pub held_locks: Vec<LockId>,
}

/// The simulated virtualization platform.
///
/// See the crate docs for the overall model. Most subsystem fields are
/// public: the recovery mechanisms (`nlh-core`) and the fault injector
/// (`nlh-inject`) operate on them exactly as the paper's code operates on
/// Xen's internals.
///
/// The whole platform is `Clone`: a freshly booted system can be stored
/// as a template and deep-copied per trial, which is how the campaign's
/// warm-start engine avoids paying the boot cost on every trial.
#[derive(Debug, Clone)]
pub struct Hypervisor {
    /// Machine parameters.
    pub config: MachineConfig,
    /// Simulation tuning.
    pub tuning: HvTuning,
    /// Normal-operation recovery-support features.
    pub support: OpSupport,
    /// Page-frame descriptors.
    pub pft: PageFrameTable,
    /// The hypervisor heap.
    pub heap: Heap,
    /// All spinlocks.
    pub locks: LockRegistry,
    /// Per-CPU architectural state.
    pub percpu: Vec<PerCpu>,
    /// The vCPU scheduler.
    pub sched: Scheduler,
    /// Software timer heaps.
    pub timers: TimerSubsystem,
    /// Interrupt + event-channel state.
    pub irqs: IrqSubsystem,
    /// All domains, indexed by [`DomId`].
    pub domains: Vec<Domain>,
    /// Cycle accounting.
    pub accounting: CycleAccounting,
    /// The trial's deterministic RNG.
    pub rng: Pcg64,
    /// Debug trace ring.
    pub trace: TraceRing,
    /// External NetBench traffic source, if configured.
    pub net: Option<NetTraffic>,
    /// `(seq, time)` of every NetBench reply observed by the sender.
    pub net_replies: Vec<(u64, SimTime)>,
    /// Virtio devices and the virtual switch connecting net ports.
    pub virtio: nlh_virtio::VirtioState,
    /// Domain specifications waiting for a `domctl` create hypercall.
    pub create_queue: VecDeque<DomainSpec>,
    /// The undo log for non-idempotent hypercalls (Section IV).
    pub undo_log: Vec<(VcpuId, UndoEntry)>,
    /// ReHype's I/O APIC write log (reconstructed routes).
    pub ioapic_log: Option<[Option<CpuId>; crate::interrupts::NUM_VECTORS]>,
    /// Evidence of the boot-time memory scrub, when one was performed
    /// (see [`Hypervisor::run_boot_scrub`]).
    pub scrub: Option<crate::mem::ScrubLedger>,
    /// Last successful platform time synchronization.
    pub last_time_sync: SimTime,
    /// Fault-injection target: static scratch state that a reboot
    /// re-initializes but microreset keeps in place.
    pub boot_scratch_corrupted: bool,
    /// Fault-injection target: whether the recovery routine itself is still
    /// intact (the paper's top recovery-failure reason when corrupted).
    pub recovery_entry_ok: bool,
    /// Per-CPU runqueue locks (heap-allocated, as in Xen).
    pub runq_locks: Vec<LockId>,
    /// Per-CPU timer-heap locks (heap-allocated).
    pub timer_locks: Vec<LockId>,
    /// Map vCPU → owning domain.
    pub vcpu_dom: Vec<DomId>,
    /// Host-side program-buffer recycling knob. On (the default), handler
    /// builders reuse micro-op buffers through the per-CPU [`ProgramPool`]s;
    /// off, every entry allocates a fresh `Vec` exactly as the stepper did
    /// before the pools existed. Simulated behaviour is bit-identical either
    /// way (pinned by differential tests); the knob exists so benchmarks and
    /// tests can compare the two.
    pub pooling: bool,
    /// Superop dispatch knob. On (the default), the batched stepper
    /// executes whole precompiled runs of [`MicroOp::Compute`] as single
    /// fused superops, fast-forwards provably-idle windows in bulk, and
    /// lets the injector's counting window ride the batched path; off,
    /// every micro-op dispatches individually exactly as before PR 10.
    /// Simulated behaviour is bit-identical either way (pinned by
    /// differential tests); the knob exists so benchmarks and tests can
    /// compare the two dispatch engines. See ARCHITECTURE.md §9.
    pub superops: bool,

    cpu_now: Vec<SimTime>,
    cpu_mode: Vec<CpuMode>,
    stacks: Vec<Vec<Frame>>,
    detection: Option<Detection>,
    steps: u64,
    /// Per-CPU free lists of micro-op buffers (see [`ProgramPool`]).
    pools: Vec<ProgramPool>,
    /// Reusable scratch for `build_timer_interrupt`'s due-event inspection.
    timer_scratch: Vec<TimerEvent>,
    /// Free lists recycling request-binding storage (the page lists a
    /// hypercall fixes at entry and drops at commit), plus the candidate
    /// and shuffle scratch `bind_simple` needs. Like the program pools,
    /// this is host-side memory reuse only — bindings are bit-identical
    /// with recycling on or off, since `pick_n_into` draws the same RNG
    /// sequence regardless of where the output lands.
    binding_pool: Vec<Vec<PageNum>>,
    binding_set_pool: Vec<Vec<Vec<PageNum>>>,
    page_scratch: Vec<PageNum>,
    idx_scratch: Vec<usize>,
    // Cached pick for `step_any`: while `next_valid` holds, `next_cpu` is
    // the argmin of `cpu_now` provided its clock is still below
    // `next_bound` (the second-smallest clock at the last scan, held by
    // `next_bound_cpu`). Per-CPU clocks only move forward during stepping,
    // so stepping the cached CPU cannot promote any other CPU past it —
    // the only non-monotonic clock write is `resume_after`, which
    // invalidates. Ties replicate `min_by_key`'s first-index choice: the
    // cache stays valid at `t == next_bound` only while `next_cpu <
    // next_bound_cpu`.
    next_cpu: u32,
    next_bound: SimTime,
    next_bound_cpu: u32,
    next_valid: bool,
    // Set by `MicroOp::IoapicWrite` so the batched steppers recompute
    // their hoisted check horizon: re-routing a device vector can make an
    // already-due packet time relevant on the newly routed CPU. Every
    // other in-dispatch mutation moves check deadlines forward (watchdog
    // periods, `net.next`) or parks a CPU (which only *raises* the
    // horizon), and cross-call mutations (recovery, `resume_after`,
    // direct subsystem pokes) are covered by the recompute on
    // batched-loop entry. Local APIC one-shots are *not* folded into the
    // horizon — `step_run` polls `take_fire` on every dispatch — so
    // `MicroOp::ProgramApic` does not touch this flag.
    horizon_dirty: bool,
    // Memoized cycle->nanosecond conversions for the dispatch hot path
    // (host bookkeeping, not simulated state: never part of the digest).
    // Slot layout: [cycle_count, cpu_freq_mhz, nanos]; `op_ns_cache[0]`
    // serves full micro-op charges, `op_ns_cache[1]` pure log writes, and
    // `run_cost_cache` is `fused_hv_run`'s (per-op, worst-case) pair keyed
    // by the tuning knobs and frequency it was computed from.
    op_ns_cache: [[u64; 3]; 2],
    run_cost_cache: [u64; 6],
}

impl Hypervisor {
    /// Boots a hypervisor on `config` with the given RNG seed. No domains
    /// exist yet; add them with [`Hypervisor::add_boot_domain`].
    pub fn new(config: MachineConfig, seed: u64) -> Self {
        Self::with_tuning(config, HvTuning::calibrated(), seed)
    }

    /// Boots with explicit tuning parameters.
    pub fn with_tuning(config: MachineConfig, tuning: HvTuning, seed: u64) -> Self {
        let n = config.num_cpus;
        let mut pft = PageFrameTable::new(config.num_pages());
        let mut heap = Heap::new();
        let mut locks = LockRegistry::new();
        let mut timers = TimerSubsystem::new(n);

        let mut runq_locks = Vec::with_capacity(n);
        let mut timer_locks = Vec::with_capacity(n);
        for cpu in 0..n {
            let rl = locks.register(format!("runq[{cpu}]"), LockPlacement::Heap);
            heap.alloc(&mut pft, HeapObjKind::PerCpuSched(cpu as u32), 1, Some(rl))
                .expect("boot heap allocation cannot fail");
            runq_locks.push(rl);
            let tl = locks.register(format!("timer_heap[{cpu}]"), LockPlacement::Heap);
            heap.alloc(&mut pft, HeapObjKind::PerCpuTimer(cpu as u32), 1, Some(tl))
                .expect("boot heap allocation cannot fail");
            timer_locks.push(tl);
        }

        // Register the recurring events, staggered so CPUs do not tick in
        // lockstep.
        let stagger = |cpu: usize, k: u64| SimDuration::from_micros(97 * cpu as u64 + 13 * k);
        timers.insert(
            CpuId(0),
            TimerEvent {
                deadline: SimTime::ZERO + tuning.time_sync_period,
                kind: TimerEventKind::TimeSync,
                period: Some(tuning.time_sync_period),
            },
        );
        for cpu in 0..n {
            timers.insert(
                CpuId::from_index(cpu),
                TimerEvent {
                    deadline: SimTime::ZERO + tuning.watchdog_heartbeat_period + stagger(cpu, 1),
                    kind: TimerEventKind::WatchdogHeartbeat(CpuId::from_index(cpu)),
                    period: Some(tuning.watchdog_heartbeat_period),
                },
            );
            timers.insert(
                CpuId::from_index(cpu),
                TimerEvent {
                    deadline: SimTime::ZERO + tuning.tick_period + stagger(cpu, 2),
                    kind: TimerEventKind::SchedTick(CpuId::from_index(cpu)),
                    period: Some(tuning.tick_period),
                },
            );
        }

        let mut percpu: Vec<PerCpu> = (0..n)
            .map(|cpu| PerCpu::new(SimTime::ZERO + tuning.watchdog_nmi_period + stagger(cpu, 3)))
            .collect();
        for (cpu, pc) in percpu.iter_mut().enumerate() {
            if let Some(d) = timers.peek_deadline(CpuId::from_index(cpu)) {
                pc.apic.program(d);
            }
        }

        Hypervisor {
            accounting: CycleAccounting::new(n),
            sched: Scheduler::new(n),
            irqs: IrqSubsystem::new(n, 4),
            percpu,
            timers,
            heap,
            locks,
            pft,
            rng: Pcg64::seed_from_u64(seed),
            trace: TraceRing::disabled(),
            net: None,
            net_replies: Vec::new(),
            virtio: nlh_virtio::VirtioState::new(),
            create_queue: VecDeque::new(),
            undo_log: Vec::new(),
            ioapic_log: None,
            scrub: None,
            last_time_sync: SimTime::ZERO,
            boot_scratch_corrupted: false,
            recovery_entry_ok: true,
            runq_locks,
            timer_locks,
            vcpu_dom: Vec::new(),
            pooling: true,
            superops: true,
            cpu_now: vec![SimTime::ZERO; n],
            cpu_mode: vec![CpuMode::Run; n],
            stacks: vec![Vec::new(); n],
            detection: None,
            steps: 0,
            pools: vec![ProgramPool::new(); n],
            timer_scratch: Vec::new(),
            binding_pool: Vec::new(),
            binding_set_pool: Vec::new(),
            page_scratch: Vec::new(),
            idx_scratch: Vec::new(),
            next_cpu: 0,
            next_bound: SimTime::ZERO,
            next_bound_cpu: 0,
            next_valid: false,
            horizon_dirty: false,
            op_ns_cache: [[u64::MAX; 3]; 2],
            run_cost_cache: [u64::MAX; 6],
            domains: Vec::new(),
            support: OpSupport::full(),
            config,
            tuning,
        }
    }

    /// Performs the boot-time memory scrub over all page frames (Xen's
    /// `bootscrub`, on by default) and records its ledger.
    ///
    /// This walk over all of simulated RAM is the dominant cost of a cold
    /// platform boot — the reason reboot-based recovery is slow, and the
    /// work a campaign's boot cache amortizes across trials. It is
    /// deterministic and seed-independent: a cloned scrubbed system is
    /// indistinguishable from a freshly scrubbed one. [`Hypervisor::new`]
    /// does not scrub, so unit tests and latency experiments that only
    /// need structure stay cheap; the campaign boot path does.
    pub fn run_boot_scrub(&mut self) {
        self.scrub = Some(crate::mem::boot_scrub(self.pft.len()));
    }

    // ------------------------------------------------------------------
    // Domain construction
    // ------------------------------------------------------------------

    /// Creates a domain at boot time (before the measurement window), as
    /// `xl create` would before the benchmark starts. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the machine is out of memory (a configuration error).
    pub fn add_boot_domain(&mut self, spec: DomainSpec) -> DomId {
        let id = DomId::from_index(self.domains.len());
        let vcpu = VcpuId::from_index(self.vcpu_dom.len());
        let mut dom = Domain::new(id, spec.kind, vcpu, spec.pinned_cpu);
        dom.target_pages = spec.pages;
        for _ in 0..spec.pages {
            let p = self
                .pft
                .alloc(Some(id), PageState::DomainOwned)
                .expect("boot domain allocation failed: machine too small");
            dom.owned_pages.push(p);
        }
        dom.program = Some(spec.program);
        dom.state = DomainState::Active;
        self.vcpu_dom.push(id);
        self.sched.register_vcpu(vcpu, spec.pinned_cpu);
        self.irqs.ensure_domain(id);
        self.timers.insert(
            spec.pinned_cpu,
            TimerEvent {
                deadline: SimTime::ZERO + self.tuning.tick_period,
                kind: TimerEventKind::DomainTimer(vcpu),
                period: Some(self.tuning.tick_period),
            },
        );
        // Switch the vCPU in immediately (boot-time, consistent) — unless
        // the CPU is already occupied by another vCPU (shared-CPU
        // configurations), in which case it waits on the runqueue for the
        // scheduler tick.
        if self.sched.current(spec.pinned_cpu).is_none() {
            self.sched.dequeue(vcpu);
            self.sched
                .cs_set_percpu_current(spec.pinned_cpu, Some(vcpu));
            self.sched.cs_set_running_on(vcpu, Some(spec.pinned_cpu));
            self.sched.cs_set_is_current(vcpu, true);
        }
        self.domains.push(dom);
        id
    }

    /// Queues a specification for the next `domctl` create hypercall (the
    /// PrivVM creates the post-recovery BlkBench VM this way in the 3AppVM
    /// setup).
    pub fn queue_domain_creation(&mut self, spec: DomainSpec) {
        self.create_queue.push_back(spec);
    }

    /// Attaches the external NetBench sender.
    pub fn attach_net_traffic(&mut self, target: DomId, period: SimDuration) {
        let cpu = self.domains[target.index()].pinned_cpu;
        self.irqs.ioapic_write(VEC_NET, Some(cpu));
        self.net = Some(NetTraffic {
            target,
            period,
            next: SimTime::ZERO + period,
            seq: 0,
            delivered: 0,
            drops: 0,
            ring_capacity: 4096,
        });
    }

    /// Attaches a virtio-blk device to `dom`, routing its completion
    /// vector ([`VEC_BLK`]) to the domain's pinned CPU. Returns the device
    /// index (for diagnostics; blk ports do not join the vswitch).
    pub fn add_virtio_blk(&mut self, dom: DomId) -> usize {
        let cpu = self.domains[dom.index()].pinned_cpu;
        self.irqs.ioapic_write(VEC_BLK, Some(cpu));
        self.virtio.add_device(nlh_virtio::VirtioDevice::new(
            dom,
            nlh_virtio::VirtioDeviceKind::Blk,
            VEC_BLK,
        ))
    }

    /// Attaches a virtio-net port to `dom`, routing [`VEC_NET`] to the
    /// domain's pinned CPU (there is one global route per vector, so with
    /// several ports the last attach wins it — deterministic; the delivery
    /// handler drains every same-vector device regardless of which CPU it
    /// ran on). Returns the port index for [`Hypervisor::connect_vswitch`].
    pub fn add_virtio_net(&mut self, dom: DomId) -> usize {
        let cpu = self.domains[dom.index()].pinned_cpu;
        self.irqs.ioapic_write(VEC_NET, Some(cpu));
        self.virtio.add_device(nlh_virtio::VirtioDevice::new(
            dom,
            nlh_virtio::VirtioDeviceKind::Net,
            VEC_NET,
        ))
    }

    /// Cross-connects two virtio-net ports through the virtual switch.
    pub fn connect_vswitch(&mut self, a: usize, b: usize) {
        self.virtio.connect(a, b);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The pending detection, if an error has been detected.
    pub fn detection(&self) -> Option<&Detection> {
        self.detection.as_ref()
    }

    /// The earliest per-CPU clock (the machine's notion of "now").
    pub fn now(&self) -> SimTime {
        self.cpu_now.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// The latest per-CPU clock.
    pub fn now_max(&self) -> SimTime {
        self.cpu_now.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// The local clock of `cpu`.
    pub fn cpu_now(&self, cpu: CpuId) -> SimTime {
        self.cpu_now[cpu.index()]
    }

    /// The execution mode of `cpu`.
    pub fn cpu_mode(&self, cpu: CpuId) -> CpuMode {
        self.cpu_mode[cpu.index()]
    }

    /// Sets a CPU's execution mode (used by the fault-injection surface).
    pub(crate) fn set_cpu_mode(&mut self, cpu: CpuId, mode: CpuMode) {
        self.cpu_mode[cpu.index()] = mode;
    }

    /// Whether `cpu` is mid-way through a hypervisor program (at least one
    /// micro-op executed, at least one remaining). The injector targets
    /// these points: on real hardware there is no architecturally "clean"
    /// instant of hypervisor execution between two handlers.
    pub fn cpu_mid_program(&self, cpu: CpuId) -> bool {
        self.cpu_mode[cpu.index()] == CpuMode::Hv
            && self.stacks[cpu.index()]
                .last()
                .map(|f| f.pc >= 1)
                .unwrap_or(false)
    }

    /// The entry cause and program counter of the handler currently
    /// executing on `cpu`, or `None` if the CPU has no hypervisor program
    /// in flight. This is the "injection point" a trial record captures:
    /// which handler the fault struck and how many of its micro-ops had
    /// already retired.
    pub fn cpu_program_context(&self, cpu: CpuId) -> Option<(EntryCause, usize)> {
        self.stacks[cpu.index()]
            .last()
            .map(|f| (f.program.cause, f.pc))
    }

    /// Total micro-ops in the program currently executing on `cpu`.
    pub fn cpu_program_len(&self, cpu: CpuId) -> Option<usize> {
        self.stacks[cpu.index()].last().map(|f| f.program.len())
    }

    /// The micro-op `cpu` would execute next, or `None` if the CPU is not
    /// mid-program (or its program is exhausted). Divergence bisection uses
    /// this to report *what* the first divergent step was about to do.
    pub fn cpu_current_op(&self, cpu: CpuId) -> Option<MicroOp> {
        self.stacks[cpu.index()]
            .last()
            .and_then(|f| f.program.ops().get(f.pc).copied())
    }

    /// The CPU [`Hypervisor::step_any`] would step next, without mutating
    /// the scheduler-pick cache. A pure argmin over the per-CPU clocks with
    /// the first index winning ties — the same choice `step_any` makes.
    pub fn peek_next_cpu(&self) -> CpuId {
        let mut best = 0usize;
        let mut best_t = self.cpu_now[0];
        for (i, &t) in self.cpu_now.iter().enumerate().skip(1) {
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        CpuId::from_index(best)
    }

    /// A deterministic fingerprint of the machine's mutable state.
    ///
    /// Divergence bisection runs two trials to the same step count and
    /// compares fingerprints; the first step at which they differ is where
    /// the executions split. The digest covers everything the step loop
    /// can mutate — clocks, modes, in-flight programs, RNG position,
    /// memory, locks, scheduler, timers, interrupts, domains (including
    /// workload state), undo log, network state, detection — and excludes
    /// host-side bookkeeping that does not affect simulated behaviour
    /// (the trace ring, program pools, the scheduler-pick cache), so a
    /// batched and an unbatched run of the same trial digest identically.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(16 * 1024);
        let (rs, ri) = self.rng.state_parts();
        let _ = write!(
            s,
            "steps={} rng={rs:x}.{ri:x} now={:?} modes={:?} det={:?} lts={:?} bsc={} reo={} ",
            self.steps,
            self.cpu_now,
            self.cpu_mode,
            self.detection,
            self.last_time_sync,
            self.boot_scratch_corrupted,
            self.recovery_entry_ok,
        );
        for stack in &self.stacks {
            for f in stack {
                let _ = write!(
                    s,
                    "[{:?}@{}/{} lg{}]",
                    f.program.cause,
                    f.pc,
                    f.program.len(),
                    f.program.logged
                );
            }
            s.push(';');
        }
        let _ = write!(
            s,
            "{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}{:?}",
            self.pft,
            self.heap,
            self.locks,
            self.percpu,
            self.sched,
            self.timers,
            self.irqs,
            self.domains,
            self.accounting,
            self.undo_log,
            self.net,
            self.net_replies,
            self.ioapic_log,
        );
        let _ = write!(s, "cq={} scrub={:?}", self.create_queue.len(), self.scrub);
        if !self.virtio.is_empty() {
            let _ = write!(s, " virtio={:?}", self.virtio);
        }
        nlh_sim::digest::Fnv64::hash(s.as_bytes())
    }

    /// Total simulation steps executed on this machine (guest slices,
    /// micro-ops, idle quanta). Campaign telemetry divides this by wall
    /// time for its steps/sec throughput counter.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// A coarse estimate of this machine's host-resident footprint in
    /// bytes, dominated by the per-page-frame descriptors and the
    /// per-domain page lists. The boot cache uses this to account for
    /// cached templates under its LRU byte cap; it only needs to rank
    /// template sizes consistently, not to match the allocator byte for
    /// byte. Deterministic for a given machine/setup (it reads container
    /// lengths, never capacities or host pointers).
    pub fn estimated_template_bytes(&self) -> u64 {
        // Rough per-element descriptor sizes; fixed so the estimate is
        // stable across hosts and rustc layouts.
        const PAGE_DESC: u64 = 48;
        const PER_CPU: u64 = 512;
        const PER_DOMAIN: u64 = 1024;
        const PER_TIMER_OR_LOCK: u64 = 64;
        let pages = self.config.num_pages() as u64;
        let owned: u64 = self
            .domains
            .iter()
            .map(|d| (d.owned_pages.len() + d.pinned_pages.len()) as u64 * 8)
            .sum();
        let queued: u64 = self.create_queue.len() as u64 * PER_DOMAIN;
        pages * PAGE_DESC
            + owned
            + self.percpu.len() as u64 * PER_CPU
            + self.domains.len() as u64 * PER_DOMAIN
            + queued
            + (self.locks.len() + self.timers.total_len()) as u64 * PER_TIMER_OR_LOCK
            + self.virtio.devices.len() as u64 * 4096
    }

    /// Number of physical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.config.num_cpus
    }

    /// The domain owning `vcpu`.
    pub fn domain_of(&self, vcpu: VcpuId) -> DomId {
        self.vcpu_dom[vcpu.index()]
    }

    /// vCPUs that currently have an in-flight (uncommitted) request.
    pub fn vcpus_with_pending(&self) -> Vec<VcpuId> {
        self.domains
            .iter()
            .filter(|d| d.pending.is_some())
            .map(|d| d.vcpu)
            .collect()
    }

    /// The recurring timer events that must exist for correct operation —
    /// what NiLiHype's "reactivate recurring timer events" enhancement
    /// re-creates when missing.
    pub fn expected_recurring(&self) -> Vec<(TimerEventKind, CpuId, SimDuration)> {
        let mut out = vec![(
            TimerEventKind::TimeSync,
            CpuId(0),
            self.tuning.time_sync_period,
        )];
        for cpu in 0..self.num_cpus() {
            let c = CpuId::from_index(cpu);
            out.push((
                TimerEventKind::WatchdogHeartbeat(c),
                c,
                self.tuning.watchdog_heartbeat_period,
            ));
            out.push((TimerEventKind::SchedTick(c), c, self.tuning.tick_period));
        }
        for d in &self.domains {
            if d.is_active() {
                out.push((
                    TimerEventKind::DomainTimer(d.vcpu),
                    d.pinned_cpu,
                    self.tuning.tick_period,
                ));
            }
        }
        out
    }

    /// Whether platform time synchronization is healthy at `now` (has run
    /// within three periods). A stale platform clock means the hypervisor
    /// is no longer operating correctly.
    pub fn time_sync_healthy(&self, now: SimTime) -> bool {
        now.saturating_since(self.last_time_sync) < self.tuning.time_sync_period * 4
    }

    // ------------------------------------------------------------------
    // Detection
    // ------------------------------------------------------------------

    /// Raises a hypervisor panic on `cpu`. The first detection wins; later
    /// ones are ignored (the machine is already frozen).
    pub fn raise_panic(&mut self, cpu: CpuId, reason: impl Into<String>) {
        if self.detection.is_none() {
            let d = Detection::new(self.cpu_now[cpu.index()], cpu, DetectionKind::Panic, reason);
            nlh_sim::trace_event!(self.trace, d.at, TraceLevel::Event, "PANIC: {d}");
            self.detection = Some(d);
        }
    }

    /// Raises a watchdog hang detection on `cpu`.
    pub fn raise_hang(&mut self, cpu: CpuId, reason: impl Into<String>) {
        if self.detection.is_none() {
            let d = Detection::new(self.cpu_now[cpu.index()], cpu, DetectionKind::Hang, reason);
            nlh_sim::trace_event!(self.trace, d.at, TraceLevel::Event, "HANG: {d}");
            self.detection = Some(d);
        }
    }

    // ------------------------------------------------------------------
    // The step loop
    // ------------------------------------------------------------------

    /// Steps the CPU with the earliest local clock.
    pub fn step_any(&mut self) -> (CpuId, StepOutcome) {
        let cpu = self.pick_next_cpu();
        let out = self.step(cpu);
        (cpu, out)
    }

    /// The CPU `step_any` would step next (the argmin of the per-CPU
    /// clocks, first index winning ties), served from the cache when the
    /// cached CPU provably still holds the minimum.
    fn pick_next_cpu(&mut self) -> CpuId {
        if self.next_valid {
            let c = self.next_cpu as usize;
            let t = self.cpu_now[c];
            if t < self.next_bound || (t == self.next_bound && self.next_cpu < self.next_bound_cpu)
            {
                return CpuId::from_index(c);
            }
        }
        self.rescan_next_cpu()
    }

    /// Full O(#CPUs) scan: finds the argmin clock and records the
    /// second-smallest as the cache bound.
    fn rescan_next_cpu(&mut self) -> CpuId {
        let mut best = 0usize;
        let mut best_t = self.cpu_now[0];
        let mut bound = SimTime::FAR_FUTURE;
        let mut bound_cpu = u32::MAX;
        for (i, &t) in self.cpu_now.iter().enumerate().skip(1) {
            if t < best_t {
                bound = best_t;
                bound_cpu = best as u32;
                best = i;
                best_t = t;
            } else if t < bound {
                bound = t;
                bound_cpu = i as u32;
            }
        }
        self.next_cpu = best as u32;
        self.next_bound = bound;
        self.next_bound_cpu = bound_cpu;
        self.next_valid = true;
        CpuId::from_index(best)
    }

    /// Runs until `deadline` or until an error is detected.
    ///
    /// This is the batched fast path: per-step entry checks (the watchdog
    /// NMI comparison, external net-traffic generation) are hoisted out of
    /// the inner loop for every stretch in which their deadlines provably
    /// cannot arrive. The executed step sequence is bit-identical to
    /// [`Hypervisor::run_until_unbatched`] (differential-tested).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_batched(deadline, None);
    }

    /// Runs for `dur` of simulated time or until an error is detected.
    pub fn run_for(&mut self, dur: SimDuration) {
        let deadline = self.now() + dur;
        self.run_until(deadline);
    }

    /// Reference step loop: one fully checked [`Hypervisor::step_any`] per
    /// iteration, exactly as `run_until` worked before batching. Kept at
    /// runtime so differential tests can pin the batched loop against it.
    pub fn run_until_unbatched(&mut self, deadline: SimTime) {
        while self.detection.is_none() && self.now() < deadline {
            self.step_any();
        }
    }

    /// Batched run that additionally stops right after the first step that
    /// carries the stepped CPU's clock to `marker` or beyond, returning
    /// that step's outcome. The campaign trial loop uses this to race
    /// batched through the pre-injection window and hand the exact
    /// transition step to the fault injector.
    pub fn run_until_marker(
        &mut self,
        deadline: SimTime,
        marker: SimTime,
    ) -> Option<(CpuId, StepOutcome)> {
        self.run_batched(deadline, Some(marker))
    }

    /// Batched execution of the fault injector's counting window: runs
    /// exactly like [`Hypervisor::run_until`] while advancing the
    /// injector's second-level trigger automaton on every step, and stops
    /// *at* the step the injector would fire on (without injecting — the
    /// caller owns the corruption draw).
    ///
    /// The automaton is the per-step `Injector::on_step` Counting phase,
    /// verbatim: a hypervisor micro-op decrements `left`; once `left`
    /// reaches zero, each subsequent hypervisor micro-op is a fire
    /// attempt that succeeds when the post-step state is mid-program
    /// (and, with a handler filter, inside the right handler family with
    /// the steering depth exhausted). Fused superop spans are bulk
    /// decrements: they are capped at the remaining `left`, so no fire
    /// attempt is ever buried inside a span, and the fire-attempt region
    /// itself runs op-at-a-time. Bit-identity with the per-step window is
    /// pinned by differential tests.
    pub fn run_counting(
        &mut self,
        deadline: SimTime,
        mut left: u64,
        only: Option<HandlerKind>,
        mut depth_left: u64,
    ) -> CountingWindow {
        let mut fired = None;
        'outer: loop {
            if self.detection.is_some() || fired.is_some() {
                break;
            }
            let mut horizon = self.check_horizon(deadline);
            loop {
                let cpu = self.pick_next_cpu();
                let t = self.cpu_now[cpu.index()];
                if t >= deadline {
                    break 'outer;
                }
                let checked = t >= horizon;
                if !checked {
                    if left > 0 {
                        let span = self.fused_hv_run(cpu, horizon, None, left);
                        if span > 0 {
                            // A step that raised a detection returned
                            // `Frozen`, not `HvOp`: it consumes no budget,
                            // exactly like the reference automaton.
                            let counted = if self.detection.is_some() {
                                span - 1
                            } else {
                                span
                            };
                            left -= counted;
                            if self.detection.is_some() {
                                break 'outer;
                            }
                            if self.horizon_dirty {
                                self.horizon_dirty = false;
                                horizon = self.check_horizon(deadline);
                            }
                            continue;
                        }
                    }
                    // Idle steps are not hypervisor micro-ops, so the
                    // counting automaton ignores them: the idle window can
                    // fast-forward without touching the budget.
                    if self.fused_idle_window(cpu, horizon, None) > 0 {
                        continue;
                    }
                }
                let out = if checked {
                    self.step(cpu)
                } else {
                    self.step_unchecked(cpu)
                };
                // The trigger automaton, advanced post-step exactly like
                // `Injector::on_step` in the Counting phase.
                if out == StepOutcome::HvOp {
                    if left > 0 {
                        left -= 1;
                    } else if self.cpu_mid_program(cpu) {
                        match only {
                            None => {
                                fired = Some(cpu);
                            }
                            Some(filter) => {
                                let here = self
                                    .cpu_program_context(cpu)
                                    .map(|(cause, _)| cause.handler_kind());
                                if here == Some(filter) {
                                    if depth_left > 0 {
                                        depth_left -= 1;
                                    } else {
                                        fired = Some(cpu);
                                    }
                                }
                            }
                        }
                    }
                }
                if checked || fired.is_some() {
                    // Recompute the horizon after a checked step, or leave
                    // with the fire step as the last step taken.
                    continue 'outer;
                }
                if self.detection.is_some() {
                    break 'outer;
                }
                if self.horizon_dirty {
                    self.horizon_dirty = false;
                    horizon = self.check_horizon(deadline);
                }
            }
        }
        CountingWindow {
            left,
            depth_left,
            fired,
        }
    }

    /// The batched stepping engine behind `run_until`/`run_until_marker`.
    ///
    /// Each outer iteration computes a *horizon*: the earliest instant at
    /// which any per-step entry check could have an effect — the smallest
    /// watchdog `next_check` over non-parked CPUs, the next external net
    /// packet time (when a net route exists), capped at `deadline`. While
    /// the next CPU's clock is below the horizon, steps run through
    /// [`Hypervisor::step_unchecked`], skipping the check comparisons the
    /// reference loop would have evaluated to no-ops. Once the horizon is
    /// reached, one fully checked [`Hypervisor::step`] runs (firing any due
    /// checks and pushing their deadlines forward) and the horizon is
    /// recomputed.
    fn run_batched(
        &mut self,
        deadline: SimTime,
        marker: Option<SimTime>,
    ) -> Option<(CpuId, StepOutcome)> {
        loop {
            if self.detection.is_some() {
                return None;
            }
            // The horizon is hoisted out of the unchecked inner loop: it
            // only moves *down* when an I/O APIC route is rewritten
            // mid-program (`horizon_dirty`); everything else that happens
            // in `dispatch_step` leaves it valid or raises it (stale-low
            // is merely a wasted checked step, never a missed check).
            let mut horizon = self.check_horizon(deadline);
            let cpu = loop {
                let cpu = self.pick_next_cpu();
                let t = self.cpu_now[cpu.index()];
                if t >= deadline {
                    return None;
                }
                if t >= horizon {
                    break cpu;
                }
                // Superop fast path: execute a fused run of micro-ops in
                // one dispatch when provably equivalent to stepping them
                // one by one (see `fused_hv_run`). The run is bounded
                // below the marker, so it can never be the marker-crossing
                // step; it breaks on detection and on a dirtied horizon,
                // handled here exactly as after a single unchecked step.
                if self.fused_hv_run(cpu, horizon, marker, u64::MAX) > 0 {
                    if self.detection.is_some() {
                        return None;
                    }
                    if self.horizon_dirty {
                        self.horizon_dirty = false;
                        horizon = self.check_horizon(deadline);
                    }
                    continue;
                }
                // Idle fast path: when everything below the horizon is
                // provably idle, fast-forward the whole window at once.
                if self.fused_idle_window(cpu, horizon, marker) > 0 {
                    continue;
                }
                let out = self.step_unchecked(cpu);
                if let Some(m) = marker {
                    if self.cpu_now[cpu.index()] >= m {
                        return Some((cpu, out));
                    }
                }
                if self.detection.is_some() {
                    return None;
                }
                if self.horizon_dirty {
                    self.horizon_dirty = false;
                    horizon = self.check_horizon(deadline);
                }
            };
            // A check deadline has arrived on the next CPU: take one fully
            // checked step so the check fires (and its deadline advances),
            // then recompute the horizon.
            let out = self.step(cpu);
            if let Some(m) = marker {
                if self.cpu_now[cpu.index()] >= m {
                    return Some((cpu, out));
                }
            }
        }
    }

    /// The earliest time at which a hoisted per-step check could matter.
    fn check_horizon(&self, deadline: SimTime) -> SimTime {
        let mut horizon = deadline;
        for (i, pc) in self.percpu.iter().enumerate() {
            // Parked CPUs are exempt from the watchdog NMI (exactly the
            // per-step check's own mode test).
            if self.cpu_mode[i] == CpuMode::Parked {
                continue;
            }
            if pc.watchdog.next_check < horizon {
                horizon = pc.watchdog.next_check;
            }
        }
        if let Some(net) = &self.net {
            if self.irqs.ioapic_route(VEC_NET).is_some() && net.next < horizon {
                horizon = net.next;
            }
        }
        horizon
    }

    /// The superop dispatcher's per-op clock costs, memoized on the
    /// tuning knobs and CPU frequency they were computed from: the plain
    /// micro-op advance and the worst-case single-op advance (the larger
    /// of a full micro-op and a pure-log base, plus the larger logging
    /// share), used for the conservative marker clip. Cycle-to-time
    /// conversion divides, and the operands only change when the caller
    /// retunes the machine — not once per fused op.
    fn fused_costs(&mut self) -> (u64, u64) {
        let key = [
            self.tuning.cycles_per_micro_op,
            self.tuning.cycles_per_log_write,
            self.tuning.cycles_per_completion_log,
            self.config.cpu_freq_mhz,
        ];
        if self.run_cost_cache[..4] == key {
            return (self.run_cost_cache[4], self.run_cost_cache[5]);
        }
        let f = self.config.cpu_freq_mhz;
        let d = Cycles(key[0]).to_duration(f).as_nanos();
        let worst = key[0].max(LOG_OP_BASE_CYCLES) + key[1].max(key[2]);
        let dmax = Cycles(worst).to_duration(f).as_nanos();
        self.run_cost_cache = [key[0], key[1], key[2], key[3], d, dmax];
        (d, dmax)
    }

    /// Memoized [`Cycles::to_duration`] for the two per-op charge shapes
    /// (`slot` 0: full micro-ops, `slot` 1: pure log writes), so the
    /// dispatch hot path divides only when a charge it has not seen
    /// before shows up.
    fn op_ns(&mut self, base: Cycles, slot: usize) -> u64 {
        let f = self.config.cpu_freq_mhz;
        let c = &mut self.op_ns_cache[slot];
        if c[0] == base.count() && c[1] == f {
            return c[2];
        }
        let ns = base.to_duration(f).as_nanos();
        *c = [base.count(), f, ns];
        ns
    }

    /// Executes up to `cap` micro-ops of the current handler program on
    /// `cpu` as one fused superop dispatch, returning how many steps were
    /// taken (0 means the caller must take a normal single step).
    ///
    /// Fusion rules (see ARCHITECTURE.md §9): a *run* is a maximal stretch
    /// of micro-ops that cannot suspend the program counter — everything
    /// except `Acquire`, whose contended arm spins in place and is the
    /// program’s abandonment boundary structure made visible to the
    /// dispatcher. Each fused op executes through [`Self::step_hv`]
    /// itself, so its side effects, charging, and program-counter motion
    /// are the reference’s own code; what the fused run elides is the
    /// outer loop’s per-step machinery (next-CPU pick, horizon compare,
    /// fusion attempts, outcome plumbing), which is provably no-op under
    /// the clip rules below. Runs of [`MicroOp::Compute`] — precompiled
    /// per program at build time ([`Program::runs`]) — take a faster bulk
    /// branch that charges the whole run in one call.
    ///
    /// The loop is clipped so that fusing is *provably* invisible next to
    /// the reference one-op-at-a-time execution:
    ///
    /// * every fused step's *start* time stays below `horizon`, where the
    ///   per-step entry checks are no-ops (Hv-mode dispatches never poll
    ///   the local APIC, so the one-shot needs no bound here);
    /// * every fused step's start stays within the cached next-CPU pick's
    ///   validity bound (including `min_by_key`'s first-index tie rule),
    ///   so cross-CPU interleaving — and the cache fields themselves —
    ///   match the reference exactly;
    /// * with a `marker`, every fused step's *post*-step time stays below
    ///   it (conservatively, using the largest charge any op can incur),
    ///   so the marker-crossing step itself runs through the normal path;
    /// * the run breaks on anything the outer loop would react to — a
    ///   raised detection (the detecting step returns `Frozen` exactly as
    ///   in the reference, and is excluded from the caller's micro-op
    ///   budget), a mode change (frame retirement dropping to `Run`), or
    ///   a dirtied horizon (`IoapicWrite`) — leaving the next step to the
    ///   caller;
    /// * the step count is fed to the injection trigger in bulk, and the
    ///   run is capped at the remaining budget so no fire attempt is ever
    ///   buried inside a fused run.
    fn fused_hv_run(
        &mut self,
        cpu: CpuId,
        horizon: SimTime,
        marker: Option<SimTime>,
        cap: u64,
    ) -> u64 {
        if !self.superops {
            return 0;
        }
        let i = cpu.index();
        if self.cpu_mode[i] != CpuMode::Hv {
            return 0;
        }
        let (d, dmax) = self.fused_costs();
        if d == 0 {
            return 0;
        }
        let h = horizon.as_nanos();
        // Pick-cache validity: starts may sit *at* `next_bound` only while
        // this CPU wins the `min_by_key` first-index tie.
        let nb = self.next_bound.as_nanos();
        let tie_win = self.next_cpu < self.next_bound_cpu;
        let mk = marker.map(|m| m.as_nanos());
        let mut executed: u64 = 0;
        while executed < cap {
            let t = self.cpu_now[i].as_nanos();
            if t >= h || t > nb || (t == nb && !tie_win) {
                break;
            }
            if let Some(mk) = mk {
                if t + dmax >= mk {
                    break;
                }
            }
            let f = match self.stacks[i].last() {
                Some(f) => f,
                None => break,
            };
            if f.pc >= f.program.len() {
                break;
            }
            let crun = f.program.run_len_at(f.pc) as u64;
            if crun >= 2 {
                // Bulk branch: a precompiled `Compute` run charges and
                // advances in one call (uniform cost, no side effects).
                let mut m = crun.min(cap - executed).min((h - t - 1) / d + 1);
                let cache_m = if tie_win {
                    (nb - t) / d + 1
                } else if nb <= t {
                    1
                } else {
                    (nb - t - 1) / d + 1
                };
                m = m.min(cache_m);
                if let Some(mk) = mk {
                    m = m.min(if mk <= t { 0 } else { (mk - t - 1) / d });
                }
                if m >= 2 {
                    self.steps += m;
                    self.accounting.charge_hv_span(
                        cpu,
                        Cycles(self.tuning.cycles_per_micro_op) * m,
                        m,
                    );
                    self.cpu_now[i] = SimTime::ZERO + SimDuration::from_nanos(t + m * d);
                    executed += m;
                    let f = self.stacks[i]
                        .last_mut()
                        .expect("span bounds checked above");
                    f.pc += m as usize;
                    if f.pc >= f.program.len() {
                        self.retire_frame(i);
                        if self.cpu_mode[i] != CpuMode::Hv {
                            break;
                        }
                    }
                    continue;
                }
                // The clips left less than a full bulk span; fall through
                // to a single fused op.
            }
            let op = f.program.ops()[f.pc];
            if let MicroOp::Acquire(l) = op {
                if self.locks.get(l).holder.is_some() {
                    break;
                }
                // A free lock is taken without suspending the pc, so the
                // run carries straight through the acquire.
            }
            // Single fused op: the reference dispatch itself, minus the
            // outer loop's bookkeeping.
            self.steps += 1;
            executed += 1;
            let out = self.step_hv(cpu);
            if out == StepOutcome::Frozen || self.cpu_mode[i] != CpuMode::Hv || self.horizon_dirty {
                break;
            }
        }
        executed
    }

    /// Bulk idle fast-forward: executes, in one dispatch, every idle
    /// step that provably commutes with the rest of the window, returning
    /// the number of steps taken (0 means the caller must take a normal
    /// single step).
    ///
    /// Equivalence argument (see ARCHITECTURE.md §9): a stable-idle step
    /// touches nothing but its own CPU's clock, which it advances by
    /// exactly one `idle_quantum`, so stable-idle steps of different CPUs
    /// commute — any interleaving reaches the same state in the same
    /// number of steps as the reference's strict clock order. Every CPU
    /// below the horizon is classified as *stable* (its next steps are
    /// provably pure clock advances: Parked/Wedged; an idle CPU with no
    /// runnable pick into an active domain and no pending IRQ or
    /// scheduler work; a CPU whose current vCPU's domain is inactive,
    /// stuck on an uncommitted request, or finished with no queued
    /// events) or *unstable* (mid-program, deliverable device interrupt,
    /// pending credit work, live workload — anything that could build a
    /// program or touch cross-CPU state). The window is then *capped* at
    /// the earliest instant anything non-commuting could happen:
    ///
    /// * every unstable CPU's clock — fused starts stay strictly below
    ///   it, i.e. before the reference would run that CPU's next step;
    /// * every stable CPU's local APIC one-shot — a due one-shot builds a
    ///   timer program whose micro-ops can reach cross-CPU state, so no
    ///   fused step may start at or after *any* deadline in the window
    ///   (the firing step itself runs singly, and the skipped per-step
    ///   `take_fire` polls below the cap are provably false;
    ///   Parked/Wedged dispatches never poll);
    /// * the hoisted `horizon` (where the watchdog and net-traffic entry
    ///   checks are no-ops) and, with a `marker`, the marker (post-step
    ///   times stay below it, so the crossing step runs normally).
    ///
    /// A sleeping idle CPU additionally fuses full quanta only, leaving
    /// the step that would clip to its deadline (`advance_to`) for the
    /// reference path.
    ///
    /// The classify pass starts at `first` (the caller's picked CPU,
    /// which holds the window's minimum clock): if the picked CPU itself
    /// is unstable the cap collapses to that minimum and nothing can
    /// fuse — the common case in busy phases, exiting after one
    /// classification and no division work.
    fn fused_idle_window(
        &mut self,
        first: CpuId,
        horizon: SimTime,
        marker: Option<SimTime>,
    ) -> u64 {
        if !self.superops {
            return 0;
        }
        let q = self.tuning.idle_quantum.as_nanos();
        let n = self.cpu_now.len();
        if q == 0 || n > 64 {
            return 0;
        }
        let h = horizon.as_nanos();
        let f = first.index().min(n);

        // Fast veto: the picked CPU is an idle sleeper about to clip to
        // its own one-shot (`advance_to` lands on the deadline, not a
        // full quantum away) — the clipping step always runs singly, so
        // the classification pass below could at best fuse other CPUs'
        // sub-quantum remainders. Skipping the attempt is free: the same
        // steps simply execute unfused. This is the block/wake rhythm of
        // a syscalling guest, the hottest idle shape in busy phases.
        if self.cpu_mode[f] == CpuMode::Run && self.sched.current(first).is_none() {
            let t0 = self.cpu_now[f].as_nanos();
            let dl0 = self.percpu[f]
                .apic
                .deadline()
                .map_or(u64::MAX, |d| d.as_nanos());
            if dl0.saturating_sub(t0) < q {
                return 0;
            }
        }

        // Pass 1: classify each sub-horizon CPU and fold the window cap.
        let mut stable: u64 = 0;
        let mut dls = [u64::MAX; 64];
        let mut full_q: u64 = 0;
        let mut cap = h;
        for i in (f..n).chain(0..f) {
            let t = self.cpu_now[i].as_nanos();
            if t >= h {
                continue;
            }
            match self.idle_stability(CpuId::from_index(i)) {
                Some((dl, fq)) => {
                    stable |= 1 << i;
                    dls[i] = dl;
                    if fq {
                        full_q |= 1 << i;
                    }
                    cap = cap.min(dl);
                }
                None => {
                    if i == f {
                        return 0;
                    }
                    cap = cap.min(t);
                }
            }
        }

        // Pass 2: size the spans (division work only on live windows).
        let mkb = marker.map(|m| m.as_nanos());
        let mut spans = [0u64; 64];
        let mut total: u64 = 0;
        for i in 0..n {
            if stable & (1 << i) == 0 {
                continue;
            }
            let t = self.cpu_now[i].as_nanos();
            if t >= cap {
                continue;
            }
            // Starts stay strictly below the cap...
            let mut m = if cap - t <= q {
                1
            } else {
                (cap - t - 1) / q + 1
            };
            // ...a sleeping idle CPU fuses full quanta toward its own
            // one-shot only...
            if full_q & (1 << i) != 0 && dls[i] != u64::MAX {
                m = m.min((dls[i] - t) / q);
            }
            // ...and, below a marker, post-step times stay below it.
            if let Some(mk) = mkb {
                m = m.min(if mk <= t { 0 } else { (mk - t - 1) / q });
            }
            spans[i] = m;
            total += m;
        }
        if total == 0 {
            return 0;
        }
        for (i, &m) in spans.iter().enumerate().take(n) {
            if m > 0 {
                self.cpu_now[i] =
                    SimTime::ZERO + SimDuration::from_nanos(self.cpu_now[i].as_nanos() + m * q);
            }
        }
        self.steps += total;
        // The bulk clock moves invalidate the cached next-CPU pick.
        self.next_valid = false;
        total
    }

    /// Classifies `cpu` for [`Self::fused_idle_window`]: `Some((deadline,
    /// full_quanta))` when its next steps are provably stable idle (the
    /// deadline is its local APIC one-shot, `u64::MAX` when unarmed;
    /// `full_quanta` marks a sleeping idle CPU whose steps clip to that
    /// deadline), `None` when the CPU could do real work. The checks
    /// mirror the single-step dispatch's entry conditions exactly
    /// (including [`Scheduler::cached_pick`], the generation-validated
    /// pick `step_idle` itself serves), ordered so the common busy-phase
    /// classification exits cheaply.
    fn idle_stability(&mut self, cpu: CpuId) -> Option<(u64, bool)> {
        let i = cpu.index();
        match self.cpu_mode[i] {
            // Parked/Wedged: the dispatch advances one quantum
            // unconditionally (no APIC poll), and only another CPU's
            // action could change the mode.
            CpuMode::Parked | CpuMode::Wedged => Some((u64::MAX, false)),
            // A mid-program CPU executes micro-ops with side effects:
            // its steps cannot be reordered against anything.
            CpuMode::Hv => None,
            CpuMode::Run => {
                let r = match self.sched.current(cpu) {
                    Some(v) => {
                        let dom = self.domain_of(v);
                        let d = &self.domains[dom.index()];
                        if d.is_active() {
                            if self.percpu[i].local_irq_count != 0 {
                                return None;
                            }
                            if let Some(p) = d.pending.as_ref() {
                                // A retry builds a program; a stuck
                                // request idles forever.
                                if p.will_retry {
                                    return None;
                                }
                            } else if self.irqs.pending_events(dom) > 0 || !d.finished {
                                // Deliverable events or a live
                                // workload: real work next step.
                                return None;
                            }
                        }
                        false
                    }
                    None => {
                        // The idle loop panics in IRQ context and
                        // switches in any runnable vCPU of an active
                        // domain; otherwise it sleeps quantum-wise
                        // toward its own APIC deadline.
                        if self.percpu[i].local_irq_count != 0 {
                            return None;
                        }
                        if let Some(v) = self.sched.cached_pick(cpu) {
                            let dom = self.domain_of(v);
                            if self.domains[dom.index()].is_active() {
                                return None;
                            }
                        }
                        true
                    }
                };
                // Any deliverable device interrupt builds a handler
                // program on the next step, and so does pending
                // credit-scheduler work.
                if [VEC_BLK, VEC_NET].iter().any(|&vec| {
                    self.irqs.ioapic_route(vec) == Some(cpu) && self.irqs.is_pending(cpu, vec)
                }) {
                    return None;
                }
                if self.sched.credit_mode()
                    && (self.sched.peek_resched(cpu) || self.sched.peek_pending_migration(cpu))
                {
                    return None;
                }
                let dl = self.percpu[i]
                    .apic
                    .deadline()
                    .map_or(u64::MAX, |d| d.as_nanos());
                Some((dl, r))
            }
        }
    }

    /// Steps one CPU once.
    pub fn step(&mut self, cpu: CpuId) -> StepOutcome {
        if self.detection.is_some() {
            return StepOutcome::Frozen;
        }
        self.steps += 1;
        let i = cpu.index();
        let now = self.cpu_now[i];

        // The watchdog NMI is driven by a hardware performance counter and
        // fires regardless of CPU mode (even wedged with interrupts off).
        if self.cpu_mode[i] != CpuMode::Parked && now >= self.percpu[i].watchdog.next_check {
            let stalled = self.percpu[i].watchdog.nmi_check(
                now,
                self.tuning.watchdog_nmi_period,
                self.tuning.watchdog_stall_threshold,
            );
            if stalled {
                self.raise_hang(cpu, "watchdog: heartbeat stalled for 3 checks");
                return StepOutcome::Frozen;
            }
        }

        // External network traffic materializes on the routed CPU's clock.
        self.generate_net_traffic(cpu);

        self.dispatch_step(cpu)
    }

    /// A step with the entry checks elided. Only `run_batched` calls this,
    /// and only when the stepped CPU's clock is below [`Self::check_horizon`]
    /// — i.e. when the watchdog comparison and the net-traffic generator
    /// are provably no-ops — and when no detection is pending.
    fn step_unchecked(&mut self, cpu: CpuId) -> StepOutcome {
        self.steps += 1;
        self.dispatch_step(cpu)
    }

    /// Mode dispatch shared by the checked and unchecked step paths.
    fn dispatch_step(&mut self, cpu: CpuId) -> StepOutcome {
        match self.cpu_mode[cpu.index()] {
            CpuMode::Parked | CpuMode::Wedged => {
                self.advance(cpu, self.tuning.idle_quantum);
                StepOutcome::Idle
            }
            CpuMode::Hv => self.step_hv(cpu),
            CpuMode::Run => self.step_run(cpu),
        }
    }

    fn generate_net_traffic(&mut self, cpu: CpuId) {
        let routed = self.irqs.ioapic_route(VEC_NET);
        if routed != Some(cpu) {
            return;
        }
        let now = self.cpu_now[cpu.index()];
        let mut raise = false;
        if let Some(net) = self.net.as_mut() {
            while net.next <= now {
                net.seq += 1;
                net.next += net.period;
                raise = true;
            }
        }
        if raise {
            self.irqs.raise(cpu, VEC_NET);
        }
    }

    fn advance(&mut self, cpu: CpuId, d: SimDuration) {
        self.cpu_now[cpu.index()] = self.cpu_now[cpu.index()] + d;
    }

    fn advance_to(&mut self, cpu: CpuId, t: SimTime) {
        let i = cpu.index();
        if t > self.cpu_now[i] {
            self.cpu_now[i] = t;
        } else {
            self.advance(cpu, self.tuning.idle_quantum);
        }
    }

    /// Guest-or-idle step.
    fn step_run(&mut self, cpu: CpuId) -> StepOutcome {
        let i = cpu.index();
        let now = self.cpu_now[i];

        // APIC timer interrupt? Polled on every Run-mode dispatch; fused
        // superop spans are bounded below the CPU's one-shot deadline, so
        // the steps they elide would all have polled false.
        if self.percpu[i].apic.take_fire(now) {
            let prog = self.build_timer_interrupt(cpu);
            self.push_frame(cpu, prog);
            return StepOutcome::HvOp;
        }

        // Virtio completion interrupt? Checked before the legacy NetBench
        // arm: virtio setups share VEC_NET, and the legacy arm would
        // otherwise consume the pending bit with `self.net == None`.
        if !self.virtio.is_empty() {
            for vec in [VEC_BLK, VEC_NET] {
                if self.irqs.ioapic_route(vec) == Some(cpu)
                    && self.irqs.is_pending(cpu, vec)
                    && self.virtio_owns_vector(vec)
                    && self.irqs.dispatch(cpu, vec)
                {
                    let prog = self.build_virtio_interrupt(cpu, vec);
                    self.push_frame(cpu, prog);
                    return StepOutcome::HvOp;
                }
            }
        }

        // Device interrupt (network)?
        if self.irqs.ioapic_route(VEC_NET) == Some(cpu)
            && self.irqs.is_pending(cpu, VEC_NET)
            && self.irqs.dispatch(cpu, VEC_NET)
        {
            let prog = self.build_net_interrupt(cpu);
            self.push_frame(cpu, prog);
            return StepOutcome::HvOp;
        }

        // Credit-mode scheduler work flagged by the tick: a load-balancing
        // migration (executed by the source CPU) or a preemption switch.
        // Both run as abandonable Scheduler programs, outside IRQ context.
        if self.sched.credit_mode() {
            if let Some((v, from, to)) = self.sched.take_pending_migration(cpu) {
                if let Some(prog) = self.build_migrate(cpu, v, from, to) {
                    self.push_frame(cpu, prog);
                    return StepOutcome::HvOp;
                }
            }
            if self.sched.take_resched(cpu) {
                if let Some(prog) = self.build_credit_switch(cpu) {
                    self.push_frame(cpu, prog);
                    return StepOutcome::HvOp;
                }
            }
        }

        match self.sched.current(cpu) {
            Some(vcpu) => self.step_guest(cpu, vcpu),
            None => self.step_idle(cpu),
        }
    }

    fn step_idle(&mut self, cpu: CpuId) -> StepOutcome {
        // Xen's idle loop runs do_softirq(), which asserts !in_irq().
        if self.percpu[cpu.index()].local_irq_count != 0 {
            self.raise_panic(cpu, "ASSERT(!in_irq()) failed in idle loop");
            return StepOutcome::Frozen;
        }
        // A runnable vCPU gets switched in by the scheduler (cache-served
        // pick; always equal to the fresh `peek_next` scan).
        if let Some(v) = self.sched.cached_pick(cpu) {
            let dom = self.domain_of(v);
            if self.domains[dom.index()].is_active() {
                let prog = self.build_wakeup_switch(cpu, v);
                self.push_frame(cpu, prog);
                return StepOutcome::HvOp;
            }
        }
        // Otherwise sleep until the APIC deadline (or a quantum).
        let next = self.percpu[cpu.index()]
            .apic
            .deadline()
            .unwrap_or(SimTime::FAR_FUTURE)
            .min(self.cpu_now[cpu.index()] + self.tuning.idle_quantum);
        self.advance_to(cpu, next);
        StepOutcome::Idle
    }

    fn step_guest(&mut self, cpu: CpuId, vcpu: VcpuId) -> StepOutcome {
        let dom_id = self.domain_of(vcpu);
        let i = cpu.index();
        let now = self.cpu_now[i];

        if !self.domains[dom_id.index()].is_active() {
            self.advance(cpu, self.tuning.idle_quantum);
            return StepOutcome::Idle;
        }

        // Returning to guest with interrupt nesting is an assertion failure
        // (the exit path checks).
        if self.percpu[i].local_irq_count != 0 {
            self.raise_panic(cpu, "ASSERT(!in_irq()) failed on return to guest");
            return StepOutcome::Frozen;
        }

        // An uncommitted request: either retry it (recovery asked) or the
        // vCPU is stuck waiting on a reply that will never come.
        if self.domains[dom_id.index()].pending.is_some() {
            let will_retry = self.domains[dom_id.index()]
                .pending
                .as_ref()
                .map(|p| p.will_retry)
                .unwrap_or(false);
            if will_retry {
                if let Some(p) = self.domains[dom_id.index()].pending.as_mut() {
                    p.will_retry = false;
                }
                let prog = self.build_pending_program(cpu, vcpu);
                self.push_frame(cpu, prog);
                return StepOutcome::HvOp;
            }
            self.advance(cpu, self.tuning.idle_quantum);
            return StepOutcome::Idle;
        }

        // Deliver queued paravirtual events to the workload.
        while let Some(ev) = self.irqs.take_event(dom_id) {
            self.domains[dom_id.index()].notify(now, GuestNotice::Event(ev));
        }

        if self.domains[dom_id.index()].finished {
            self.advance(cpu, self.tuning.idle_quantum);
            return StepOutcome::Idle;
        }

        // Ask the workload what the guest does next. `domains` and `rng`
        // are disjoint fields, so the program can be polled in place — no
        // take/put round-trip moving the program struct twice per step.
        let rng = &mut self.rng;
        let op = match self.domains[dom_id.index()].program.as_mut() {
            Some(p) => p.next_op(now, rng),
            None => GuestOp::Done,
        };

        match op {
            GuestOp::Compute(d) => {
                self.accounting
                    .charge_guest(cpu, Cycles::from_duration(d, self.config.cpu_freq_mhz));
                self.advance(cpu, d);
                StepOutcome::Guest
            }
            GuestOp::Hypercall(req) => {
                self.start_request(cpu, vcpu, PendingKind::Hypercall(req));
                StepOutcome::HvOp
            }
            GuestOp::Syscall => {
                if self.domains[dom_id.index()].kind == crate::domain::DomainKind::AppHvm {
                    // HVM: syscalls are handled entirely inside the guest
                    // (no hypervisor forwarding on the x86-64 PV path).
                    let d = SimDuration::from_micros(3);
                    self.accounting
                        .charge_guest(cpu, Cycles::from_duration(d, self.config.cpu_freq_mhz));
                    self.advance(cpu, d);
                    let now = self.cpu_now[i];
                    self.domains[dom_id.index()].notify(now, GuestNotice::SyscallDone);
                    StepOutcome::Guest
                } else {
                    self.start_request(cpu, vcpu, PendingKind::Syscall);
                    StepOutcome::HvOp
                }
            }
            GuestOp::Block => {
                self.start_request(cpu, vcpu, PendingKind::Hypercall(HcRequest::SchedBlock));
                StepOutcome::HvOp
            }
            GuestOp::VirtioKick { queue, payload } => self.virtio_kick(cpu, vcpu, queue, payload),
            GuestOp::Done => {
                self.domains[dom_id.index()].finished = true;
                self.advance(cpu, self.tuning.idle_quantum);
                StepOutcome::Idle
            }
        }
    }

    fn start_request(&mut self, cpu: CpuId, vcpu: VcpuId, kind: PendingKind) {
        let dom_id = self.domain_of(vcpu);
        let bindings = match &kind {
            PendingKind::Hypercall(req) => self.bind_request(dom_id, req),
            PendingKind::Syscall => Vec::new(),
        };
        self.domains[dom_id.index()].pending = Some(PendingRequest {
            kind,
            bindings,
            completed_subcalls: 0,
            will_retry: false,
        });
        let prog = self.build_pending_program(cpu, vcpu);
        self.push_frame(cpu, prog);
    }

    fn push_frame(&mut self, cpu: CpuId, program: Program) {
        self.stacks[cpu.index()].push(Frame { program, pc: 0 });
        self.cpu_mode[cpu.index()] = CpuMode::Hv;
    }

    // ------------------------------------------------------------------
    // Request binding: fix the concrete pages a request touches.
    // ------------------------------------------------------------------

    fn bind_request(&mut self, dom: DomId, req: &HcRequest) -> Vec<Vec<PageNum>> {
        match req.multicall_calls() {
            Some(calls) => {
                let mut out = self.take_binding_set();
                for c in calls {
                    // A nested multicall (workloads never build one) binds
                    // all its sub-calls and keeps the first's pages — same
                    // RNG draws and same flattening as always.
                    let b = if c.multicall_calls().is_some() {
                        let mut inner = self.bind_request(dom, c);
                        let first = if inner.is_empty() {
                            self.take_binding_buf()
                        } else {
                            inner.remove(0)
                        };
                        self.recycle_bindings(inner);
                        first
                    } else {
                        self.bind_simple(dom, c)
                    };
                    out.push(b);
                }
                out
            }
            None => {
                // Requests that bind no pages (SchedBlock, XenVersion,
                // console writes, timers, event sends — the steady-state
                // bulk) get an empty binding list instead of a one-element
                // list holding an empty set: every consumer reads bindings
                // through `get(..)` with an empty-slice default, and the
                // empty list costs no allocation on the hot path.
                let b = self.bind_simple(dom, req);
                if b.is_empty() {
                    self.give_binding_buf(b);
                    Vec::new()
                } else {
                    let mut out = self.take_binding_set();
                    out.push(b);
                    out
                }
            }
        }
    }

    fn bind_simple(&mut self, dom: DomId, req: &HcRequest) -> Vec<PageNum> {
        let mut out = self.take_binding_buf();
        let Hypervisor {
            domains,
            rng,
            page_scratch,
            idx_scratch,
            ..
        } = self;
        let d = &domains[dom.index()];
        match req {
            HcRequest::PinPages(n) => {
                page_scratch.clear();
                page_scratch.extend(
                    d.owned_pages
                        .iter()
                        .copied()
                        .filter(|p| !d.pinned_pages.contains(p)),
                );
                pick_n_into(rng, page_scratch, *n, idx_scratch, &mut out);
            }
            HcRequest::UnpinPages(n) => {
                pick_n_into(rng, &d.pinned_pages, *n, idx_scratch, &mut out)
            }
            HcRequest::MemoryDecrease(n) => {
                page_scratch.clear();
                page_scratch.extend(
                    d.owned_pages
                        .iter()
                        .copied()
                        .filter(|p| !d.pinned_pages.contains(p)),
                );
                pick_n_into(rng, page_scratch, *n, idx_scratch, &mut out);
            }
            HcRequest::GrantMap { from } => {
                let granter = &domains[from.index()];
                pick_n_into(rng, &granter.owned_pages, 1, idx_scratch, &mut out);
            }
            HcRequest::BlockIo { .. } => {
                // A blkfront request carries up to 11 data segments, each
                // of which is granted to the driver domain.
                page_scratch.clear();
                page_scratch.extend(
                    d.owned_pages
                        .iter()
                        .copied()
                        .filter(|p| !d.pinned_pages.contains(p)),
                );
                pick_n_into(rng, page_scratch, 11, idx_scratch, &mut out);
            }
            _ => {}
        }
        out
    }

    /// Buffers retained in each binding free list (matches [`POOL_CAP`]'s
    /// rationale: bound idle memory, never a steady-state allocation —
    /// at most one request per vCPU is in flight, and vCPU counts beyond
    /// the cap only cost a fallback allocation, not correctness).
    const BINDING_POOL_CAP: usize = 32;

    fn take_binding_buf(&mut self) -> Vec<PageNum> {
        if self.pooling {
            self.binding_pool.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    fn take_binding_set(&mut self) -> Vec<Vec<PageNum>> {
        if self.pooling {
            self.binding_set_pool.pop().unwrap_or_default()
        } else {
            Vec::new()
        }
    }

    fn give_binding_buf(&mut self, mut b: Vec<PageNum>) {
        if self.pooling && b.capacity() > 0 && self.binding_pool.len() < Self::BINDING_POOL_CAP {
            b.clear();
            self.binding_pool.push(b);
        }
    }

    /// Recycles a retired request's binding storage (outer list and every
    /// page list) back into the free lists.
    fn recycle_bindings(&mut self, mut bindings: Vec<Vec<PageNum>>) {
        if !self.pooling {
            return;
        }
        while let Some(b) = bindings.pop() {
            self.give_binding_buf(b);
        }
        if bindings.capacity() > 0 && self.binding_set_pool.len() < Self::BINDING_POOL_CAP {
            self.binding_set_pool.push(bindings);
        }
    }

    // ------------------------------------------------------------------
    // Program builders
    // ------------------------------------------------------------------

    fn build_timer_interrupt(&mut self, cpu: CpuId) -> Program {
        use MicroOp::*;
        let i = cpu.index();
        let now = self.cpu_now[i];
        let (mut ops, runs) = self.take_buf(cpu);
        ops.push(EnterIrq);
        ops.push(Acquire(self.timer_locks[i]));

        // Collect due events (without popping: pops happen as micro-ops).
        // We pop due events into a reusable scratch list and re-insert them
        // so the micro-ops can pop them again during execution.
        let mut due = std::mem::take(&mut self.timer_scratch);
        due.clear();
        while let Some(ev) = self.timers.pop_due(cpu, now) {
            due.push(ev);
        }
        for ev in &due {
            self.timers.insert(cpu, *ev);
        }

        let mut sched_tick = false;
        for ev in &due {
            ops.push(PopTimerEvent(ev.kind));
            match ev.kind {
                TimerEventKind::TimeSync => {
                    ops.push(Acquire(StaticLock::Time.id()));
                    ops.push(Compute);
                    ops.push(TimeSyncApply);
                    ops.push(Release(StaticLock::Time.id()));
                }
                TimerEventKind::WatchdogHeartbeat(_) => {
                    ops.push(HeartbeatIncrement);
                }
                TimerEventKind::SchedTick(_) => {
                    sched_tick = true;
                    ops.push(Compute); // tick accounting
                }
                TimerEventKind::DomainTimer(v) => {
                    let dom = self.domain_of(v);
                    ops.push(PostGuestEvent(dom, GuestEventKind::TimerVirq));
                    ops.push(UnblockVcpu(v));
                }
                TimerEventKind::OneShot(_) => ops.push(Compute),
            }
            if let Some(period) = ev.period {
                ops.push(RearmTimerEvent(ev.kind, period));
            }
        }

        ops.push(Release(self.timer_locks[i]));
        ops.push(ProgramApic);

        if sched_tick && self.sched.credit_mode() {
            // Credit mode: the tick softirq body is the credit-accounting /
            // load-balancing pass under the runqueue lock. The preemption
            // switch (if the tick flags one) and any proposed migration run
            // as their own abandonable Scheduler programs once the IRQ
            // retires — see `step_run`.
            ops.push(Acquire(self.runq_locks[i]));
            ops.push(SchedConsistencyAssert);
            ops.push(SchedCreditTick);
            ops.push(Release(self.runq_locks[i]));
        } else if sched_tick {
            // The scheduler runs off the tick softirq: deschedule the
            // current vCPU, do the credit accounting and runqueue
            // manipulation, then schedule the next one. The paper's
            // torn-metadata window spans that whole region — in Xen the
            // scheduler is by far the largest consumer of tick time on a
            // CPU with a running vCPU.
            let prev = self.sched.current(cpu);
            // Round-robin: a queued runnable vCPU preempts the current one
            // (with 1:1 pinning the queue is empty and `prev` re-runs; with
            // shared CPUs — the paper's future-work configuration — the
            // sharing vCPUs alternate each tick).
            let next = self.sched.peek_next(cpu).or(prev);
            ops.push(Acquire(self.runq_locks[i]));
            ops.push(SchedConsistencyAssert);
            ops.push(Compute);
            if let Some(p) = prev {
                ops.push(CsSetPercpuCurrent(None));
                ops.push(CsSetRunningOn(p, None));
                ops.push(CsSetIsCurrent(p, false));
                ops.push(EnqueueVcpu(p));
            }
            if prev.is_some() || next.is_some() {
                // Credit accounting, load balancing, runqueue surgery: a
                // long window in which the metadata is torn.
                for _ in 0..24 {
                    ops.push(Compute);
                }
            } else {
                ops.push(Compute); // idle CPU: trivial tick accounting
            }
            if let Some(nx) = next {
                ops.push(DequeueVcpu(nx));
                ops.push(CsSetPercpuCurrent(Some(nx)));
                ops.push(CsSetRunningOn(nx, Some(cpu)));
                ops.push(CsSetIsCurrent(nx, true));
            }
            ops.push(Compute); // context-switch tail
            ops.push(Release(self.runq_locks[i]));
        }

        // Exit path: stats, softirq bookkeeping, trace buffers, return —
        // interrupt nesting is the only state still dirty here.
        for _ in 0..6 {
            ops.push(Compute);
        }
        ops.push(Eoi(crate::interrupts::VEC_TIMER));
        ops.push(Compute);
        ops.push(LeaveIrq);
        self.timer_scratch = due;
        Program::new(EntryCause::TimerInterrupt, ops, runs)
    }

    fn build_net_interrupt(&mut self, cpu: CpuId) -> Program {
        use MicroOp::*;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.push(EnterIrq);
        ops.push(Compute);
        let (target, backlog) = match &self.net {
            Some(net) => {
                let delivered = self.net_delivered_count();
                (Some(net.target), net.seq.saturating_sub(delivered))
            }
            None => (None, 0),
        };
        if let Some(dom) = target {
            let delivered = self.net_delivered_count();
            for k in 0..backlog {
                ops.push(PostGuestEvent(
                    dom,
                    GuestEventKind::NetRx {
                        seq: delivered + k + 1,
                    },
                ));
            }
            let v = self.domains[dom.index()].vcpu;
            ops.push(UnblockVcpu(v));
        }
        ops.push(Eoi(VEC_NET));
        ops.push(LeaveIrq);
        Program::new(EntryCause::DeviceInterrupt(VEC_NET), ops, runs)
    }

    /// Packets delivered (or dropped) so far — the high-water mark of NetRx
    /// sequence numbers handed to the guest.
    fn net_delivered_count(&self) -> u64 {
        self.net.as_ref().map(|n| n.delivered).unwrap_or(0)
    }

    /// Whether any virtio device signals completions on `vec` (so a hybrid
    /// setup with a legacy NetBench sender keeps VEC_NET to itself).
    fn virtio_owns_vector(&self, vec: IrqVector) -> bool {
        self.virtio.devices.iter().any(|d| d.vector == vec)
    }

    /// A guest wrote the queue-notify MMIO register of its virtio device:
    /// publish `payload` on `queue` (the guest-side ring write happens in
    /// guest memory before the write traps) and enter the hypervisor's
    /// virtio MMIO handler to run the device model.
    fn virtio_kick(&mut self, cpu: CpuId, vcpu: VcpuId, queue: u8, payload: u64) -> StepOutcome {
        let dom_id = self.domain_of(vcpu);
        let dev = match self.virtio.device_for_dom(dom_id) {
            Some(d) => d,
            None => {
                // No device behind the MMIO address: the write is ignored.
                self.advance(cpu, self.tuning.idle_quantum);
                return StepOutcome::Idle;
            }
        };
        let q = (queue as usize).min(nlh_virtio::Q_TX);
        // A full ring loses the kick (real virtio drivers never notify
        // without a free descriptor; workloads bound their in-flight ops).
        let _ = self.virtio.devices[dev].queues[q].submit(payload);
        let prog = self.build_virtio_notify(cpu, vcpu, dev, q);
        self.push_frame(cpu, prog);
        StepOutcome::HvOp
    }

    /// The virtio MMIO (queue-notify) handler: pop the descriptor, run the
    /// device model, log and publish the completion, raise the completion
    /// interrupt — and, for a forwarded net frame, publish the peer port's
    /// rx fill. Abandoning this program mid-flight is exactly what leaves a
    /// descriptor stuck avail / in-flight / logged-unpublished /
    /// used-undelivered for the ring-consistency repair to find.
    fn build_virtio_notify(&mut self, cpu: CpuId, vcpu: VcpuId, dev: usize, q: usize) -> Program {
        use MicroOp::*;
        let d8 = dev as u8;
        let q8 = q as u8;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.push(AssertNotInIrq);
        ops.push(Compute); // MMIO decode + virtqueue lookup
        ops.push(VqPopAvail { dev: d8, q: q8 });
        ops.push(Compute); // device-model work (grant copy / frame switch)
        ops.push(VqDeviceWork { dev: d8, q: q8 });
        ops.push(VqLogComplete { dev: d8, q: q8 });
        ops.push(Compute);
        ops.push(VqPushUsed { dev: d8, q: q8 });
        ops.push(VqRaiseIrq { dev: d8 });
        let is_net_tx = q == nlh_virtio::Q_TX
            && self.virtio.devices[dev].kind == nlh_virtio::VirtioDeviceKind::Net;
        if is_net_tx {
            // The vswitch filled the peer's rx descriptor during
            // VqDeviceWork; publish that fill and interrupt the peer.
            let peer = self.virtio.peer_of(dev) as u8;
            let rx = nlh_virtio::Q_RX as u8;
            ops.push(VqLogComplete { dev: peer, q: rx });
            ops.push(VqPushUsed { dev: peer, q: rx });
            ops.push(VqRaiseIrq { dev: peer });
        }
        ops.push(Compute); // return-to-guest path
        Program::new(EntryCause::VirtioMmio(vcpu), ops, runs)
    }

    /// The virtio completion-interrupt handler for `vec`: drain every
    /// same-vector device's used rings into guest events and wake the
    /// owners.
    fn build_virtio_interrupt(&mut self, cpu: CpuId, vec: IrqVector) -> Program {
        use MicroOp::*;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.push(EnterIrq);
        ops.push(Compute);
        ops.push(VqDeliverUsed(vec));
        ops.push(Eoi(vec));
        ops.push(Compute);
        ops.push(LeaveIrq);
        Program::new(EntryCause::DeviceInterrupt(vec), ops, runs)
    }

    /// Body of [`MicroOp::VqDeliverUsed`]: deliver used entries of every
    /// device signalling on `vec`, reposting consumed rx buffers, and
    /// unblock the owning vCPUs.
    fn virtio_deliver_used(&mut self, vec: IrqVector) {
        for di in 0..self.virtio.devices.len() {
            if self.virtio.devices[di].vector != vec {
                continue;
            }
            let dom = self.virtio.devices[di].dom;
            let kind = self.virtio.devices[di].kind;
            let mut delivered_any = false;
            for qi in 0..2 {
                while let Some((_, payload)) = self.virtio.devices[di].queues[qi].deliver() {
                    delivered_any = true;
                    let ev = match (kind, qi) {
                        (nlh_virtio::VirtioDeviceKind::Blk, _) => {
                            GuestEventKind::VirtioBlkDone { req: payload }
                        }
                        (nlh_virtio::VirtioDeviceKind::Net, nlh_virtio::Q_RX) => {
                            // The driver refills its rx ring as it consumes.
                            let _ = self.virtio.devices[di].queues[nlh_virtio::Q_RX].submit(0);
                            GuestEventKind::VirtioNetRx { frame: payload }
                        }
                        (nlh_virtio::VirtioDeviceKind::Net, _) => {
                            GuestEventKind::VirtioNetTxDone { frame: payload }
                        }
                    };
                    self.irqs.post_event(dom, ev);
                }
            }
            if delivered_any {
                let v = self.domains[dom.index()].vcpu;
                if self.domains[dom.index()].is_active() && self.domains[dom.index()].blocked {
                    self.domains[dom.index()].blocked = false;
                    self.sched.enqueue(v);
                }
            }
        }
    }

    /// Runs the virtqueue ring-consistency repair (the
    /// `virtqueue_consistency` recovery enhancement) and re-raises the
    /// completion interrupt for any device left with undelivered used
    /// entries — the shared "acknowledge interrupts" step runs earlier in
    /// the recovery order and cleared every pending vector. Touches
    /// nothing and returns an all-zero report when no devices exist.
    pub fn virtio_repair(&mut self) -> nlh_virtio::VirtioRepair {
        let rep = self.virtio.repair();
        for di in 0..self.virtio.devices.len() {
            if self.virtio.devices[di].undelivered() > 0 {
                let vec = self.virtio.devices[di].vector;
                if let Some(target) = self.irqs.ioapic_route(vec) {
                    self.irqs.raise(target, vec);
                }
            }
        }
        rep
    }

    fn build_wakeup_switch(&mut self, cpu: CpuId, v: VcpuId) -> Program {
        use MicroOp::*;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.extend_from_slice(&[
            AssertNotInIrq,
            Acquire(self.runq_locks[cpu.index()]),
            SchedConsistencyAssert,
            Compute,
            DequeueVcpu(v),
            CsSetPercpuCurrent(Some(v)),
            CsSetRunningOn(v, Some(cpu)),
            CsSetIsCurrent(v, true),
            Compute,
            Release(self.runq_locks[cpu.index()]),
        ]);
        Program::new(EntryCause::Scheduler, ops, runs)
    }

    /// The credit-mode preemption context switch: deschedule the current
    /// vCPU and switch in the highest-credit queued one. Returns `None`
    /// when the pick is gone or unchanged by the time the flag is consumed.
    fn build_credit_switch(&mut self, cpu: CpuId) -> Option<Program> {
        let prev = self.sched.current(cpu);
        let next = self.sched.cached_pick(cpu)?;
        if Some(next) == prev {
            return None;
        }
        let dom = self.domain_of(next);
        if !self.domains[dom.index()].is_active() {
            return None;
        }
        use MicroOp::*;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.push(AssertNotInIrq);
        ops.push(Acquire(self.runq_locks[cpu.index()]));
        ops.push(SchedConsistencyAssert);
        ops.push(Compute);
        if let Some(p) = prev {
            ops.push(CsSetPercpuCurrent(None));
            ops.push(CsSetRunningOn(p, None));
            ops.push(CsSetIsCurrent(p, false));
            ops.push(EnqueueVcpu(p));
        }
        // Credit bookkeeping between deschedule and switch-in: the window
        // where a fault leaves the CPU with no current vCPU and `prev`
        // possibly off every queue.
        for _ in 0..4 {
            ops.push(Compute);
        }
        ops.push(DequeueVcpu(next));
        ops.push(CsSetPercpuCurrent(Some(next)));
        ops.push(CsSetRunningOn(next, Some(cpu)));
        ops.push(CsSetIsCurrent(next, true));
        ops.push(Compute);
        ops.push(Release(self.runq_locks[cpu.index()]));
        Some(Program::new(EntryCause::Scheduler, ops, runs))
    }

    /// The load-balancing migration program: move vCPU `v` from CPU `from`
    /// to CPU `to` under both runqueue locks. Enqueue-on-destination runs
    /// *before* dequeue-from-source, so a fault between the two freezes a
    /// double-queued vCPU; a fault before `SchedSetAssigned` freezes a torn
    /// migration (queued on a CPU that is not its home). Both are exactly
    /// the residues the scheduler-consistency rung must clear. Returns
    /// `None` when the proposal went stale before the program could build.
    fn build_migrate(&mut self, cpu: CpuId, v: VcpuId, from: CpuId, to: CpuId) -> Option<Program> {
        let info = self.sched.vcpu(v);
        if info.state != crate::sched::RunState::Runnable
            || info.is_current
            || info.pinned_to != from
        {
            return None;
        }
        use MicroOp::*;
        let (mut ops, runs) = self.take_buf(cpu);
        ops.extend_from_slice(&[
            AssertNotInIrq,
            Acquire(self.runq_locks[from.index()]),
            Acquire(self.runq_locks[to.index()]),
            SchedConsistencyAssert,
            Compute,
            SchedMigrateEnqueue { v, to },
            Compute,
            SchedMigrateDequeue { v, from },
            SchedSetAssigned { v, to },
            Compute,
            Release(self.runq_locks[to.index()]),
            Release(self.runq_locks[from.index()]),
        ]);
        Some(Program::new(EntryCause::Scheduler, ops, runs))
    }

    /// Builds (or rebuilds, on retry) the program for a vCPU's pending
    /// request. The pending request is moved out of the domain for the
    /// duration of the build (no clone) and restored before returning.
    fn build_pending_program(&mut self, cpu: CpuId, vcpu: VcpuId) -> Program {
        let dom_id = self.domain_of(vcpu);
        let pending = self.domains[dom_id.index()]
            .pending
            .take()
            .expect("pending request exists");
        let prog = match &pending.kind {
            PendingKind::Syscall => {
                // Delivery is the final op: in the real hypervisor the
                // exit path after the result is committed is not a window
                // in which abandonment loses the request. The op sequence
                // is identical on every entry, so it is a static template.
                Program::from_static(EntryCause::Syscall(vcpu), &SYSCALL_OPS, &SYSCALL_RUNS)
            }
            PendingKind::Hypercall(req) => {
                let (mut ops, runs) = self.take_buf(cpu);
                ops.push(MicroOp::AssertNotInIrq);
                ops.push(MicroOp::Compute);
                let logged = self.emit_request_ops(
                    cpu,
                    vcpu,
                    req,
                    &pending.bindings,
                    pending.completed_subcalls,
                    &mut ops,
                );
                // The exit path runs the SCHEDULE softirq before returning
                // to the guest: deschedule, account, re-pick. This is a
                // torn-metadata window on every hypercall exit (SchedBlock
                // carries its own deschedule instead).
                if !matches!(req, HcRequest::SchedBlock) {
                    ops.push(MicroOp::Acquire(self.runq_locks[cpu.index()]));
                    ops.push(MicroOp::SchedConsistencyAssert);
                    ops.push(MicroOp::CsSetPercpuCurrent(None));
                    ops.push(MicroOp::CsSetRunningOn(vcpu, None));
                    ops.push(MicroOp::CsSetIsCurrent(vcpu, false));
                    for _ in 0..10 {
                        ops.push(MicroOp::Compute);
                    }
                    ops.push(MicroOp::CsSetPercpuCurrent(Some(vcpu)));
                    ops.push(MicroOp::CsSetRunningOn(vcpu, Some(cpu)));
                    ops.push(MicroOp::CsSetIsCurrent(vcpu, true));
                    ops.push(MicroOp::Release(self.runq_locks[cpu.index()]));
                }
                ops.push(MicroOp::CommitHypercall);
                let mut prog = Program::new(EntryCause::Hypercall(vcpu), ops, runs);
                prog.logged = logged;
                prog
            }
        };
        self.domains[dom_id.index()].pending = Some(pending);
        prog
    }

    /// Emits the body ops for `req` against its bound pages (`bindings`,
    /// indexed per sub-call for multicalls; `completed_subcalls` sub-calls
    /// are skipped on retry). Returns whether side effects are undo-logged.
    fn emit_request_ops(
        &mut self,
        cpu: CpuId,
        vcpu: VcpuId,
        req: &HcRequest,
        bindings: &[Vec<PageNum>],
        completed_subcalls: usize,
        ops: &mut Vec<MicroOp>,
    ) -> bool {
        use MicroOp::*;
        let dom_id = self.domain_of(vcpu);
        let binding =
            |idx: usize| -> &[PageNum] { bindings.get(idx).map(|v| v.as_slice()).unwrap_or(&[]) };
        match req {
            HcRequest::PinPages(_) => {
                let pages = binding(0);
                let reorder = self.support.reorder_nonidem;
                let log = self.support.undo_logging;
                // The counter update logs its undo atomically, but the
                // validation bit is logged by a separate write — the
                // one-op gap between the two is the residual vulnerability
                // window the paper could not fully close (Section IV).
                if reorder {
                    // Validate everything first; side effects packed at the
                    // end (window minimized).
                    for _ in pages {
                        ops.push(Compute);
                        ops.push(Compute);
                    }
                    for &p in pages {
                        ops.push(IncRef(p));
                        ops.push(SetValidated(p, true));
                        if log {
                            ops.push(LogUndo(crate::hypercalls::UndoEntry::SetValidated(
                                p, false,
                            )));
                        }
                    }
                } else {
                    for &p in pages {
                        ops.push(IncRef(p));
                        ops.push(Compute);
                        ops.push(Compute);
                        ops.push(SetValidated(p, true));
                        if log {
                            ops.push(LogUndo(crate::hypercalls::UndoEntry::SetValidated(
                                p, false,
                            )));
                        }
                    }
                }
                log
            }
            HcRequest::UnpinPages(_) => {
                let pages = binding(0);
                let log = self.support.undo_logging;
                // As in the pin path, the validation-bit change is logged
                // by a separate write with a one-op vulnerability gap.
                if self.support.reorder_nonidem {
                    for _ in pages {
                        ops.push(Compute);
                    }
                    for &p in pages {
                        ops.push(SetValidated(p, false));
                        if log {
                            ops.push(LogUndo(crate::hypercalls::UndoEntry::SetValidated(p, true)));
                        }
                        ops.push(DecRef(p));
                    }
                } else {
                    for &p in pages {
                        ops.push(SetValidated(p, false));
                        if log {
                            ops.push(LogUndo(crate::hypercalls::UndoEntry::SetValidated(p, true)));
                        }
                        ops.push(Compute);
                        ops.push(DecRef(p));
                    }
                }
                log
            }
            HcRequest::MemoryIncrease(n) => {
                ops.push(Acquire(StaticLock::PageAlloc.id()));
                for _ in 0..*n {
                    ops.push(AllocPage(dom_id));
                    ops.push(Compute);
                }
                ops.push(Release(StaticLock::PageAlloc.id()));
                self.support.undo_logging
            }
            HcRequest::MemoryDecrease(_) => {
                let pages = binding(0);
                ops.push(Acquire(StaticLock::PageAlloc.id()));
                if self.support.reorder_nonidem {
                    for _ in pages {
                        ops.push(Compute);
                    }
                    for &p in pages {
                        ops.push(FreePage(dom_id, p));
                    }
                } else {
                    for &p in pages {
                        ops.push(FreePage(dom_id, p));
                        ops.push(Compute);
                    }
                }
                ops.push(Release(StaticLock::PageAlloc.id()));
                false // frees cannot be undone
            }
            HcRequest::GrantMap { .. } => {
                // A transient grant map-copy-unmap. Deliberately
                // un-enhanced (Section IV: "likely to be several
                // infrequently-used non-idempotent hypercall handlers that
                // we have not properly enhanced"): a fault between the
                // IncRef and the DecRef leaks a reference on the granting
                // domain's page with no undo log to repair it.
                let pages = binding(0);
                ops.push(Acquire(StaticLock::Grant.id()));
                ops.push(Compute);
                for &p in pages {
                    ops.push(IncRef(p));
                    ops.push(Compute);
                    ops.push(Compute);
                    ops.push(DecRef(p));
                }
                ops.push(Release(StaticLock::Grant.id()));
                false
            }
            HcRequest::EventSend { to, event } => {
                ops.push(Compute);
                ops.push(PostGuestEvent(*to, *event));
                let tv = self.domains[to.index()].vcpu;
                ops.push(UnblockVcpu(tv));
                false
            }
            HcRequest::ConsoleWrite => {
                ops.push(Acquire(StaticLock::Console.id()));
                ops.push(Compute);
                ops.push(Compute);
                ops.push(Release(StaticLock::Console.id()));
                false
            }
            HcRequest::SetTimer => {
                ops.push(Compute);
                ops.push(Compute);
                false
            }
            HcRequest::XenVersion => {
                ops.push(Compute);
                false
            }
            HcRequest::SchedBlock => {
                ops.push(Acquire(self.runq_locks[cpu.index()]));
                ops.push(CsSetPercpuCurrent(None));
                ops.push(CsSetRunningOn(vcpu, None));
                ops.push(CsSetIsCurrent(vcpu, false));
                ops.push(Release(self.runq_locks[cpu.index()]));
                false
            }
            HcRequest::NetReply(seq) => {
                ops.push(Compute);
                ops.push(RecordNetReply(*seq));
                false
            }
            HcRequest::BlockIo { req } => {
                // The data buffer is granted to the driver domain for the
                // duration of the request: a reference is taken and dropped
                // around the notification. These are the hot non-idempotent
                // updates BlkBench stresses — they are covered by the undo
                // logging, which is why BlkBench shows the highest
                // normal-operation overhead in Figure 3.
                let pages = binding(0);
                ops.push(Compute);
                for &p in pages {
                    ops.push(IncRef(p));
                }
                ops.push(Compute);
                ops.push(PostGuestEvent(
                    DomId::PRIV,
                    GuestEventKind::BlkRequest {
                        from: dom_id,
                        req: *req,
                    },
                ));
                let pv = self.domains[DomId::PRIV.index()].vcpu;
                ops.push(UnblockVcpu(pv));
                for &p in pages {
                    ops.push(DecRef(p));
                }
                self.support.undo_logging
            }
            HcRequest::PhysdevRoute(vec, cpu_target) => {
                ops.push(Compute);
                ops.push(IoapicWrite(*vec, Some(*cpu_target)));
                false
            }
            HcRequest::DomctlCreate => {
                let new_id = self.reserve_building_domain();
                ops.push(Acquire(StaticLock::Domctl.id()));
                ops.push(Compute);
                ops.push(Compute);
                if let Some(id) = new_id {
                    ops.push(Acquire(StaticLock::PageAlloc.id()));
                    ops.push(BuildDomain(id));
                    ops.push(Release(StaticLock::PageAlloc.id()));
                    ops.push(Compute);
                    ops.push(Compute);
                    ops.push(FinalizeDomain(id));
                }
                ops.push(Release(StaticLock::Domctl.id()));
                false
            }
            HcRequest::DomctlDestroy(target) => {
                ops.push(Acquire(StaticLock::Domctl.id()));
                ops.push(Compute);
                ops.push(TeardownDomain(*target));
                ops.push(Release(StaticLock::Domctl.id()));
                false
            }
            HcRequest::Multicall(_) | HcRequest::FixedMulticall(_) => {
                let calls = req
                    .multicall_calls()
                    .expect("multicall variants expand to sub-calls");
                let mut any_logged = false;
                for (idx, c) in calls.iter().enumerate() {
                    if idx < completed_subcalls {
                        continue;
                    }
                    // The sub-call sees its own binding set at index 0,
                    // borrowed straight from the parent (no clones).
                    let sub_bindings: &[Vec<PageNum>] = match bindings.get(idx) {
                        Some(b) => std::slice::from_ref(b),
                        None => &[],
                    };
                    any_logged |= self.emit_request_ops(cpu, vcpu, c, sub_bindings, 0, ops);
                    if self.support.batched_completion_log {
                        ops.push(LogCompletion(idx));
                    }
                }
                any_logged
            }
        }
    }

    /// Reserves (or finds the existing) domain shell for an in-progress
    /// `domctl` create; pops the next specification from the queue.
    fn reserve_building_domain(&mut self) -> Option<DomId> {
        // A retried create reuses the shell it already reserved.
        if let Some(d) = self
            .domains
            .iter()
            .find(|d| d.state == DomainState::Building)
        {
            return Some(d.id);
        }
        let spec = self.create_queue.pop_front()?;
        let id = DomId::from_index(self.domains.len());
        let vcpu = VcpuId::from_index(self.vcpu_dom.len());
        let mut dom = Domain::new(id, spec.kind, vcpu, spec.pinned_cpu);
        dom.target_pages = spec.pages;
        dom.program = Some(spec.program);
        self.vcpu_dom.push(id);
        self.domains.push(dom);
        Some(id)
    }

    // ------------------------------------------------------------------
    // Micro-op execution
    // ------------------------------------------------------------------

    fn step_hv(&mut self, cpu: CpuId) -> StepOutcome {
        let i = cpu.index();
        let frame = match self.stacks[i].last() {
            Some(f) => f,
            None => {
                self.cpu_mode[i] = CpuMode::Run;
                return StepOutcome::Idle;
            }
        };
        if frame.pc >= frame.program.len() {
            self.retire_frame(i);
            return StepOutcome::HvOp;
        }
        let op = frame.program.ops()[frame.pc];
        let cause = frame.program.cause;
        let logged = frame.program.logged;

        let mut log_cycles = Cycles::ZERO;
        let mut advance_pc = true;

        match op {
            MicroOp::Compute => {}
            MicroOp::AssertNotInIrq => {
                if self.percpu[i].local_irq_count != 0 {
                    self.raise_panic(cpu, "ASSERT(!in_irq()) failed");
                }
            }
            MicroOp::EnterIrq => self.percpu[i].local_irq_count += 1,
            MicroOp::LeaveIrq => {
                if self.percpu[i].local_irq_count == 0 {
                    self.raise_panic(cpu, "local_irq_count underflow");
                } else {
                    self.percpu[i].local_irq_count -= 1;
                }
            }
            MicroOp::Acquire(l) => match self.locks.acquire(l, cpu) {
                AcquireOutcome::Acquired => {}
                AcquireOutcome::Contended(_) => advance_pc = false, // spin
            },
            MicroOp::Release(l) => self.locks.release(l),
            MicroOp::IncRef(p) => {
                if let Err(e) = self.pft.inc_ref(p) {
                    self.raise_panic(cpu, format!("BUG: {e}"));
                } else if logged && self.support.undo_logging {
                    if let Some(v) = cause.vcpu() {
                        self.undo_log.push((v, UndoEntry::DecRef(p)));
                        log_cycles = Cycles(self.tuning.cycles_per_log_write);
                    }
                }
            }
            MicroOp::DecRef(p) => {
                if let Err(e) = self.pft.dec_ref(p) {
                    self.raise_panic(cpu, format!("BUG: {e}"));
                } else if logged && self.support.undo_logging {
                    if let Some(v) = cause.vcpu() {
                        self.undo_log.push((v, UndoEntry::IncRef(p)));
                        log_cycles = Cycles(self.tuning.cycles_per_log_write);
                    }
                }
            }
            MicroOp::SetValidated(p, val) => {
                let old = self.pft.get(p).map(|d| d.validated).unwrap_or(false);
                if val && old && cause.vcpu().is_some() {
                    // Xen BUG(): validating an already-validated page —
                    // the signature of a retried pin whose first execution
                    // was abandoned after the bit was set but before the
                    // undo-log write.
                    self.raise_panic(cpu, format!("BUG: page {p} already validated"));
                } else if let Err(e) = self.pft.set_validated(p, val) {
                    self.raise_panic(cpu, format!("BUG: {e}"));
                }
            }
            MicroOp::LogUndo(entry) => {
                if logged && self.support.undo_logging {
                    if let Some(v) = cause.vcpu() {
                        self.undo_log.push((v, entry));
                        log_cycles = Cycles(self.tuning.cycles_per_log_write);
                    }
                }
            }
            MicroOp::AllocPage(dom) => match self.pft.alloc(Some(dom), PageState::DomainOwned) {
                Ok(p) => {
                    self.domains[dom.index()].owned_pages.push(p);
                    if logged && self.support.undo_logging {
                        if let Some(v) = cause.vcpu() {
                            self.undo_log.push((v, UndoEntry::UnallocPage(p)));
                            log_cycles = Cycles(self.tuning.cycles_per_log_write);
                        }
                    }
                }
                Err(e) => self.raise_panic(cpu, format!("BUG in page allocator: {e}")),
            },
            MicroOp::FreePage(dom, p) => {
                self.domains[dom.index()].owned_pages.retain(|x| *x != p);
                if let Err(e) = self.pft.free(p) {
                    self.raise_panic(cpu, format!("BUG in page free: {e}"));
                }
            }
            MicroOp::PopTimerEvent(kind) => {
                self.timers.remove_kind(kind);
            }
            MicroOp::RearmTimerEvent(kind, period) => {
                let now = self.cpu_now[i];
                self.timers.insert(
                    cpu,
                    TimerEvent {
                        deadline: now + period,
                        kind,
                        period: Some(period),
                    },
                );
            }
            MicroOp::TimeSyncApply => {
                if self.boot_scratch_corrupted {
                    self.raise_panic(cpu, "BUG: corrupted platform time records");
                } else {
                    self.last_time_sync = self.cpu_now[i];
                }
            }
            MicroOp::HeartbeatIncrement => self.percpu[i].watchdog.heartbeat += 1,
            MicroOp::PostGuestEvent(dom, ev) => {
                let over_ring = matches!(ev, GuestEventKind::NetRx { .. })
                    && self
                        .net
                        .as_ref()
                        .map(|n| self.irqs.pending_events(dom) >= n.ring_capacity)
                        .unwrap_or(false);
                if over_ring {
                    if let Some(n) = self.net.as_mut() {
                        n.drops += 1;
                        n.delivered += 1;
                    }
                } else {
                    if let GuestEventKind::NetRx { .. } = ev {
                        if let Some(n) = self.net.as_mut() {
                            n.delivered += 1;
                        }
                    }
                    self.irqs.post_event(dom, ev);
                    // Overcommit lost-wakeup hole: the wake op that follows
                    // this post may be abandoned by recovery. Record the
                    // wake on the blocked vCPU so the scheduler-consistency
                    // repair honours it (never set on offline vCPUs).
                    if self.sched.credit_mode() && self.domains[dom.index()].blocked {
                        let v = self.domains[dom.index()].vcpu;
                        self.sched.note_pending_wake(v);
                    }
                }
            }
            MicroOp::ProgramApic => {
                let now = self.cpu_now[i];
                let deadline = self
                    .timers
                    .peek_deadline(cpu)
                    .unwrap_or(now + self.tuning.tick_period)
                    .max(now + SimDuration::from_micros(1));
                self.percpu[i].apic.program(deadline);
            }
            MicroOp::CsSetPercpuCurrent(v) => self.sched.cs_set_percpu_current(cpu, v),
            MicroOp::CsSetRunningOn(v, c) => self.sched.cs_set_running_on(v, c),
            MicroOp::CsSetIsCurrent(v, b) => self.sched.cs_set_is_current(v, b),
            MicroOp::SchedConsistencyAssert => {
                if let Err(inc) = self.sched.check_consistency(cpu) {
                    self.raise_panic(cpu, format!("ASSERT in schedule(): {}", inc.detail));
                }
            }
            MicroOp::CommitHypercall => {
                if let Some(v) = cause.vcpu() {
                    self.commit_hypercall(cpu, v);
                }
            }
            MicroOp::LogCompletion(idx) => {
                if let Some(v) = cause.vcpu() {
                    let dom = self.domain_of(v);
                    if let Some(p) = self.domains[dom.index()].pending.as_mut() {
                        p.completed_subcalls = idx + 1;
                    }
                    self.undo_log.retain(|(vc, _)| *vc != v);
                    log_cycles = Cycles(self.tuning.cycles_per_completion_log);
                }
            }
            MicroOp::DeliverSyscall => {
                if let Some(v) = cause.vcpu() {
                    let dom = self.domain_of(v);
                    let now = self.cpu_now[i];
                    self.domains[dom.index()].pending = None;
                    self.domains[dom.index()].notify(now, GuestNotice::SyscallDone);
                }
            }
            MicroOp::Eoi(vec) => self.irqs.eoi(cpu, vec),
            MicroOp::IoapicWrite(vec, route) => {
                self.irqs.ioapic_write(vec, route);
                self.horizon_dirty = true;
                if self.support.ioapic_write_log {
                    self.ioapic_log = Some(self.irqs.ioapic_snapshot());
                    log_cycles = Cycles(self.tuning.cycles_per_log_write);
                }
            }
            MicroOp::BuildDomain(dom) => {
                let target = self.domains[dom.index()].target_pages;
                let have = self.domains[dom.index()].owned_pages.len();
                for _ in have..target {
                    match self.pft.alloc(Some(dom), PageState::DomainOwned) {
                        Ok(p) => self.domains[dom.index()].owned_pages.push(p),
                        Err(e) => {
                            self.raise_panic(cpu, format!("BUG building domain: {e}"));
                            break;
                        }
                    }
                }
            }
            MicroOp::FinalizeDomain(dom) => {
                let vcpu = self.domains[dom.index()].vcpu;
                let pinned = self.domains[dom.index()].pinned_cpu;
                if self.sched.num_vcpus() <= vcpu.index() {
                    self.sched.register_vcpu(vcpu, pinned);
                    self.timers.insert(
                        pinned,
                        TimerEvent {
                            deadline: self.cpu_now[i] + self.tuning.tick_period,
                            kind: TimerEventKind::DomainTimer(vcpu),
                            period: Some(self.tuning.tick_period),
                        },
                    );
                }
                self.irqs.ensure_domain(dom);
                self.domains[dom.index()].state = DomainState::Active;
            }
            MicroOp::TeardownDomain(dom) => {
                self.teardown_domain(cpu, dom);
            }
            MicroOp::UnblockVcpu(v) => {
                let dom = self.domain_of(v);
                if self.domains[dom.index()].is_active() && self.domains[dom.index()].blocked {
                    self.domains[dom.index()].blocked = false;
                    self.sched.enqueue(v);
                }
            }
            MicroOp::EnqueueVcpu(v) => {
                let dom = self.domain_of(v);
                if self.domains[dom.index()].is_active() && !self.domains[dom.index()].blocked {
                    self.sched.enqueue(v);
                }
            }
            MicroOp::DequeueVcpu(v) => self.sched.dequeue(v),
            MicroOp::SchedCreditTick => self.sched.credit_tick(cpu),
            MicroOp::SchedMigrateEnqueue { v, to } => self.sched.migrate_enqueue(v, to),
            MicroOp::SchedMigrateDequeue { v, from } => self.sched.migrate_dequeue(v, from),
            MicroOp::SchedSetAssigned { v, to } => self.sched.set_assigned(v, to),
            MicroOp::RecordNetReply(seq) => {
                let now = self.cpu_now[i];
                self.net_replies.push((seq, now));
            }
            // Virtio ring micro-ops are lenient: on an empty window they do
            // nothing (a retried or repaired transaction re-runs the whole
            // handler, and earlier stages may already have drained).
            MicroOp::VqPopAvail { dev, q } => {
                if let Some(d) = self.virtio.devices.get_mut(dev as usize) {
                    d.queues[q as usize & 1].pop_avail();
                }
            }
            MicroOp::VqDeviceWork { dev, q } => {
                if (dev as usize) < self.virtio.devices.len() {
                    self.virtio.device_work(dev as usize, q as usize & 1);
                }
            }
            MicroOp::VqLogComplete { dev, q } => {
                if let Some(d) = self.virtio.devices.get_mut(dev as usize) {
                    d.queues[q as usize & 1].log_complete();
                }
            }
            MicroOp::VqPushUsed { dev, q } => {
                if let Some(d) = self.virtio.devices.get_mut(dev as usize) {
                    d.queues[q as usize & 1].push_used();
                }
            }
            MicroOp::VqRaiseIrq { dev } => {
                if let Some(d) = self.virtio.devices.get(dev as usize) {
                    if d.undelivered() > 0 {
                        if let Some(target) = self.irqs.ioapic_route(d.vector) {
                            self.irqs.raise(target, d.vector);
                        }
                    }
                }
            }
            MicroOp::VqDeliverUsed(vec) => self.virtio_deliver_used(vec),
        }

        // Charge cycles and advance. Pure log writes are a store plus a
        // pointer bump, far cheaper than a full micro-op.
        let is_log_op = matches!(op, MicroOp::LogUndo(_) | MicroOp::LogCompletion(_));
        let base = if is_log_op {
            Cycles(LOG_OP_BASE_CYCLES) + log_cycles
        } else {
            Cycles(self.tuning.cycles_per_micro_op) + log_cycles
        };
        self.accounting.charge_hv(cpu, base, log_cycles);
        let ns = self.op_ns(base, is_log_op as usize);
        self.advance(cpu, SimDuration::from_nanos(ns));

        if self.detection.is_some() {
            return StepOutcome::Frozen;
        }

        if advance_pc {
            if let Some(f) = self.stacks[i].last_mut() {
                f.pc += 1;
                if f.pc >= f.program.len() {
                    self.retire_frame(i);
                }
            }
        }
        StepOutcome::HvOp
    }

    /// Pops the finished top frame of CPU `i`'s stack, recycling its op
    /// buffer into the CPU's program pool, and drops back to `Run` mode
    /// when the stack empties.
    fn retire_frame(&mut self, i: usize) {
        if let Some(f) = self.stacks[i].pop() {
            if self.pooling {
                if let Some(buf) = f.program.into_buffer() {
                    self.pools[i].give(buf);
                }
            }
        }
        if self.stacks[i].is_empty() {
            self.cpu_mode[i] = CpuMode::Run;
        }
    }

    /// An empty micro-op buffer and its paired superop-table buffer for a
    /// handler builder on `cpu`: pooled when [`Hypervisor::pooling`] is
    /// on, freshly allocated otherwise.
    fn take_buf(&mut self, cpu: CpuId) -> (Vec<MicroOp>, Vec<u16>) {
        if self.pooling {
            self.pools[cpu.index()].take()
        } else {
            (Vec::new(), Vec::new())
        }
    }

    fn commit_hypercall(&mut self, cpu: CpuId, vcpu: VcpuId) {
        let dom_id = self.domain_of(vcpu);
        let now = self.cpu_now[cpu.index()];
        let pending = match self.domains[dom_id.index()].pending.take() {
            Some(p) => p,
            None => return,
        };
        // Request-specific completion bookkeeping. Multicalls apply the
        // guest-side pin bookkeeping of every sub-call.
        if let PendingKind::Hypercall(req) = &pending.kind {
            if let Some(calls) = req.multicall_calls() {
                for (idx, sub) in calls.iter().enumerate() {
                    let binding = pending
                        .bindings
                        .get(idx)
                        .map(|v| v.as_slice())
                        .unwrap_or(&[]);
                    self.apply_pin_bookkeeping(dom_id, sub, binding);
                }
            } else {
                let binding = pending
                    .bindings
                    .first()
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                self.apply_pin_bookkeeping(dom_id, req, binding);
            }
            if req == &HcRequest::SchedBlock {
                // Block only if no event snuck in meanwhile.
                if self.irqs.pending_events(dom_id) == 0 {
                    self.domains[dom_id.index()].blocked = true;
                    self.sched.block(vcpu);
                    // The vCPU leaves the CPU: make the percpu slot
                    // consistent (the handler's Cs ops already did).
                } else {
                    // Events pending: stay runnable and current.
                    self.sched.cs_set_percpu_current(cpu, Some(vcpu));
                    self.sched.cs_set_running_on(vcpu, Some(cpu));
                    self.sched.cs_set_is_current(vcpu, true);
                }
            }
        }
        // The undo log for this vCPU is dead once the hypercall commits.
        self.undo_log.retain(|(v, _)| *v != vcpu);
        self.recycle_bindings(pending.bindings);
        self.domains[dom_id.index()].notify(now, GuestNotice::HypercallDone { ok: true });
    }

    /// Applies the guest-side pin-list bookkeeping for a completed request.
    fn apply_pin_bookkeeping(&mut self, dom_id: DomId, req: &HcRequest, binding: &[PageNum]) {
        match req {
            HcRequest::PinPages(_) => {
                let d = &mut self.domains[dom_id.index()];
                for p in binding {
                    if !d.pinned_pages.contains(p) {
                        d.pinned_pages.push(*p);
                    }
                }
            }
            HcRequest::UnpinPages(_) => {
                self.domains[dom_id.index()]
                    .pinned_pages
                    .retain(|p| !binding.contains(p));
            }
            _ => {}
        }
    }

    fn teardown_domain(&mut self, cpu: CpuId, dom: DomId) {
        // Drop pin references first (each pinned page holds one reference
        // and its validation bit).
        let pinned = std::mem::take(&mut self.domains[dom.index()].pinned_pages);
        for p in pinned {
            if let Err(e) = self.pft.set_validated(p, false) {
                self.raise_panic(cpu, format!("BUG tearing down domain: {e}"));
                return;
            }
            if let Err(e) = self.pft.dec_ref(p) {
                self.raise_panic(cpu, format!("BUG tearing down domain: {e}"));
                return;
            }
        }
        let owned = std::mem::take(&mut self.domains[dom.index()].owned_pages);
        for p in owned {
            if let Err(e) = self.pft.free(p) {
                // A stray reference from a double-applied retry manifests
                // here, exactly as Xen's BUG_ON(page_get_owner...) would.
                self.raise_panic(cpu, format!("BUG freeing domain memory: {e}"));
                return;
            }
        }
        let vcpu = self.domains[dom.index()].vcpu;
        self.sched.offline_vcpus(&[vcpu]);
        self.irqs.clear_domain(dom);
        self.domains[dom.index()].state = DomainState::Destroyed;
    }

    // ------------------------------------------------------------------
    // Recovery support (called by the `nlh-core` mechanisms)
    // ------------------------------------------------------------------

    /// Discards every hypervisor execution thread (microreset's core step)
    /// and parks all CPUs in the recovery busy-wait. The partial effects of
    /// the discarded programs remain in place — that residue is what the
    /// recovery enhancements must repair.
    pub fn discard_all_stacks(&mut self) -> AbandonReport {
        let mut frames = 0;
        let mut in_hv = Vec::new();
        for i in 0..self.stacks.len() {
            for f in std::mem::take(&mut self.stacks[i]) {
                frames += 1;
                if let Some(v) = f.program.cause.vcpu() {
                    in_hv.push(v);
                }
                if self.pooling {
                    if let Some(buf) = f.program.into_buffer() {
                        self.pools[i].give(buf);
                    }
                }
            }
            self.cpu_mode[i] = CpuMode::Parked;
            self.percpu[i].interrupts_disabled = true;
        }
        // vCPUs whose request was in flight but whose CPU had already been
        // wedged/abandoned also count as "in the hypervisor".
        for d in &self.domains {
            if d.pending.is_some() && !in_hv.contains(&d.vcpu) {
                in_hv.push(d.vcpu);
            }
        }
        AbandonReport {
            frames_discarded: frames,
            in_hv_vcpus: in_hv,
            held_locks: self.locks.held_locks(),
        }
    }

    /// Saves the FS/GS of every vCPU currently loaded on a CPU (the
    /// "Save FS/GS" enhancement runs this when the error is detected).
    pub fn save_fsgs_all(&mut self) {
        for cpu in 0..self.num_cpus() {
            let c = CpuId::from_index(cpu);
            if let Some(v) = self.sched.current(c) {
                let dom = self.domain_of(v);
                self.percpu[cpu].saved_fs_gs = Some(self.domains[dom.index()].fs_gs);
            }
        }
    }

    /// Applies the FS/GS consequence at the end of recovery: vCPUs that
    /// were inside the hypervisor either get their registers restored from
    /// the save area or have them clobbered.
    pub fn finish_fsgs(&mut self, in_hv_vcpus: &[VcpuId], saved: bool) {
        let now = self.now_max();
        for &v in in_hv_vcpus {
            let dom = self.domain_of(v);
            if !saved {
                self.domains[dom.index()].fs_gs = (0, 0);
                self.domains[dom.index()].notify(now, GuestNotice::TlsClobbered);
            }
        }
        for pc in &mut self.percpu {
            pc.saved_fs_gs = None;
        }
    }

    /// Applies (and drains) the undo log for every vCPU with an uncommitted
    /// request — reverting the partial side effects of abandoned
    /// non-idempotent hypercalls before they are retried.
    pub fn apply_undo_log(&mut self) -> usize {
        let entries = std::mem::take(&mut self.undo_log);
        let n = entries.len();
        for (_, entry) in entries.into_iter().rev() {
            match entry {
                UndoEntry::DecRef(p) => {
                    let _ = self.pft.dec_ref(p);
                }
                UndoEntry::IncRef(p) => {
                    let _ = self.pft.inc_ref(p);
                }
                UndoEntry::SetValidated(p, v) => {
                    let _ = self.pft.set_validated(p, v);
                }
                UndoEntry::UnallocPage(p) => {
                    // Remove from whichever domain got it, then free.
                    for d in &mut self.domains {
                        d.owned_pages.retain(|x| *x != p);
                    }
                    let _ = self.pft.free(p);
                }
            }
        }
        n
    }

    /// Discards the hypervisor execution thread of a single CPU (the
    /// alternative design choice discussed in Section III-C: discard only
    /// the thread of the CPU that detected the error). Other CPUs keep
    /// their in-flight programs and resume them after recovery.
    pub fn discard_one_stack(&mut self, cpu: CpuId) -> AbandonReport {
        let i = cpu.index();
        let mut in_hv = Vec::new();
        let frames = self.stacks[i].len();
        for f in std::mem::take(&mut self.stacks[i]) {
            if let Some(v) = f.program.cause.vcpu() {
                in_hv.push(v);
            }
            if self.pooling {
                if let Some(buf) = f.program.into_buffer() {
                    self.pools[i].give(buf);
                }
            }
        }
        for c in 0..self.num_cpus() {
            self.cpu_mode[c] = CpuMode::Parked;
            self.percpu[c].interrupts_disabled = true;
        }
        AbandonReport {
            frames_discarded: frames,
            in_hv_vcpus: in_hv,
            held_locks: self.locks.held_locks(),
        }
    }

    /// Resumes normal operation after recovery: synchronizes all CPU clocks
    /// to `max + latency`, clears modes/detection, resets the watchdog.
    /// CPUs whose hypervisor stack still holds frames (the
    /// discard-faulting-only policy) resume executing them.
    pub fn resume_after(&mut self, latency: SimDuration) {
        let resume_at = self.now_max() + latency;
        for i in 0..self.num_cpus() {
            self.cpu_now[i] = resume_at;
            self.cpu_mode[i] = if self.stacks[i].is_empty() {
                CpuMode::Run
            } else {
                CpuMode::Hv
            };
            self.percpu[i].interrupts_disabled = false;
            self.percpu[i]
                .watchdog
                .reset(resume_at, self.tuning.watchdog_nmi_period);
        }
        self.detection = None;
        // The clocks were just rewritten wholesale: the cached `step_any`
        // pick is meaningless now.
        self.next_valid = false;
        nlh_sim::trace_event!(
            self.trace,
            resume_at,
            TraceLevel::Event,
            "resumed after recovery ({latency})"
        );
    }

    /// Reprograms every CPU's APIC timer from its software timer heap
    /// (NiLiHype's "reprogram hardware timer" enhancement; ReHype gets this
    /// from the reboot).
    pub fn reprogram_all_apics(&mut self) {
        for cpu in 0..self.num_cpus() {
            let c = CpuId::from_index(cpu);
            let now = self.cpu_now[cpu];
            let deadline = self
                .timers
                .peek_deadline(c)
                .unwrap_or(now + self.tuning.tick_period)
                .max(now + SimDuration::from_micros(1));
            self.percpu[cpu].apic.program(deadline);
        }
    }
}

/// Picks up to `n` distinct elements from `pool` (fewer if the pool is
/// small) into `out`, shuffling through the reusable `idx` scratch so the
/// steady-state binding path performs no allocation. The RNG draws are
/// those of the original allocating version exactly.
fn pick_n_into(
    rng: &mut Pcg64,
    pool: &[PageNum],
    n: usize,
    idx: &mut Vec<usize>,
    out: &mut Vec<PageNum>,
) {
    out.clear();
    if pool.is_empty() || n == 0 {
        return;
    }
    if pool.len() <= n {
        out.extend_from_slice(pool);
        return;
    }
    idx.clear();
    idx.extend(0..pool.len());
    rng.shuffle(idx);
    idx.truncate(n);
    out.extend(idx.iter().map(|&i| pool[i]));
}

/// Allocating convenience wrapper over [`pick_n_into`] (tests).
#[cfg(test)]
fn pick_n(rng: &mut Pcg64, pool: &[PageNum], n: usize) -> Vec<PageNum> {
    let mut out = Vec::new();
    pick_n_into(rng, pool, n, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{DomainKind, GuestProgram, IdleLoop};

    fn small_hv() -> Hypervisor {
        Hypervisor::new(MachineConfig::small(), 7)
    }

    fn app_spec(cpu: usize) -> DomainSpec {
        DomainSpec {
            kind: DomainKind::App,
            pages: 64,
            pinned_cpu: CpuId::from_index(cpu),
            program: Box::new(IdleLoop),
        }
    }

    #[test]
    fn boots_and_ticks_without_domains() {
        let mut hv = small_hv();
        hv.run_for(SimDuration::from_millis(250));
        assert!(hv.detection().is_none());
        // Heartbeats ran on every CPU.
        for cpu in 0..hv.num_cpus() {
            assert!(hv.percpu[cpu].watchdog.heartbeat >= 2, "cpu{cpu} heartbeat");
        }
        // Time sync ran.
        assert!(hv.last_time_sync > SimTime::ZERO);
    }

    #[test]
    fn apic_always_reprogrammed_by_handler() {
        let mut hv = small_hv();
        hv.run_for(SimDuration::from_millis(100));
        for cpu in 0..hv.num_cpus() {
            assert!(
                hv.percpu[cpu].apic.is_programmed(),
                "cpu{cpu} APIC must stay armed in steady state"
            );
        }
    }

    #[test]
    fn domains_run_and_stay_consistent() {
        let mut hv = small_hv();
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::Priv,
            pages: 32,
            pinned_cpu: CpuId(0),
            program: Box::new(IdleLoop),
        });
        hv.add_boot_domain(app_spec(1));
        hv.run_for(SimDuration::from_millis(200));
        assert!(hv.detection().is_none());
        assert!(hv.sched.check_all().is_ok());
        assert_eq!(hv.pft.count_inconsistent(), 0);
        assert!(
            hv.locks.held_locks().is_empty(),
            "steady state holds no locks"
        );
        for cpu in 0..hv.num_cpus() {
            assert_eq!(hv.percpu[cpu].local_irq_count, 0);
        }
    }

    #[test]
    fn guest_cycles_dominate_hypervisor_cycles() {
        let mut hv = small_hv();
        hv.add_boot_domain(app_spec(1));
        hv.run_for(SimDuration::from_millis(300));
        let share = hv.accounting.hypervisor_share();
        assert!(share > 0.0 && share < 0.30, "hv share = {share}");
    }

    #[test]
    fn discard_stacks_reports_in_flight_work() {
        let mut hv = small_hv();
        hv.add_boot_domain(app_spec(1));
        // Step until some CPU is mid-program.
        let mut guard = 0;
        while hv.stacks.iter().all(|s| s.is_empty()) && guard < 200_000 {
            hv.step_any();
            guard += 1;
        }
        assert!(guard < 200_000, "never entered the hypervisor");
        let report = hv.discard_all_stacks();
        assert!(report.frames_discarded >= 1);
        for i in 0..hv.num_cpus() {
            assert_eq!(hv.cpu_mode(CpuId::from_index(i)), CpuMode::Parked);
            assert!(hv.stacks[i].is_empty());
        }
    }

    #[test]
    fn resume_after_synchronizes_clocks_and_clears_detection() {
        let mut hv = small_hv();
        hv.raise_panic(CpuId(2), "test");
        assert!(hv.detection().is_some());
        hv.discard_all_stacks();
        hv.resume_after(SimDuration::from_millis(22));
        assert!(hv.detection().is_none());
        let t0 = hv.cpu_now(CpuId(0));
        for cpu in 1..hv.num_cpus() {
            assert_eq!(hv.cpu_now(CpuId::from_index(cpu)), t0);
        }
        for i in 0..hv.num_cpus() {
            assert_eq!(hv.cpu_mode(CpuId::from_index(i)), CpuMode::Run);
        }
    }

    #[test]
    fn first_detection_wins() {
        let mut hv = small_hv();
        hv.raise_panic(CpuId(0), "first");
        hv.raise_hang(CpuId(1), "second");
        assert_eq!(hv.detection().unwrap().reason, "first");
        assert_eq!(hv.detection().unwrap().kind, DetectionKind::Panic);
    }

    #[test]
    fn frozen_machine_does_not_step() {
        let mut hv = small_hv();
        hv.raise_panic(CpuId(0), "frozen");
        let before = hv.now();
        let (_, out) = hv.step_any();
        assert_eq!(out, StepOutcome::Frozen);
        assert_eq!(hv.now(), before);
    }

    #[test]
    fn unprogrammed_apic_leads_to_watchdog_hang() {
        let mut hv = small_hv();
        // Disarm CPU 3's APIC: its heartbeat events can never run.
        hv.percpu[3].apic.disarm();
        hv.run_for(SimDuration::from_secs(2));
        let det = hv.detection().expect("watchdog should fire");
        assert_eq!(det.kind, DetectionKind::Hang);
        assert_eq!(det.cpu, CpuId(3));
    }

    #[test]
    fn held_timer_lock_leads_to_hang() {
        let mut hv = small_hv();
        // Leak CPU 2's timer-heap lock, as an abandoned thread would.
        let l = hv.timer_locks[2];
        hv.locks.acquire(l, CpuId(5));
        hv.run_for(SimDuration::from_secs(2));
        let det = hv.detection().expect("spin on leaked lock must hang");
        assert_eq!(det.kind, DetectionKind::Hang);
    }

    #[test]
    fn leaked_irq_count_panics_on_next_tick() {
        let mut hv = small_hv();
        hv.percpu[4].local_irq_count = 1; // abandonment residue
        hv.run_for(SimDuration::from_secs(1));
        let det = hv.detection().expect("exit-path assert must fire");
        assert_eq!(det.kind, DetectionKind::Panic);
        assert!(det.reason.contains("in_irq"));
    }

    #[test]
    fn lost_heartbeat_event_false_hang() {
        let mut hv = small_hv();
        // Model a popped-but-not-rearmed heartbeat on CPU 1.
        assert!(hv
            .timers
            .remove_kind(TimerEventKind::WatchdogHeartbeat(CpuId(1))));
        hv.run_for(SimDuration::from_secs(2));
        let det = hv.detection().expect("watchdog false positive");
        assert_eq!(det.kind, DetectionKind::Hang);
        assert_eq!(det.cpu, CpuId(1));
    }

    #[test]
    fn torn_context_switch_panics_via_assert() {
        let mut hv = small_hv();
        hv.add_boot_domain(app_spec(1));
        // Tear the metadata, as a fault mid-switch would.
        hv.sched.cs_set_running_on(VcpuId(0), None);
        hv.run_for(SimDuration::from_millis(100));
        let det = hv.detection().expect("sched assert must fire");
        assert!(det.reason.contains("schedule"), "{}", det.reason);
    }

    #[test]
    fn netbench_traffic_flows_and_replies_recorded() {
        use crate::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
        /// Minimal echo guest: replies to each NetRx.
        #[derive(Debug, Clone)]
        struct Echo {
            backlog: Vec<u64>,
        }
        impl GuestProgram for Echo {
            fn name(&self) -> &str {
                "Echo"
            }
            fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
                match self.backlog.pop() {
                    Some(seq) => GuestOp::Hypercall(HcRequest::NetReply(seq)),
                    None => GuestOp::Block,
                }
            }
            fn notice(&mut self, _now: SimTime, n: GuestNotice) {
                if let GuestNotice::Event(GuestEventKind::NetRx { seq }) = n {
                    self.backlog.push(seq);
                }
            }
            fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
                WorkloadVerdict::Running
            }
            fn clone_box(&self) -> Box<dyn GuestProgram> {
                Box::new(self.clone())
            }
        }
        let mut hv = small_hv();
        let dom = hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 16,
            pinned_cpu: CpuId(1),
            program: Box::new(Echo { backlog: vec![] }),
        });
        hv.attach_net_traffic(dom, SimDuration::from_millis(1));
        hv.run_for(SimDuration::from_millis(300));
        assert!(hv.detection().is_none());
        assert!(
            hv.net_replies.len() > 200,
            "expected ~300 replies, got {}",
            hv.net_replies.len()
        );
        assert_eq!(hv.net.as_ref().unwrap().drops, 0);
    }

    /// Minimal virtio guest: one queue-notify kick, then block until the
    /// matching completion event arrives.
    #[derive(Debug, Clone)]
    struct KickOnce {
        queue: u8,
        payload: u64,
        kicked: bool,
        completed: bool,
    }

    impl KickOnce {
        fn new(queue: u8, payload: u64) -> Self {
            KickOnce {
                queue,
                payload,
                kicked: false,
                completed: false,
            }
        }
    }

    impl GuestProgram for KickOnce {
        fn name(&self) -> &str {
            "KickOnce"
        }
        fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
            if !self.kicked {
                self.kicked = true;
                GuestOp::VirtioKick {
                    queue: self.queue,
                    payload: self.payload,
                }
            } else if self.completed {
                GuestOp::Done
            } else {
                GuestOp::Block
            }
        }
        fn notice(&mut self, _now: SimTime, notice: GuestNotice) {
            if let GuestNotice::Event(
                GuestEventKind::VirtioBlkDone { .. } | GuestEventKind::VirtioNetTxDone { .. },
            ) = notice
            {
                self.completed = true;
            }
        }
        fn verdict(&self, _now: SimTime, _deadline: SimTime) -> crate::domain::WorkloadVerdict {
            if self.completed {
                crate::domain::WorkloadVerdict::CompletedOk
            } else {
                crate::domain::WorkloadVerdict::Failed(crate::domain::FailReason::Incomplete)
            }
        }
        fn clone_box(&self) -> Box<dyn GuestProgram> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn virtio_blk_kick_completes_and_delivers() {
        let mut hv = small_hv();
        let dom = hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 32,
            pinned_cpu: CpuId(1),
            program: Box::new(KickOnce::new(nlh_virtio::Q_RX as u8, 42)),
        });
        hv.add_virtio_blk(dom);
        hv.run_for(SimDuration::from_millis(50));
        assert!(hv.detection().is_none());
        assert!(hv.domains[dom.index()].finished, "completion delivered");
        let q = &hv.virtio.devices[0].queues[nlh_virtio::Q_RX];
        assert_eq!(q.avail_idx(), 1);
        assert_eq!(q.used_idx(), 1);
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.undelivered(), 0);
        assert!(hv.virtio.check_invariants().is_ok());
    }

    #[test]
    fn vswitch_forwards_and_interrupts_peer() {
        let mut hv = small_hv();
        let d1 = hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 32,
            pinned_cpu: CpuId(1),
            program: Box::new(KickOnce::new(nlh_virtio::Q_TX as u8, 7)),
        });
        let d2 = hv.add_boot_domain(app_spec(2));
        let p1 = hv.add_virtio_net(d1);
        let p2 = hv.add_virtio_net(d2);
        hv.connect_vswitch(p1, p2);
        hv.run_for(SimDuration::from_millis(50));
        assert!(hv.detection().is_none());
        assert_eq!(hv.virtio.forwarded, 1, "frame crossed the vswitch");
        assert_eq!(hv.virtio.dropped_no_buffer, 0);
        assert!(hv.domains[d1.index()].finished, "tx completion delivered");
        let rx = &hv.virtio.devices[p2].queues[nlh_virtio::Q_RX];
        assert_eq!(rx.undelivered(), 0, "peer rx frame delivered");
        assert_eq!(
            rx.avail_pending(),
            nlh_virtio::QUEUE_SIZE as u64,
            "consumed rx buffer reposted"
        );
        assert!(hv.virtio.check_invariants().is_ok());
    }

    #[test]
    fn abandoned_notify_leaves_residue_repair_completes_it() {
        let mut hv = small_hv();
        let dom = hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 32,
            pinned_cpu: CpuId(1),
            program: Box::new(KickOnce::new(nlh_virtio::Q_RX as u8, 9)),
        });
        hv.add_virtio_blk(dom);
        // Step until the notify handler has popped the descriptor but not
        // yet logged its completion (pc 3/4 = the in-flight window).
        let mut guard = 0;
        loop {
            hv.step_any();
            guard += 1;
            assert!(guard < 500_000, "never reached the virtio MMIO handler");
            if let Some((EntryCause::VirtioMmio(_), pc)) = hv.cpu_program_context(CpuId(1)) {
                if pc == 3 {
                    break;
                }
            }
        }
        // Microreset strikes: abandon everything mid-transaction.
        hv.discard_all_stacks();
        assert_eq!(hv.virtio.devices[0].queues[nlh_virtio::Q_RX].in_flight(), 1);
        let rep = hv.virtio_repair();
        assert_eq!(rep.reprocessed, 1, "in-flight request re-executed");
        assert_eq!(hv.virtio.devices[0].queues[nlh_virtio::Q_RX].in_flight(), 0);
        assert!(
            hv.virtio.devices[0].undelivered() > 0,
            "completion published, awaiting delivery"
        );
        assert!(
            hv.irqs.is_pending(CpuId(1), VEC_BLK),
            "repair re-raised the completion interrupt"
        );
        assert_eq!(hv.virtio_repair().total(), 0, "repair is idempotent");
        hv.resume_after(SimDuration::from_millis(22));
        hv.run_for(SimDuration::from_millis(50));
        assert!(hv.domains[dom.index()].finished, "guest saw the completion");
        assert!(hv.virtio.check_invariants().is_ok());
    }

    #[test]
    fn pick_n_properties() {
        let mut rng = Pcg64::seed_from_u64(3);
        let pool: Vec<PageNum> = (0..10).map(PageNum::from_index).collect();
        let picked = pick_n(&mut rng, &pool, 4);
        assert_eq!(picked.len(), 4);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "no duplicates");
        assert!(pick_n(&mut rng, &pool, 0).is_empty());
        assert_eq!(pick_n(&mut rng, &pool, 99).len(), 10);
        assert!(pick_n(&mut rng, &[], 3).is_empty());
    }
}
