//! Cycle accounting, split guest vs hypervisor.
//!
//! The paper's Figure 3 measures *hypervisor processing overhead*: the
//! percentage increase in unhalted cycles spent executing hypervisor code
//! with the NiLiHype modifications, relative to stock Xen, using one
//! hardware performance counter per CPU (Section VII-C). This module keeps
//! the equivalent counters: per-CPU cycles attributed to guest execution,
//! hypervisor execution, and — separately — the logging performed to support
//! recovery (the overhead source).

use nlh_sim::{CpuId, Cycles};
use serde::{Deserialize, Serialize};

/// Per-CPU cycle counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCounters {
    /// Cycles executing guest code.
    pub guest: Cycles,
    /// Cycles executing hypervisor code (including logging).
    pub hypervisor: Cycles,
    /// Subset of `hypervisor` spent on recovery-support logging.
    pub logging: Cycles,
}

/// Cycle accounting across the machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAccounting {
    per_cpu: Vec<CpuCounters>,
    /// Count of hypervisor micro-ops executed (drives the fault injector's
    /// second-level trigger, which fires after a number of instructions
    /// executed *in the target hypervisor* — Section VI-C).
    pub hv_micro_ops: u64,
}

impl CycleAccounting {
    /// Zeroed counters for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        CycleAccounting {
            per_cpu: vec![CpuCounters::default(); num_cpus],
            hv_micro_ops: 0,
        }
    }

    /// Charges guest cycles to `cpu`.
    pub fn charge_guest(&mut self, cpu: CpuId, cycles: Cycles) {
        self.per_cpu[cpu.index()].guest += cycles;
    }

    /// Charges hypervisor cycles to `cpu`; `logging_part` of them are
    /// attributed to recovery-support logging.
    pub fn charge_hv(&mut self, cpu: CpuId, cycles: Cycles, logging_part: Cycles) {
        let c = &mut self.per_cpu[cpu.index()];
        c.hypervisor += cycles;
        c.logging += logging_part;
        self.hv_micro_ops += 1;
    }

    /// Charges `count` fused hypervisor micro-ops to `cpu` in one call:
    /// `cycles` is the *total* across the run and every fused op counts
    /// toward the injection trigger, exactly as `count` individual
    /// [`CycleAccounting::charge_hv`] calls with zero logging would.
    /// Used by the superop dispatcher for fused `Compute` runs (which
    /// never carry a logging share).
    pub fn charge_hv_span(&mut self, cpu: CpuId, cycles: Cycles, count: u64) {
        let c = &mut self.per_cpu[cpu.index()];
        c.hypervisor += cycles;
        self.hv_micro_ops += count;
    }

    /// Counters for one CPU.
    pub fn cpu(&self, cpu: CpuId) -> &CpuCounters {
        &self.per_cpu[cpu.index()]
    }

    /// Total hypervisor cycles across CPUs (the Figure 3 numerator basis).
    pub fn total_hypervisor(&self) -> Cycles {
        self.per_cpu
            .iter()
            .fold(Cycles::ZERO, |a, c| a + c.hypervisor)
    }

    /// Total guest cycles across CPUs.
    pub fn total_guest(&self) -> Cycles {
        self.per_cpu.iter().fold(Cycles::ZERO, |a, c| a + c.guest)
    }

    /// Total logging cycles across CPUs.
    pub fn total_logging(&self) -> Cycles {
        self.per_cpu.iter().fold(Cycles::ZERO, |a, c| a + c.logging)
    }

    /// Fraction of all cycles spent in the hypervisor — the paper cites
    /// "less than 5% of CPU cycles" for typical deployments (Section VII-A).
    pub fn hypervisor_share(&self) -> f64 {
        let hv = self.total_hypervisor().count() as f64;
        let total = hv + self.total_guest().count() as f64;
        if total == 0.0 {
            0.0
        } else {
            hv / total
        }
    }

    /// Resets all counters (used at measurement-window start; the paper
    /// synchronizes benchmarks and measures only the window in which all of
    /// them run).
    pub fn reset(&mut self) {
        for c in &mut self.per_cpu {
            *c = CpuCounters::default();
        }
        // hv_micro_ops deliberately NOT reset: the injection trigger counts
        // from boot, matching Gigan's behaviour.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_cpu() {
        let mut acc = CycleAccounting::new(2);
        acc.charge_guest(CpuId(0), Cycles(100));
        acc.charge_hv(CpuId(0), Cycles(10), Cycles(2));
        acc.charge_hv(CpuId(1), Cycles(5), Cycles::ZERO);
        assert_eq!(acc.cpu(CpuId(0)).guest, Cycles(100));
        assert_eq!(acc.cpu(CpuId(0)).hypervisor, Cycles(10));
        assert_eq!(acc.cpu(CpuId(0)).logging, Cycles(2));
        assert_eq!(acc.total_hypervisor(), Cycles(15));
        assert_eq!(acc.total_guest(), Cycles(100));
        assert_eq!(acc.total_logging(), Cycles(2));
        assert_eq!(acc.hv_micro_ops, 2);
    }

    #[test]
    fn span_charge_equals_repeated_single_charges() {
        let mut one = CycleAccounting::new(1);
        for _ in 0..7 {
            one.charge_hv(CpuId(0), Cycles(2500), Cycles::ZERO);
        }
        let mut span = CycleAccounting::new(1);
        span.charge_hv_span(CpuId(0), Cycles(2500 * 7), 7);
        assert_eq!(one, span);
    }

    #[test]
    fn hypervisor_share() {
        let mut acc = CycleAccounting::new(1);
        acc.charge_guest(CpuId(0), Cycles(95));
        acc.charge_hv(CpuId(0), Cycles(5), Cycles::ZERO);
        assert!((acc.hypervisor_share() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_share_is_zero() {
        assert_eq!(CycleAccounting::new(4).hypervisor_share(), 0.0);
    }

    #[test]
    fn reset_preserves_trigger_count() {
        let mut acc = CycleAccounting::new(1);
        acc.charge_hv(CpuId(0), Cycles(5), Cycles(1));
        acc.reset();
        assert_eq!(acc.total_hypervisor(), Cycles::ZERO);
        assert_eq!(acc.hv_micro_ops, 1, "trigger counter survives reset");
    }
}
