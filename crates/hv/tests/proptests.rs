//! Property-based tests of the hypervisor substrate's core data structures.

use nlh_hv::locks::{AcquireOutcome, LockPlacement, LockRegistry};
use nlh_hv::mem::{PageFrameTable, PageState};
use nlh_hv::sched::Scheduler;
use nlh_hv::timers::{TimerEvent, TimerEventKind, TimerSubsystem};
use nlh_sim::{CpuId, DomId, PageNum, SimDuration, SimTime, VcpuId};
use proptest::prelude::*;

/// Abstract page-frame operations for sequence testing.
#[derive(Debug, Clone, Copy)]
enum PfOp {
    Alloc,
    Free(u8),
    IncRef(u8),
    DecRef(u8),
    Validate(u8),
    Invalidate(u8),
    Scan,
}

fn pf_op_strategy() -> impl Strategy<Value = PfOp> {
    prop_oneof![
        Just(PfOp::Alloc),
        any::<u8>().prop_map(PfOp::Free),
        any::<u8>().prop_map(PfOp::IncRef),
        any::<u8>().prop_map(PfOp::DecRef),
        any::<u8>().prop_map(PfOp::Validate),
        any::<u8>().prop_map(PfOp::Invalidate),
        Just(PfOp::Scan),
    ]
}

proptest! {
    /// Whatever sequence of operations runs, the page-frame table's global
    /// accounting stays intact: free + live = total, and a scan always
    /// drives the inconsistency count to zero.
    #[test]
    fn page_frame_table_accounting_holds(ops in prop::collection::vec(pf_op_strategy(), 0..200)) {
        let total = 64usize;
        let mut pft = PageFrameTable::new(total);
        let mut live: Vec<PageNum> = Vec::new();
        for op in ops {
            match op {
                PfOp::Alloc => {
                    if let Ok(p) = pft.alloc(Some(DomId(1)), PageState::DomainOwned) {
                        prop_assert!(!live.contains(&p), "double allocation of {p}");
                        live.push(p);
                    }
                }
                PfOp::Free(i) => {
                    if !live.is_empty() {
                        let idx = i as usize % live.len();
                        let p = live[idx];
                        // Only clean pages can be freed; emulate the real
                        // caller by clearing first.
                        let d = pft.get(p).unwrap();
                        if d.use_count == 0 && !d.validated {
                            pft.free(p).unwrap();
                            live.swap_remove(idx);
                        }
                    }
                }
                PfOp::IncRef(i) => {
                    if !live.is_empty() {
                        let p = live[i as usize % live.len()];
                        pft.inc_ref(p).unwrap();
                    }
                }
                PfOp::DecRef(i) => {
                    if !live.is_empty() {
                        let p = live[i as usize % live.len()];
                        let _ = pft.dec_ref(p); // may legitimately underflow-err
                    }
                }
                PfOp::Validate(i) => {
                    if !live.is_empty() {
                        let p = live[i as usize % live.len()];
                        pft.set_validated(p, true).unwrap();
                    }
                }
                PfOp::Invalidate(i) => {
                    if !live.is_empty() {
                        let p = live[i as usize % live.len()];
                        pft.set_validated(p, false).unwrap();
                    }
                }
                PfOp::Scan => {
                    pft.consistency_scan();
                    prop_assert_eq!(pft.count_inconsistent(), 0);
                }
            }
            prop_assert_eq!(pft.free_count() + live.len(), total);
        }
        pft.consistency_scan();
        prop_assert_eq!(pft.count_inconsistent(), 0);
    }

    /// Timer events always pop in non-decreasing deadline order.
    #[test]
    fn timer_pops_are_ordered(deadlines in prop::collection::vec(0u64..10_000, 1..64)) {
        let mut t = TimerSubsystem::new(1);
        for (i, ms) in deadlines.iter().enumerate() {
            t.insert(CpuId(0), TimerEvent {
                deadline: SimTime::from_micros(*ms),
                kind: TimerEventKind::OneShot(i as u64),
                period: None,
            });
        }
        let far = SimTime::from_secs(100);
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(ev) = t.pop_due(CpuId(0), far) {
            prop_assert!(ev.deadline >= last);
            last = ev.deadline;
            popped += 1;
        }
        prop_assert_eq!(popped, deadlines.len());
    }

    /// Reactivation after arbitrary event loss restores exactly the
    /// expected recurring set, idempotently.
    #[test]
    fn timer_reactivation_is_complete_and_idempotent(drop_mask in 0u16..64) {
        let mut t = TimerSubsystem::new(4);
        let period = SimDuration::from_millis(10);
        let expected: Vec<(TimerEventKind, CpuId, SimDuration)> = (0..4)
            .map(|c| (TimerEventKind::WatchdogHeartbeat(CpuId(c)), CpuId(c), period))
            .chain([(TimerEventKind::TimeSync, CpuId(0), period)])
            .collect();
        for (kind, cpu, _) in &expected {
            t.insert(*cpu, TimerEvent { deadline: SimTime::ZERO, kind: *kind, period: Some(period) });
        }
        for (i, (kind, _, _)) in expected.iter().enumerate() {
            if drop_mask & (1 << i) != 0 {
                t.remove_kind(*kind);
            }
        }
        t.reactivate_recurring(&expected, SimTime::from_millis(5));
        for (kind, _, _) in &expected {
            prop_assert!(t.contains_kind(*kind));
        }
        prop_assert_eq!(t.reactivate_recurring(&expected, SimTime::from_millis(5)), 0);
    }

    /// Any pattern of acquisitions is fully cleared by the two unlock
    /// passes recovery runs (heap locks + the static segment).
    #[test]
    fn lock_registry_release_passes_clear_everything(
        holders in prop::collection::vec((0u8..8, any::<bool>()), 0..32)
    ) {
        let mut reg = LockRegistry::new();
        let heap_ids: Vec<_> = (0..8)
            .map(|i| reg.register(format!("h{i}"), LockPlacement::Heap))
            .collect();
        for (i, (cpu, use_heap)) in holders.iter().enumerate() {
            let id = if *use_heap {
                heap_ids[i % heap_ids.len()]
            } else {
                nlh_hv::locks::StaticLock::ALL[i % 5].id()
            };
            let _ = reg.acquire(id, CpuId(*cpu as u32));
        }
        reg.unlock_heap_locks(heap_ids.clone());
        reg.unlock_static_segment();
        prop_assert!(reg.held_locks().is_empty());
        // Everything is acquirable again.
        for id in heap_ids {
            prop_assert_eq!(reg.acquire(id, CpuId(0)), AcquireOutcome::Acquired);
        }
    }

    /// `make_consistent_from_percpu` + `requeue_runnable` always produce a
    /// state that passes every scheduler assertion, from any torn state.
    #[test]
    fn scheduler_repair_always_converges(
        percpu in prop::collection::vec(prop::option::of(0u8..4), 4),
        torn in prop::collection::vec((0u8..4, prop::option::of(0u8..4), any::<bool>()), 0..8),
    ) {
        let mut s = Scheduler::new(4);
        for i in 0..4 {
            s.register_vcpu(VcpuId(i), CpuId(i));
        }
        for (c, v) in percpu.iter().enumerate() {
            s.cs_set_percpu_current(CpuId(c as u32), v.map(|x| VcpuId(x as u32)));
        }
        for (v, on, cur) in torn {
            s.cs_set_running_on(VcpuId(v as u32), on.map(|c| CpuId(c as u32)));
            s.cs_set_is_current(VcpuId(v as u32), cur);
        }
        s.make_consistent_from_percpu();
        s.requeue_runnable();
        prop_assert!(s.check_all().is_ok());
        // Idempotent:
        prop_assert_eq!(s.make_consistent_from_percpu(), 0);
    }
}
