//! Domain lifecycle integration tests: creation and destruction through the
//! real `domctl` hypercall path, and the teardown-time manifestation of
//! reference-count corruption (the mechanism behind several of the paper's
//! recovery-failure cases).

use nlh_hv::domain::{
    DomainKind, DomainSpec, DomainState, GuestNotice, GuestOp, GuestProgram, WorkloadVerdict,
};
use nlh_hv::hypercalls::HcRequest;
use nlh_hv::interrupts::VEC_NET;
use nlh_hv::{CpuId, DomId, Hypervisor, MachineConfig};
use nlh_sim::{Pcg64, SimDuration, SimTime};

/// A management workload that creates a domain at 100 ms and destroys a
/// target at 300 ms.
#[derive(Debug, Clone)]
struct Manager {
    created: bool,
    destroyed: bool,
    destroy_target: Option<DomId>,
}

impl GuestProgram for Manager {
    fn name(&self) -> &str {
        "Manager"
    }
    fn next_op(&mut self, now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if !self.created && now >= SimTime::from_millis(100) {
            self.created = true;
            return GuestOp::Hypercall(HcRequest::DomctlCreate);
        }
        if !self.destroyed && now >= SimTime::from_millis(300) {
            if let Some(t) = self.destroy_target {
                self.destroyed = true;
                return GuestOp::Hypercall(HcRequest::DomctlDestroy(t));
            }
        }
        GuestOp::Compute(SimDuration::from_millis(1))
    }
    fn notice(&mut self, _now: SimTime, _n: GuestNotice) {}
    fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
        WorkloadVerdict::CompletedOk
    }
    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }
}

fn boot_with_manager(destroy_target: Option<DomId>, seed: u64) -> Hypervisor {
    let mut hv = Hypervisor::new(MachineConfig::small(), seed);
    hv.add_boot_domain(DomainSpec {
        kind: DomainKind::Priv,
        pages: 64,
        pinned_cpu: CpuId(0),
        program: Box::new(Manager {
            created: false,
            destroyed: false,
            destroy_target,
        }),
    });
    hv
}

#[test]
fn domctl_create_builds_a_running_domain() {
    let mut hv = boot_with_manager(None, 1);
    hv.queue_domain_creation(DomainSpec {
        kind: DomainKind::App,
        pages: 32,
        pinned_cpu: CpuId(2),
        program: Box::new(nlh_hv::domain::IdleLoop),
    });
    hv.run_until(SimTime::from_millis(250));
    assert!(hv.detection().is_none());
    assert_eq!(hv.domains.len(), 2);
    let d = &hv.domains[1];
    assert_eq!(d.state, DomainState::Active);
    assert_eq!(d.owned_pages.len(), 32);
    assert_eq!(d.pinned_cpu, CpuId(2));
    // Its vCPU is schedulable and consistent.
    assert!(hv.sched.check_all().is_ok());
}

#[test]
fn domctl_destroy_frees_all_pages() {
    let mut hv = boot_with_manager(Some(DomId(1)), 2);
    hv.queue_domain_creation(DomainSpec {
        kind: DomainKind::App,
        pages: 32,
        pinned_cpu: CpuId(2),
        program: Box::new(nlh_hv::domain::IdleLoop),
    });
    let free_before = hv.pft.free_count();
    hv.run_until(SimTime::from_millis(600));
    assert!(hv.detection().is_none(), "{:?}", hv.detection());
    assert_eq!(hv.domains[1].state, DomainState::Destroyed);
    assert!(hv.domains[1].owned_pages.is_empty());
    assert_eq!(
        hv.pft.free_count(),
        free_before,
        "all 32 pages returned to the allocator"
    );
    assert_eq!(hv.pft.count_inconsistent(), 0);
}

#[test]
fn teardown_detects_stray_reference() {
    // A leaked reference (e.g. from a double-applied non-idempotent retry)
    // manifests as a hypervisor BUG when the domain's memory is freed —
    // Xen's BUG_ON in free_domheap_pages.
    let mut hv = boot_with_manager(Some(DomId(1)), 3);
    hv.queue_domain_creation(DomainSpec {
        kind: DomainKind::App,
        pages: 32,
        pinned_cpu: CpuId(2),
        program: Box::new(nlh_hv::domain::IdleLoop),
    });
    hv.run_until(SimTime::from_millis(250));
    assert!(hv.detection().is_none());
    // Leak a reference on one of the new domain's pages.
    let p = hv.domains[1].owned_pages[7];
    hv.pft.inc_ref(p).unwrap();
    hv.run_until(SimTime::from_millis(600));
    let det = hv.detection().expect("teardown must hit the stray ref");
    assert!(det.reason.contains("BUG"), "{}", det.reason);
}

#[test]
fn physdev_route_updates_ioapic_and_log() {
    #[derive(Debug, Clone)]
    struct Router {
        sent: bool,
    }
    impl GuestProgram for Router {
        fn name(&self) -> &str {
            "Router"
        }
        fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
            if !self.sent {
                self.sent = true;
                return GuestOp::Hypercall(HcRequest::PhysdevRoute(VEC_NET, CpuId(5)));
            }
            GuestOp::Compute(SimDuration::from_millis(1))
        }
        fn notice(&mut self, _now: SimTime, _n: GuestNotice) {}
        fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
            WorkloadVerdict::CompletedOk
        }
        fn clone_box(&self) -> Box<dyn GuestProgram> {
            Box::new(self.clone())
        }
    }
    let mut hv = Hypervisor::new(MachineConfig::small(), 4);
    hv.add_boot_domain(DomainSpec {
        kind: DomainKind::Priv,
        pages: 32,
        pinned_cpu: CpuId(0),
        program: Box::new(Router { sent: false }),
    });
    // ReHype-style logging on.
    hv.support.ioapic_write_log = true;
    hv.run_until(SimTime::from_millis(100));
    assert!(hv.detection().is_none());
    assert_eq!(hv.irqs.ioapic_route(VEC_NET), Some(CpuId(5)));
    let log = hv.ioapic_log.expect("write was logged");
    assert_eq!(log[VEC_NET.index()], Some(CpuId(5)));
}
