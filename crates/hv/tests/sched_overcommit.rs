//! Overcommit scheduler integration tests: the credit-mode hypervisor under
//! N:M vCPU sharing, and — the recovery-critical property — abandonment of
//! Scheduler programs (context switch, wakeup switch, migration) at **every
//! micro-op prefix**, followed by the scheduler-consistency repair the
//! microreset ladder runs. Whatever torn residue the prefix froze
//! (double-queued vCPU, vanished current, half-migrated assignment), the
//! repair must converge to a state that passes every scheduler assertion
//! and lets the machine run on without a second detection.

use nlh_hv::domain::{DomainKind, DomainSpec, GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
use nlh_hv::hypercalls::EntryCause;
use nlh_hv::sched::RunState;
use nlh_hv::{CpuId, Hypervisor, MachineConfig};
use nlh_sim::{Pcg64, SimDuration, SimTime};
use proptest::prelude::*;

/// Compute/block cycles: each lap is one compute burst followed by a
/// voluntary block (the periodic domain timer wakes the vCPU), exercising
/// the Ready/Running/Blocked machine plus preemption between laps.
#[derive(Debug, Clone)]
struct ComputeBlock {
    laps_left: u32,
    block_next: bool,
}

impl ComputeBlock {
    fn new(laps: u32) -> Self {
        ComputeBlock {
            laps_left: laps,
            block_next: false,
        }
    }
}

impl GuestProgram for ComputeBlock {
    fn name(&self) -> &str {
        "ComputeBlock"
    }
    fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
        if self.laps_left == 0 {
            return GuestOp::Done;
        }
        if self.block_next {
            self.block_next = false;
            GuestOp::Block
        } else {
            self.laps_left -= 1;
            self.block_next = true;
            GuestOp::Compute(SimDuration::from_micros(700))
        }
    }
    fn notice(&mut self, _now: SimTime, _n: GuestNotice) {}
    fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
        if self.laps_left == 0 {
            WorkloadVerdict::CompletedOk
        } else {
            WorkloadVerdict::Running
        }
    }
    fn clone_box(&self) -> Box<dyn GuestProgram> {
        Box::new(self.clone())
    }
}

/// Boots a credit-mode machine with `on_cpu1 + on_cpu2` vCPUs shared over
/// CPUs 1 and 2. Uneven splits keep the load balancer proposing
/// migrations, so all three Scheduler program shapes occur.
fn overcommit_hv(seed: u64, on_cpu1: usize, on_cpu2: usize, laps: u32) -> Hypervisor {
    let mut hv = Hypervisor::new(MachineConfig::small(), seed);
    hv.sched.enable_credit(&[CpuId(1), CpuId(2)]);
    for k in 0..on_cpu1 + on_cpu2 {
        let cpu = if k < on_cpu1 { CpuId(1) } else { CpuId(2) };
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 16,
            pinned_cpu: cpu,
            program: Box::new(ComputeBlock::new(laps)),
        });
    }
    hv
}

/// The scheduler slice of the recovery ladder's consistency repair, as the
/// shared recovery step applies it: rebuild vCPU state from the per-CPU
/// ground truth, requeue stranded runnables, and clear domain-side blocked
/// flags that disagree with the rebuilt scheduler state (the lost-wakeup
/// case). The ladder steps that run *before* the scheduler rung — clearing
/// IRQ nesting counts and releasing abandoned locks — are mirrored first;
/// without them the repaired machine wedges on residue the scheduler rung
/// was never responsible for.
fn repair_scheduler(hv: &mut Hypervisor) {
    for pc in hv.percpu.iter_mut() {
        pc.local_irq_count = 0;
    }
    let heap_locks: Vec<_> = hv.heap.embedded_locks().collect();
    hv.locks.unlock_heap_locks(heap_locks);
    hv.locks.unlock_static_segment();
    hv.sched.make_consistent_from_percpu();
    hv.sched.requeue_runnable();
    let stale: Vec<usize> = hv
        .domains
        .iter()
        .enumerate()
        .filter(|(_, d)| d.blocked && hv.sched.vcpu(d.vcpu).state != RunState::Blocked)
        .map(|(i, _)| i)
        .collect();
    for i in stale {
        hv.domains[i].blocked = false;
    }
}

/// Steps until some CPU sits inside a Scheduler program with exactly
/// `prefix` micro-ops executed; returns false if that never happens within
/// the guard (prefixes longer than the longest program built).
fn step_to_scheduler_prefix(hv: &mut Hypervisor, prefix: usize, guard: usize) -> bool {
    for _ in 0..guard {
        hv.step_any();
        for c in 0..hv.num_cpus() {
            if let Some((EntryCause::Scheduler, pc)) = hv.cpu_program_context(CpuId::from_index(c))
            {
                if pc == prefix {
                    return true;
                }
            }
        }
        if hv.detection().is_some() {
            panic!("fault-free run detected: {:?}", hv.detection());
        }
    }
    false
}

#[test]
fn fault_free_overcommit_finishes_every_guest() {
    let mut hv = overcommit_hv(11, 4, 4, 40);
    hv.run_for(SimDuration::from_secs(2));
    assert!(hv.detection().is_none());
    assert!(hv.sched.check_all().is_ok());
    for (i, d) in hv.domains.iter().enumerate() {
        assert!(d.finished, "dom{i} starved under 4:1 sharing");
    }
}

/// The satellite property: abandon a Scheduler program after *every*
/// possible micro-op prefix and require the consistency repair to converge.
/// Low prefixes freeze the pre-mutation window (lock held, nothing torn);
/// middle prefixes freeze a dequeued-but-not-current or double-queued
/// vCPU; deep prefixes only exist in the long credit switch. Prefixes
/// beyond every program built this run are skipped, but the early ones
/// must all be reachable or the test is vacuous.
#[test]
fn abandonment_at_every_scheduler_prefix_repairs_consistency() {
    let mut covered = 0;
    for prefix in 0..18 {
        let mut hv = overcommit_hv(2018 + prefix as u64, 5, 1, 400);
        if !step_to_scheduler_prefix(&mut hv, prefix, 300_000) {
            continue;
        }
        covered += 1;
        hv.discard_all_stacks();
        repair_scheduler(&mut hv);
        assert!(
            hv.sched.check_all().is_ok(),
            "prefix {prefix}: {:?}",
            hv.sched.check_all()
        );
        // The repaired machine must run on: the next Scheduler program's
        // SchedConsistencyAssert re-checks everything, so a missed tear
        // surfaces as a detection here.
        hv.resume_after(SimDuration::from_millis(22));
        hv.run_for(SimDuration::from_millis(200));
        assert!(
            hv.detection().is_none(),
            "prefix {prefix}: post-repair detection {:?}",
            hv.detection()
        );
        assert!(hv.sched.check_all().is_ok());
    }
    assert!(covered >= 10, "only {covered} prefixes reachable");
}

/// A fault frozen mid-migration (after enqueue-on-destination, before
/// dequeue-from-source) leaves the vCPU double-queued; repair must collapse
/// it to exactly one home.
#[test]
fn abandoned_migration_double_queue_is_collapsed() {
    let mut hv = overcommit_hv(7, 5, 1, 400);
    let mut hit = None;
    'outer: for _ in 0..400_000 {
        hv.step_any();
        for v in 0..hv.sched.num_vcpus() {
            let v = nlh_hv::VcpuId::from_index(v);
            if hv.sched.queue_occurrences(v) > 1 {
                hit = Some(v);
                break 'outer;
            }
        }
    }
    let v = hit.expect("load balancer never froze a double-queued vCPU");
    hv.discard_all_stacks();
    assert!(
        hv.sched.queue_occurrences(v) > 1,
        "residue survives discard"
    );
    repair_scheduler(&mut hv);
    assert_eq!(hv.sched.queue_occurrences(v), 1);
    assert!(hv.sched.check_all().is_ok());
    hv.resume_after(SimDuration::from_millis(22));
    hv.run_for(SimDuration::from_millis(200));
    assert!(hv.detection().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings: run a random overcommit layout a random
    /// number of steps, abandon wherever execution happens to be (mid
    /// scheduler program or not), repair, and require full consistency
    /// plus a clean continued run.
    #[test]
    fn random_abandonment_always_repairs(
        seed in 0u64..10_000,
        on_cpu1 in 1usize..6,
        on_cpu2 in 1usize..6,
        steps in 1_000usize..60_000,
    ) {
        let mut hv = overcommit_hv(seed, on_cpu1, on_cpu2, 10_000);
        for _ in 0..steps {
            hv.step_any();
        }
        prop_assert!(hv.detection().is_none(), "fault-free run detected");
        hv.discard_all_stacks();
        repair_scheduler(&mut hv);
        prop_assert!(hv.sched.check_all().is_ok(), "{:?}", hv.sched.check_all());
        hv.resume_after(SimDuration::from_millis(22));
        hv.run_for(SimDuration::from_millis(120));
        prop_assert!(hv.detection().is_none(), "{:?}", hv.detection());
        prop_assert!(hv.sched.check_all().is_ok());
    }
}
