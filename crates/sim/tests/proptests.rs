//! Property-based tests for the simulation kernel.

use nlh_sim::stats::Proportion;
use nlh_sim::{Cycles, Pcg64, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// `gen_range_u64` respects its bounds for any non-empty range.
    #[test]
    fn gen_range_bounds(seed: u64, lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..32 {
            let v = rng.gen_range_u64(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }

    /// Identical seeds give identical streams; a forked child differs.
    #[test]
    fn determinism_and_forking(seed: u64) {
        let mut a = Pcg64::seed_from_u64(seed);
        let mut b = Pcg64::seed_from_u64(seed);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&seq_a, &seq_b);
        let mut child = a.fork();
        let child_seq: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        prop_assert_ne!(seq_a, child_seq);
    }

    /// Weighted choice never returns a zero-weight index.
    #[test]
    fn weighted_choice_respects_zeros(seed: u64, weights in prop::collection::vec(0u8..10, 1..12)) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let ws: Vec<f64> = weights.iter().map(|w| *w as f64).collect();
        match rng.choose_weighted(&ws) {
            Some(idx) => prop_assert!(ws[idx] > 0.0),
            None => prop_assert!(ws.iter().all(|w| *w == 0.0)),
        }
    }

    /// Shuffling permutes: same multiset, any order.
    #[test]
    fn shuffle_is_permutation(seed: u64, mut items in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut original = items.clone();
        rng.shuffle(&mut items);
        original.sort_unstable();
        items.sort_unstable();
        prop_assert_eq!(original, items);
    }

    /// Wilson intervals are valid and bracket the point estimate.
    #[test]
    fn wilson_interval_brackets_estimate(successes in 0u64..500, extra in 0u64..500) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let p = Proportion::new(successes, trials);
        let (lo, hi) = p.wilson_95();
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p.value() + 1e-12);
        prop_assert!(hi >= p.value() - 1e-12);
        prop_assert!(p.wald_halfwidth_95() >= 0.0);
    }

    /// Time arithmetic: (t + a) + b == (t + b) + a and subtraction inverts.
    #[test]
    fn time_arithmetic_commutes(t in 0u64..1_000_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t0 = SimTime::from_nanos(t);
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((t0 + da) + db, (t0 + db) + da);
        prop_assert_eq!((t0 + da) - t0, da);
        prop_assert_eq!(t0.saturating_since(t0 + da), SimDuration::ZERO);
    }

    /// Cycles<->duration conversion round-trips when the cycle count is a
    /// multiple of the MHz (no truncation).
    #[test]
    fn cycles_roundtrip(k in 1u64..1_000_000) {
        let freq = 2_500;
        let c = Cycles(k * freq);
        prop_assert_eq!(Cycles::from_duration(c.to_duration(freq), freq), c);
    }
}
