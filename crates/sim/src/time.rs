//! Simulated time and CPU cycle accounting.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant of simulated time, in nanoseconds since simulated boot.
///
/// `SimTime` is totally ordered and only ever moves forward in the
/// simulation. Arithmetic with [`SimDuration`] saturates on overflow, which
/// in practice never happens (a `u64` of nanoseconds is ~584 years).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulated boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far in the future, used as an "infinite" deadline.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates a `SimTime` from nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a `SimTime` from microseconds since boot.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a `SimTime` from milliseconds since boot.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a `SimTime` from seconds since boot.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulated boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulated boot (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulated boot (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole simulated seconds since boot (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

/// A count of CPU clock cycles.
///
/// The simulated hypervisor accounts all work in cycles; [`Cycles::to_duration`]
/// converts to wall time given a clock frequency in MHz (the paper's Nehalem
/// machines run around 2.5 GHz).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts a cycle count to simulated time at `freq_mhz` megahertz.
    ///
    /// One cycle at 1000 MHz is exactly 1 ns.
    pub fn to_duration(self, freq_mhz: u64) -> SimDuration {
        debug_assert!(freq_mhz > 0, "clock frequency must be positive");
        SimDuration::from_nanos(self.0.saturating_mul(1_000) / freq_mhz)
    }

    /// Builds a cycle count that spans `d` at `freq_mhz` megahertz.
    pub fn from_duration(d: SimDuration, freq_mhz: u64) -> Cycles {
        Cycles(d.as_nanos().saturating_mul(freq_mhz) / 1_000)
    }

    /// The raw cycle count.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(2);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_micros(), 2_500);
        assert_eq!((a - b).as_micros(), 1_500);
        assert_eq!((b - a), SimDuration::ZERO, "subtraction saturates");
        assert_eq!((b * 4).as_millis(), 2);
        assert_eq!((a / 2).as_millis(), 1);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn cycles_to_duration_roundtrip() {
        // 2500 MHz: 2500 cycles == 1 us.
        let c = Cycles(2_500_000);
        let d = c.to_duration(2_500);
        assert_eq!(d.as_micros(), 1_000);
        assert_eq!(Cycles::from_duration(d, 2_500), c);
    }

    #[test]
    fn cycles_at_1ghz_is_nanoseconds() {
        assert_eq!(Cycles(123).to_duration(1_000).as_nanos(), 123);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(22)), "22.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000000s");
    }

    #[test]
    fn far_future_ordering() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1_000_000));
        assert_eq!(SimTime::ZERO.min(SimTime::FAR_FUTURE), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.max(SimTime::FAR_FUTURE), SimTime::FAR_FUTURE);
    }
}
