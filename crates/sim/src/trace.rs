//! A bounded in-memory trace ring for debugging simulation trials.
//!
//! Fault-injection campaigns run tens of thousands of trials; writing logs to
//! stdout would drown the results. Instead each trial carries a [`TraceRing`]
//! that keeps the most recent events; when a trial misbehaves its tail can be
//! dumped for inspection.

use std::collections::VecDeque;
use std::fmt;

use crate::SimTime;

/// Importance of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Fine-grained execution steps.
    Debug,
    /// Notable simulation events (hypercalls, interrupts).
    Info,
    /// Faults, detections and recovery actions.
    Event,
}

/// A single recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time at which the event occurred.
    pub at: SimTime,
    /// Importance of the event.
    pub level: TraceLevel,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}: {}", self.at, self.level, self.message)
    }
}

/// A fixed-capacity ring buffer of trace entries.
#[derive(Debug, Clone)]
pub struct TraceRing {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    min_level: TraceLevel,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring that keeps the most recent `capacity` entries at or
    /// above `min_level`.
    pub fn new(capacity: usize, min_level: TraceLevel) -> Self {
        TraceRing {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level,
            dropped: 0,
        }
    }

    /// A ring that records nothing (zero capacity). Useful for bulk
    /// campaigns where tracing overhead matters.
    pub fn disabled() -> Self {
        TraceRing::new(0, TraceLevel::Event)
    }

    /// Whether an event at `level` would be retained. Check this before
    /// building an expensive message (or use the [`crate::trace_event!`]
    /// macro, which does it for you): campaigns run with tracing disabled,
    /// and a `format!` on the stepping hot path costs an allocation even
    /// when the result is immediately discarded.
    pub fn wants(&self, level: TraceLevel) -> bool {
        self.capacity != 0 && level >= self.min_level
    }

    /// Records an event if it meets the level threshold and capacity is
    /// non-zero.
    pub fn record(&mut self, at: SimTime, level: TraceLevel, message: impl Into<String>) {
        if !self.wants(level) {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            level,
            message: message.into(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained tail as a multi-line string.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier entries dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for TraceRing {
    /// A modest ring keeping the last 256 `Info`-and-above events.
    fn default() -> Self {
        TraceRing::new(256, TraceLevel::Info)
    }
}

/// Records a trace event with a lazily formatted message.
///
/// Expands to a [`TraceRing::wants`] guard around [`TraceRing::record`], so
/// the `format!` arguments are evaluated only when the ring would actually
/// retain the entry. Use this instead of `record(.., format!(..))` anywhere
/// near the stepping hot path.
///
/// ```
/// use nlh_sim::trace::{TraceLevel, TraceRing};
/// use nlh_sim::{trace_event, SimTime};
///
/// let mut ring = TraceRing::disabled();
/// let detail = 42;
/// // `format!` never runs: the ring is disabled.
/// trace_event!(ring, SimTime::ZERO, TraceLevel::Event, "panic {detail}");
/// assert!(ring.is_empty());
/// ```
#[macro_export]
macro_rules! trace_event {
    ($ring:expr, $at:expr, $level:expr, $($arg:tt)+) => {
        if $ring.wants($level) {
            $ring.record($at, $level, format!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_entries() {
        let mut ring = TraceRing::new(10, TraceLevel::Debug);
        ring.record(SimTime::from_millis(1), TraceLevel::Info, "a");
        ring.record(SimTime::from_millis(2), TraceLevel::Event, "b");
        let msgs: Vec<_> = ring.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["a", "b"]);
    }

    #[test]
    fn respects_level_threshold() {
        let mut ring = TraceRing::new(10, TraceLevel::Event);
        ring.record(SimTime::ZERO, TraceLevel::Debug, "noise");
        ring.record(SimTime::ZERO, TraceLevel::Info, "more noise");
        ring.record(SimTime::ZERO, TraceLevel::Event, "fault");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.entries().next().unwrap().message, "fault");
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut ring = TraceRing::new(2, TraceLevel::Debug);
        for i in 0..5 {
            ring.record(SimTime::from_nanos(i), TraceLevel::Info, format!("e{i}"));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let msgs: Vec<_> = ring.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["e3", "e4"]);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        ring.record(SimTime::ZERO, TraceLevel::Event, "x");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn dump_mentions_dropped() {
        let mut ring = TraceRing::new(1, TraceLevel::Debug);
        ring.record(SimTime::ZERO, TraceLevel::Info, "one");
        ring.record(SimTime::ZERO, TraceLevel::Info, "two");
        let dump = ring.dump();
        assert!(dump.contains("1 earlier entries dropped"));
        assert!(dump.contains("two"));
        assert!(!dump.contains("one\n"));
    }
}
