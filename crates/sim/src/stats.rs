//! Statistics helpers for fault-injection campaigns.
//!
//! The paper reports recovery rates with 95% confidence intervals (e.g.
//! "95.0% ± 1.4%"); [`Proportion`] reproduces that presentation using the
//! normal approximation, with a Wilson interval available for small samples.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A binomial proportion (successes out of trials) with confidence-interval
/// accessors.
///
/// # Example
///
/// ```
/// use nlh_sim::stats::Proportion;
/// let p = Proportion::new(950, 1000);
/// assert!((p.value() - 0.95).abs() < 1e-9);
/// let half = p.wald_halfwidth_95();
/// assert!(half > 0.0 && half < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

/// z-score for a two-sided 95% interval.
const Z95: f64 = 1.959964;

impl Proportion {
    /// Creates a proportion from counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes ({successes}) exceed trials ({trials})"
        );
        Proportion { successes, trials }
    }

    /// The number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate in `[0, 1]`; zero when there are no trials.
    pub fn value(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The point estimate as a percentage.
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }

    /// Half-width of the 95% Wald (normal-approximation) interval, as used in
    /// the paper's "± x%" notation. Returned in proportion units.
    pub fn wald_halfwidth_95(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.value();
        let n = self.trials as f64;
        Z95 * (p * (1.0 - p) / n).sqrt()
    }

    /// Half-width of the 95% Wilson score interval, in proportion units.
    ///
    /// This is the quantity the campaign engine's stop-at-confidence policy
    /// watches: a cell halts once the half-width falls at or below the
    /// configured threshold. Zero trials report the maximally uninformative
    /// half-width of `0.5` (the full `[0, 1]` interval), so an empty cell
    /// can never satisfy a meaningful threshold.
    pub fn wilson_halfwidth_95(&self) -> f64 {
        let (lo, hi) = self.wilson_95();
        (hi - lo) / 2.0
    }

    /// The 95% Wilson score interval `(lo, hi)`, better behaved near 0 and 1.
    pub fn wilson_95(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.value();
        let z2 = Z95 * Z95;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (Z95 / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl fmt::Display for Proportion {
    /// Formats as the paper does: `95.0% ± 1.4%`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}% ± {:.1}%",
            self.percent(),
            self.wald_halfwidth_95() * 100.0
        )
    }
}

/// Running summary statistics (count / mean / min / max / stddev).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation (Welford's online algorithm).
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The smallest observation, or zero when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The largest observation, or zero when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The sample standard deviation (n-1 denominator), or zero for fewer
    /// than two observations.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// A fixed-bucket logarithmic latency histogram.
///
/// Buckets are powers of two of the base resolution, so the histogram
/// covers several orders of magnitude with a handful of counters and
/// merges exactly across campaign worker shards. Values are unitless;
/// campaigns feed microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts observations in `[2^i, 2^(i+1))` base units,
    /// with `buckets[0]` also absorbing everything below the base.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

/// Number of power-of-two buckets: covers `[1, 2^40)` base units.
const HIST_BUCKETS: usize = 40;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }

    /// Adds one observation. Non-positive values land in the first bucket.
    pub fn add(&mut self, x: f64) {
        let idx = if x < 2.0 {
            0
        } else {
            (x.log2() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x.max(0.0);
    }

    /// Merges another histogram into this one (used to combine per-worker
    /// shards).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The arithmetic mean, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The upper edge of the bucket containing the q-quantile (`q` in
    /// `[0, 1]`), or zero when empty. Accurate to within a factor of two,
    /// which is all a log-bucketed histogram can promise.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)) as f64;
            }
        }
        (1u64 << HIST_BUCKETS) as f64
    }

    /// Non-empty buckets as `(lower_edge, upper_edge, count)` triples.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                (lo, (1u64 << (i + 1)) as f64, c)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_point_estimate() {
        let p = Proportion::new(1, 4);
        assert!((p.value() - 0.25).abs() < 1e-12);
        assert!((p.percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn proportion_zero_trials() {
        let p = Proportion::new(0, 0);
        assert_eq!(p.value(), 0.0);
        assert_eq!(p.wald_halfwidth_95(), 0.0);
        assert_eq!(p.wilson_95(), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn proportion_invalid_counts_panic() {
        Proportion::new(5, 4);
    }

    #[test]
    fn paper_style_interval() {
        // 95% rate over 1000 trials: halfwidth ~= 1.35%.
        let p = Proportion::new(950, 1000);
        let hw = p.wald_halfwidth_95() * 100.0;
        assert!((hw - 1.35).abs() < 0.05, "got {hw}");
        assert_eq!(p.to_string(), "95.0% ± 1.4%");
    }

    #[test]
    fn wilson_halfwidth_matches_interval() {
        let p = Proportion::new(880, 1000);
        let (lo, hi) = p.wilson_95();
        assert!((p.wilson_halfwidth_95() - (hi - lo) / 2.0).abs() < 1e-15);
        // Tightens with more data at the same rate.
        let small = Proportion::new(88, 100);
        assert!(p.wilson_halfwidth_95() < small.wilson_halfwidth_95());
        // Empty cells are maximally uncertain.
        assert_eq!(Proportion::new(0, 0).wilson_halfwidth_95(), 0.5);
    }

    #[test]
    fn wilson_brackets_point_estimate() {
        let p = Proportion::new(880, 1000);
        let (lo, hi) = p.wilson_95();
        assert!(lo < p.value() && p.value() < hi);
        assert!(lo > 0.85 && hi < 0.91);
    }

    #[test]
    fn wilson_sane_at_extremes() {
        let (lo, hi) = Proportion::new(0, 50).wilson_95();
        assert!(lo < 1e-4);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo, hi) = Proportion::new(50, 50).wilson_95();
        assert!(lo > 0.85);
        assert!(hi > 0.9999);
    }

    #[test]
    fn summary_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for x in [1.0, 3.0, 3.5, 100.0] {
            h.add(x);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.875).abs() < 1e-9);
        // 1.0 -> [0,2), 3.0/3.5 -> [2,4), 100.0 -> [64,128).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0.0, 2.0, 1), (2.0, 4.0, 2), (64.0, 128.0, 1)]
        );
        // Median falls in the [2,4) bucket; the p99 in [64,128).
        assert_eq!(h.quantile(0.5), 4.0);
        assert_eq!(h.quantile(0.99), 128.0);
    }

    #[test]
    fn histogram_merge_matches_combined_feed() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for x in [5.0, 9.0, 1000.0] {
            a.add(x);
            all.add(x);
        }
        for x in [2.0, 700.0] {
            b.add(x);
            all.add(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn summary_empty_and_single() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }
}
