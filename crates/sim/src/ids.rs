//! Typed identifiers used throughout the simulated virtualization platform.
//!
//! Newtypes keep physically distinct index spaces (physical CPUs, domains,
//! vCPUs, page frames, locks, interrupt vectors) from being confused at
//! compile time.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A physical CPU of the simulated machine.
    CpuId,
    "cpu"
);
id_type!(
    /// A domain (VM). Domain 0 is the privileged VM (PrivVM / Dom0).
    DomId,
    "dom"
);
id_type!(
    /// A virtual CPU, globally numbered across all domains.
    VcpuId,
    "vcpu"
);
id_type!(
    /// A physical page frame number.
    PageNum,
    "pfn"
);
id_type!(
    /// A spinlock in the hypervisor (static segment or heap-allocated).
    LockId,
    "lock"
);
id_type!(
    /// A hardware interrupt vector.
    IrqVector,
    "irq"
);

impl DomId {
    /// The privileged VM (Dom0 in Xen terms).
    pub const PRIV: DomId = DomId(0);

    /// Whether this is the privileged VM.
    pub const fn is_priv(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(DomId(0).to_string(), "dom0");
        assert_eq!(VcpuId(7).to_string(), "vcpu7");
        assert_eq!(PageNum(12).to_string(), "pfn12");
        assert_eq!(LockId(1).to_string(), "lock1");
        assert_eq!(IrqVector(32).to_string(), "irq32");
    }

    #[test]
    fn priv_domain_is_zero() {
        assert!(DomId::PRIV.is_priv());
        assert!(!DomId(1).is_priv());
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(CpuId::from_index(5).index(), 5);
        assert_eq!(PageNum::from_index(0).index(), 0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CpuId(1) < CpuId(2));
        assert_eq!(VcpuId::from(4u32), VcpuId(4));
    }
}
