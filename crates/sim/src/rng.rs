//! A deterministic PCG-based random number generator.
//!
//! Every stochastic decision in the simulator — workload interleaving, fault
//! trigger points, bit-flip manifestation — draws from a [`Pcg64`] seeded per
//! trial, so a trial is exactly reproducible from its seed. We implement the
//! generator locally (PCG-XSH-RR 64/32, O'Neill 2014) rather than depending
//! on `rand` in the simulation core, keeping the substrate dependency-free
//! and its stream stable across dependency upgrades.

use serde::{Deserialize, Serialize};

const MULTIPLIER: u64 = 6364136223846793005;

/// A small, fast, deterministic pseudo-random number generator
/// (PCG-XSH-RR 64/32).
///
/// # Example
///
/// ```
/// use nlh_sim::Pcg64;
/// let mut a = Pcg64::seed_from_u64(7);
/// let mut b = Pcg64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcg64 {
    state: u64,
    inc: u64,
}

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators with the same seed produce identical streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 the seed into (state, stream) so nearby seeds diverge.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let state = next();
        let inc = next() | 1; // stream selector must be odd
        let mut rng = Pcg64 { state, inc };
        // Burn a few outputs to decorrelate from the seed mixing.
        rng.next_u32();
        rng.next_u32();
        rng
    }

    /// Derives an independent child generator, e.g. one per simulated trial.
    pub fn fork(&mut self) -> Pcg64 {
        Pcg64::seed_from_u64(self.next_u64())
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased modulo via rejection sampling on the top of the range.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// A uniformly chosen element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range_usize(0, items.len())])
        }
    }

    /// Samples an index from `weights` proportionally to the weights.
    ///
    /// Returns `None` if `weights` is empty or sums to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Float roundoff: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// The generator's internal `(state, stream)` words.
    ///
    /// Exposed so machine-state fingerprints (divergence bisection, trial
    /// replay checks) can incorporate the RNG position without depending
    /// on the `Debug` rendering. Two generators with equal parts produce
    /// identical future streams.
    pub fn state_parts(&self) -> (u64, u64) {
        (self.state, self.inc)
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::seed_from_u64(123);
        let mut b = Pcg64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Pcg64::seed_from_u64(0);
        rng.gen_range_u64(5, 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Pcg64::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-1.0));
        assert!(rng.gen_bool(2.0));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = Pcg64::seed_from_u64(77);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn choose_weighted_respects_zero_weight() {
        let mut rng = Pcg64::seed_from_u64(6);
        for _ in 0..1_000 {
            let idx = rng.choose_weighted(&[0.0, 1.0, 0.0]).unwrap();
            assert_eq!(idx, 1);
        }
        assert_eq!(rng.choose_weighted(&[]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
    }

    #[test]
    fn choose_weighted_is_roughly_proportional() {
        let mut rng = Pcg64::seed_from_u64(8);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.choose_weighted(&[1.0, 2.0, 1.0]).unwrap()] += 1;
        }
        let f1 = counts[1] as f64 / 30_000.0;
        assert!((f1 - 0.5).abs() < 0.02, "middle weight got {f1}");
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut root = Pcg64::seed_from_u64(10);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Pcg64::seed_from_u64(12);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
