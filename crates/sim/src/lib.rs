//! Deterministic simulation kernel for the NiLiHype reproduction.
//!
//! This crate provides the foundation every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`Cycles`] — CPU cycle counts, convertible to time via a clock frequency.
//! * [`Pcg64`] — a small, fast, fully deterministic random number generator.
//!   Every stochastic decision in the simulator flows through a seeded
//!   [`Pcg64`] so that a trial is exactly reproducible from its seed.
//! * Typed identifiers ([`CpuId`], [`DomId`], [`VcpuId`], [`PageNum`]) so the
//!   hypervisor substrate cannot confuse, say, a physical CPU with a vCPU.
//! * [`stats`] — means, proportions and confidence intervals used by the
//!   fault-injection campaigns.
//! * [`trace`] — a bounded in-memory trace ring used for debugging trials.
//!
//! # Example
//!
//! ```
//! use nlh_sim::{Pcg64, SimTime, SimDuration};
//!
//! let mut rng = Pcg64::seed_from_u64(42);
//! let t = SimTime::ZERO + SimDuration::from_millis(5);
//! assert_eq!(t.as_nanos(), 5_000_000);
//! let x = rng.gen_range_u64(0, 10);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod digest;
mod ids;
mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use ids::{CpuId, DomId, IrqVector, LockId, PageNum, VcpuId};
pub use rng::Pcg64;
pub use time::{Cycles, SimDuration, SimTime};
