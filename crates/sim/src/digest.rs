//! A tiny stable streaming hash for state fingerprints.
//!
//! Divergence bisection compares two simulated machines after running the
//! same number of steps; it needs a cheap, deterministic fingerprint of
//! machine state that is stable across processes and platforms (unlike
//! `std::collections::hash_map::DefaultHasher`, whose algorithm is
//! unspecified). FNV-1a is small enough to write down, fast enough for
//! megabyte-sized renderings, and its exact output never leaves the
//! process — fingerprints are compared, not persisted.

/// A 64-bit FNV-1a streaming hasher.
///
/// # Example
///
/// ```
/// use nlh_sim::digest::Fnv64;
/// let mut a = Fnv64::new();
/// a.write(b"hello");
/// let mut b = Fnv64::new();
/// b.write(b"hel");
/// b.write(b"lo");
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Fnv64 {
    /// A hasher in its initial state.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot convenience: the FNV-1a hash of `bytes`.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(Fnv64::hash(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv64::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv64::hash(b"foobar"));
    }

    #[test]
    fn write_u64_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
