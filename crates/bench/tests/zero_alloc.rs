//! Pins the stepper fast path's headline property: once a warm-trial
//! system reaches steady state, stepping performs **zero** heap
//! allocations per micro-op.
//!
//! A counting `#[global_allocator]` (test binaries get their own, so the
//! workspace libraries stay `forbid(unsafe_code)`) watches a long batched
//! run after a warm-up window. The warm-up lets the per-CPU program pools
//! fill, every pooled buffer grow to the longest handler it will carry,
//! and the hypervisor's scratch vectors reach their high-water marks;
//! after that, every handler entry must be served from recycled buffers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nlh_campaign::{build_system, BenchKind, SetupKind};
use nlh_hv::MachineConfig;
use nlh_sim::SimDuration;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Drives the batched stepping loop (what trials run outside the
/// injection window) for at least `n` steps of simulated work.
fn run_steps(hv: &mut nlh_hv::Hypervisor, n: u64) {
    let target = hv.steps_executed() + n;
    while hv.steps_executed() < target {
        assert!(hv.detection().is_none(), "healthy run must not detect");
        hv.run_for(SimDuration::from_millis(50));
    }
}

#[test]
fn steady_state_stepping_allocates_nothing() {
    let (mut hv, _layout) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        2018,
    );
    // Warm-up: fill the program pools and grow scratch to steady state.
    run_steps(&mut hv, 500_000);

    let before_steps = hv.steps_executed();
    let before_allocs = ALLOCS.load(Ordering::Relaxed);
    run_steps(&mut hv, 300_000);
    let steps = hv.steps_executed() - before_steps;
    let allocs = ALLOCS.load(Ordering::Relaxed) - before_allocs;

    assert!(
        steps >= 300_000,
        "workload actually stepped ({steps} steps)"
    );
    assert_eq!(
        allocs, 0,
        "steady-state stepping must not allocate: {allocs} allocations \
         over {steps} steps"
    );
}

#[test]
fn virtio_datapath_steady_state_allocates_nothing() {
    let (mut hv, _layout) = build_system(MachineConfig::small(), SetupKind::TwoAppVmVswitch, 2018);
    // Warm-up covers the virtio paths too: queue-notify programs enter the
    // per-CPU pools, and the descriptor rings are fixed-size arrays that
    // never grow.
    run_steps(&mut hv, 500_000);

    let before_steps = hv.steps_executed();
    let before_frames = hv.virtio.forwarded;
    let before_allocs = ALLOCS.load(Ordering::Relaxed);
    run_steps(&mut hv, 300_000);
    let steps = hv.steps_executed() - before_steps;
    let frames = hv.virtio.forwarded - before_frames;
    let allocs = ALLOCS.load(Ordering::Relaxed) - before_allocs;

    assert!(
        frames > 0,
        "the vswitch datapath (submit/complete/forward) must actually run \
         during the measured window"
    );
    assert_eq!(
        allocs, 0,
        "virtio steady state must not allocate: {allocs} allocations over \
         {steps} steps / {frames} forwarded frames"
    );
}

#[test]
fn overcommit_datapath_steady_state_allocates_nothing() {
    let (mut hv, _layout) = build_system(MachineConfig::small(), SetupKind::Overcommit(4), 2018);
    // Warm-up covers the credit scheduler's whole datapath: preemption
    // context switches, WFI block/wake switches and load-balancing
    // migration programs all enter the per-CPU pools, and the runqueues
    // and binding pools reach their high-water marks. It runs past the
    // benchmarks' end so the measured window is pure scheduler: finished
    // vCPUs stay runnable, so the credit tick keeps rotating all eight of
    // them — the one remaining allocator in an *active* window is the
    // workload itself (UnixBench's multicall construction), which is not
    // the datapath under test.
    run_steps(&mut hv, 500_000);
    while hv.now() < nlh_sim::SimTime::from_millis(10_500) {
        hv.run_for(SimDuration::from_millis(50));
    }

    let before_steps = hv.steps_executed();
    let before_gen = hv.sched.mutation_generation();
    let before_allocs = ALLOCS.load(Ordering::Relaxed);
    run_steps(&mut hv, 300_000);
    let steps = hv.steps_executed() - before_steps;
    let switches = hv.sched.mutation_generation() - before_gen;
    let allocs = ALLOCS.load(Ordering::Relaxed) - before_allocs;

    assert!(
        hv.sched.credit_mode(),
        "4:1 setup runs the credit scheduler"
    );
    assert!(hv.sched.check_all().is_ok());
    assert!(
        switches > 1_000,
        "the credit scheduler must actually run in the measured window \
         ({switches} mutations)"
    );
    assert_eq!(
        allocs, 0,
        "overcommit steady state must not allocate: {allocs} allocations \
         over {steps} steps / {switches} scheduler mutations"
    );
}

#[test]
fn counting_window_steady_state_allocates_nothing() {
    // The injector's counting window (`run_counting`) rides the batched
    // superop path since PR 10; a trial spends its whole pre-fire window
    // here, so it gets the same exact-zero pin as the plain batched loop.
    // The never-firing budget keeps the window open for the whole
    // measurement.
    let (mut hv, _layout) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        2018,
    );
    run_steps(&mut hv, 500_000);

    let before_steps = hv.steps_executed();
    let before_allocs = ALLOCS.load(Ordering::Relaxed);
    while hv.steps_executed() - before_steps < 300_000 {
        assert!(hv.detection().is_none(), "healthy run must not detect");
        hv.run_counting(hv.now() + SimDuration::from_millis(50), u64::MAX, None, 0);
    }
    let steps = hv.steps_executed() - before_steps;
    let allocs = ALLOCS.load(Ordering::Relaxed) - before_allocs;

    assert_eq!(
        allocs, 0,
        "the counting window must not allocate: {allocs} allocations over \
         {steps} steps"
    );
}

#[test]
fn pooling_off_reproduces_the_old_allocation_behaviour() {
    let (mut hv, _layout) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        2018,
    );
    hv.pooling = false;
    run_steps(&mut hv, 500_000);

    let before = ALLOCS.load(Ordering::Relaxed);
    run_steps(&mut hv, 300_000);
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(
        allocs > 0,
        "with pooling disabled every handler entry allocates a fresh \
         program buffer; the A/B knob is what the substrate bench compares"
    );
}
