//! Benchmark helpers for the NiLiHype reproduction.
//!
//! The measurable benchmarks live under `benches/` (Criterion harnesses):
//!
//! * `recovery` — wall-clock cost of a microreset vs microreboot recovery
//!   pass over the simulated machine state (the simulated latencies are
//!   reported by the `table2`/`table3` experiment binaries; this measures
//!   the *implementation*).
//! * `substrate` — hypervisor-substrate hot paths: stepping, the page-frame
//!   scan, timer-heap churn, lock registry operations.
//! * `campaign` — end-to-end cost of one fault-injection trial.

#![forbid(unsafe_code)]

use nlh_hv::domain::{DomainKind, DomainSpec, IdleLoop};
use nlh_hv::{CpuId, Hypervisor, MachineConfig};

/// Builds a small machine with a PrivVM and one AppVM, ready to run.
pub fn small_machine(seed: u64) -> Hypervisor {
    let mut hv = Hypervisor::new(MachineConfig::small(), seed);
    hv.add_boot_domain(DomainSpec {
        kind: DomainKind::Priv,
        pages: 64,
        pinned_cpu: CpuId(0),
        program: Box::new(IdleLoop),
    });
    hv.add_boot_domain(DomainSpec {
        kind: DomainKind::App,
        pages: 64,
        pinned_cpu: CpuId(1),
        program: Box::new(IdleLoop),
    });
    hv
}
