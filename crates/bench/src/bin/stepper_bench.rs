//! Quick-mode stepper benchmark: steps/sec and allocs/step on the
//! warm-trial workload, written as `BENCH_stepper.json`.
//!
//! CI runs this on every push so the stepping-hot-path trajectory is
//! tracked from PR 5 onward (see `ARCHITECTURE.md`, "How to profile a
//! trial"). The workload is the campaign's warm-trial body: a booted
//! 1AppVM/UnixBench system stepped through its steady state — timer
//! interrupts, scheduler ticks, hypercalls, idle — exactly what dominates
//! a fault-injection campaign after PR 1's warm-start change.
//!
//! Usage: `stepper_bench [--steps N] [--out PATH]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use nlh_campaign::{build_system, BenchKind, SetupKind};
use nlh_hv::MachineConfig;
use nlh_sim::SimDuration;

/// A pass-through allocator that counts allocations, so the benchmark can
/// report allocs/step alongside steps/sec.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn main() {
    let mut steps: u64 = 2_000_000;
    let mut out = String::from("BENCH_stepper.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--steps" => {
                steps = args.next().and_then(|v| v.parse().ok()).expect("--steps N");
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other}"),
        }
    }

    // The tracked workload: warm-trial steady state (PrivVM + UnixBench
    // AppVM), past the boot transient.
    let (mut hv, _layout) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        2018,
    );
    hv.run_for(SimDuration::from_millis(200));

    // Checked path (what the trial loop drives while the injector is
    // counting micro-ops). Since the superop dispatch layer this is
    // `Hypervisor::run_counting`: the counting automaton rides the batched
    // loop, fusing Compute runs and replaying the budget in bulk, instead
    // of one `step_any` call per micro-op. A never-firing budget keeps the
    // window open for the whole measurement.
    let before0 = hv.steps_executed();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    while hv.steps_executed() - before0 < steps && hv.detection().is_none() {
        hv.run_counting(hv.now() + SimDuration::from_millis(50), u64::MAX, None, 0);
    }
    let per_step_secs = t0.elapsed().as_secs_f64();
    let per_step_steps = hv.steps_executed() - before0;
    let per_step_allocs = ALLOCS.load(Ordering::Relaxed) - a0;
    let per_step_rate = per_step_steps as f64 / per_step_secs;

    // Batched path (what run_until/run_for drive outside the injection
    // window): run the same number of steps through the batched loop.
    let before = hv.steps_executed();
    let a1 = ALLOCS.load(Ordering::Relaxed);
    let t1 = Instant::now();
    while hv.steps_executed() - before < steps && hv.detection().is_none() {
        hv.run_for(SimDuration::from_millis(50));
    }
    let batched_secs = t1.elapsed().as_secs_f64();
    let batched_steps = hv.steps_executed() - before;
    let batched_allocs = ALLOCS.load(Ordering::Relaxed) - a1;
    let batched_rate = batched_steps as f64 / batched_secs;

    // Superop A/B: the same batched loop with the fusion knob off
    // (`Hypervisor::superops = false`), on a fresh system so pool and
    // scratch warm-up match. The on/off delta is the superop layer's win
    // in isolation, the same style of substrate comparison as the
    // `pooling` knob from PR 5.
    let (mut shv, _slayout) = build_system(
        MachineConfig::small(),
        SetupKind::OneAppVm(BenchKind::UnixBench),
        2018,
    );
    shv.superops = false;
    shv.run_for(SimDuration::from_millis(200));
    let sbefore = shv.steps_executed();
    let ts = Instant::now();
    while shv.steps_executed() - sbefore < steps && shv.detection().is_none() {
        shv.run_for(SimDuration::from_millis(50));
    }
    let off_secs = ts.elapsed().as_secs_f64();
    let off_steps = shv.steps_executed() - sbefore;
    let off_rate = off_steps as f64 / off_secs;

    // Virtio datapath (PR 7): the 2AppVM vswitch workload, where every
    // queue-notify handler walks a descriptor-ring transaction and tx
    // frames are forwarded guest-to-guest. Same batched loop, so the
    // number is comparable to `batched` above.
    let (mut vhv, _vlayout) =
        build_system(MachineConfig::small(), SetupKind::TwoAppVmVswitch, 2018);
    vhv.run_for(SimDuration::from_millis(200));
    let vbefore = vhv.steps_executed();
    let vframes0 = vhv.virtio.forwarded;
    let a2 = ALLOCS.load(Ordering::Relaxed);
    let t2 = Instant::now();
    while vhv.steps_executed() - vbefore < steps && vhv.detection().is_none() {
        vhv.run_for(SimDuration::from_millis(50));
    }
    let virtio_secs = t2.elapsed().as_secs_f64();
    let virtio_steps = vhv.steps_executed() - vbefore;
    let virtio_allocs = ALLOCS.load(Ordering::Relaxed) - a2;
    let virtio_frames = vhv.virtio.forwarded - vframes0;
    let virtio_rate = virtio_steps as f64 / virtio_secs;

    // Overcommit datapath (PR 8): the 4:1 credit-scheduler workload —
    // preemption switches, WFI block/wake, load-balancing migrations —
    // through the same batched loop. `sched_mutations` counts scheduler
    // state changes in the window, so a regression that silently stops
    // scheduling (rather than slowing it) also shows up.
    let (mut ohv, _olayout) = build_system(MachineConfig::small(), SetupKind::Overcommit(4), 2018);
    ohv.run_for(SimDuration::from_millis(200));
    let obefore = ohv.steps_executed();
    let ogen0 = ohv.sched.mutation_generation();
    let a3 = ALLOCS.load(Ordering::Relaxed);
    let t3 = Instant::now();
    while ohv.steps_executed() - obefore < steps && ohv.detection().is_none() {
        ohv.run_for(SimDuration::from_millis(50));
    }
    let oc_secs = t3.elapsed().as_secs_f64();
    let oc_steps = ohv.steps_executed() - obefore;
    let oc_allocs = ALLOCS.load(Ordering::Relaxed) - a3;
    let oc_mutations = ohv.sched.mutation_generation() - ogen0;
    let oc_rate = oc_steps as f64 / oc_secs;

    let json = format!(
        "{{\n  \"workload\": \"warm_trial/1appvm_unixbench\",\n  \"steps\": {steps},\n  \"per_step\": {{\n    \"path\": \"run_counting\",\n    \"steps_per_sec\": {per_step_rate:.0},\n    \"allocs_per_step\": {:.6}\n  }},\n  \"batched\": {{\n    \"steps_per_sec\": {batched_rate:.0},\n    \"allocs_per_step\": {:.6}\n  }},\n  \"superops_off\": {{\n    \"steps_per_sec\": {off_rate:.0}\n  }},\n  \"virtio\": {{\n    \"workload\": \"warm_trial/2appvm_vswitch\",\n    \"steps_per_sec\": {virtio_rate:.0},\n    \"allocs_per_step\": {:.6},\n    \"frames_forwarded\": {virtio_frames}\n  }},\n  \"overcommit\": {{\n    \"workload\": \"warm_trial/overcommit_4to1\",\n    \"steps_per_sec\": {oc_rate:.0},\n    \"allocs_per_step\": {:.6},\n    \"sched_mutations\": {oc_mutations}\n  }}\n}}\n",
        per_step_allocs as f64 / per_step_steps.max(1) as f64,
        batched_allocs as f64 / batched_steps.max(1) as f64,
        virtio_allocs as f64 / virtio_steps.max(1) as f64,
        oc_allocs as f64 / oc_steps.max(1) as f64,
    );
    std::fs::write(&out, &json).expect("write bench json");
    print!("{json}");
}
