//! CI bench regression guard: diffs a fresh `BENCH_stepper.json` against
//! the checked-in `BENCH_floors.json` and fails (exit 1) when any
//! section's `steps_per_sec` falls more than 10% below its floor, or when
//! a determinism counter (`frames_forwarded`, `sched_mutations`) differs
//! from its golden value at the same step count.
//!
//! Floors are deliberately conservative (see the comment in
//! `BENCH_floors.json`): the guard exists to catch dispatch-path
//! regressions of the kind PRs 5–10 optimized away, not to pin exact
//! machine-dependent rates.
//!
//! Usage: `bench_guard [--fresh PATH] [--floors PATH]`
//!
//! The JSON involved is the benchmark's own flat two-level output, so the
//! guard reads it with a small string scanner instead of pulling in a
//! JSON dependency.

/// Extracts the text of the top-level object named `section` (from its
/// opening `{` to the matching `}`) out of a flat two-level JSON document.
fn section<'a>(doc: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\"");
    let at = doc.find(&key)?;
    let open = at + doc[at..].find('{')?;
    let close = open + doc[open..].find('}')?;
    Some(&doc[open..=close])
}

/// Extracts an integer field `name` from a JSON object's text. Fractional
/// digits (allocs ratios) are not handled — the guard only reads counts
/// and rates, which the benchmark prints as integers.
fn field(obj: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\"");
    let at = obj.find(&key)?;
    let rest = &obj[at + key.len()..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn main() {
    let mut fresh_path = String::from("BENCH_stepper.json");
    let mut floors_path = String::from("BENCH_floors.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fresh" => fresh_path = args.next().expect("--fresh PATH"),
            "--floors" => floors_path = args.next().expect("--floors PATH"),
            other => panic!("unknown argument {other}"),
        }
    }
    let fresh = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| panic!("cannot read {fresh_path}: {e}"));
    let floors = std::fs::read_to_string(&floors_path)
        .unwrap_or_else(|e| panic!("cannot read {floors_path}: {e}"));

    let mut failures = Vec::new();
    let mut checked = 0;

    for name in [
        "per_step",
        "batched",
        "superops_off",
        "virtio",
        "overcommit",
    ] {
        let fl =
            section(&floors, name).unwrap_or_else(|| panic!("floors file has no section {name}"));
        let fr =
            section(&fresh, name).unwrap_or_else(|| panic!("fresh bench has no section {name}"));
        let floor = field(fl, "steps_per_sec")
            .unwrap_or_else(|| panic!("floors section {name} has no steps_per_sec"));
        let rate = field(fr, "steps_per_sec")
            .unwrap_or_else(|| panic!("fresh section {name} has no steps_per_sec"));
        // >10% regression below the floor fails.
        let cutoff = floor / 10 * 9;
        if rate < cutoff {
            failures.push(format!(
                "{name}: {rate} steps/s is more than 10% below the floor of {floor}"
            ));
        } else {
            println!("bench_guard: {name} ok ({rate} steps/s, floor {floor})");
        }
        checked += 1;

        // Determinism counters are exact goldens, meaningful only when the
        // fresh run used the floors' step count.
        if field(&floors, "steps") == field(&fresh, "steps") {
            for counter in ["frames_forwarded", "sched_mutations"] {
                if let Some(want) = field(fl, counter) {
                    match field(fr, counter) {
                        Some(got) if got == want => {
                            println!("bench_guard: {name}.{counter} ok ({got})");
                        }
                        got => failures.push(format!(
                            "{name}.{counter}: expected exactly {want}, got {got:?}"
                        )),
                    }
                }
            }
        }
    }

    assert!(checked > 0, "no sections checked");
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_guard: FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("bench_guard: all sections within 10% of their floors");
}
