//! End-to-end cost of fault-injection trials — the unit of work every
//! table/figure campaign repeats thousands of times.

use criterion::{criterion_group, criterion_main, Criterion};
use nlh_campaign::{run_trial, BenchKind, SetupKind, TrialConfig};
use nlh_core::{Microreboot, Microreset};
use nlh_inject::FaultType;

fn bench_failstop_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/trial");
    group.sample_size(10);
    group.bench_function("one_appvm_failstop_nilihype", |b| {
        let mech = Microreset::nilihype();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            run_trial(&cfg, &mech)
        })
    });
    group.bench_function("one_appvm_failstop_rehype", |b| {
        let mech = Microreboot::rehype();
        let mut seed = 1_000u64;
        b.iter(|| {
            seed += 1;
            let cfg = TrialConfig::new(
                SetupKind::OneAppVm(BenchKind::UnixBench),
                FaultType::Failstop,
                seed,
            );
            run_trial(&cfg, &mech)
        })
    });
    group.bench_function("three_appvm_failstop_nilihype", |b| {
        let mech = Microreset::nilihype();
        let mut seed = 2_000u64;
        b.iter(|| {
            seed += 1;
            let cfg = TrialConfig::new(SetupKind::ThreeAppVm, FaultType::Failstop, seed);
            run_trial(&cfg, &mech)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_failstop_trial);
criterion_main!(benches);
