//! Wall-clock cost of one recovery pass (the *implementation*, not the
//! simulated latency — those are Tables II/III).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nlh_bench::small_machine;
use nlh_core::{Microreboot, Microreset, RecoveryMechanism};
use nlh_hv::{CpuId, Hypervisor, MachineConfig};
use nlh_sim::SimDuration;

fn faulted(seed: u64) -> Hypervisor {
    let mut hv = small_machine(seed);
    hv.run_for(SimDuration::from_millis(60));
    hv.raise_panic(CpuId(1), "bench fault");
    hv
}

fn bench_microreset(c: &mut Criterion) {
    c.bench_function("recover/microreset_small", |b| {
        b.iter_batched(
            || faulted(1),
            |mut hv| Microreset::nilihype().recover(&mut hv).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_microreboot(c: &mut Criterion) {
    c.bench_function("recover/microreboot_small", |b| {
        b.iter_batched(
            || faulted(2),
            |mut hv| Microreboot::rehype().recover(&mut hv).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_microreset_paper_machine(c: &mut Criterion) {
    // The 8 GiB configuration scans 2M page-frame descriptors.
    let mut group = c.benchmark_group("recover/paper_machine");
    group.sample_size(10);
    group.bench_function("microreset_8gib", |b| {
        b.iter_batched(
            || {
                let mut hv = Hypervisor::new(MachineConfig::paper(), 3);
                hv.raise_panic(CpuId(0), "bench fault");
                hv
            },
            |mut hv| Microreset::nilihype().recover(&mut hv).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_microreset,
    bench_microreboot,
    bench_microreset_paper_machine
);
criterion_main!(benches);
