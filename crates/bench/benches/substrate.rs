//! Hypervisor-substrate hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nlh_bench::small_machine;
use nlh_hv::mem::PageFrameTable;
use nlh_hv::timers::{TimerEvent, TimerEventKind, TimerSubsystem};
use nlh_sim::{CpuId, DomId, PageNum, SimDuration, SimTime};

fn bench_stepping(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/step");
    group.throughput(Throughput::Elements(10_000));
    // Checked per-step loop, pooled program buffers (the default): what
    // the trial loop drives while the injector counts micro-ops.
    group.bench_function("10k_steps", |b| {
        b.iter_batched(
            || {
                let mut hv = small_machine(7);
                hv.run_for(SimDuration::from_millis(30)); // warm up
                hv
            },
            |mut hv| {
                for _ in 0..10_000 {
                    hv.step_any();
                }
                hv
            },
            BatchSize::SmallInput,
        )
    });
    // Same loop with pooling off: every handler entry allocates a fresh
    // micro-op Vec, exactly as the stepper worked before the program
    // pools. The gap between this and `10k_steps` is the pool's win.
    group.bench_function("10k_steps_fresh_alloc", |b| {
        b.iter_batched(
            || {
                let mut hv = small_machine(7);
                hv.pooling = false;
                hv.run_for(SimDuration::from_millis(30)); // warm up
                hv
            },
            |mut hv| {
                for _ in 0..10_000 {
                    hv.step_any();
                }
                hv
            },
            BatchSize::SmallInput,
        )
    });
    // Batched run loop (checks hoisted to the horizon): what trials drive
    // outside the injection window — the campaign's dominant path.
    group.bench_function("10k_steps_batched", |b| {
        b.iter_batched(
            || {
                let mut hv = small_machine(7);
                hv.run_for(SimDuration::from_millis(30)); // warm up
                hv
            },
            |mut hv| {
                let target = hv.steps_executed() + 10_000;
                while hv.steps_executed() < target && hv.detection().is_none() {
                    hv.run_for(SimDuration::from_millis(5));
                }
                hv
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_pfd_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/pfd_scan");
    for pages in [16_384usize, 262_144] {
        group.throughput(Throughput::Elements(pages as u64));
        group.bench_function(format!("{pages}_frames"), |b| {
            b.iter_batched(
                || {
                    let mut pft = PageFrameTable::new(pages);
                    // Dirty a sprinkle of frames, as a fault would.
                    for i in (0..pages).step_by(97) {
                        let p = pft
                            .alloc(Some(DomId(1)), nlh_hv::mem::PageState::DomainOwned)
                            .unwrap();
                        if i % 2 == 0 {
                            pft.inc_ref(p).unwrap();
                        } else {
                            pft.set_validated(p, true).unwrap();
                        }
                    }
                    pft
                },
                |mut pft| pft.consistency_scan(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_timer_heap(c: &mut Criterion) {
    c.bench_function("substrate/timer_heap_churn", |b| {
        b.iter_batched(
            || {
                let mut t = TimerSubsystem::new(8);
                for i in 0..64u64 {
                    t.insert(
                        CpuId((i % 8) as u32),
                        TimerEvent {
                            deadline: SimTime::from_micros(i * 37),
                            kind: TimerEventKind::OneShot(i),
                            period: None,
                        },
                    );
                }
                t
            },
            |mut t| {
                let now = SimTime::from_secs(1);
                let mut popped = 0;
                for cpu in 0..8 {
                    while let Some(ev) = t.pop_due(CpuId(cpu), now) {
                        popped += 1;
                        // Re-arm to keep the heap busy.
                        t.insert(
                            CpuId(cpu),
                            TimerEvent {
                                deadline: now + SimDuration::from_micros(popped),
                                kind: ev.kind,
                                period: None,
                            },
                        );
                        if popped > 64 {
                            break;
                        }
                    }
                }
                popped
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_page_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/page_ops");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("alloc_pin_unpin_free_x1000", |b| {
        b.iter_batched(
            || PageFrameTable::new(4096),
            |mut pft| {
                for _ in 0..1_000 {
                    let p = pft
                        .alloc(Some(DomId(1)), nlh_hv::mem::PageState::DomainOwned)
                        .unwrap();
                    pft.inc_ref(p).unwrap();
                    pft.set_validated(p, true).unwrap();
                    pft.set_validated(p, false).unwrap();
                    pft.dec_ref(p).unwrap();
                    pft.free(p).unwrap();
                }
                pft
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_locks(c: &mut Criterion) {
    use nlh_hv::locks::{LockPlacement, LockRegistry};
    c.bench_function("substrate/lock_registry", |b| {
        let mut reg = LockRegistry::new();
        let ids: Vec<_> = (0..16)
            .map(|i| reg.register(format!("l{i}"), LockPlacement::Heap))
            .collect();
        b.iter(|| {
            for (i, &id) in ids.iter().enumerate() {
                reg.acquire(id, CpuId((i % 8) as u32));
            }
            for &id in &ids {
                reg.release(id);
            }
            std::hint::black_box(&reg);
        })
    });
    // Keep PageNum referenced so the import list stays tidy under edits.
    let _ = PageNum(0);
}

criterion_group!(
    benches,
    bench_stepping,
    bench_pfd_scan,
    bench_timer_heap,
    bench_page_ops,
    bench_locks
);
criterion_main!(benches);
