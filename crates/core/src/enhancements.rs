//! The recovery enhancement set and the Table I ladder.
//!
//! NiLiHype's recovery rate comes almost entirely from its enhancements
//! (Section V-A): the basic mechanism — discard all execution threads and
//! resume — *never* succeeds. The paper develops the enhancements
//! incrementally, measuring the recovery rate after each addition
//! (Table I); [`LadderRung`] reproduces those configurations.

use serde::{Deserialize, Serialize};

/// Which recovery enhancements are active.
///
/// The first group is shared with ReHype ("Enhanced with ReHype
/// mechanisms"); the second group exists only for NiLiHype, because
/// ReHype's reboot provides the equivalent effect for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enhancements {
    // --- Shared with ReHype ---
    /// Release all locks embedded in heap objects.
    pub release_heap_locks: bool,
    /// Retry partially executed hypercalls after recovery.
    pub hypercall_retry: bool,
    /// Retry forwarded syscalls (x86-64 port enhancement, Section IV).
    pub syscall_retry: bool,
    /// Per-sub-call completion logging for batched hypercalls (Section IV).
    pub batched_retry: bool,
    /// Undo logging + code reordering for non-idempotent hypercalls
    /// (Section IV; turning this off is the paper's "NiLiHype*").
    pub nonidem_mitigation: bool,
    /// Save guest FS/GS at error detection (Section IV).
    pub save_fsgs: bool,
    /// Acknowledge all pending and in-service interrupts.
    pub ack_interrupts: bool,
    /// The page-frame-descriptor consistency scan (21 ms on 8 GB).
    pub pfd_scan: bool,

    // --- NiLiHype-specific (reboot provides these in ReHype) ---
    /// Zero every CPU's `local_irq_count`.
    pub clear_irq_count: bool,
    /// Rebuild per-vCPU scheduling metadata from the per-CPU copies.
    pub sched_consistency: bool,
    /// Reprogram every CPU's APIC one-shot timer.
    pub reprogram_timer: bool,
    /// Unlock every lock in the static-lock segment.
    pub unlock_static_locks: bool,
    /// Re-create missing recurring timer events.
    pub reactivate_timer_events: bool,
    /// Rescan virtio descriptor rings after recovery: publish logged
    /// completions, cancel torn rx fills, re-execute abandoned requests
    /// and re-raise completion interrupts (this repo's device extension;
    /// a no-op on machines without virtio devices).
    pub virtqueue_consistency: bool,
}

impl Enhancements {
    /// Everything off — the "Basic" row of Table I (recovery never
    /// succeeds).
    pub fn none() -> Self {
        Enhancements {
            release_heap_locks: false,
            hypercall_retry: false,
            syscall_retry: false,
            batched_retry: false,
            nonidem_mitigation: false,
            save_fsgs: false,
            ack_interrupts: false,
            pfd_scan: false,
            clear_irq_count: false,
            sched_consistency: false,
            reprogram_timer: false,
            unlock_static_locks: false,
            reactivate_timer_events: false,
            virtqueue_consistency: false,
        }
    }

    /// Everything on — NiLiHype as evaluated.
    pub fn full() -> Self {
        Enhancements {
            release_heap_locks: true,
            hypercall_retry: true,
            syscall_retry: true,
            batched_retry: true,
            nonidem_mitigation: true,
            save_fsgs: true,
            ack_interrupts: true,
            pfd_scan: true,
            clear_irq_count: true,
            sched_consistency: true,
            reprogram_timer: true,
            unlock_static_locks: true,
            reactivate_timer_events: true,
            virtqueue_consistency: true,
        }
    }

    /// The shared "ReHype mechanisms" block (row 3 of Table I adds this).
    fn with_rehype_shared(mut self) -> Self {
        self.release_heap_locks = true;
        self.hypercall_retry = true;
        self.syscall_retry = true;
        self.batched_retry = true;
        self.nonidem_mitigation = true;
        self.save_fsgs = true;
        self.ack_interrupts = true;
        self.pfd_scan = true;
        self
    }
}

impl Default for Enhancements {
    /// The full, evaluated configuration.
    fn default() -> Self {
        Enhancements::full()
    }
}

/// The cumulative rungs of Table I (Section V-B), in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LadderRung {
    /// Discard all execution threads, nothing else. Paper: 0%.
    Basic,
    /// `+ Clear IRQ count`. Paper: 16.0% ± 2.3%.
    ClearIrqCount,
    /// `+ Enhanced with ReHype mechanisms`. Paper: 51.8% ± 3.1%.
    ReHypeMechanisms,
    /// `+ Ensure consistency within scheduling metadata`. Paper: 82.2% ± 2.4%.
    SchedConsistency,
    /// `+ Reprogram hardware timer`. Paper: 95.0% ± 1.4%.
    ReprogramTimer,
    /// `+ Unlock static locks`. Paper: 96.1% ± 1.2%.
    UnlockStaticLocks,
    /// `+ Reactivate recurring timer events` (the paper's full mechanism).
    ReactivateTimerEvents,
    /// `+ Virtqueue ring consistency` (this repo's device extension: the
    /// paper's setups have no virtio devices, so this rung equals the one
    /// below on every paper campaign).
    VirtqueueConsistency,
}

impl LadderRung {
    /// All rungs, bottom to top.
    pub const ALL: [LadderRung; 8] = [
        LadderRung::Basic,
        LadderRung::ClearIrqCount,
        LadderRung::ReHypeMechanisms,
        LadderRung::SchedConsistency,
        LadderRung::ReprogramTimer,
        LadderRung::UnlockStaticLocks,
        LadderRung::ReactivateTimerEvents,
        LadderRung::VirtqueueConsistency,
    ];

    /// The paper's Table I label for this rung.
    pub fn label(self) -> &'static str {
        match self {
            LadderRung::Basic => "Basic",
            LadderRung::ClearIrqCount => "+ Clear IRQ count",
            LadderRung::ReHypeMechanisms => "+ Enhanced with ReHype mechanisms",
            LadderRung::SchedConsistency => "+ Ensure consistency within scheduling metadata",
            LadderRung::ReprogramTimer => "+ Reprogram hardware timer",
            LadderRung::UnlockStaticLocks => "+ Unlock static locks",
            LadderRung::ReactivateTimerEvents => "+ Reactivate recurring timer events",
            LadderRung::VirtqueueConsistency => "+ Virtqueue ring consistency",
        }
    }

    /// The rung's short machine-readable name: the variant identifier, as
    /// `Debug` prints it. Stable across releases — campaign suite manifests
    /// name rungs with these.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::Basic => "Basic",
            LadderRung::ClearIrqCount => "ClearIrqCount",
            LadderRung::ReHypeMechanisms => "ReHypeMechanisms",
            LadderRung::SchedConsistency => "SchedConsistency",
            LadderRung::ReprogramTimer => "ReprogramTimer",
            LadderRung::UnlockStaticLocks => "UnlockStaticLocks",
            LadderRung::ReactivateTimerEvents => "ReactivateTimerEvents",
            LadderRung::VirtqueueConsistency => "VirtqueueConsistency",
        }
    }

    /// Parses the name produced by [`LadderRung::name`] (the `Debug`
    /// variant identifier). The inverse lookup used when a campaign suite
    /// manifest names a rung-capped mechanism.
    pub fn from_name(s: &str) -> Option<LadderRung> {
        LadderRung::ALL.into_iter().find(|r| r.name() == s)
    }

    /// The paper's measured recovery rate for this rung, when reported.
    pub fn paper_rate(self) -> Option<f64> {
        match self {
            LadderRung::Basic => Some(0.0),
            LadderRung::ClearIrqCount => Some(0.160),
            LadderRung::ReHypeMechanisms => Some(0.518),
            LadderRung::SchedConsistency => Some(0.822),
            LadderRung::ReprogramTimer => Some(0.950),
            LadderRung::UnlockStaticLocks => Some(0.961),
            LadderRung::ReactivateTimerEvents => None, // final rate, ~96-97%
            LadderRung::VirtqueueConsistency => None,  // not in the paper
        }
    }

    /// The cumulative enhancement set at this rung.
    pub fn enhancements(self) -> Enhancements {
        let mut e = Enhancements::none();
        let rung = self as usize;
        if rung >= LadderRung::ClearIrqCount as usize {
            e.clear_irq_count = true;
        }
        if rung >= LadderRung::ReHypeMechanisms as usize {
            e = e.with_rehype_shared();
        }
        if rung >= LadderRung::SchedConsistency as usize {
            e.sched_consistency = true;
        }
        if rung >= LadderRung::ReprogramTimer as usize {
            e.reprogram_timer = true;
        }
        if rung >= LadderRung::UnlockStaticLocks as usize {
            e.unlock_static_locks = true;
        }
        if rung >= LadderRung::ReactivateTimerEvents as usize {
            e.reactivate_timer_events = true;
        }
        if rung >= LadderRung::VirtqueueConsistency as usize {
            e.virtqueue_consistency = true;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let mut prev_count = 0usize;
        for rung in LadderRung::ALL {
            let e = rung.enhancements();
            let count = [
                e.release_heap_locks,
                e.hypercall_retry,
                e.syscall_retry,
                e.batched_retry,
                e.nonidem_mitigation,
                e.save_fsgs,
                e.ack_interrupts,
                e.pfd_scan,
                e.clear_irq_count,
                e.sched_consistency,
                e.reprogram_timer,
                e.unlock_static_locks,
                e.reactivate_timer_events,
                e.virtqueue_consistency,
            ]
            .iter()
            .filter(|b| **b)
            .count();
            assert!(count >= prev_count, "{rung:?} lost enhancements");
            prev_count = count;
        }
    }

    #[test]
    fn top_rung_is_full() {
        assert_eq!(
            LadderRung::VirtqueueConsistency.enhancements(),
            Enhancements::full()
        );
    }

    #[test]
    fn paper_top_rung_differs_only_in_virtqueue_consistency() {
        let mut paper_full = LadderRung::ReactivateTimerEvents.enhancements();
        assert!(!paper_full.virtqueue_consistency);
        paper_full.virtqueue_consistency = true;
        assert_eq!(paper_full, Enhancements::full());
    }

    #[test]
    fn basic_rung_is_none() {
        assert_eq!(LadderRung::Basic.enhancements(), Enhancements::none());
    }

    #[test]
    fn rung_names_round_trip() {
        for rung in LadderRung::ALL {
            assert_eq!(LadderRung::from_name(rung.name()), Some(rung));
            assert_eq!(rung.name(), format!("{rung:?}"));
        }
        assert_eq!(LadderRung::from_name("NoSuchRung"), None);
    }

    #[test]
    fn paper_rates_increase_monotonically() {
        let rates: Vec<f64> = LadderRung::ALL
            .iter()
            .filter_map(|r| r.paper_rate())
            .collect();
        for pair in rates.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(LadderRung::Basic.label(), "Basic");
        assert!(LadderRung::UnlockStaticLocks
            .label()
            .contains("static locks"));
    }
}
