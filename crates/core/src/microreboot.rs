//! **Microreboot** — component-level recovery *with* reboot (ReHype).
//!
//! ReHype (Sections III-B, IV) boots a new hypervisor instance while
//! preserving VM state in place: static data segments are saved and
//! selectively restored, the non-free heap pages are preserved and
//! re-integrated into the new heap, and page tables are restored. The boot
//! re-initializes the hardware and a large part of the hypervisor state —
//! which is why the NiLiHype-specific enhancements are unnecessary here,
//! and why ReHype cleanses some corruptions microreset cannot — at the cost
//! of ~713 ms of recovery latency (Table II).

use nlh_hv::hypercalls::OpSupport;
use nlh_hv::Hypervisor;
use nlh_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::clr::{RecoveryError, RecoveryMechanism, RecoveryReport, RecoveryStep};
use crate::latency::CostModel;
use crate::shared;

/// ReHype configuration: the x86-64 port enhancements of Section IV.
///
/// The "initial port" (65% recovery rate) lacked all four; adding syscall
/// retry, batched-hypercall retry and FS/GS saving brought it to 84%, and
/// the non-idempotent-hypercall mitigation to 96%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReHypeConfig {
    /// Retry forwarded syscalls (x86-64 traps syscalls into the hypervisor).
    pub syscall_retry: bool,
    /// Fine-granularity batched hypercall retry (completion logging).
    pub batched_retry: bool,
    /// Save FS/GS at error detection.
    pub save_fsgs: bool,
    /// Undo logging + code reordering for non-idempotent hypercalls.
    pub nonidem_mitigation: bool,
    /// Log I/O APIC register writes for post-reboot restoration.
    pub ioapic_log: bool,
    /// Log boot-line options for the reboot.
    pub bootline_log: bool,
}

impl ReHypeConfig {
    /// ReHype as evaluated: everything on.
    pub fn full() -> Self {
        ReHypeConfig {
            syscall_retry: true,
            batched_retry: true,
            save_fsgs: true,
            nonidem_mitigation: true,
            ioapic_log: true,
            bootline_log: true,
        }
    }

    /// The initial x86-64 port (Section IV): before the four port
    /// enhancements.
    pub fn initial_port() -> Self {
        ReHypeConfig {
            syscall_retry: false,
            batched_retry: false,
            save_fsgs: false,
            nonidem_mitigation: false,
            ioapic_log: true,
            bootline_log: true,
        }
    }

    /// The port with syscall retry, batched retry and FS/GS save, but
    /// without the non-idempotent mitigation (the 84% configuration).
    pub fn port_plus_three() -> Self {
        ReHypeConfig {
            syscall_retry: true,
            batched_retry: true,
            save_fsgs: true,
            nonidem_mitigation: false,
            ioapic_log: true,
            bootline_log: true,
        }
    }
}

impl Default for ReHypeConfig {
    fn default() -> Self {
        ReHypeConfig::full()
    }
}

/// The ReHype recovery mechanism.
#[derive(Debug, Clone)]
pub struct Microreboot {
    config: ReHypeConfig,
    cost: CostModel,
}

impl Microreboot {
    /// ReHype as evaluated in the paper.
    pub fn rehype() -> Self {
        Microreboot {
            config: ReHypeConfig::full(),
            cost: CostModel::paper(),
        }
    }

    /// ReHype with an explicit configuration (for the Section IV port
    /// ladder and ablations).
    pub fn with_config(config: ReHypeConfig) -> Self {
        Microreboot {
            config,
            cost: CostModel::paper(),
        }
    }

    /// Overrides the latency cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ReHypeConfig {
        &self.config
    }
}

impl RecoveryMechanism for Microreboot {
    fn name(&self) -> &str {
        "ReHype"
    }

    fn op_support(&self) -> OpSupport {
        let c = &self.config;
        OpSupport {
            undo_logging: c.nonidem_mitigation,
            reorder_nonidem: c.nonidem_mitigation,
            batched_completion_log: c.batched_retry,
            ioapic_write_log: c.ioapic_log,
            bootline_log: c.bootline_log,
            save_fsgs: c.save_fsgs,
        }
    }

    fn recover(&self, hv: &mut Hypervisor) -> Result<RecoveryReport, RecoveryError> {
        if hv.detection().is_none() {
            return Err(RecoveryError::NoDetection);
        }
        if !hv.recovery_entry_ok {
            return Err(RecoveryError::RecoveryRoutineCorrupted);
        }
        if !self.config.bootline_log {
            // Without logged boot options the new instance cannot be
            // brought up compatibly with the preserved state.
            return Err(RecoveryError::BootOptionsUnavailable);
        }
        let c = &self.config;
        let cfg = hv.config.clone();
        let mut steps: Vec<RecoveryStep> = Vec::new();
        let mut push = |name: &str, d: SimDuration| {
            steps.push(RecoveryStep {
                name: name.to_string(),
                duration: d,
            })
        };

        // --- Quiesce + preserve. ---
        if c.save_fsgs {
            hv.save_fsgs_all();
        }
        let abandon = hv.discard_all_stacks();
        push(
            "Halt CPUs and preserve static data segments",
            SimDuration::from_micros(800),
        );

        // --- Hardware initialization (Table II: 412 ms). ---
        push("Early initialize of the boot CPU", self.cost.early_boot_cpu);
        push(
            "Initialize and wait for other CPUs to come online",
            self.cost.init_other_cpus(&cfg),
        );
        push(
            "Verify, connect and setup local APIC and setup IO APIC",
            self.cost.apic_setup,
        );
        push(
            "Initialize and calibrate TSC timer",
            self.cost.tsc_calibrate,
        );
        // The reboot re-initializes hardware + boot-initialized state:
        for pc in hv.percpu.iter_mut() {
            pc.local_irq_count = 0;
        }
        hv.locks.unlock_static_segment();
        hv.boot_scratch_corrupted = false;
        let ioapic_snapshot = hv.ioapic_log;
        hv.irqs.ioapic_reset_to_boot();
        if c.ioapic_log {
            if let Some(snap) = ioapic_snapshot {
                hv.irqs.ioapic_restore(snap);
            }
        }
        // Timer subsystem is rebuilt from scratch; recurring events are
        // re-registered during boot.
        hv.timers.clear();
        let timers_reactivated = shared::reactivate_timers(hv);
        hv.reprogram_all_apics();

        // --- Memory initialization (Table II: 266 ms). ---
        push(
            "Record allocated pages of old heap",
            self.cost.record_old_heap(&cfg),
        );
        let pfd_repaired = hv.pft.consistency_scan();
        push(
            "Restore and check consistency of page frame entries",
            self.cost.pfd_scan(&cfg),
        );
        push(
            "Re-initialize the page frame descriptor for un-preserved pages",
            self.cost.reinit_unpreserved(&cfg),
        );
        hv.heap.rebuild_freelist();
        push("Recreate the new heap", self.cost.recreate_heap(&cfg));

        // --- Misc (Table II: 35 ms). ---
        push("SMP initialization", self.cost.smp_init);
        push(
            "Identify valid page frame, relocate boot up modules",
            self.cost.relocate_modules,
        );
        push("Others", self.cost.boot_others);

        // --- Re-integration + shared enhancements. ---
        let mut locks_released = shared::release_heap_locks(hv);
        locks_released += 0;
        if c.nonidem_mitigation {
            shared::apply_undo(hv);
        }
        let requests_retried = shared::mark_retries(hv, true, c.syscall_retry);
        shared::ack_interrupts(hv);
        // Scheduler state is rebuilt from the preserved per-CPU structures.
        shared::fix_scheduler(hv);
        // The rebooted instance re-initializes its virtio device backends;
        // descriptor rings live in preserved guest memory, so torn
        // transactions are repaired the same way microreset does (after
        // `ack_interrupts`, so re-raised completion vectors survive).
        // Absent on machines without devices — the Table II breakdown is
        // unchanged.
        if !hv.virtio.is_empty() {
            let rep = hv.virtio_repair();
            push(
                "Re-initialize virtio device backends and repair rings",
                SimDuration::from_micros(20 + 2 * rep.total()),
            );
        }

        hv.finish_fsgs(&abandon.in_hv_vcpus, c.save_fsgs);

        let total = steps.iter().fold(SimDuration::ZERO, |a, s| a + s.duration);
        hv.resume_after(total);

        Ok(RecoveryReport {
            mechanism: self.name().to_string(),
            steps,
            total,
            frames_discarded: abandon.frames_discarded,
            locks_released,
            pfd_repaired,
            requests_retried,
            timers_reactivated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::chaos::CorruptionKind;
    use nlh_hv::invariants::check_quiescent;
    use nlh_hv::{CpuId, MachineConfig};

    #[test]
    fn latency_matches_table2_on_paper_machine() {
        let mut hv = Hypervisor::new(MachineConfig::paper(), 1);
        hv.raise_panic(CpuId(0), "fault");
        let report = Microreboot::rehype().recover(&mut hv).unwrap();
        // Table II: 713 ms (+ the sub-ms preserve step).
        assert_eq!(report.total.as_millis(), 713);
        let heap = report
            .steps
            .iter()
            .find(|s| s.name.contains("Recreate"))
            .unwrap();
        assert_eq!(heap.duration.as_millis(), 211);
    }

    #[test]
    fn rehype_is_over_30x_slower_than_nilihype() {
        let mut hv1 = Hypervisor::new(MachineConfig::paper(), 1);
        hv1.raise_panic(CpuId(0), "fault");
        let re = Microreboot::rehype().recover(&mut hv1).unwrap();
        let mut hv2 = Hypervisor::new(MachineConfig::paper(), 1);
        hv2.raise_panic(CpuId(0), "fault");
        let ni = crate::Microreset::nilihype().recover(&mut hv2).unwrap();
        let ratio = re.total.as_nanos() as f64 / ni.total.as_nanos() as f64;
        assert!(ratio > 30.0, "ratio = {ratio:.1}");
    }

    #[test]
    fn reboot_cleanses_boot_reinitialized_state() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 2);
        hv.apply_corruption(CorruptionKind::BootScratch);
        hv.apply_corruption(CorruptionKind::HeapFreelist);
        hv.raise_panic(CpuId(0), "fault");
        Microreboot::rehype().recover(&mut hv).unwrap();
        assert!(!hv.boot_scratch_corrupted, "reboot re-initializes scratch");
        assert!(!hv.heap.is_freelist_corrupted(), "heap rebuilt");
        assert!(check_quiescent(&hv).is_empty());
    }

    #[test]
    fn microreset_does_not_cleanse_that_state() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 2);
        hv.apply_corruption(CorruptionKind::BootScratch);
        hv.apply_corruption(CorruptionKind::HeapFreelist);
        hv.raise_panic(CpuId(0), "fault");
        crate::Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(hv.boot_scratch_corrupted, "microreset keeps state in place");
        assert!(hv.heap.is_freelist_corrupted());
    }

    #[test]
    fn missing_bootline_log_fails_recovery() {
        let mut cfg = ReHypeConfig::full();
        cfg.bootline_log = false;
        let mut hv = Hypervisor::new(MachineConfig::small(), 3);
        hv.raise_panic(CpuId(0), "fault");
        assert_eq!(
            Microreboot::with_config(cfg).recover(&mut hv),
            Err(RecoveryError::BootOptionsUnavailable)
        );
    }

    #[test]
    fn ioapic_routes_restored_from_log() {
        use nlh_hv::domain::{DomainKind, DomainSpec, IdleLoop};
        let mut hv = Hypervisor::new(MachineConfig::small(), 4);
        let dom = hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 8,
            pinned_cpu: CpuId(1),
            program: Box::new(IdleLoop),
        });
        hv.attach_net_traffic(dom, nlh_sim::SimDuration::from_millis(1));
        hv.ioapic_log = Some(hv.irqs.ioapic_snapshot());
        let route_before = hv.irqs.ioapic_route(nlh_hv::interrupts::VEC_NET);
        hv.raise_panic(CpuId(0), "fault");
        Microreboot::rehype().recover(&mut hv).unwrap();
        assert_eq!(
            hv.irqs.ioapic_route(nlh_hv::interrupts::VEC_NET),
            route_before,
            "log replay restores device routing"
        );
    }

    #[test]
    fn initial_port_lacks_the_four_enhancements() {
        let c = ReHypeConfig::initial_port();
        assert!(!c.syscall_retry && !c.batched_retry && !c.save_fsgs && !c.nonidem_mitigation);
        assert!(c.bootline_log && c.ioapic_log);
        let s = Microreboot::with_config(c).op_support();
        assert!(!s.undo_logging && !s.save_fsgs && !s.batched_completion_log);
        assert!(s.ioapic_write_log && s.bootline_log);
    }

    #[test]
    fn recovery_restores_quiescent_invariants_after_residue() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 5);
        hv.percpu[3].local_irq_count = 2;
        hv.locks
            .acquire(nlh_hv::locks::StaticLock::PageAlloc.id(), CpuId(2));
        hv.percpu[6].apic.disarm();
        hv.timers
            .remove_kind(nlh_hv::timers::TimerEventKind::TimeSync);
        hv.raise_panic(CpuId(3), "fault");
        Microreboot::rehype().recover(&mut hv).unwrap();
        let v = check_quiescent(&hv);
        assert!(v.is_empty(), "violations: {v:?}");
    }
}
