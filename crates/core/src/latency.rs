//! The recovery-latency cost model, calibrated to Tables II and III.
//!
//! The paper measures per-step recovery latencies by reading the TSC after
//! each major step on an 8-core, 8 GB machine. The constants below
//! reproduce those measurements; memory-proportional steps (the page-frame
//! scan, heap recreation, ...) scale with the configured machine so the
//! §VII-B scaling discussion ("this would be a problem in a large system")
//! can be reproduced by sweeping memory size.

use nlh_hv::MachineConfig;
use nlh_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of page frames on the paper's 8 GB testbed.
const PAPER_PAGES: u64 = 2 * 1024 * 1024;
/// Number of CPUs on the paper's testbed.
const PAPER_CPUS: u64 = 8;

/// Per-step recovery latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    // --- ReHype hardware initialization (fixed) ---
    /// Early initialization of the boot CPU.
    pub early_boot_cpu: SimDuration,
    /// Initialize and wait for other CPUs to come online (per 8 CPUs).
    pub init_other_cpus: SimDuration,
    /// Verify/connect/setup local APIC and I/O APIC.
    pub apic_setup: SimDuration,
    /// Initialize and calibrate the TSC timer.
    pub tsc_calibrate: SimDuration,
    /// SMP initialization.
    pub smp_init: SimDuration,
    /// Identify valid page frames, relocate boot modules.
    pub relocate_modules: SimDuration,
    /// Miscellaneous other boot work.
    pub boot_others: SimDuration,

    // --- Memory-proportional steps (value at 8 GB / 2M frames) ---
    /// Record allocated pages of the old heap (preservation).
    pub record_old_heap_8g: SimDuration,
    /// Restore and check consistency of page frame entries (the scan that
    /// dominates NiLiHype's latency).
    pub pfd_scan_8g: SimDuration,
    /// Re-initialize descriptors of un-preserved pages.
    pub reinit_unpreserved_8g: SimDuration,
    /// Recreate the new heap and re-integrate preserved allocations.
    pub recreate_heap_8g: SimDuration,

    // --- NiLiHype's non-scan work ---
    /// Everything else microreset does (quiesce, locks, retries, timers).
    pub microreset_others: SimDuration,
}

impl CostModel {
    /// The model calibrated to the paper's Tables II and III.
    pub fn paper() -> Self {
        CostModel {
            early_boot_cpu: SimDuration::from_millis(12),
            init_other_cpus: SimDuration::from_millis(150),
            apic_setup: SimDuration::from_millis(200),
            tsc_calibrate: SimDuration::from_millis(50),
            smp_init: SimDuration::from_millis(20),
            relocate_modules: SimDuration::from_millis(2),
            boot_others: SimDuration::from_millis(13),
            record_old_heap_8g: SimDuration::from_millis(21),
            pfd_scan_8g: SimDuration::from_millis(21),
            reinit_unpreserved_8g: SimDuration::from_millis(13),
            recreate_heap_8g: SimDuration::from_millis(211),
            microreset_others: SimDuration::from_millis(1),
        }
    }

    fn scale_mem(&self, base: SimDuration, config: &MachineConfig) -> SimDuration {
        let pages = config.num_pages() as u64;
        SimDuration::from_nanos(base.as_nanos().saturating_mul(pages) / PAPER_PAGES)
    }

    /// The page-frame consistency scan on `config` (proportional to the
    /// number of frames: 21 ms at 8 GB).
    pub fn pfd_scan(&self, config: &MachineConfig) -> SimDuration {
        self.scale_mem(self.pfd_scan_8g, config)
    }

    /// Recording the old heap's allocated pages (ReHype).
    pub fn record_old_heap(&self, config: &MachineConfig) -> SimDuration {
        self.scale_mem(self.record_old_heap_8g, config)
    }

    /// Re-initializing un-preserved descriptors (ReHype).
    pub fn reinit_unpreserved(&self, config: &MachineConfig) -> SimDuration {
        self.scale_mem(self.reinit_unpreserved_8g, config)
    }

    /// Recreating the heap (ReHype; 211 ms at 8 GB).
    pub fn recreate_heap(&self, config: &MachineConfig) -> SimDuration {
        self.scale_mem(self.recreate_heap_8g, config)
    }

    /// Waiting for secondary CPUs (scales with CPU count).
    pub fn init_other_cpus(&self, config: &MachineConfig) -> SimDuration {
        SimDuration::from_nanos(
            self.init_other_cpus.as_nanos() * config.num_cpus as u64 / PAPER_CPUS,
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_reproduces_table_values() {
        let m = CostModel::paper();
        let cfg = MachineConfig::paper();
        assert_eq!(m.pfd_scan(&cfg).as_millis(), 21);
        assert_eq!(m.recreate_heap(&cfg).as_millis(), 211);
        assert_eq!(m.record_old_heap(&cfg).as_millis(), 21);
        assert_eq!(m.reinit_unpreserved(&cfg).as_millis(), 13);
        assert_eq!(m.init_other_cpus(&cfg).as_millis(), 150);
    }

    #[test]
    fn memory_steps_scale_linearly() {
        let m = CostModel::paper();
        let mut cfg = MachineConfig::paper();
        cfg.memory_mib = 16 * 1024; // 16 GB
        assert_eq!(m.pfd_scan(&cfg).as_millis(), 42);
        cfg.memory_mib = 2 * 1024; // 2 GB
        assert_eq!(m.pfd_scan(&cfg).as_millis(), 5, "21/4 truncates to 5 ms");
    }

    #[test]
    fn table2_totals_add_up() {
        // Hardware init: 12+150+200+50 = 412; memory: 21+21+13+211 = 266;
        // misc: 20+2+13 = 35; total 713 (Table II).
        let m = CostModel::paper();
        let cfg = MachineConfig::paper();
        let hw = m.early_boot_cpu + m.init_other_cpus(&cfg) + m.apic_setup + m.tsc_calibrate;
        let mem = m.record_old_heap(&cfg)
            + m.pfd_scan(&cfg)
            + m.reinit_unpreserved(&cfg)
            + m.recreate_heap(&cfg);
        let misc = m.smp_init + m.relocate_modules + m.boot_others;
        assert_eq!(hw.as_millis(), 412);
        assert_eq!(mem.as_millis(), 266);
        assert_eq!(misc.as_millis(), 35);
        assert_eq!((hw + mem + misc).as_millis(), 713);
    }
}
