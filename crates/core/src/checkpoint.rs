//! **Checkpoint rollback** — the middle point of the design space the paper
//! discusses in Section II-B: "it is possible to reduce part of the reboot
//! time by replacing the reboot with a rollback to a checkpoint saved right
//! after a previous reboot. However, even in this case, there would be
//! significant latency for reintegrating state from the previous instance."
//!
//! The mechanism restores the hypervisor's *memory* state from a post-boot
//! checkpoint (cleansing the same state subset a reboot re-initializes)
//! and then performs ReHype's re-integration of the preserved VM state —
//! but skips the hardware initialization. Because the hardware is *not*
//! re-initialized, it additionally needs NiLiHype's hardware-facing
//! enhancements (reprogram the APIC timers, acknowledge interrupts).

use nlh_hv::hypercalls::OpSupport;
use nlh_hv::Hypervisor;
use nlh_sim::SimDuration;

use crate::clr::{RecoveryError, RecoveryMechanism, RecoveryReport, RecoveryStep};
use crate::latency::CostModel;
use crate::shared;

/// Recovery by rolling back to a post-boot checkpoint and re-integrating
/// preserved state (Section II-B's microreboot variant).
#[derive(Debug, Clone)]
pub struct CheckpointRestore {
    cost: CostModel,
}

impl CheckpointRestore {
    /// The checkpoint-rollback mechanism with the paper-calibrated cost
    /// model.
    pub fn new() -> Self {
        CheckpointRestore {
            cost: CostModel::paper(),
        }
    }

    /// Overrides the latency cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

impl Default for CheckpointRestore {
    fn default() -> Self {
        CheckpointRestore::new()
    }
}

impl RecoveryMechanism for CheckpointRestore {
    fn name(&self) -> &str {
        "CheckpointRestore"
    }

    fn op_support(&self) -> OpSupport {
        OpSupport {
            undo_logging: true,
            reorder_nonidem: true,
            batched_completion_log: true,
            // No reboot: the I/O APIC keeps its state, no boot line needed.
            ioapic_write_log: false,
            bootline_log: false,
            save_fsgs: true,
        }
    }

    fn recover(&self, hv: &mut Hypervisor) -> Result<RecoveryReport, RecoveryError> {
        if hv.detection().is_none() {
            return Err(RecoveryError::NoDetection);
        }
        if !hv.recovery_entry_ok {
            return Err(RecoveryError::RecoveryRoutineCorrupted);
        }
        let cfg = hv.config.clone();
        let mut steps: Vec<RecoveryStep> = Vec::new();
        let mut push = |name: &str, d: SimDuration| {
            steps.push(RecoveryStep {
                name: name.to_string(),
                duration: d,
            })
        };

        hv.save_fsgs_all();
        let abandon = hv.discard_all_stacks();
        push(
            "Halt CPUs and preserve dynamic state",
            SimDuration::from_micros(800),
        );

        // --- Restore the post-boot checkpoint image of the hypervisor's
        // own memory (static data, heap metadata, timer subsystem). This
        // cleanses the same subset a reboot re-initializes, at memory-copy
        // rather than boot cost.
        for pc in hv.percpu.iter_mut() {
            pc.local_irq_count = 0;
        }
        hv.locks.unlock_static_segment();
        hv.boot_scratch_corrupted = false;
        hv.heap.rebuild_freelist();
        hv.timers.clear();
        let timers_reactivated = shared::reactivate_timers(hv);
        push(
            "Restore post-boot checkpoint image",
            self.cost.record_old_heap(&cfg) * 2, // copy in + fix-ups
        );

        // --- Re-integration, as in ReHype (Table II memory steps minus the
        // descriptor re-initialization the checkpoint already contains).
        let mut locks_released = shared::release_heap_locks(hv);
        locks_released += 0;
        let pfd_repaired = hv.pft.consistency_scan();
        push(
            "Restore and check consistency of page frame entries",
            self.cost.pfd_scan(&cfg),
        );
        push(
            "Re-integrate preserved heap state",
            self.cost.recreate_heap(&cfg),
        );
        shared::apply_undo(hv);
        let requests_retried = shared::mark_retries(hv, true, true);
        shared::fix_scheduler(hv);

        // --- Hardware was NOT re-initialized: NiLiHype-style fixes.
        shared::ack_interrupts(hv);
        hv.reprogram_all_apics();
        push(
            "Reprogram hardware timers, acknowledge interrupts",
            SimDuration::from_micros(60),
        );
        // Virtio rings live in guest memory the checkpoint does not cover:
        // repair them the NiLiHype way (absent without devices).
        if !hv.virtio.is_empty() {
            let rep = hv.virtio_repair();
            push(
                "Repair virtqueue ring consistency",
                SimDuration::from_micros(20 + 2 * rep.total()),
            );
        }

        hv.finish_fsgs(&abandon.in_hv_vcpus, true);

        let total = steps.iter().fold(SimDuration::ZERO, |a, s| a + s.duration);
        hv.resume_after(total);

        Ok(RecoveryReport {
            mechanism: self.name().to_string(),
            steps,
            total,
            frames_discarded: abandon.frames_discarded,
            locks_released,
            pfd_repaired,
            requests_retried,
            timers_reactivated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::chaos::CorruptionKind;
    use nlh_hv::invariants::check_quiescent;
    use nlh_hv::{CpuId, MachineConfig};

    #[test]
    fn latency_sits_between_the_two_mechanisms() {
        // Section II-B: "multiple hundreds of milliseconds" even without
        // the boot — dominated by state re-integration.
        let mut hv = Hypervisor::new(MachineConfig::paper(), 1);
        hv.raise_panic(CpuId(0), "fault");
        let ckpt = CheckpointRestore::new().recover(&mut hv).unwrap();
        assert!(
            ckpt.total.as_millis() > 200 && ckpt.total.as_millis() < 713,
            "checkpoint restore: {}",
            ckpt.total
        );
        let mut hv = Hypervisor::new(MachineConfig::paper(), 1);
        hv.raise_panic(CpuId(0), "fault");
        let ni = crate::Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(ckpt.total > ni.total * 10, "far slower than microreset");
    }

    #[test]
    fn cleanses_boot_initialized_state_like_a_reboot() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 2);
        hv.apply_corruption(CorruptionKind::BootScratch);
        hv.apply_corruption(CorruptionKind::HeapFreelist);
        hv.percpu[3].local_irq_count = 2;
        hv.percpu[5].apic.disarm();
        hv.raise_panic(CpuId(0), "fault");
        CheckpointRestore::new().recover(&mut hv).unwrap();
        assert!(!hv.boot_scratch_corrupted);
        assert!(!hv.heap.is_freelist_corrupted());
        let v = check_quiescent(&hv);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn machine_runs_after_checkpoint_recovery() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 3);
        hv.run_for(SimDuration::from_millis(60));
        hv.raise_panic(CpuId(2), "fault");
        CheckpointRestore::new().recover(&mut hv).unwrap();
        hv.run_for(SimDuration::from_secs(1));
        assert!(hv.detection().is_none(), "{:?}", hv.detection());
    }
}
