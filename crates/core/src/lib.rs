//! **NiLiHype / ReHype** — the paper's contribution: component-level
//! recovery (CLR) of a hypervisor, with and without reboot.
//!
//! This crate implements the two recovery mechanisms of *"Fast Hypervisor
//! Recovery Without Reboot"* (Zhou & Tamir, DSN 2018) against the simulated
//! Xen-like substrate in [`nlh_hv`]:
//!
//! * [`Microreset`] (**NiLiHype**) — on error detection, every hypervisor
//!   execution thread is discarded, resetting the component to a quiescent
//!   state; a set of [`Enhancements`] then repairs the abandonment residue
//!   and the inconsistencies with the rest of the system. Recovery latency
//!   is dominated by the page-frame consistency scan (~22 ms total on the
//!   paper's 8 GB machine — Table III).
//! * [`Microreboot`] (**ReHype**) — a new hypervisor instance is booted
//!   while preserving VM state in place; preserved state is re-integrated
//!   into the new instance. The boot re-initializes hardware and a portion
//!   of hypervisor state (which is why ReHype recovers slightly more
//!   corruption cases), at the cost of ~713 ms (Table II).
//!
//! A third design point from Section II-B, [`CheckpointRestore`] (rollback
//! to a post-boot checkpoint followed by state re-integration), is also
//! implemented so the full design space can be measured.
//!
//! All three implement [`RecoveryMechanism`]; a campaign drives the
//! simulation, and when a detector fires it calls
//! [`RecoveryMechanism::recover`].
//!
//! # Example
//!
//! ```
//! use nlh_core::{Microreset, RecoveryMechanism};
//! use nlh_hv::{Hypervisor, MachineConfig};
//!
//! let mech = Microreset::nilihype();
//! let mut hv = Hypervisor::new(MachineConfig::small(), 1);
//! hv.support = mech.op_support();
//! // ... run, inject, detect ...
//! hv.raise_panic(nlh_sim::CpuId(0), "example fault");
//! let report = mech.recover(&mut hv).expect("recovery runs");
//! assert!(report.total.as_millis() < 100, "microreset is fast");
//! assert!(hv.detection().is_none(), "machine resumed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod clr;
mod enhancements;
mod latency;
mod microreboot;
mod microreset;
mod shared;

pub use checkpoint::CheckpointRestore;
pub use clr::{RecoveryError, RecoveryMechanism, RecoveryReport, RecoveryStep};
pub use enhancements::{Enhancements, LadderRung};
pub use latency::CostModel;
pub use microreboot::{Microreboot, ReHypeConfig};
pub use microreset::{DiscardPolicy, Microreset};
