//! The component-level-recovery interface.

use nlh_hv::hypercalls::OpSupport;
use nlh_hv::Hypervisor;
use nlh_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// One recovery step and the latency it contributed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStep {
    /// Step name, matching the rows of Tables II/III.
    pub name: String,
    /// Simulated latency of the step.
    pub duration: SimDuration,
}

/// What a recovery run did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Mechanism name (`"NiLiHype"` / `"ReHype"`).
    pub mechanism: String,
    /// Per-step latency breakdown (the raw material of Tables II/III).
    pub steps: Vec<RecoveryStep>,
    /// Total recovery latency (the VMs are paused for this long).
    pub total: SimDuration,
    /// Hypervisor execution threads discarded.
    pub frames_discarded: usize,
    /// Locks released (heap + static).
    pub locks_released: usize,
    /// Page-frame descriptors repaired by the consistency scan.
    pub pfd_repaired: usize,
    /// Partially-executed requests marked for retry.
    pub requests_retried: usize,
    /// Recurring timer events re-created.
    pub timers_reactivated: usize,
}

impl RecoveryReport {
    /// Steps whose latency is at least `min` — the paper's tables "list
    /// every step that takes more than 1 ms".
    pub fn steps_at_least(&self, min: SimDuration) -> Vec<&RecoveryStep> {
        self.steps.iter().filter(|s| s.duration >= min).collect()
    }
}

/// Why recovery could not be performed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryError {
    /// The recovery routine itself cannot run — the fault corrupted state
    /// it depends on (the paper's top recovery-failure cause).
    RecoveryRoutineCorrupted,
    /// The reboot path could not reconstruct boot parameters (ReHype with
    /// boot-line logging disabled).
    BootOptionsUnavailable,
    /// `recover` was called with no pending detection.
    NoDetection,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RecoveryRoutineCorrupted => {
                write!(f, "recovery routine state corrupted by the fault")
            }
            RecoveryError::BootOptionsUnavailable => {
                write!(
                    f,
                    "boot-line options were not logged; reboot cannot proceed"
                )
            }
            RecoveryError::NoDetection => write!(f, "no error has been detected"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// A component-level recovery mechanism for the hypervisor.
///
/// Implementations: [`crate::Microreset`] (NiLiHype) and
/// [`crate::Microreboot`] (ReHype).
pub trait RecoveryMechanism {
    /// Mechanism name for reports.
    fn name(&self) -> &str;

    /// The normal-operation support features (logging, FS/GS save, ...)
    /// this mechanism requires; assign to [`Hypervisor::support`] before
    /// the workload starts. This is the source of the mechanism's
    /// normal-operation overhead (Figure 3).
    fn op_support(&self) -> OpSupport;

    /// Recovers the hypervisor from the pending detection: quiesces the
    /// machine, repairs state, and resumes execution with all CPU clocks
    /// advanced by the recovery latency.
    ///
    /// # Errors
    ///
    /// [`RecoveryError`] when recovery cannot even be attempted; the caller
    /// records the trial as a recovery failure.
    fn recover(&self, hv: &mut Hypervisor) -> Result<RecoveryReport, RecoveryError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_filters_steps_by_latency() {
        let r = RecoveryReport {
            mechanism: "test".into(),
            steps: vec![
                RecoveryStep {
                    name: "big".into(),
                    duration: SimDuration::from_millis(21),
                },
                RecoveryStep {
                    name: "small".into(),
                    duration: SimDuration::from_micros(200),
                },
            ],
            total: SimDuration::from_millis(22),
            frames_discarded: 0,
            locks_released: 0,
            pfd_repaired: 0,
            requests_retried: 0,
            timers_reactivated: 0,
        };
        let big = r.steps_at_least(SimDuration::from_millis(1));
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].name, "big");
    }

    #[test]
    fn error_display() {
        assert!(RecoveryError::RecoveryRoutineCorrupted
            .to_string()
            .contains("corrupted"));
        assert!(RecoveryError::BootOptionsUnavailable
            .to_string()
            .contains("boot-line"));
    }
}
