//! Recovery steps shared by NiLiHype and ReHype (Section III-B/C).

use nlh_hv::hypercalls::PendingKind;
use nlh_hv::Hypervisor;

/// Releases every lock embedded in a heap object (ReHype's original
/// mechanism, reused by NiLiHype). Returns how many were held.
pub(crate) fn release_heap_locks(hv: &mut Hypervisor) -> usize {
    let ids: Vec<_> = hv.heap.embedded_locks().collect();
    hv.locks.unlock_heap_locks(ids)
}

/// Marks partially executed requests for retry. `hypercalls` / `syscalls`
/// select which kinds are retried (the x86-64 port added syscall retry,
/// Section IV). Returns how many were marked.
pub(crate) fn mark_retries(hv: &mut Hypervisor, hypercalls: bool, syscalls: bool) -> usize {
    let mut n = 0;
    for d in &mut hv.domains {
        if let Some(p) = d.pending.as_mut() {
            let retry = match p.kind {
                PendingKind::Hypercall(_) => hypercalls,
                PendingKind::Syscall => syscalls,
            };
            if retry {
                p.will_retry = true;
                n += 1;
            }
        }
    }
    n
}

/// Acknowledges all pending and in-service interrupts.
pub(crate) fn ack_interrupts(hv: &mut Hypervisor) -> usize {
    hv.irqs.ack_all()
}

/// Applies the undo log (non-idempotent-hypercall mitigation, Section IV).
pub(crate) fn apply_undo(hv: &mut Hypervisor) -> usize {
    hv.apply_undo_log()
}

/// Rebuilds scheduling metadata from the per-CPU source of truth and
/// re-enqueues stranded runnable vCPUs. In credit (overcommit) mode the
/// requeue pass also consumes pending-wake bits and clears double-queued /
/// torn-migration residue; a vCPU it woke must have its domain-level
/// blocked flag dropped too, or event delivery would re-block it.
pub(crate) fn fix_scheduler(hv: &mut Hypervisor) -> usize {
    let n = hv.sched.make_consistent_from_percpu() + hv.sched.requeue_runnable();
    if hv.sched.credit_mode() {
        for d in hv.domains.iter_mut() {
            if d.blocked && hv.sched.vcpu(d.vcpu).state != nlh_hv::sched::RunState::Blocked {
                d.blocked = false;
            }
        }
    }
    n
}

/// Re-creates missing recurring timer events.
pub(crate) fn reactivate_timers(hv: &mut Hypervisor) -> usize {
    let expected = hv.expected_recurring();
    let now = hv.now_max();
    hv.timers.reactivate_recurring(&expected, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlh_hv::domain::{DomainKind, DomainSpec, IdleLoop};
    use nlh_hv::hypercalls::{HcRequest, PendingRequest};
    use nlh_hv::{CpuId, MachineConfig};

    fn hv_with_domain() -> Hypervisor {
        let mut hv = Hypervisor::new(MachineConfig::small(), 1);
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 8,
            pinned_cpu: CpuId(1),
            program: Box::new(IdleLoop),
        });
        hv
    }

    #[test]
    fn heap_lock_release_ignores_static() {
        let mut hv = hv_with_domain();
        let heap_lock = hv.timer_locks[0];
        hv.locks.acquire(heap_lock, CpuId(0));
        hv.locks
            .acquire(nlh_hv::locks::StaticLock::Console.id(), CpuId(1));
        assert_eq!(release_heap_locks(&mut hv), 1);
        assert_eq!(hv.locks.held_locks().len(), 1, "console lock still held");
    }

    #[test]
    fn retry_marking_respects_kind_flags() {
        let mut hv = hv_with_domain();
        hv.domains[0].pending = Some(PendingRequest {
            kind: PendingKind::Hypercall(HcRequest::XenVersion),
            bindings: vec![],
            completed_subcalls: 0,
            will_retry: false,
        });
        assert_eq!(mark_retries(&mut hv, false, true), 0);
        assert!(!hv.domains[0].pending.as_ref().unwrap().will_retry);
        assert_eq!(mark_retries(&mut hv, true, false), 1);
        assert!(hv.domains[0].pending.as_ref().unwrap().will_retry);
    }

    #[test]
    fn syscall_retry_marking() {
        let mut hv = hv_with_domain();
        hv.domains[0].pending = Some(PendingRequest {
            kind: PendingKind::Syscall,
            bindings: vec![],
            completed_subcalls: 0,
            will_retry: false,
        });
        assert_eq!(mark_retries(&mut hv, true, false), 0);
        assert_eq!(mark_retries(&mut hv, true, true), 1);
    }

    #[test]
    fn scheduler_fix_requeues_stranded_vcpu() {
        let mut hv = hv_with_domain();
        // Simulate an abandoned deschedule: percpu cleared, vCPU torn.
        hv.sched.cs_set_percpu_current(CpuId(1), None);
        assert!(hv.sched.check_all().is_err());
        fix_scheduler(&mut hv);
        assert!(hv.sched.check_all().is_ok());
        assert!(
            hv.sched.peek_next(CpuId(1)).is_some(),
            "the vCPU is schedulable again"
        );
    }
}
