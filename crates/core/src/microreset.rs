//! **Microreset** — component-level recovery *without* reboot (NiLiHype).
//!
//! On error detection (Section III-C): the recovery handler runs on the
//! detecting CPU; all CPUs disable interrupts and discard their hypervisor
//! execution threads (stack reset); the detecting CPU applies the
//! enhancements of Section V-A; all CPUs then exit their busy-waits and
//! resume. Total latency is ~22 ms on the paper's machine, dominated by
//! the page-frame consistency scan (Table III).

use nlh_hv::hypercalls::OpSupport;
use nlh_hv::Hypervisor;
use nlh_sim::SimDuration;

use crate::clr::{RecoveryError, RecoveryMechanism, RecoveryReport, RecoveryStep};
use crate::enhancements::Enhancements;
use crate::latency::CostModel;
use crate::shared;

/// Which execution threads microreset discards (Section III-C).
///
/// The paper chooses to discard **all** threads; discarding only the
/// faulting CPU's thread is discussed as an alternative "expected to be
/// more complex to implement and result in lower recovery rate" because of
/// interactions between surviving threads and the recovery process. Both
/// are implemented here so the claim can be tested (see the
/// `ablation_discard` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscardPolicy {
    /// Discard every hypervisor execution thread (NiLiHype's choice).
    #[default]
    AllThreads,
    /// Discard only the thread of the CPU that detected the error; other
    /// CPUs resume their in-flight handlers after recovery — and then trip
    /// over the state the recovery process changed beneath them.
    FaultingThreadOnly,
}

/// The NiLiHype recovery mechanism.
#[derive(Debug, Clone)]
pub struct Microreset {
    enhancements: Enhancements,
    cost: CostModel,
    policy: DiscardPolicy,
}

impl Microreset {
    /// NiLiHype as evaluated in the paper: all enhancements on.
    pub fn nilihype() -> Self {
        Microreset {
            enhancements: Enhancements::full(),
            cost: CostModel::paper(),
            policy: DiscardPolicy::AllThreads,
        }
    }

    /// A microreset with an explicit enhancement set (used for the Table I
    /// ladder and ablations).
    pub fn with_enhancements(enhancements: Enhancements) -> Self {
        Microreset {
            enhancements,
            cost: CostModel::paper(),
            policy: DiscardPolicy::AllThreads,
        }
    }

    /// Overrides the latency cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the discard policy (Section III-C design choice).
    pub fn with_policy(mut self, policy: DiscardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active enhancement set.
    pub fn enhancements(&self) -> &Enhancements {
        &self.enhancements
    }

    /// The active discard policy.
    pub fn policy(&self) -> DiscardPolicy {
        self.policy
    }
}

impl RecoveryMechanism for Microreset {
    fn name(&self) -> &str {
        "NiLiHype"
    }

    fn op_support(&self) -> OpSupport {
        let e = &self.enhancements;
        OpSupport {
            undo_logging: e.nonidem_mitigation,
            reorder_nonidem: e.nonidem_mitigation,
            batched_completion_log: e.batched_retry,
            // NiLiHype does not need ReHype's two extra logs (Section VII-D).
            ioapic_write_log: false,
            bootline_log: false,
            save_fsgs: e.save_fsgs,
        }
    }

    fn recover(&self, hv: &mut Hypervisor) -> Result<RecoveryReport, RecoveryError> {
        if hv.detection().is_none() {
            return Err(RecoveryError::NoDetection);
        }
        if !hv.recovery_entry_ok {
            return Err(RecoveryError::RecoveryRoutineCorrupted);
        }
        let e = &self.enhancements;
        let mut steps: Vec<RecoveryStep> = Vec::new();
        let mut push = |name: &str, d: SimDuration| {
            steps.push(RecoveryStep {
                name: name.to_string(),
                duration: d,
            })
        };

        // --- Quiesce: interrupt all CPUs, disable interrupts, discard all
        // execution threads (reset stacks), park in busy-waits.
        if e.save_fsgs {
            hv.save_fsgs_all();
        }
        let abandon = match self.policy {
            DiscardPolicy::AllThreads => hv.discard_all_stacks(),
            DiscardPolicy::FaultingThreadOnly => {
                let cpu = hv.detection().expect("detection exists").cpu;
                hv.discard_one_stack(cpu)
            }
        };
        push(
            "Interrupt all CPUs and discard execution threads",
            SimDuration::from_micros(150),
        );

        let mut locks_released = 0;
        let mut requests_retried = 0;
        let mut pfd_repaired = 0;
        let mut timers_reactivated = 0;

        // --- Enhancements (Section V-A, plus the shared ReHype set). ---
        if e.clear_irq_count {
            for pc in hv.percpu.iter_mut() {
                pc.local_irq_count = 0;
            }
            push("Clear IRQ count", SimDuration::from_micros(5));
        }
        if e.release_heap_locks {
            locks_released += shared::release_heap_locks(hv);
            push("Release heap locks", SimDuration::from_micros(60));
        }
        if e.unlock_static_locks {
            locks_released += hv.locks.unlock_static_segment();
            push("Unlock static locks", SimDuration::from_micros(15));
        }
        if e.nonidem_mitigation {
            shared::apply_undo(hv);
            push(
                "Apply non-idempotent undo log",
                SimDuration::from_micros(30),
            );
        }
        if e.hypercall_retry || e.syscall_retry {
            requests_retried = match self.policy {
                DiscardPolicy::AllThreads => {
                    shared::mark_retries(hv, e.hypercall_retry, e.syscall_retry)
                }
                // Threads that survive keep executing their requests;
                // retrying them too would double-execute. Only requests of
                // the *discarded* thread are retried.
                DiscardPolicy::FaultingThreadOnly => {
                    let mut n = 0;
                    for &v in &abandon.in_hv_vcpus {
                        let dom = hv.domain_of(v);
                        if let Some(p) = hv.domains[dom.index()].pending.as_mut() {
                            let ok = match p.kind {
                                nlh_hv::hypercalls::PendingKind::Hypercall(_) => e.hypercall_retry,
                                nlh_hv::hypercalls::PendingKind::Syscall => e.syscall_retry,
                            };
                            if ok {
                                p.will_retry = true;
                                n += 1;
                            }
                        }
                    }
                    n
                }
            };
            push(
                "Set up hypercall/syscall retry",
                SimDuration::from_micros(40),
            );
        }
        if e.ack_interrupts {
            shared::ack_interrupts(hv);
            push(
                "Acknowledge pending/in-service interrupts",
                SimDuration::from_micros(25),
            );
        }
        if e.sched_consistency {
            shared::fix_scheduler(hv);
            push(
                "Ensure consistency within scheduling metadata",
                SimDuration::from_micros(120),
            );
        }
        if e.pfd_scan {
            pfd_repaired = hv.pft.consistency_scan();
            push(
                "Restore and check consistency of page frame entries",
                self.cost.pfd_scan(&hv.config),
            );
        }
        if e.reactivate_timer_events {
            timers_reactivated = shared::reactivate_timers(hv);
            push(
                "Reactivate recurring timer events",
                SimDuration::from_micros(40),
            );
        }
        if e.reprogram_timer {
            hv.reprogram_all_apics();
            push("Reprogram hardware timer", SimDuration::from_micros(30));
        }
        // Device extension, not in the paper. Runs after `ack_interrupts`
        // (which clears every pending vector) so its re-raised completion
        // interrupts survive. On machines without virtio devices it pushes
        // no step and adds zero time, preserving the paper's Table III
        // latency breakdown exactly.
        if e.virtqueue_consistency && !hv.virtio.is_empty() {
            let rep = hv.virtio_repair();
            push(
                "Repair virtqueue ring consistency",
                SimDuration::from_micros(20 + 2 * rep.total()),
            );
        }

        // --- FS/GS consequence + resume. ---
        hv.finish_fsgs(&abandon.in_hv_vcpus, e.save_fsgs);
        push("Resume normal operation", self.cost.microreset_others / 2);

        let total = steps.iter().fold(SimDuration::ZERO, |a, s| a + s.duration);
        hv.resume_after(total);

        Ok(RecoveryReport {
            mechanism: self.name().to_string(),
            steps,
            total,
            frames_discarded: abandon.frames_discarded,
            locks_released,
            pfd_repaired,
            requests_retried,
            timers_reactivated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhancements::LadderRung;
    use nlh_hv::domain::{DomainKind, DomainSpec, IdleLoop};
    use nlh_hv::invariants::check_quiescent;
    use nlh_hv::{CpuId, MachineConfig};
    use nlh_sim::SimTime;

    fn busy_hv() -> Hypervisor {
        let mut hv = Hypervisor::new(MachineConfig::small(), 11);
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::Priv,
            pages: 16,
            pinned_cpu: CpuId(0),
            program: Box::new(IdleLoop),
        });
        hv.add_boot_domain(DomainSpec {
            kind: DomainKind::App,
            pages: 32,
            pinned_cpu: CpuId(1),
            program: Box::new(nlh_workloads_stub::Spinner::default()),
        });
        hv
    }

    /// A tiny hypercall-issuing workload for recovery tests (avoids a dev
    /// dependency cycle on nlh-workloads).
    mod nlh_workloads_stub {
        use nlh_hv::domain::{GuestNotice, GuestOp, GuestProgram, WorkloadVerdict};
        use nlh_hv::hypercalls::HcRequest;
        use nlh_sim::{Pcg64, SimDuration, SimTime};

        #[derive(Debug, Default, Clone)]
        pub struct Spinner {
            i: u64,
        }
        impl GuestProgram for Spinner {
            fn name(&self) -> &str {
                "Spinner"
            }
            fn next_op(&mut self, _now: SimTime, _rng: &mut Pcg64) -> GuestOp {
                self.i += 1;
                match self.i % 4 {
                    0 => GuestOp::Hypercall(HcRequest::PinPages(1)),
                    1 => GuestOp::Hypercall(HcRequest::UnpinPages(1)),
                    2 => GuestOp::Syscall,
                    _ => GuestOp::Compute(SimDuration::from_micros(300)),
                }
            }
            fn notice(&mut self, _now: SimTime, _n: GuestNotice) {}
            fn verdict(&self, _now: SimTime, _deadline: SimTime) -> WorkloadVerdict {
                WorkloadVerdict::Running
            }
            fn clone_box(&self) -> Box<dyn GuestProgram> {
                Box::new(self.clone())
            }
        }
    }

    #[test]
    fn recovery_without_detection_is_an_error() {
        let mut hv = busy_hv();
        let mech = Microreset::nilihype();
        assert_eq!(mech.recover(&mut hv), Err(RecoveryError::NoDetection));
    }

    #[test]
    fn corrupted_recovery_entry_fails() {
        let mut hv = busy_hv();
        hv.recovery_entry_ok = false;
        hv.raise_panic(CpuId(0), "fault");
        let mech = Microreset::nilihype();
        assert_eq!(
            mech.recover(&mut hv),
            Err(RecoveryError::RecoveryRoutineCorrupted)
        );
    }

    #[test]
    fn full_recovery_restores_quiescent_invariants() {
        let mut hv = busy_hv();
        // Run into the steady state, then fault mid-execution.
        hv.run_for(nlh_sim::SimDuration::from_millis(120));
        assert!(hv.detection().is_none());
        hv.raise_panic(CpuId(1), "injected");
        let mech = Microreset::nilihype();
        let report = mech.recover(&mut hv).unwrap();
        assert!(hv.detection().is_none());
        let violations = check_quiescent(&hv);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(report.mechanism, "NiLiHype");
    }

    #[test]
    fn latency_matches_table3_on_paper_machine() {
        let mut hv = Hypervisor::new(MachineConfig::paper(), 3);
        hv.raise_panic(CpuId(0), "fault");
        let mech = Microreset::nilihype();
        let report = mech.recover(&mut hv).unwrap();
        // Table III: 21 ms scan + ~1 ms others = 22 ms.
        assert_eq!(report.total.as_millis(), 22);
        let scan = report
            .steps
            .iter()
            .find(|s| s.name.contains("page frame"))
            .unwrap();
        assert_eq!(scan.duration.as_millis(), 21);
    }

    #[test]
    fn recovery_latency_pauses_all_vms() {
        let mut hv = busy_hv();
        hv.run_for(nlh_sim::SimDuration::from_millis(50));
        hv.raise_panic(CpuId(0), "fault");
        let before = hv.now_max();
        let report = Microreset::nilihype().recover(&mut hv).unwrap();
        let after = hv.now();
        assert_eq!(after, before + report.total, "clocks advanced by latency");
    }

    #[test]
    fn basic_rung_leaves_residue_in_place() {
        let mut hv = busy_hv();
        hv.run_for(nlh_sim::SimDuration::from_millis(50));
        // Leak residue: an irq count and a held lock.
        hv.percpu[2].local_irq_count = 1;
        let lock = hv.timer_locks[3];
        hv.locks.acquire(lock, CpuId(3));
        hv.raise_panic(CpuId(2), "fault");
        let mech = Microreset::with_enhancements(LadderRung::Basic.enhancements());
        mech.recover(&mut hv).unwrap();
        // Basic recovery resumed but repaired nothing.
        assert_eq!(hv.percpu[2].local_irq_count, 1);
        assert!(!hv.locks.held_locks().is_empty());
        // The machine subsequently fails again.
        hv.run_for(nlh_sim::SimDuration::from_secs(2));
        assert!(
            hv.detection().is_some(),
            "residue must re-trigger detection"
        );
    }

    #[test]
    fn retry_reexecutes_abandoned_hypercall() {
        let mut hv = busy_hv();
        // Run until the AppVM has a pending request in flight.
        let mut guard = 0;
        while hv.vcpus_with_pending().is_empty() && guard < 500_000 {
            hv.step_any();
            guard += 1;
        }
        assert!(guard < 500_000, "AppVM never issued a request");
        hv.raise_panic(CpuId(1), "fault mid-hypercall");
        let report = Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(report.requests_retried >= 1);
        // After resuming, the retry completes and the pending clears.
        hv.run_for(nlh_sim::SimDuration::from_millis(100));
        assert!(hv.detection().is_none());
        assert!(
            hv.vcpus_with_pending().is_empty()
                || hv.domains.iter().all(|d| d
                    .pending
                    .as_ref()
                    .map(|p| !p.will_retry)
                    .unwrap_or(true))
        );
    }

    #[test]
    fn virtqueue_repair_step_only_runs_with_devices() {
        // Without devices the step must not appear (Table III latency is
        // pinned elsewhere); with a device and mid-transaction residue it
        // must repair and report.
        let mut hv = busy_hv();
        hv.raise_panic(CpuId(0), "fault");
        let report = Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(
            !report.steps.iter().any(|s| s.name.contains("virtqueue")),
            "no devices, no step"
        );

        let mut hv = busy_hv();
        let dom = hv.domains[1].id;
        hv.add_virtio_blk(dom);
        // Seed a torn transaction directly: submitted and popped, never
        // completed.
        hv.virtio.devices[0].queues[0].submit(77);
        hv.virtio.devices[0].queues[0].pop_avail();
        hv.raise_panic(CpuId(1), "fault mid-virtqueue");
        let report = Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(report
            .steps
            .iter()
            .any(|s| s.name == "Repair virtqueue ring consistency"));
        assert_eq!(hv.virtio.devices[0].queues[0].in_flight(), 0);
        assert!(hv.virtio.devices[0].undelivered() > 0);

        // The rung below the top leaves the residue in place.
        let mut hv = busy_hv();
        let dom = hv.domains[1].id;
        hv.add_virtio_blk(dom);
        hv.virtio.devices[0].queues[0].submit(77);
        hv.virtio.devices[0].queues[0].pop_avail();
        hv.raise_panic(CpuId(1), "fault mid-virtqueue");
        let mech = Microreset::with_enhancements(LadderRung::ReactivateTimerEvents.enhancements());
        let report = mech.recover(&mut hv).unwrap();
        assert!(!report.steps.iter().any(|s| s.name.contains("virtqueue")));
        assert_eq!(hv.virtio.devices[0].queues[0].in_flight(), 1);
    }

    #[test]
    fn op_support_reflects_enhancements() {
        let full = Microreset::nilihype();
        let s = full.op_support();
        assert!(s.undo_logging && s.batched_completion_log && s.save_fsgs);
        assert!(
            !s.ioapic_write_log && !s.bootline_log,
            "NiLiHype needs neither log"
        );
        let basic = Microreset::with_enhancements(Enhancements::none());
        let s = basic.op_support();
        assert!(!s.undo_logging && !s.save_fsgs);
    }

    #[test]
    fn ladder_rungs_recover_increasingly_much_state() {
        // Structural sanity: higher rungs repair at least as many kinds of
        // residue (checked via quiescent violations after recovery from a
        // synthetic messy state).
        let mut prev_violations = usize::MAX;
        for rung in LadderRung::ALL {
            let mut hv = busy_hv();
            hv.run_for(nlh_sim::SimDuration::from_millis(80));
            // Synthesize rich residue.
            hv.percpu[2].local_irq_count = 1;
            let l = hv.runq_locks[1];
            hv.locks.acquire(l, CpuId(1));
            hv.locks
                .acquire(nlh_hv::locks::StaticLock::Time.id(), CpuId(0));
            hv.percpu[5].apic.disarm();
            hv.timers
                .remove_kind(nlh_hv::timers::TimerEventKind::WatchdogHeartbeat(CpuId(6)));
            hv.raise_panic(CpuId(2), "fault");
            let mech = Microreset::with_enhancements(rung.enhancements());
            mech.recover(&mut hv).unwrap();
            let v = check_quiescent(&hv).len();
            assert!(
                v <= prev_violations,
                "{rung:?}: {v} violations > previous {prev_violations}"
            );
            prev_violations = v;
        }
        assert_eq!(prev_violations, 0, "top rung repairs everything");
    }

    #[test]
    fn report_example_timestamps_sane() {
        let mut hv = Hypervisor::new(MachineConfig::small(), 9);
        hv.raise_panic(CpuId(0), "x");
        let report = Microreset::nilihype().recover(&mut hv).unwrap();
        assert!(report.total > SimDuration::ZERO);
        assert!(hv.now() > SimTime::ZERO);
        assert_eq!(
            report.total,
            report
                .steps
                .iter()
                .fold(SimDuration::ZERO, |a, s| a + s.duration)
        );
    }
}
