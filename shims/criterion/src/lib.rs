//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`throughput`, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — backed by a
//! simple wall-clock timer. It reports mean time per iteration (and
//! element throughput when configured) to stdout. Statistical analysis,
//! outlier detection, and HTML reports require the real crate; repointing
//! the workspace dependency at the registry `criterion = "0.5"` restores
//! them without source changes.

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much data an iteration processes (for throughput reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how costly per-iteration setup output is to hold in memory.
/// The shim times identically for both; the variants exist so call sites
/// match the real API.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is small; batch many per timing window.
    SmallInput,
    /// Setup output is large; batch few per timing window.
    LargeInput,
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, excluding nothing (the routine is the whole
    /// measured body).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(
    id: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up pass, then the timed pass.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    let time = if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else {
        format!("{:.3} µs", per_iter * 1e6)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter.max(f64::MIN_POSITIVE);
            println!("{id:<44} {time}/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter.max(f64::MIN_POSITIVE);
            println!("{id:<44} {time}/iter  ({rate:.0} B/s)");
        }
        None => println!("{id:<44} {time}/iter"),
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each measurement runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Finishes the group (no-op in the shim; matches the real API).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Collects benchmark functions into a runner function, like the real
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Emits `main` running the given groups. `--test`/`--bench` harness
/// flags passed by `cargo test`/`cargo bench` are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; skip the
            // (slow) measurements there and only run under `cargo bench`.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
