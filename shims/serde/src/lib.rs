//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `serde` cannot be fetched. The workspace only uses serde as
//! `#[derive(Serialize, Deserialize)]` annotations (no serialization is
//! performed anywhere yet); this crate supplies no-op derives plus the
//! trait names so imports resolve. Swapping the workspace dependency back
//! to the registry `serde = "1"` restores real serialization without any
//! source change.

/// Marker trait mirroring `serde::Serialize`; no methods because nothing
/// in the workspace serializes yet.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
