//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace annotates its data types with serde derives so they are
//! ready for wire formats, but nothing serializes yet and the build must
//! succeed with no registry access. These derives expand to nothing; the
//! real `serde_derive` can be swapped back in by pointing the workspace
//! dependency at crates.io.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input the real derive would.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
